//! Erase-block bookkeeping: valid-page bitmaps, wear, and bad-block state.
//!
//! The FTL in `ull-ssd` owns a [`BlockState`] per physical block; garbage
//! collection uses the valid counts to pick victims and the erase counter to
//! level wear.

/// Lifecycle of an erase block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BlockPhase {
    /// Erased, no pages written.
    Free,
    /// Partially written; next_page < pages_per_block.
    Open,
    /// All pages written.
    Full,
}

/// Valid-page bitmap and wear state for one erase block.
///
/// # Examples
///
/// ```
/// use ull_flash::{BlockPhase, BlockState};
///
/// let mut b = BlockState::new(4);
/// let p0 = b.append().unwrap();
/// let p1 = b.append().unwrap();
/// assert_eq!((p0, p1), (0, 1));
/// assert_eq!(b.valid_count(), 2);
/// b.invalidate(p0);
/// assert_eq!(b.valid_count(), 1);
/// b.erase();
/// assert_eq!(b.phase(), BlockPhase::Free);
/// ```
#[derive(Debug, Clone)]
pub struct BlockState {
    valid: Vec<u64>,
    pages: u32,
    next_page: u32,
    valid_count: u32,
    erase_count: u32,
    program_fails: u32,
    bad: bool,
}

impl BlockState {
    /// Creates a fresh (erased) block with `pages` pages.
    ///
    /// # Panics
    ///
    /// Panics if `pages` is zero.
    pub fn new(pages: u32) -> Self {
        assert!(pages > 0, "a block needs at least one page");
        BlockState {
            valid: vec![0; pages.div_ceil(64) as usize],
            pages,
            next_page: 0,
            valid_count: 0,
            erase_count: 0,
            program_fails: 0,
            bad: false,
        }
    }

    /// Pages per block.
    pub fn pages(&self) -> u32 {
        self.pages
    }

    /// Current lifecycle phase.
    pub fn phase(&self) -> BlockPhase {
        if self.next_page == 0 {
            BlockPhase::Free
        } else if self.next_page < self.pages {
            BlockPhase::Open
        } else {
            BlockPhase::Full
        }
    }

    /// Appends a page program, returning the page index written, or `None`
    /// if the block is full or bad. The page becomes valid.
    pub fn append(&mut self) -> Option<u32> {
        if self.bad || self.next_page >= self.pages {
            return None;
        }
        let p = self.next_page;
        self.next_page += 1;
        self.valid[(p / 64) as usize] |= 1 << (p % 64);
        self.valid_count += 1;
        Some(p)
    }

    /// Marks a previously written page invalid (its data was overwritten or
    /// trimmed elsewhere). Idempotent.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the page was never written.
    pub fn invalidate(&mut self, page: u32) {
        debug_assert!(page < self.next_page, "invalidating an unwritten page");
        let (w, b) = ((page / 64) as usize, page % 64);
        if self.valid[w] & (1 << b) != 0 {
            self.valid[w] &= !(1 << b);
            self.valid_count -= 1;
        }
    }

    /// Whether a page currently holds valid data.
    pub fn is_valid(&self, page: u32) -> bool {
        if page >= self.pages {
            return false;
        }
        self.valid[(page / 64) as usize] & (1 << (page % 64)) != 0
    }

    /// Iterates over the indexes of the valid pages.
    pub fn valid_pages(&self) -> impl Iterator<Item = u32> + '_ {
        (0..self.next_page).filter(|&p| self.is_valid(p))
    }

    /// Number of valid pages (GC migration cost).
    pub fn valid_count(&self) -> u32 {
        self.valid_count
    }

    /// Number of pages still writable.
    pub fn free_pages(&self) -> u32 {
        if self.bad {
            0
        } else {
            self.pages - self.next_page
        }
    }

    /// Number of invalid (reclaimable) pages.
    pub fn invalid_count(&self) -> u32 {
        self.next_page - self.valid_count
    }

    /// Erases the block, clearing all page state and bumping wear.
    pub fn erase(&mut self) {
        self.valid.iter_mut().for_each(|w| *w = 0);
        self.next_page = 0;
        self.valid_count = 0;
        self.erase_count += 1;
    }

    /// How many times this block has been erased.
    pub fn erase_count(&self) -> u32 {
        self.erase_count
    }

    /// Records a program failure on this block. Program failures
    /// survive erases (they indicate physical damage) and feed the
    /// FTL's retirement decision.
    pub fn note_program_fail(&mut self) {
        self.program_fails += 1;
    }

    /// How many program operations have failed on this block over its
    /// lifetime.
    pub fn program_fails(&self) -> u32 {
        self.program_fails
    }

    /// Whether the block is marked bad (worn out / manufacturing defect).
    pub fn is_bad(&self) -> bool {
        self.bad
    }

    /// Retires the block; it will accept no further appends.
    pub fn mark_bad(&mut self) {
        self.bad = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn append_fills_sequentially() {
        let mut b = BlockState::new(3);
        assert_eq!(b.phase(), BlockPhase::Free);
        assert_eq!(b.append(), Some(0));
        assert_eq!(b.phase(), BlockPhase::Open);
        assert_eq!(b.append(), Some(1));
        assert_eq!(b.append(), Some(2));
        assert_eq!(b.phase(), BlockPhase::Full);
        assert_eq!(b.append(), None);
        assert_eq!(b.valid_count(), 3);
        assert_eq!(b.free_pages(), 0);
    }

    #[test]
    fn invalidate_is_idempotent() {
        let mut b = BlockState::new(8);
        b.append();
        b.append();
        b.invalidate(0);
        b.invalidate(0);
        assert_eq!(b.valid_count(), 1);
        assert_eq!(b.invalid_count(), 1);
        assert!(!b.is_valid(0));
        assert!(b.is_valid(1));
    }

    #[test]
    fn erase_resets_and_counts_wear() {
        let mut b = BlockState::new(8);
        for _ in 0..8 {
            b.append();
        }
        b.erase();
        assert_eq!(b.phase(), BlockPhase::Free);
        assert_eq!(b.valid_count(), 0);
        assert_eq!(b.erase_count(), 1);
        assert_eq!(b.append(), Some(0));
    }

    #[test]
    fn bad_blocks_reject_appends() {
        let mut b = BlockState::new(8);
        b.mark_bad();
        assert!(b.is_bad());
        assert_eq!(b.append(), None);
        assert_eq!(b.free_pages(), 0);
    }

    #[test]
    fn program_fails_survive_erase() {
        let mut b = BlockState::new(8);
        b.note_program_fail();
        b.note_program_fail();
        assert_eq!(b.program_fails(), 2);
        b.erase();
        assert_eq!(b.program_fails(), 2, "program fails indicate damage");
        assert!(!b.is_bad());
    }

    #[test]
    fn bitmap_works_across_word_boundaries() {
        let mut b = BlockState::new(130);
        for _ in 0..130 {
            b.append();
        }
        b.invalidate(63);
        b.invalidate(64);
        b.invalidate(129);
        assert_eq!(b.valid_count(), 127);
        let invalid: Vec<u32> = (0..130).filter(|&p| !b.is_valid(p)).collect();
        assert_eq!(invalid, vec![63, 64, 129]);
        assert_eq!(b.valid_pages().count(), 127);
    }
}
