//! Flash technology specifications (the paper's Table I, plus a planar-MLC
//! reference point used by the Intel-750-class device model).

use core::fmt;

use ull_simkit::SimDuration;

/// How many bits one cell stores; determines program behaviour and energy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CellKind {
    /// Single-level cell (one bit). Z-NAND uses an SLC-based 3D design.
    Slc,
    /// Multi-level cell (two bits).
    Mlc,
    /// Triple-level cell (three bits).
    Tlc,
}

impl CellKind {
    /// Incremental-step-pulse-programming step count, relative to SLC.
    ///
    /// SLC needs a single coarse pulse train; MLC/TLC need progressively more
    /// verify-and-step iterations, which is why their programs are slower and
    /// hungrier (the paper's §IV-D2 conjecture for the ULL SSD's lower write
    /// power).
    pub fn program_steps(self) -> u32 {
        match self {
            CellKind::Slc => 1,
            CellKind::Mlc => 4,
            CellKind::Tlc => 8,
        }
    }
}

/// Timing and geometry of one flash technology.
///
/// The three 3D presets reproduce Table I of the paper; `planar_mlc` is the
/// conventional-flash reference the paper cites as "19× slower writes than
/// reads at most".
///
/// # Examples
///
/// ```
/// use ull_flash::FlashSpec;
///
/// let z = FlashSpec::z_nand();
/// let v = FlashSpec::v_nand();
/// // Z-NAND reads are 15-20x faster than other 3D flash (Table I).
/// assert!(v.t_read.as_nanos() / z.t_read.as_nanos() >= 15);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlashSpec {
    /// Marketing name ("Z-NAND", "V-NAND", ...).
    pub name: &'static str,
    /// Number of stacked word-line layers (48/64/48 in Table I).
    pub layers: u32,
    /// Page read (tR) latency.
    pub t_read: SimDuration,
    /// Page program (tPROG) latency.
    pub t_prog: SimDuration,
    /// Block erase (tBERS) latency.
    pub t_erase: SimDuration,
    /// Page size in bytes (2 KB for Z-NAND, 16 KB for BiCS/V-NAND).
    pub page_size: u32,
    /// Pages per erase block.
    pub pages_per_block: u32,
    /// Per-die capacity in bits (Table I "Capacity" row).
    pub die_capacity_gbit: u32,
    /// Cell storage density.
    pub cell: CellKind,
    /// Whether in-progress programs/erases can be suspended to serve a read
    /// (the Z-NAND suspend/resume circuit of §II-A3).
    pub program_suspend: bool,
    /// Time to checkpoint an in-flight program when a read suspends it.
    pub suspend_latency: SimDuration,
    /// Time to restore a suspended program's context.
    pub resume_latency: SimDuration,
}

impl FlashSpec {
    /// Samsung Z-NAND: 48 layers, tR = 3 µs, tPROG = 100 µs, 2 KB pages,
    /// 64 Gbit dies (Table I), with program suspend/resume support.
    pub fn z_nand() -> Self {
        FlashSpec {
            name: "Z-NAND",
            layers: 48,
            t_read: SimDuration::from_micros(3),
            t_prog: SimDuration::from_micros(100),
            t_erase: SimDuration::from_millis(1),
            page_size: 2 * 1024,
            pages_per_block: 384,
            die_capacity_gbit: 64,
            cell: CellKind::Slc,
            program_suspend: true,
            suspend_latency: SimDuration::from_micros(1),
            resume_latency: SimDuration::from_micros(2),
        }
    }

    /// Samsung V-NAND: 64 layers, tR = 60 µs, tPROG = 700 µs, 16 KB pages,
    /// 512 Gbit dies (Table I).
    pub fn v_nand() -> Self {
        FlashSpec {
            name: "V-NAND",
            layers: 64,
            t_read: SimDuration::from_micros(60),
            t_prog: SimDuration::from_micros(700),
            t_erase: SimDuration::from_millis(3),
            page_size: 16 * 1024,
            pages_per_block: 256,
            die_capacity_gbit: 512,
            cell: CellKind::Tlc,
            program_suspend: false,
            suspend_latency: SimDuration::ZERO,
            resume_latency: SimDuration::ZERO,
        }
    }

    /// Toshiba BiCS: 48 layers, tR = 45 µs, tPROG = 660 µs, 16 KB pages,
    /// 256 Gbit dies (Table I).
    pub fn bics() -> Self {
        FlashSpec {
            name: "BiCS",
            layers: 48,
            t_read: SimDuration::from_micros(45),
            t_prog: SimDuration::from_micros(660),
            t_erase: SimDuration::from_millis(3),
            page_size: 16 * 1024,
            pages_per_block: 256,
            die_capacity_gbit: 256,
            cell: CellKind::Tlc,
            program_suspend: false,
            suspend_latency: SimDuration::ZERO,
            resume_latency: SimDuration::ZERO,
        }
    }

    /// A ReRAM-class projection (the "future SSDs that employ faster NVM
    /// technologies such as resistive random access memory" of §V-A):
    /// sub-microsecond reads, microsecond writes, byte-addressable-ish
    /// small pages, no program suspension needed (writes are short).
    pub fn reram_class() -> Self {
        FlashSpec {
            name: "ReRAM-class",
            layers: 1,
            t_read: SimDuration::from_nanos(300),
            t_prog: SimDuration::from_micros(1),
            t_erase: SimDuration::from_micros(10),
            page_size: 2 * 1024,
            pages_per_block: 384,
            die_capacity_gbit: 32,
            cell: CellKind::Slc,
            program_suspend: false,
            suspend_latency: SimDuration::ZERO,
            resume_latency: SimDuration::ZERO,
        }
    }

    /// Planar MLC of the Intel-750 generation: tR ≈ 45 µs,
    /// tPROG ≈ 1.3 ms — the "conventional flash" whose program blocks reads
    /// 19× longer than a read (§IV-D1).
    pub fn planar_mlc() -> Self {
        FlashSpec {
            name: "planar-MLC",
            layers: 1,
            t_read: SimDuration::from_micros(45),
            t_prog: SimDuration::from_micros(1_300),
            t_erase: SimDuration::from_millis(3),
            page_size: 16 * 1024,
            pages_per_block: 256,
            die_capacity_gbit: 128,
            cell: CellKind::Mlc,
            program_suspend: false,
            suspend_latency: SimDuration::ZERO,
            resume_latency: SimDuration::ZERO,
        }
    }

    /// Bytes per erase block.
    pub fn block_bytes(&self) -> u64 {
        self.page_size as u64 * self.pages_per_block as u64
    }

    /// Blocks per die implied by the die capacity.
    pub fn blocks_per_die(&self) -> u32 {
        let die_bytes = self.die_capacity_gbit as u64 * (1 << 30) / 8;
        (die_bytes / self.block_bytes()) as u32
    }

    /// Energy of one page read, in nanojoules (sense amps + peripherals).
    ///
    /// Reads only enable sense circuitry; the constant is chosen so that
    /// read power stays near idle as the paper observes (§IV-D2).
    pub fn read_energy_nj(&self) -> f64 {
        0.08 * self.page_size as f64 / 1024.0 + 0.3 * self.t_read.as_micros_f64()
    }

    /// Energy of one page program, in nanojoules.
    ///
    /// Programs pump the charge path for the whole tPROG and repeat
    /// verify-step iterations per stored bit, so MLC-class programs draw
    /// several times the SLC energy — the source of the ULL device's ~30%
    /// lower write power in fig. 7a.
    pub fn program_energy_nj(&self) -> f64 {
        let steps = self.cell.program_steps() as f64;
        2.0 * self.page_size as f64 / 1024.0
            + 3.0 * self.t_prog.as_micros_f64() * (0.5 + 0.25 * steps)
    }

    /// Energy of one block erase, in nanojoules.
    pub fn erase_energy_nj(&self) -> f64 {
        5.0 * self.t_erase.as_micros_f64()
    }
}

impl fmt::Display for FlashSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({} layers, tR={}, tPROG={}, {}B pages, {}Gb/die)",
            self.name,
            self.layers,
            self.t_read,
            self.t_prog,
            self.page_size,
            self.die_capacity_gbit
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_read_latency_ratios() {
        let z = FlashSpec::z_nand();
        let v = FlashSpec::v_nand();
        let b = FlashSpec::bics();
        // "its read latency is 15~20x shorter than those two modern 3D flash
        // technologies"
        assert_eq!(v.t_read.as_nanos() / z.t_read.as_nanos(), 20);
        assert_eq!(b.t_read.as_nanos() / z.t_read.as_nanos(), 15);
    }

    #[test]
    fn table1_program_latency_ratios() {
        let z = FlashSpec::z_nand();
        // "write latency of Z-NAND is shorter than that of BiCS and V-NAND by
        // 6.6x and 7x"
        let bics_ratio = FlashSpec::bics().t_prog.as_nanos() as f64 / z.t_prog.as_nanos() as f64;
        let vnand_ratio = FlashSpec::v_nand().t_prog.as_nanos() as f64 / z.t_prog.as_nanos() as f64;
        assert!((bics_ratio - 6.6).abs() < 0.05);
        assert!((vnand_ratio - 7.0).abs() < 0.05);
    }

    #[test]
    fn table1_geometry() {
        assert_eq!(FlashSpec::z_nand().page_size, 2 * 1024);
        assert_eq!(FlashSpec::v_nand().page_size, 16 * 1024);
        assert_eq!(FlashSpec::bics().page_size, 16 * 1024);
        assert_eq!(FlashSpec::z_nand().layers, 48);
        assert_eq!(FlashSpec::v_nand().layers, 64);
    }

    #[test]
    fn blocks_per_die_consistent_with_capacity() {
        let z = FlashSpec::z_nand();
        let total = z.blocks_per_die() as u64 * z.block_bytes();
        let cap = z.die_capacity_gbit as u64 * (1 << 30) / 8;
        // Rounding down loses less than one block.
        assert!(total <= cap && cap - total < z.block_bytes());
    }

    #[test]
    fn slc_programs_cheaper_than_mlc() {
        let slc =
            FlashSpec::z_nand().program_energy_nj() / FlashSpec::z_nand().t_prog.as_micros_f64();
        let mlc = FlashSpec::planar_mlc().program_energy_nj()
            / FlashSpec::planar_mlc().t_prog.as_micros_f64();
        // Per-microsecond program power is lower for SLC.
        assert!(slc < mlc, "slc={slc} mlc={mlc}");
    }

    #[test]
    fn only_z_nand_suspends() {
        assert!(FlashSpec::z_nand().program_suspend);
        assert!(!FlashSpec::v_nand().program_suspend);
        assert!(!FlashSpec::bics().program_suspend);
        assert!(!FlashSpec::planar_mlc().program_suspend);
    }

    #[test]
    fn display_mentions_name() {
        assert!(FlashSpec::z_nand().to_string().contains("Z-NAND"));
    }
}
