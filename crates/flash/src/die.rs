//! Die-level occupancy: one flash die serves one array operation at a time.

use std::sync::Arc;

use ull_simkit::{SimDuration, SimTime, Slot, Timeline};

use crate::spec::FlashSpec;

/// Cumulative operation counters for one die.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DieCounters {
    /// Page reads served.
    pub reads: u64,
    /// Page programs served.
    pub programs: u64,
    /// Block erases served.
    pub erases: u64,
    /// Reads that had to suspend an in-flight program.
    pub suspensions: u64,
    /// Extra read-retry steps served for ECC-marginal reads.
    pub read_retries: u64,
}

/// One flash die: a serially-busy resource with (optionally) suspendable
/// programs.
///
/// The die does not track page contents — data is irrelevant to timing — but
/// it does track exact occupancy, so queueing behind a 100 µs Z-NAND program
/// or a 1.3 ms MLC program falls out naturally.
///
/// # Examples
///
/// ```
/// use ull_flash::{FlashDie, FlashSpec};
/// use ull_simkit::SimTime;
///
/// let mut die = FlashDie::new(FlashSpec::z_nand().into());
/// let w = die.program(SimTime::ZERO);
/// // A read arriving mid-program suspends it instead of waiting 100us.
/// let r = die.read_with_priority(SimTime::from_micros(10));
/// assert!(r.end < w.end);
/// ```
#[derive(Debug, Clone)]
pub struct FlashDie {
    spec: Arc<FlashSpec>,
    timeline: Timeline,
    counters: DieCounters,
    read_energy_nj: f64,
    program_energy_nj: f64,
    erase_energy_nj: f64,
}

impl FlashDie {
    /// Creates an idle die of the given technology.
    pub fn new(spec: Arc<FlashSpec>) -> Self {
        let read_energy_nj = spec.read_energy_nj();
        let program_energy_nj = spec.program_energy_nj();
        let erase_energy_nj = spec.erase_energy_nj();
        FlashDie {
            spec,
            timeline: Timeline::new(),
            counters: DieCounters::default(),
            read_energy_nj,
            program_energy_nj,
            erase_energy_nj,
        }
    }

    /// The technology this die implements.
    pub fn spec(&self) -> &FlashSpec {
        &self.spec
    }

    /// Cumulative counters.
    pub fn counters(&self) -> DieCounters {
        self.counters
    }

    /// Total array busy time (for utilization/power accounting).
    pub fn busy_time(&self) -> SimDuration {
        self.timeline.busy_time()
    }

    /// When the die next becomes idle.
    pub fn busy_until(&self) -> SimTime {
        self.timeline.busy_until()
    }

    /// Total array energy consumed so far, in nanojoules.
    pub fn energy_nj(&self) -> f64 {
        self.counters.reads as f64 * self.read_energy_nj
            + self.counters.programs as f64 * self.program_energy_nj
            + self.counters.erases as f64 * self.erase_energy_nj
    }

    /// Queues a page read FIFO behind any in-flight work.
    pub fn read(&mut self, at: SimTime) -> Slot {
        self.counters.reads += 1;
        self.timeline.reserve(at, self.spec.t_read)
    }

    /// Serves a page read with program-suspension if the technology supports
    /// it; otherwise behaves like [`FlashDie::read`].
    ///
    /// This is the Z-NAND suspend/resume datapath (§II-A3): the read pays
    /// `suspend_latency`, executes tR, and the suspended program finishes
    /// `resume_latency` later than it otherwise would.
    pub fn read_with_priority(&mut self, at: SimTime) -> Slot {
        if !self.spec.program_suspend {
            return self.read(at);
        }
        self.counters.reads += 1;
        let slot = self.timeline.reserve_priority(
            at,
            self.spec.t_read,
            self.spec.suspend_latency,
            self.spec.resume_latency,
        );
        if slot.suspended_other {
            self.counters.suspensions += 1;
        }
        slot
    }

    /// Occupies the die for an internal housekeeping operation of arbitrary
    /// length (e.g. a GC copyback row: read + program back-to-back).
    pub fn occupy(&mut self, at: SimTime, dur: SimDuration) -> Slot {
        self.timeline.reserve(at, dur)
    }

    /// Serves `steps` extra read-retry sensing passes for an
    /// ECC-marginal page: each step re-reads the array at a shifted
    /// reference voltage, so the die is busy `steps * tR` longer and
    /// pays read energy per step.
    ///
    /// Returns the occupancy slot covering all the retry steps; with
    /// `steps == 0` the slot is empty (zero-length reservation).
    pub fn read_retry(&mut self, at: SimTime, steps: u32) -> Slot {
        self.counters.read_retries += u64::from(steps);
        // Each retry step is a full array sensing pass: count it as a
        // read so energy accounting stays per-operation.
        self.counters.reads += u64::from(steps);
        self.timeline
            .reserve(at, self.spec.t_read * u64::from(steps))
    }

    /// Queues a page program.
    pub fn program(&mut self, at: SimTime) -> Slot {
        self.counters.programs += 1;
        self.timeline.reserve(at, self.spec.t_prog)
    }

    /// Queues a block erase.
    pub fn erase(&mut self, at: SimTime) -> Slot {
        self.counters.erases += 1;
        self.timeline.reserve(at, self.spec.t_erase)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_takes_t_read() {
        let mut die = FlashDie::new(FlashSpec::z_nand().into());
        let s = die.read(SimTime::ZERO);
        assert_eq!(s.end - s.start, FlashSpec::z_nand().t_read);
        assert_eq!(die.counters().reads, 1);
    }

    #[test]
    fn reads_queue_behind_programs_without_suspend() {
        let mut die = FlashDie::new(FlashSpec::planar_mlc().into());
        let w = die.program(SimTime::ZERO);
        let r = die.read_with_priority(SimTime::from_micros(5));
        // planar MLC cannot suspend: the read waits out the 1.3ms program.
        assert_eq!(r.start, w.end);
        assert_eq!(die.counters().suspensions, 0);
    }

    #[test]
    fn z_nand_read_suspends_program() {
        let mut die = FlashDie::new(FlashSpec::z_nand().into());
        let w = die.program(SimTime::ZERO);
        let r = die.read_with_priority(SimTime::from_micros(10));
        assert!(r.suspended_other);
        assert!(
            r.end < w.end,
            "read must finish before the suspended program"
        );
        // Suspend latency (1us) + tR (3us) from arrival.
        assert_eq!(
            r.end - SimTime::from_micros(10),
            SimDuration::from_micros(4)
        );
        assert_eq!(die.counters().suspensions, 1);
        // The program is pushed back by the resume penalty.
        assert_eq!(die.busy_until(), w.end + FlashSpec::z_nand().resume_latency);
    }

    #[test]
    fn read_retry_occupies_steps_times_t_read() {
        let spec = FlashSpec::z_nand();
        let mut die = FlashDie::new(spec.clone().into());
        let s = die.read_retry(SimTime::ZERO, 3);
        assert_eq!(s.end - s.start, spec.t_read * 3);
        assert_eq!(die.counters().read_retries, 3);
        assert_eq!(die.counters().reads, 3, "retry steps count as reads");
        // Zero steps is a no-op reservation.
        let z = die.read_retry(s.end, 0);
        assert_eq!(z.end, z.start);
        assert_eq!(die.counters().read_retries, 3);
    }

    #[test]
    #[allow(clippy::float_cmp)] // exact constants by construction
    fn energy_accumulates_per_op() {
        let mut die = FlashDie::new(FlashSpec::z_nand().into());
        assert_eq!(die.energy_nj(), 0.0);
        die.read(SimTime::ZERO);
        let after_read = die.energy_nj();
        assert!(after_read > 0.0);
        die.program(SimTime::ZERO);
        assert!(die.energy_nj() > after_read);
    }

    #[test]
    fn busy_time_sums_ops() {
        let spec = FlashSpec::z_nand();
        let mut die = FlashDie::new(spec.clone().into());
        die.read(SimTime::ZERO);
        die.program(SimTime::ZERO);
        die.erase(SimTime::ZERO);
        assert_eq!(die.busy_time(), spec.t_read + spec.t_prog + spec.t_erase);
    }
}
