//! `ull-flash` — flash media models for the ull-ssd-study workspace.
//!
//! Implements the device-physics layer of the reproduction: the Table I
//! technology presets (Z-NAND, V-NAND, BiCS, plus a planar-MLC reference),
//! die-level occupancy with Z-NAND's program suspend/resume, and erase-block
//! valid-page/wear bookkeeping consumed by the FTL in `ull-ssd`.
//!
//! # Examples
//!
//! ```
//! use ull_flash::{FlashDie, FlashSpec};
//! use ull_simkit::SimTime;
//!
//! // A Z-NAND read lands in a few microseconds even while a program is in
//! // flight, thanks to suspend/resume:
//! let mut die = FlashDie::new(FlashSpec::z_nand().into());
//! die.program(SimTime::ZERO);
//! let read = die.read_with_priority(SimTime::from_micros(50));
//! assert!(read.end.saturating_since(SimTime::from_micros(50)).as_micros_f64() < 5.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod block;
mod die;
mod spec;

pub use block::{BlockPhase, BlockState};
pub use die::{DieCounters, FlashDie};
pub use spec::{CellKind, FlashSpec};
