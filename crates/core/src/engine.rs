//! The typed experiment engine.
//!
//! Every table/figure reproduction in this workspace has the same shape:
//! sweep a grid (device × path × pattern × block-size × QD), run one
//! closed-loop sim cell per grid point, fold the cell outputs into a
//! typed report, and check the paper's qualitative claims against it.
//! This module names that shape once:
//!
//! - [`Experiment`] — a declarative description of one reproduction: its
//!   registry name, its independent [`SweepCell`]s at a given
//!   [`Scale`], and a fixed-order [`Experiment::collect`] into a typed
//!   [`Report`].
//! - [`run_experiment`] — the deterministic driver: cells run on up to
//!   `jobs` worker threads via [`ull_exec::run_ordered`], and their
//!   outputs are merged **in declaration order**, so the report (and its
//!   serialized bytes) is identical whatever `jobs` was.
//!
//! The determinism argument ("parallel cells, serial merge") lives in
//! `docs/DETERMINISM.md`; the registry of all experiments lives in
//! [`crate::registry`].

use core::fmt;

use ull_workload::Json;

use crate::testbed::Scale;

/// One independent point of an experiment's sweep.
///
/// The closure owns everything it needs (device preset, pattern, I/O
/// count, seed) and builds its own `Host`/`Ssd`/RNG when run — cells
/// share no state, which is what makes the parallel driver trivially
/// deterministic.
pub struct SweepCell<T> {
    label: String,
    task: Box<dyn FnOnce() -> T + Send>,
}

impl<T> SweepCell<T> {
    /// Wraps one self-contained sim cell.
    pub fn new(label: impl Into<String>, task: impl FnOnce() -> T + Send + 'static) -> Self {
        SweepCell {
            label: label.into(),
            task: Box::new(task),
        }
    }

    /// The cell's human-readable sweep-point label.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Unwraps the cell into its runnable task.
    pub fn into_task(self) -> Box<dyn FnOnce() -> T + Send> {
        self.task
    }
}

impl<T> fmt::Debug for SweepCell<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SweepCell")
            .field("label", &self.label)
            .finish()
    }
}

/// A finished experiment report: printable rows, the paper's shape
/// claims, and a machine-readable serialization.
pub trait Report: fmt::Display {
    /// The list of violated shape claims (empty = reproduction upholds
    /// the paper).
    fn check(&self) -> Vec<String>;

    /// Machine-readable form of the report, used by `reproduce --json`
    /// and the committed `BENCH_quick.json` baseline. Must be a pure
    /// function of the report (no clocks, no host state) so serial and
    /// parallel runs serialize identically.
    ///
    /// Consumes the report: serialization is the last thing that happens
    /// to it, so row vectors move into the [`Json`] tree instead of
    /// being deep-copied (reports can hold thousands of rows at
    /// `--full` scale).
    fn into_json(self) -> Json;
}

/// One table/figure reproduction, described declaratively.
pub trait Experiment {
    /// The output of one sweep cell.
    type Cell: Send + 'static;
    /// The folded, checkable report.
    type Report: Report;

    /// Primary registry name (`"fig9"`, `"table1"`, ...).
    fn name(&self) -> &'static str;

    /// Section heading, as printed by `reproduce`.
    fn title(&self) -> &'static str;

    /// One-line summary for `reproduce --list`: what the experiment
    /// measures and what shape it defends.
    fn description(&self) -> &'static str;

    /// Alternate names that resolve to this experiment (figures that
    /// share a run, e.g. `fig10` → `fig9`).
    fn aliases(&self) -> &'static [&'static str] {
        &[]
    }

    /// Whether this experiment probes its hosts and can emit a Chrome
    /// trace through [`Experiment::trace`]. Shown as the `trace` column
    /// of `reproduce --list`.
    fn traceable(&self) -> bool {
        false
    }

    /// A representative probed run for `reproduce --trace`: the
    /// [`ull_probe::ProbeReport`] of one characteristic cell, rendered
    /// to Chrome `trace_event` JSON by the caller. `None` for
    /// experiments that do not probe (the default).
    fn trace(&self, scale: Scale) -> Option<ull_probe::ProbeReport> {
        let _ = scale;
        None
    }

    /// The independent sweep cells at `scale`, in presentation order.
    fn cells(&self, scale: Scale) -> Vec<SweepCell<Self::Cell>>;

    /// Folds cell outputs (delivered in the same order as
    /// [`Experiment::cells`] returned them) into the typed report.
    /// Cross-cell post-processing — normalization, idle bars, series
    /// splits — belongs here, where it sees the full declaration-order
    /// slice regardless of how the cells were scheduled.
    fn collect(&self, scale: Scale, outputs: Vec<Self::Cell>) -> Self::Report;
}

/// Runs an experiment's cells on up to `jobs` workers and folds the
/// results in declaration order.
///
/// `jobs <= 1` is the serial reference path; any other value changes
/// wall-clock time only — the returned report is identical (see
/// `docs/DETERMINISM.md`, "parallel cells, serial merge").
pub fn run_experiment<E: Experiment>(exp: &E, scale: Scale, jobs: usize) -> E::Report {
    run_experiment_sharded(exp, scale, jobs, 1)
}

/// Like [`run_experiment`], but first partitions the cells round-robin
/// into `shards` serial groups (`ull_exec::run_sharded`) — the
/// experiment-level plumbing behind `reproduce --shards N`.
///
/// Like `jobs`, the shard count changes scheduling only: results scatter
/// back to declaration order before [`Experiment::collect`], so the
/// report bytes are identical at every `(jobs, shards)` pair (see
/// `docs/SHARDING.md`).
pub fn run_experiment_sharded<E: Experiment>(
    exp: &E,
    scale: Scale,
    jobs: usize,
    shards: usize,
) -> E::Report {
    let tasks: Vec<_> = exp
        .cells(scale)
        .into_iter()
        .map(SweepCell::into_task)
        .collect();
    let outputs = ull_exec::run_sharded(jobs, shards, tasks);
    exp.collect(scale, outputs)
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Squares;

    struct SquaresReport(Vec<u64>);

    impl fmt::Display for SquaresReport {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "{:?}", self.0)
        }
    }

    impl Report for SquaresReport {
        fn check(&self) -> Vec<String> {
            if self.0.windows(2).all(|w| w[0] <= w[1]) {
                Vec::new()
            } else {
                vec!["not sorted".into()]
            }
        }

        fn into_json(self) -> Json {
            Json::obj().field("rows", self.0)
        }
    }

    impl Experiment for Squares {
        type Cell = u64;
        type Report = SquaresReport;

        fn name(&self) -> &'static str {
            "squares"
        }

        fn title(&self) -> &'static str {
            "Squares (engine self-test)"
        }

        fn description(&self) -> &'static str {
            "engine self-test: squares of cell indices"
        }

        fn cells(&self, scale: Scale) -> Vec<SweepCell<u64>> {
            let n = scale.ios(6, 12);
            (0..n)
                .map(|i| SweepCell::new(format!("cell{i}"), move || i * i))
                .collect()
        }

        fn collect(&self, _scale: Scale, outputs: Vec<u64>) -> SquaresReport {
            SquaresReport(outputs)
        }
    }

    #[test]
    fn serial_and_parallel_reports_agree() {
        let serial = run_experiment(&Squares, Scale::Quick, 1);
        let parallel = run_experiment(&Squares, Scale::Quick, 4);
        assert_eq!(serial.0, parallel.0);
        assert!(serial.check().is_empty());
        assert_eq!(
            serial.into_json().to_string(),
            parallel.into_json().to_string()
        );
    }

    #[test]
    fn sharded_reports_agree_with_serial() {
        let serial = run_experiment(&Squares, Scale::Quick, 1);
        for shards in [1, 2, 3, 4, 8] {
            for jobs in [1, 2] {
                let sharded = run_experiment_sharded(&Squares, Scale::Quick, jobs, shards);
                assert_eq!(sharded.0, serial.0, "jobs={jobs} shards={shards}");
            }
        }
    }

    #[test]
    fn cells_scale_with_scale() {
        assert_eq!(Squares.cells(Scale::Quick).len(), 6);
        assert_eq!(Squares.cells(Scale::Full).len(), 12);
        assert_eq!(Squares.cells(Scale::Quick)[2].label(), "cell2");
    }
}
