//! Regenerates the paper's tables and figures from the experiment
//! registry.
//!
//! ```text
//! reproduce [--full] [--jobs N] [--shards N] [--json] [--list] [--trace FILE] [NAME ...| all]
//! ```
//!
//! Every table/figure in `EXPERIMENTS.md` is runnable by name
//! (`reproduce --list` prints them all); figures that share a run are
//! reachable through aliases (`fig10` resolves to the `fig9` entry).
//!
//! By default runs at `Scale::Quick`; `--full` uses paper-scale I/O
//! counts (five-nines-capable, minutes of runtime). `--jobs N` runs the
//! independent sweep cells of each experiment on up to `N` workers —
//! the output is byte-identical for every `N` (see
//! `docs/DETERMINISM.md`). `--shards N` additionally partitions each
//! experiment's cells round-robin into `N` serial groups before
//! scheduling; like `--jobs`, the shard count cannot change a single
//! output byte (see `docs/SHARDING.md`). `--json` prints the
//! machine-readable report instead of the tables; it too is
//! byte-identical across `--jobs`/`--shards` values and hosts.
//!
//! `--trace FILE` additionally writes a Chrome `trace_event` document
//! (open in Perfetto / `chrome://tracing`) for the single named
//! experiment, which must support tracing — the `trace` column of
//! `--list` shows which do. Capture is bounded (first/last-K plus slow
//! requests) and deterministic; see `docs/OBSERVABILITY.md`.

use std::process::ExitCode;

use ull_study::registry::{default_entries, entries, find, json_document, Entry, Section};
use ull_study::testbed::Scale;

const USAGE: &str =
    "usage: reproduce [--full] [--jobs N] [--shards N] [--json] [--list] [--trace FILE] [NAME ...| all]";

struct Args {
    scale: Scale,
    jobs: usize,
    shards: usize,
    json: bool,
    list: bool,
    trace: Option<String>,
    picks: Vec<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        scale: Scale::Quick,
        jobs: 1,
        shards: 1,
        json: false,
        list: false,
        trace: None,
        picks: Vec::new(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--full" => args.scale = Scale::Full,
            "--json" => args.json = true,
            "--list" => args.list = true,
            "--trace" => {
                args.trace = Some(it.next().ok_or("--trace needs an output path")?);
            }
            "--jobs" => {
                let n = it.next().ok_or("--jobs needs a value")?;
                args.jobs = n
                    .parse::<usize>()
                    .ok()
                    .filter(|&n| n >= 1)
                    .ok_or_else(|| format!("--jobs wants a positive integer, got {n:?}"))?;
            }
            "--shards" => {
                let n = it.next().ok_or("--shards needs a value")?;
                args.shards = n
                    .parse::<usize>()
                    .ok()
                    .filter(|&n| n >= 1)
                    .ok_or_else(|| format!("--shards wants a positive integer, got {n:?}"))?;
            }
            "--help" | "-h" => return Err(USAGE.to_string()),
            other if other.starts_with("--") => {
                return Err(format!("unknown flag {other}\n{USAGE}"));
            }
            name => args.picks.push(name.to_string()),
        }
    }
    Ok(args)
}

/// Resolves the requested names to registry entries, in the paper's
/// presentation order and without duplicates (so `fig9 fig10` runs the
/// shared experiment once). `all` (or no names) runs the paper's
/// figures — extensions that opt out of the baseline (`faults`) run
/// only when named explicitly.
fn resolve(picks: &[String]) -> Result<Vec<&'static Entry>, String> {
    if picks.iter().any(|p| p == "all") || picks.is_empty() {
        return Ok(default_entries().collect());
    }
    for p in picks {
        if find(p).is_none() {
            return Err(format!(
                "unknown experiment {p:?} (reproduce --list prints the registry)"
            ));
        }
    }
    Ok(entries()
        .iter()
        .filter(|e| picks.iter().any(|p| e.matches(p)))
        .collect())
}

fn print_list() {
    println!(
        "{:12}{:18}{:44}{:7}description",
        "name", "aliases", "title", "trace"
    );
    for e in entries() {
        let star = if e.in_all { "" } else { "*" };
        println!(
            "{:12}{:18}{:44}{:7}{}",
            format!("{}{star}", e.name),
            e.aliases.join(","),
            e.title,
            if e.traceable { "yes" } else { "-" },
            e.description
        );
    }
    println!("\n(*) not part of `all` / BENCH_quick.json; run by name");
    println!("(trace) supports `reproduce NAME --trace out.json` (Chrome trace_event)");
}

/// Writes the Chrome trace of the single picked traceable experiment.
fn write_trace(picked: &[&'static Entry], scale: Scale, path: &str) -> Result<(), String> {
    let [entry] = picked else {
        return Err(format!(
            "--trace wants exactly one experiment name, got {}",
            picked.len()
        ));
    };
    let Some(report) = entry.trace(scale) else {
        let traceable: Vec<&str> = entries()
            .iter()
            .filter(|e| e.traceable)
            .map(|e| e.name)
            .collect();
        return Err(format!(
            "{} does not support tracing (traceable: {})",
            entry.name,
            traceable.join(", ")
        ));
    };
    let doc = report.chrome_trace().to_pretty_string();
    std::fs::write(path, &doc).map_err(|e| format!("cannot write {path}: {e}"))?;
    eprintln!(
        "trace: {} of {} requests captured -> {path}",
        report.trace.events().len(),
        report.trace.seen()
    );
    Ok(())
}

fn print_section(s: &Section) {
    println!("=== {} ===", s.title);
    println!("{}", s.body);
    if s.ok() {
        println!("shape check: OK\n");
    } else {
        println!("shape check: {} VIOLATION(S)", s.violations.len());
        for v in &s.violations {
            println!("  - {v}");
        }
        println!();
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    if args.list {
        print_list();
        return ExitCode::SUCCESS;
    }
    let picked = match resolve(&args.picks) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };

    if let Some(path) = &args.trace {
        if let Err(e) = write_trace(&picked, args.scale, path) {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    }

    let sections: Vec<Section> = picked
        .iter()
        .map(|e| e.run_sharded(args.scale, args.jobs, args.shards))
        .collect();
    let ok = sections.iter().all(Section::ok);

    if args.json {
        print!("{}", json_document(args.scale, sections).to_pretty_string());
    } else {
        for s in &sections {
            print_section(s);
        }
        if ok {
            println!("all requested experiments uphold the paper's shapes");
        } else {
            println!("some shape checks failed (see above)");
        }
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
