//! Regenerates the paper's tables and figures.
//!
//! ```text
//! reproduce [--full] [table1 fig4 fig5 fig6 fig7a fig7b fig9 fig11 fig12
//!            fig14 fig15 fig16 fig17 fig20 fig21 fig23 extensions | all]
//! ```
//!
//! By default runs at `Scale::Quick`; `--full` uses paper-scale I/O counts
//! (five-nines-capable, minutes of runtime). Each experiment prints its
//! rows and then the list of violated shape claims (`OK` if none).

use std::process::ExitCode;

use ull_study::experiments::{completion, device_level, extensions, nbd, spdk, table1};
use ull_study::testbed::Scale;

fn section(name: &str, body: String, violations: Vec<String>) -> bool {
    println!("=== {name} ===");
    println!("{body}");
    if violations.is_empty() {
        println!("shape check: OK\n");
        true
    } else {
        println!("shape check: {} VIOLATION(S)", violations.len());
        for v in &violations {
            println!("  - {v}");
        }
        println!();
        false
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let full = args.iter().any(|a| a == "--full");
    let scale = if full { Scale::Full } else { Scale::Quick };
    let picks: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(|s| s.as_str())
        .collect();
    let want = |name: &str| picks.is_empty() || picks.contains(&"all") || picks.contains(&name);

    let mut ok = true;
    if want("table1") {
        let t = table1::run();
        ok &= section("Table I", t.to_string(), t.check());
    }
    if want("fig4") {
        let r = device_level::fig04_run(scale);
        ok &= section("Fig 4 (latency vs queue depth)", r.to_string(), r.check());
    }
    if want("fig5") {
        let r = device_level::fig05_run(scale);
        ok &= section("Fig 5 (bandwidth vs queue depth)", r.to_string(), r.check());
    }
    if want("fig6") {
        let r = device_level::fig06_run(scale);
        ok &= section("Fig 6 (read/write interference)", r.to_string(), r.check());
    }
    if want("fig7a") {
        let r = device_level::fig07a_run(scale);
        ok &= section("Fig 7a (average power)", r.to_string(), r.check());
    }
    if want("fig7b") || want("fig8") {
        let r = device_level::fig07b08_run(scale);
        ok &= section("Fig 7b/8 (GC latency & power)", r.to_string(), r.check());
    }
    if want("fig9") || want("fig10") {
        let r = completion::fig0910_run(scale);
        ok &= section("Fig 9/10 (poll vs interrupt)", r.to_string(), r.check());
    }
    if want("fig11") {
        let r = completion::fig11_run(scale);
        ok &= section(
            "Fig 11 (five-nines, poll vs interrupt)",
            r.to_string(),
            r.check(),
        );
    }
    if want("fig12") || want("fig13") {
        let r = completion::fig1213_run(scale);
        ok &= section("Fig 12/13 (CPU utilization)", r.to_string(), r.check());
    }
    if want("fig14") {
        let r = completion::fig14_run(scale);
        ok &= section("Fig 14 (kernel cycle breakdown)", r.to_string(), r.check());
    }
    if want("fig15") {
        let r = completion::fig15_run(scale);
        ok &= section(
            "Fig 15 (poll memory instructions)",
            r.to_string(),
            r.check(),
        );
    }
    if want("fig16") {
        let r = completion::fig16_run(scale);
        ok &= section("Fig 16 (hybrid polling latency)", r.to_string(), r.check());
    }
    if want("fig17") || want("fig18") || want("fig19") {
        let r = spdk::fig171819_run(scale);
        ok &= section(
            "Fig 17/18/19 (SPDK vs kernel latency)",
            r.to_string(),
            r.check(),
        );
    }
    if want("fig20") {
        let r = spdk::fig20_run(scale);
        ok &= section("Fig 20 (SPDK CPU utilization)", r.to_string(), r.check());
    }
    if want("fig21") || want("fig22") {
        let r = spdk::fig2122_run(scale);
        ok &= section(
            "Fig 21/22 (SPDK memory instructions)",
            r.to_string(),
            r.check(),
        );
    }
    if want("extensions") {
        let r = extensions::run(scale);
        ok &= section(
            "Extensions (faster NVM / light queue / CPU headroom)",
            r.to_string(),
            r.check(),
        );
    }
    if want("fig23") {
        let r = nbd::fig23_run(scale);
        ok &= section("Fig 23 (kernel NBD vs SPDK NBD)", r.to_string(), r.check());
    }

    if ok {
        println!("all requested experiments uphold the paper's shapes");
        ExitCode::SUCCESS
    } else {
        println!("some shape checks failed (see above)");
        ExitCode::FAILURE
    }
}
