//! Robustness extension: tail latency under deterministic fault
//! injection (`ull-faults`).
//!
//! The paper's five-nines tails (figs. 12/13) assume a fault-free
//! device. This experiment installs a seeded [`FaultPlan`] across the
//! whole stack — flash read retries and program fails, NVMe command
//! loss with host timeout/retry/reset recovery, NBD link drops — and
//! sweeps the fault rate over {none, low, high} for each device ×
//! completion method (plus a kernel-NBD export). The headline shape:
//! recovery keeps every run correct and the *mean* barely moves, but
//! the 99.999th percentile diverges by orders of magnitude, because a
//! single 500 µs timeout dwarfs an 8 µs ULL read.
//!
//! The sweep is excluded from `reproduce all` (and hence the
//! `BENCH_quick.json` baseline): it extends the paper rather than
//! reproducing a figure. Run it with `reproduce faults` (alias
//! `tail_under_faults`); CI pins its quick-scale JSON in
//! `BENCH_faults_quick.json`.

use core::fmt;

use ull_faults::{FaultPlan, FaultReport};
use ull_netblock::{NbdServerKind, NbdSystem};
use ull_simkit::{Histogram, SimDuration, SimTime};
use ull_stack::IoPath;
use ull_workload::{JobSpec, Json, Pattern};

use crate::engine::{run_experiment, Experiment, Report, SweepCell};
use crate::testbed::{host, Device, Scale};

/// The fault rates swept, with their row labels.
pub const FAULT_RATES: [(&str, f64); 3] = [("none", 0.0), ("low", 2e-4), ("high", 2e-3)];

/// Root seed of every fault lottery in the sweep (per-cell plans fork
/// from it by scenario index).
pub const FAULTS_SEED: u64 = 0xFA_B5EED;

/// One measured cell of the fault sweep.
#[derive(Debug, Clone)]
pub struct FaultsRow {
    /// Scenario label (`"ULL SSD/interrupt"`, ..., `"kernel-nbd"`).
    pub scenario: String,
    /// Fault-rate label (`"none"`, `"low"`, `"high"`).
    pub rate_label: &'static str,
    /// Per-unit/per-command fault probability of every class.
    pub rate: f64,
    /// I/Os measured.
    pub ios: u64,
    /// Mean latency, µs.
    pub mean_us: f64,
    /// 99.999th-percentile latency, µs.
    pub p99999_us: f64,
    /// Maximum latency, µs.
    pub max_us: f64,
    /// Recovery accounting from every layer.
    pub report: FaultReport,
}

/// The fault sweep as a registry experiment.
#[derive(Debug)]
pub struct FaultsExp;

fn host_cell(
    device: Device,
    path: IoPath,
    path_label: &'static str,
    scale: Scale,
) -> Vec<SweepCell<FaultsRow>> {
    let ios = scale.ios(6_000, 400_000);
    FAULT_RATES
        .iter()
        .enumerate()
        .map(|(i, &(rate_label, rate))| {
            let scenario = format!("{}/{}", device.label(), path_label);
            let label = format!("{scenario}/{rate_label}");
            let cell_scenario = scenario.clone();
            SweepCell::new(label, move || {
                let mut h = host(device, path);
                let plan = FaultPlan::uniform(FAULTS_SEED ^ (i as u64) << 8, rate);
                h.set_fault_plan(&plan);
                let spec = JobSpec::new(cell_scenario.clone())
                    .pattern(Pattern::Random)
                    .read_fraction(0.7)
                    .block_size(4096)
                    .ios(ios)
                    .seed(0xF1_7A11);
                let r = ull_workload::run_job(&mut h, &spec);
                let (flash, ssd) = h.controller().ssd().fault_counters();
                let nvme = h.nvme_fault_counters();
                FaultsRow {
                    scenario: cell_scenario,
                    rate_label,
                    rate,
                    ios,
                    mean_us: r.mean_latency().as_micros_f64(),
                    p99999_us: r.five_nines().as_micros_f64(),
                    max_us: r.latency.max().as_micros_f64(),
                    report: FaultReport {
                        flash,
                        ssd,
                        nvme,
                        nbd: Default::default(),
                    },
                }
            })
        })
        .collect()
}

fn nbd_cell(scale: Scale) -> Vec<SweepCell<FaultsRow>> {
    let ios = scale.ios(2_000, 100_000);
    FAULT_RATES
        .iter()
        .enumerate()
        .map(|(i, &(rate_label, rate))| {
            SweepCell::new(format!("kernel-nbd/{rate_label}"), move || {
                let mut sys = NbdSystem::new(Device::Ull.config(), NbdServerKind::Kernel, 0xF1623)
                    .expect("preset valid");
                let plan = FaultPlan::uniform(FAULTS_SEED ^ 0xB0 ^ (i as u64) << 8, rate);
                sys.set_fault_plan(&plan);
                let mut lat = Histogram::new();
                let mut at = SimTime::ZERO;
                for k in 0..ios {
                    let r = sys.file_read(at, k.wrapping_mul(2654435761), 4096);
                    lat.record(r.latency);
                    at = r.done + SimDuration::from_micros(2);
                }
                let (flash, ssd) = sys.server().controller().ssd().fault_counters();
                let nvme = sys.server().nvme_fault_counters();
                let nbd = sys.nbd_fault_counters();
                FaultsRow {
                    scenario: "kernel-nbd".into(),
                    rate_label,
                    rate,
                    ios,
                    mean_us: lat.mean().as_micros_f64(),
                    p99999_us: lat.five_nines().as_micros_f64(),
                    max_us: lat.max().as_micros_f64(),
                    report: FaultReport {
                        flash,
                        ssd,
                        nvme,
                        nbd,
                    },
                }
            })
        })
        .collect()
}

impl Experiment for FaultsExp {
    type Cell = FaultsRow;
    type Report = Faults;

    fn name(&self) -> &'static str {
        "faults"
    }

    fn title(&self) -> &'static str {
        "Faults (tail latency under deterministic fault injection)"
    }

    fn aliases(&self) -> &'static [&'static str] {
        &["tail_under_faults"]
    }

    fn description(&self) -> &'static str {
        "fault-rate sweep: recovery keeps runs correct, tails diverge"
    }

    fn cells(&self, scale: Scale) -> Vec<SweepCell<FaultsRow>> {
        let mut cells = Vec::new();
        for device in Device::ALL {
            for (path, path_label) in [
                (IoPath::KernelInterrupt, "interrupt"),
                (IoPath::KernelPolled, "poll"),
            ] {
                cells.extend(host_cell(device, path, path_label, scale));
            }
        }
        cells.extend(nbd_cell(scale));
        cells
    }

    fn collect(&self, _scale: Scale, rows: Vec<FaultsRow>) -> Faults {
        Faults { rows }
    }
}

/// The finished fault sweep.
#[derive(Debug)]
pub struct Faults {
    /// All measured cells, scenario-major, rate-minor.
    pub rows: Vec<FaultsRow>,
}

/// Runs the fault sweep serially.
pub fn faults_run(scale: Scale) -> Faults {
    run_experiment(&FaultsExp, scale, 1)
}

impl Faults {
    fn row(&self, scenario: &str, rate_label: &str) -> Option<&FaultsRow> {
        self.rows
            .iter()
            .find(|r| r.scenario == scenario && r.rate_label == rate_label)
    }

    /// Shape violations: zero-cost when disabled, accounting equalities,
    /// and mean-vs-tail divergence under faults.
    pub fn check(&self) -> Vec<String> {
        let mut v = Vec::new();
        for r in &self.rows {
            let f = &r.report;
            if r.rate == 0.0 && f.injected_total() != 0 {
                v.push(format!(
                    "{}/none: injected {} faults at rate 0",
                    r.scenario,
                    f.injected_total()
                ));
            }
            if r.rate_label == "high" && f.injected_total() == 0 {
                v.push(format!("{}/high: no faults fired", r.scenario));
            }
            // Layer accounting must balance exactly (see docs/FAULTS.md).
            if f.nvme.aborts != f.nvme.injected_timeouts {
                v.push(format!(
                    "{}/{}: aborts {} != injected timeouts {}",
                    r.scenario, r.rate_label, f.nvme.aborts, f.nvme.injected_timeouts
                ));
            }
            if f.ssd.retired_blocks + f.ssd.deferred_retirements != f.flash.program_failures {
                v.push(format!(
                    "{}/{}: retirement accounting does not balance",
                    r.scenario, r.rate_label
                ));
            }
            if f.ssd.remapped + f.ssd.marked_bad != f.ssd.retired_blocks {
                v.push(format!(
                    "{}/{}: remap accounting does not balance",
                    r.scenario, r.rate_label
                ));
            }
            if f.nbd.link_drops != f.nbd.reconnects || f.nbd.link_drops != f.nbd.replayed_commands {
                v.push(format!(
                    "{}/{}: NBD replay accounting does not balance",
                    r.scenario, r.rate_label
                ));
            }
        }
        let scenarios: Vec<&str> = {
            let mut s: Vec<&str> = self.rows.iter().map(|r| r.scenario.as_str()).collect();
            s.dedup();
            s
        };
        for sc in scenarios {
            let (Some(none), Some(high)) = (self.row(sc, "none"), self.row(sc, "high")) else {
                v.push(format!("{sc}: missing rate rows"));
                continue;
            };
            if high.p99999_us <= 2.0 * none.p99999_us {
                v.push(format!(
                    "{sc}: p99.999 {:.1}us under faults vs {:.1}us nominal — tail must diverge",
                    high.p99999_us, none.p99999_us
                ));
            }
            let mean_ratio = high.mean_us / none.mean_us;
            let tail_ratio = high.p99999_us / none.p99999_us;
            if tail_ratio <= 2.0 * mean_ratio {
                v.push(format!(
                    "{sc}: tail ratio {tail_ratio:.1} must dwarf mean ratio {mean_ratio:.2}"
                ));
            }
        }
        v
    }
}

impl Report for Faults {
    fn check(&self) -> Vec<String> {
        Faults::check(self)
    }

    fn into_json(self) -> Json {
        let rows: Vec<Json> = self
            .rows
            .iter()
            .map(|r| {
                let f = &r.report;
                Json::obj()
                    .field("scenario", r.scenario.as_str())
                    .field("rate_label", r.rate_label)
                    .field("rate", r.rate)
                    .field("ios", r.ios)
                    .field(
                        "lat_us",
                        Json::obj()
                            .field("mean", r.mean_us)
                            .field("p99999", r.p99999_us)
                            .field("max", r.max_us),
                    )
                    .field(
                        "faults",
                        Json::obj()
                            .field("injected_total", f.injected_total())
                            .field(
                                "flash",
                                Json::obj()
                                    .field("read_marginal_events", f.flash.read_marginal_events)
                                    .field("read_retry_steps", f.flash.read_retry_steps)
                                    .field("program_failures", f.flash.program_failures),
                            )
                            .field(
                                "ssd",
                                Json::obj()
                                    .field("retired_blocks", f.ssd.retired_blocks)
                                    .field("remapped", f.ssd.remapped)
                                    .field("marked_bad", f.ssd.marked_bad)
                                    .field("deferred_retirements", f.ssd.deferred_retirements)
                                    .field("relocated_units", f.ssd.relocated_units),
                            )
                            .field(
                                "nvme",
                                Json::obj()
                                    .field("injected_timeouts", f.nvme.injected_timeouts)
                                    .field("aborts", f.nvme.aborts)
                                    .field("retries", f.nvme.retries)
                                    .field("backoff_ns_total", f.nvme.backoff_ns_total)
                                    .field("controller_resets", f.nvme.controller_resets)
                                    .field("requeues", f.nvme.requeues)
                                    .field("sq_requeues", f.nvme.sq_requeues),
                            )
                            .field(
                                "nbd",
                                Json::obj()
                                    .field("link_drops", f.nbd.link_drops)
                                    .field("reconnects", f.nbd.reconnects)
                                    .field("backoff_ns_total", f.nbd.backoff_ns_total)
                                    .field("replayed_commands", f.nbd.replayed_commands),
                            ),
                    )
            })
            .collect();
        Json::obj().field("rows", rows)
    }
}

impl fmt::Display for Faults {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Fault sweep: mean vs p99.999 under injected faults (4K random, 70% read)"
        )?;
        writeln!(
            f,
            "{:20}{:>6}{:>10}{:>12}{:>12}{:>10}{:>8}{:>8}{:>8}",
            "scenario",
            "rate",
            "mean(us)",
            "p99999(us)",
            "max(us)",
            "injected",
            "retry",
            "reset",
            "replay"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:20}{:>6}{:>10.1}{:>12.1}{:>12.1}{:>10}{:>8}{:>8}{:>8}",
                r.scenario,
                r.rate_label,
                r.mean_us,
                r.p99999_us,
                r.max_us,
                r.report.injected_total(),
                r.report.nvme.retries,
                r.report.nvme.controller_resets,
                r.report.nbd.replayed_commands,
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::run_experiment;

    #[test]
    fn faults_shapes_hold() {
        let r = faults_run(Scale::Quick);
        assert!(r.check().is_empty(), "{:#?}\n{r}", r.check());
    }

    #[test]
    fn serial_and_parallel_sweeps_are_byte_identical() {
        let serial = run_experiment(&FaultsExp, Scale::Quick, 1);
        let parallel = run_experiment(&FaultsExp, Scale::Quick, 4);
        assert_eq!(
            serial.into_json().to_string(),
            parallel.into_json().to_string(),
            "fault sweep must be deterministic under --jobs"
        );
    }

    #[test]
    fn zero_rate_rows_report_no_faults() {
        let r = faults_run(Scale::Quick);
        for row in r.rows.iter().filter(|r| r.rate == 0.0) {
            assert_eq!(row.report.injected_total(), 0, "{}", row.scenario);
            assert_eq!(row.report.nvme.retries, 0, "{}", row.scenario);
        }
    }
}
