//! Robustness extension: the replicated-volume nexus rebuilding a
//! retired child online, under foreground traffic (`ull-nexus`).
//!
//! Each cell mirrors a volume over three simulated devices, injects
//! faults into one child until the error budget retires it, then runs
//! the online rebuild at a swept copy-scan throttle while the client
//! keeps issuing I/O. The headline shape, asked as the issue phrases
//! it — *at what throttle does p99.999 recover to within 2x of the
//! no-rebuild baseline?* — has a device-split answer:
//!
//! - On the ULL SSD, an unthrottled scan (copy engine at full queue
//!   depth) convoys client reads behind several in-flight copy reads
//!   and blows the degraded-window p99.999 past 2x the baseline; *any*
//!   duty-cycle throttle serializes the scan, bounds the collision
//!   penalty to a single copy read, and recovers the tail to within 2x
//!   already at 25% duty — at the price of a strictly longer exposure
//!   window.
//! - On the NVMe SSD the same scan hides inside the device's own
//!   ms-scale tail at every throttle: rebuild interference is a
//!   µs-scale effect, visible only once the device tail is µs-scale
//!   too. That inversion is the paper's §IV/§V thesis applied to
//!   redundancy machinery.
//!
//! Excluded from `reproduce all` like the other extensions; run with
//! `reproduce rebuild` (alias `rebuild_under_traffic`). CI pins its
//! quick-scale JSON in `BENCH_rebuild_quick.json`.

use core::fmt;

use ull_faults::FaultPlan;
use ull_nexus::{run_nexus, NexusConfig, NexusCounters, Throttle};
use ull_simkit::SerialRunner;
use ull_stack::IoPath;
use ull_workload::Json;

use crate::engine::{run_experiment, Experiment, Report, SweepCell};
use crate::testbed::{Device, Scale};

/// Root seed of the sweep (client streams and fault lotteries fork from
/// it per scenario).
pub const REBUILD_SEED: u64 = 0x4EB_51D0;

/// The throttle points swept per scenario, after the no-fault baseline.
pub const THROTTLES: [(&str, Throttle); 3] = [
    ("unthrottled", Throttle::Unthrottled),
    ("duty25", Throttle::DutyPct(25)),
    ("duty5", Throttle::DutyPct(5)),
];

/// One measured cell of the rebuild sweep.
#[derive(Debug, Clone)]
pub struct RebuildRow {
    /// Scenario label (`"ULL SSD/interrupt"`, ...).
    pub scenario: String,
    /// Throttle label (`"baseline"`, `"unthrottled"`, `"duty25"`,
    /// `"duty5"`).
    pub throttle_label: &'static str,
    /// Client I/Os completed.
    pub ios: u64,
    /// Whole-run mean latency, µs.
    pub mean_us: f64,
    /// Whole-run 99.999th-percentile latency, µs.
    pub p99999_us: f64,
    /// Whole-run maximum latency, µs.
    pub max_us: f64,
    /// Client I/Os dispatched while the mirror was degraded.
    pub window_ios: u64,
    /// Degraded-window mean latency, µs.
    pub window_mean_us: f64,
    /// Degraded-window 99.999th-percentile latency, µs.
    pub window_p99999_us: f64,
    /// Total retirement-to-readmission exposure, ms.
    pub rebuild_ms: f64,
    /// Exact nexus accounting counters.
    pub counters: NexusCounters,
    /// First violated nexus accounting identity, if any.
    pub violation: Option<String>,
}

fn nexus_cfg(device: Device, path: IoPath, scale: Scale, scenario_salt: u64) -> NexusConfig {
    let mut cfg = NexusConfig::new(device.config());
    cfg.path = path;
    cfg.ios = scale.ios(3_000, 60_000);
    cfg.total_ranges = 24;
    cfg.range_len = 24 * 1024;
    cfg.iodepth = 4;
    cfg.read_fraction = 0.7;
    // Same client streams across the four throttle cells of a scenario:
    // the baseline comparison is paired.
    cfg.seed = REBUILD_SEED ^ (scenario_salt << 4);
    cfg
}

fn measure(cfg: &NexusConfig, scenario: String, throttle_label: &'static str) -> RebuildRow {
    let r = run_nexus(cfg, 1, &mut SerialRunner);
    let rebuild_ns: u64 = r
        .retire_ns
        .iter()
        .zip(&r.readmit_ns)
        .map(|(retire, readmit)| readmit - retire)
        .sum();
    RebuildRow {
        scenario,
        throttle_label,
        ios: r.counters.completed,
        mean_us: r.latency.mean().as_micros_f64(),
        p99999_us: r.latency.five_nines().as_micros_f64(),
        max_us: r.latency.max().as_micros_f64(),
        window_ios: r.degraded.count(),
        window_mean_us: r.degraded.mean().as_micros_f64(),
        window_p99999_us: r.degraded.five_nines().as_micros_f64(),
        rebuild_ms: rebuild_ns as f64 / 1e6,
        counters: r.counters,
        violation: r.check().err(),
    }
}

/// The rebuild sweep as a registry experiment.
#[derive(Debug)]
pub struct RebuildExp;

impl Experiment for RebuildExp {
    type Cell = RebuildRow;
    type Report = Rebuild;

    fn name(&self) -> &'static str {
        "rebuild"
    }

    fn title(&self) -> &'static str {
        "Rebuild (replicated-volume nexus: online rebuild under traffic)"
    }

    fn aliases(&self) -> &'static [&'static str] {
        &["rebuild_under_traffic"]
    }

    fn description(&self) -> &'static str {
        "rebuild-throttle sweep: degraded-window tails recover as the copy scan backs off"
    }

    fn cells(&self, scale: Scale) -> Vec<SweepCell<RebuildRow>> {
        let mut cells = Vec::new();
        for (si, device) in Device::ALL.into_iter().enumerate() {
            for (pi, (path, path_label)) in [
                (IoPath::KernelInterrupt, "interrupt"),
                (IoPath::KernelPolled, "poll"),
            ]
            .into_iter()
            .enumerate()
            {
                let scenario = format!("{}/{}", device.label(), path_label);
                let salt = (si as u64) << 2 | pi as u64;
                {
                    let scenario = scenario.clone();
                    cells.push(SweepCell::new(format!("{scenario}/baseline"), move || {
                        let cfg = nexus_cfg(device, path, scale, salt);
                        measure(&cfg, scenario, "baseline")
                    }));
                }
                for &(label, throttle) in &THROTTLES {
                    let scenario = scenario.clone();
                    cells.push(SweepCell::new(format!("{scenario}/{label}"), move || {
                        let mut cfg = nexus_cfg(device, path, scale, salt);
                        // One fault-prone child; the same lottery seed
                        // across throttle cells pins the retirement
                        // point, so only the rebuild policy varies.
                        cfg.plan = FaultPlan::uniform(REBUILD_SEED ^ 0xFA ^ (salt << 8), 2e-2);
                        cfg.budget = 2;
                        cfg.throttle = throttle;
                        measure(&cfg, scenario, label)
                    }));
                }
            }
        }
        cells
    }

    fn collect(&self, _scale: Scale, rows: Vec<RebuildRow>) -> Rebuild {
        Rebuild { rows }
    }
}

/// The finished rebuild sweep.
#[derive(Debug)]
pub struct Rebuild {
    /// All measured cells, scenario-major, throttle-minor.
    pub rows: Vec<RebuildRow>,
}

/// Runs the rebuild sweep serially.
pub fn rebuild_run(scale: Scale) -> Rebuild {
    run_experiment(&RebuildExp, scale, 1)
}

impl Rebuild {
    fn row(&self, scenario: &str, throttle_label: &str) -> Option<&RebuildRow> {
        self.rows
            .iter()
            .find(|r| r.scenario == scenario && r.throttle_label == throttle_label)
    }

    /// Shape violations: exact accounting per cell, clean baselines,
    /// and the throttle-vs-tail trade per scenario.
    pub fn check(&self) -> Vec<String> {
        let mut v = Vec::new();
        for r in &self.rows {
            let tag = format!("{}/{}", r.scenario, r.throttle_label);
            if let Some(e) = &r.violation {
                v.push(format!("{tag}: {e}"));
            }
            let c = &r.counters;
            if r.throttle_label == "baseline" {
                if c.fault_events != 0 || c.retired_children != 0 {
                    v.push(format!(
                        "{tag}: baseline saw {} faults / {} retirements",
                        c.fault_events, c.retired_children
                    ));
                }
                if r.window_ios != 0 {
                    v.push(format!(
                        "{tag}: baseline must never degrade ({} window ops)",
                        r.window_ios
                    ));
                }
            } else {
                if c.retired_children == 0 {
                    v.push(format!("{tag}: the faulty child was never retired"));
                }
                if c.rebuilds_completed != c.retired_children {
                    v.push(format!(
                        "{tag}: {} rebuilds for {} retirements",
                        c.rebuilds_completed, c.retired_children
                    ));
                }
                if r.window_ios == 0 {
                    v.push(format!("{tag}: no traffic observed during the rebuild"));
                }
                if c.forwarded_writes + c.writes_awaiting_copy == 0 {
                    v.push(format!("{tag}: no write was routed around the rebuild"));
                }
            }
        }
        let scenarios: Vec<&str> = {
            let mut s: Vec<&str> = self.rows.iter().map(|r| r.scenario.as_str()).collect();
            s.dedup();
            s
        };
        for sc in scenarios {
            let (Some(base), Some(unthr), Some(d25), Some(d5)) = (
                self.row(sc, "baseline"),
                self.row(sc, "unthrottled"),
                self.row(sc, "duty25"),
                self.row(sc, "duty5"),
            ) else {
                v.push(format!("{sc}: missing throttle rows"));
                continue;
            };
            let cap = 2.0 * base.p99999_us;
            if sc.starts_with("ULL") {
                // The µs-scale tail is fragile: the full-depth scan must
                // visibly break it...
                if unthr.window_p99999_us <= cap {
                    v.push(format!(
                        "{sc}: unthrottled rebuild window p99.999 {:.1}us must exceed \
                         2x the {:.1}us no-rebuild baseline",
                        unthr.window_p99999_us, base.p99999_us
                    ));
                }
                // ...and serializing the scan must recover it, already
                // at 25% duty.
                for r in [d25, d5] {
                    if r.window_p99999_us > cap {
                        v.push(format!(
                            "{sc}: {} rebuild window p99.999 {:.1}us must recover to \
                             within 2x the {:.1}us baseline",
                            r.throttle_label, r.window_p99999_us, base.p99999_us
                        ));
                    }
                }
            } else {
                // The flash SSD's own tail masks the scan entirely: no
                // throttle setting breaks the 2x envelope.
                for r in [unthr, d25, d5] {
                    if r.window_p99999_us > cap {
                        v.push(format!(
                            "{sc}: {} rebuild window p99.999 {:.1}us must hide inside \
                             the device tail (2x the {:.1}us baseline)",
                            r.throttle_label, r.window_p99999_us, base.p99999_us
                        ));
                    }
                }
            }
            // The price of a quiet tail is exposure time, on every
            // device.
            if !(d5.rebuild_ms > d25.rebuild_ms && d25.rebuild_ms > unthr.rebuild_ms) {
                v.push(format!(
                    "{sc}: rebuild exposure must grow as the scan backs off \
                     (unthrottled {:.2} / duty25 {:.2} / duty5 {:.2} ms)",
                    unthr.rebuild_ms, d25.rebuild_ms, d5.rebuild_ms
                ));
            }
        }
        v
    }
}

fn counters_json(c: &NexusCounters) -> Json {
    Json::obj()
        .field("submitted", c.submitted)
        .field("completed", c.completed)
        .field(
            "reads",
            Json::obj()
                .field("total", c.total_reads)
                .field("normal", c.normal_reads)
                .field("degraded", c.degraded_reads),
        )
        .field(
            "writes",
            Json::obj()
                .field("total", c.total_writes)
                .field("degraded", c.degraded_writes),
        )
        .field("fault_events", c.fault_events)
        .field(
            "retirement",
            Json::obj()
                .field("budget_exceeded_events", c.budget_exceeded_events)
                .field("retired_children", c.retired_children)
                .field("suppressed_retirements", c.suppressed_retirements)
                .field("failover_reads", c.failover_reads)
                .field("retire_completed_writes", c.retire_completed_writes)
                .field("stale_acks", c.stale_acks),
        )
        .field(
            "rebuild",
            Json::obj()
                .field("started", c.rebuilds_started)
                .field("completed", c.rebuilds_completed)
                .field("ranges_copied", c.ranges_copied)
                .field("range_recopies", c.range_recopies)
                .field("dirty_marks", c.dirty_marks)
                .field("forwarded_writes", c.forwarded_writes)
                .field("writes_awaiting_copy", c.writes_awaiting_copy)
                .field("copy_source_failovers", c.copy_source_failovers),
        )
}

impl Report for Rebuild {
    fn check(&self) -> Vec<String> {
        Rebuild::check(self)
    }

    fn into_json(self) -> Json {
        let rows: Vec<Json> = self
            .rows
            .iter()
            .map(|r| {
                Json::obj()
                    .field("scenario", r.scenario.as_str())
                    .field("throttle", r.throttle_label)
                    .field("ios", r.ios)
                    .field(
                        "lat_us",
                        Json::obj()
                            .field("mean", r.mean_us)
                            .field("p99999", r.p99999_us)
                            .field("max", r.max_us),
                    )
                    .field(
                        "window",
                        Json::obj()
                            .field("ios", r.window_ios)
                            .field("mean_us", r.window_mean_us)
                            .field("p99999_us", r.window_p99999_us),
                    )
                    .field("rebuild_ms", r.rebuild_ms)
                    .field("nexus", counters_json(&r.counters))
            })
            .collect();
        Json::obj().field("rows", rows)
    }
}

impl fmt::Display for Rebuild {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Rebuild sweep: degraded-window tail vs copy-scan throttle (3-way mirror, 4K random, 70% read)"
        )?;
        writeln!(
            f,
            "{:22}{:>12}{:>8}{:>10}{:>12}{:>13}{:>12}{:>9}{:>9}",
            "scenario",
            "throttle",
            "ios",
            "mean(us)",
            "p99999(us)",
            "win p99999",
            "rebuild(ms)",
            "retired",
            "recopy"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:22}{:>12}{:>8}{:>10.1}{:>12.1}{:>13.1}{:>12.2}{:>9}{:>9}",
                r.scenario,
                r.throttle_label,
                r.ios,
                r.mean_us,
                r.p99999_us,
                r.window_p99999_us,
                r.rebuild_ms,
                r.counters.retired_children,
                r.counters.range_recopies,
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::run_experiment;

    #[test]
    fn rebuild_shapes_hold() {
        let r = rebuild_run(Scale::Quick);
        assert!(r.check().is_empty(), "{:#?}\n{r}", r.check());
    }

    #[test]
    fn serial_and_parallel_sweeps_are_byte_identical() {
        let serial = run_experiment(&RebuildExp, Scale::Quick, 1);
        let parallel = run_experiment(&RebuildExp, Scale::Quick, 4);
        assert_eq!(
            serial.into_json().to_string(),
            parallel.into_json().to_string(),
            "rebuild sweep must be deterministic under --jobs"
        );
    }

    #[test]
    fn baseline_rows_never_see_a_fault() {
        let r = rebuild_run(Scale::Quick);
        for row in r.rows.iter().filter(|r| r.throttle_label == "baseline") {
            assert_eq!(row.counters.fault_events, 0, "{}", row.scenario);
            assert_eq!(row.counters.retired_children, 0, "{}", row.scenario);
            assert_eq!(row.window_ios, 0, "{}", row.scenario);
        }
    }
}
