//! One module per table/figure of the paper's evaluation.
//!
//! Every experiment follows the same shape: a `run(scale)` entry point
//! returning a typed result, a `Display` impl that prints the same
//! rows/series the paper plots, and a `check()` method returning the list
//! of *shape violations* — the qualitative claims of the paper (who wins,
//! by roughly what factor, where saturation/crossover falls) that this
//! reproduction must uphold. Integration tests assert `check()` is empty
//! at `Scale::Quick`; `EXPERIMENTS.md` records `Scale::Full` numbers.

pub mod breakdown;
pub mod completion;
pub mod device_level;
pub mod extensions;
pub mod faults;
pub mod nbd;
pub mod rebuild;
pub mod spdk;
pub mod table1;

use ull_workload::Pattern;

/// The four access patterns of every figure, in the paper's order.
pub const PATTERNS: [PatternSpec; 4] = [
    PatternSpec::seq_rd(),
    PatternSpec::rnd_rd(),
    PatternSpec::seq_wr(),
    PatternSpec::rnd_wr(),
];

/// One named access pattern.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PatternSpec {
    /// Label used in tables ("SeqRd", ...).
    pub label: &'static str,
    /// Spatial pattern.
    pub pattern: Pattern,
    /// Read fraction.
    pub read_fraction: f64,
}

impl PatternSpec {
    /// Sequential reads.
    pub const fn seq_rd() -> PatternSpec {
        PatternSpec {
            label: "SeqRd",
            pattern: Pattern::Sequential,
            read_fraction: 1.0,
        }
    }

    /// Random reads.
    pub const fn rnd_rd() -> PatternSpec {
        PatternSpec {
            label: "RndRd",
            pattern: Pattern::Random,
            read_fraction: 1.0,
        }
    }

    /// Sequential writes.
    pub const fn seq_wr() -> PatternSpec {
        PatternSpec {
            label: "SeqWr",
            pattern: Pattern::Sequential,
            read_fraction: 0.0,
        }
    }

    /// Random writes.
    pub const fn rnd_wr() -> PatternSpec {
        PatternSpec {
            label: "RndWr",
            pattern: Pattern::Random,
            read_fraction: 0.0,
        }
    }
}

/// The block sizes of the completion-method figures (9-16).
pub const BLOCK_SIZES: [u32; 4] = [4 << 10, 8 << 10, 16 << 10, 32 << 10];

/// The large block sizes of fig. 19.
pub const BIG_BLOCK_SIZES: [u32; 5] = [64 << 10, 128 << 10, 256 << 10, 512 << 10, 1 << 20];
