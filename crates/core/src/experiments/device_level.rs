//! §IV — system-level analysis of the ULL SSD vs the NVMe SSD:
//! figures 4 (latency vs queue depth), 5 (bandwidth vs queue depth),
//! 6 (read/write interference), 7 (power + GC latency) and 8 (power during
//! GC).

use core::fmt;

use ull_simkit::SimTime;
use ull_stack::IoPath;
use ull_workload::{run_job, Engine, JobSpec, Json, Pattern};

use crate::engine::{run_experiment, Experiment, Report, SweepCell};
use crate::experiments::{PatternSpec, PATTERNS};
use crate::testbed::{host, Device, Scale};

fn qd_job(p: &PatternSpec, qd: u32, ios: u64) -> JobSpec {
    JobSpec::new(format!("{}-qd{qd}", p.label))
        .pattern(p.pattern)
        .read_fraction(p.read_fraction)
        .engine(Engine::Libaio)
        .iodepth(qd)
        .ios(ios)
        .seed(0xF1604 ^ qd as u64)
}

// ---------------------------------------------------------------- fig. 4

/// One point of fig. 4.
#[derive(Debug, Clone)]
pub struct Fig04Row {
    /// Device under test.
    pub device: Device,
    /// Access pattern label.
    pub pattern: &'static str,
    /// Queue depth.
    pub qd: u32,
    /// Average latency, µs.
    pub mean_us: f64,
    /// 99.999th percentile latency, µs.
    pub five_nines_us: f64,
}

/// Fig. 4a/4b: latency vs queue depth for both devices.
#[derive(Debug)]
pub struct Fig04 {
    /// All measured points.
    pub rows: Vec<Fig04Row>,
    scale: Scale,
}

/// The queue depths swept in fig. 4.
pub const FIG04_QDS: [u32; 7] = [1, 2, 4, 8, 16, 24, 32];

/// Fig. 4 as a registry experiment.
#[derive(Debug)]
pub struct Fig04Exp;

impl Experiment for Fig04Exp {
    type Cell = Fig04Row;
    type Report = Fig04;

    fn name(&self) -> &'static str {
        "fig4"
    }

    fn title(&self) -> &'static str {
        "Fig 4 (latency vs queue depth)"
    }

    fn description(&self) -> &'static str {
        "device latency vs queue depth, both devices, four patterns"
    }

    fn cells(&self, scale: Scale) -> Vec<SweepCell<Fig04Row>> {
        let ios = scale.ios(4_000, 300_000);
        let mut cells = Vec::new();
        for device in Device::ALL {
            for p in PATTERNS {
                for qd in FIG04_QDS {
                    cells.push(SweepCell::new(
                        format!("{}/{}/qd{qd}", device.label(), p.label),
                        move || {
                            let mut h = host(device, IoPath::KernelInterrupt);
                            let r = run_job(&mut h, &qd_job(&p, qd, ios));
                            Fig04Row {
                                device,
                                pattern: p.label,
                                qd,
                                mean_us: r.mean_latency().as_micros_f64(),
                                five_nines_us: r.five_nines().as_micros_f64(),
                            }
                        },
                    ));
                }
            }
        }
        cells
    }

    fn collect(&self, scale: Scale, rows: Vec<Fig04Row>) -> Fig04 {
        Fig04 { rows, scale }
    }
}

/// Runs fig. 4.
pub fn fig04_run(scale: Scale) -> Fig04 {
    run_experiment(&Fig04Exp, scale, 1)
}

impl Report for Fig04 {
    fn check(&self) -> Vec<String> {
        Fig04::check(self)
    }

    fn into_json(self) -> Json {
        let rows: Vec<Json> = self
            .rows
            .iter()
            .map(|r| {
                Json::obj()
                    .field("device", r.device.label())
                    .field("pattern", r.pattern)
                    .field("qd", r.qd)
                    .field("mean_us", r.mean_us)
                    .field("five_nines_us", r.five_nines_us)
            })
            .collect();
        Json::obj().field("rows", rows)
    }
}

impl Fig04 {
    fn get(&self, device: Device, pattern: &str, qd: u32) -> &Fig04Row {
        self.rows
            .iter()
            .find(|r| r.device == device && r.pattern == pattern && r.qd == qd)
            .expect("swept point")
    }

    /// Shape violations vs §IV-A/B.
    pub fn check(&self) -> Vec<String> {
        let mut v = Vec::new();
        // Low-depth random reads: NVMe several times slower (paper: 5.2x).
        let nvme_rr = self.get(Device::Nvme750, "RndRd", 4).mean_us;
        let ull_rr = self.get(Device::Ull, "RndRd", 4).mean_us;
        if nvme_rr < 3.5 * ull_rr {
            v.push(format!(
                "RndRd qd4: NVMe/ULL = {:.1}, expected > 3.5",
                nvme_rr / ull_rr
            ));
        }
        // NVMe degrades steeply with depth; ULL stays sustainable.
        for p in &PATTERNS {
            let n32 = self.get(Device::Nvme750, p.label, 32).mean_us;
            let u32_ = self.get(Device::Ull, p.label, 32).mean_us;
            if u32_ > 0.6 * n32 {
                v.push(format!(
                    "{} qd32: ULL {u32_:.0}us not well below NVMe {n32:.0}us",
                    p.label
                ));
            }
        }
        let nvme_rw32 = self.get(Device::Nvme750, "RndWr", 32).mean_us;
        if nvme_rw32 < 80.0 {
            v.push(format!(
                "NVMe RndWr qd32 mean {nvme_rw32:.0}us, paper ~121us"
            ));
        }
        // Five-nines claims need full-scale sample counts.
        if self.scale == Scale::Full {
            let nvme_r = self.get(Device::Nvme750, "RndRd", 8);
            let nvme_w = self.get(Device::Nvme750, "RndWr", 8);
            if nvme_w.five_nines_us < 1.5 * nvme_r.five_nines_us {
                v.push(format!(
                    "NVMe tail: writes {:.0}us !>= 1.5x reads {:.0}us",
                    nvme_w.five_nines_us, nvme_r.five_nines_us
                ));
            }
            if nvme_r.five_nines_us < 8.0 * nvme_r.mean_us {
                v.push("NVMe read tail should dwarf its mean".into());
            }
            for p in &PATTERNS {
                let u = self.get(Device::Ull, p.label, 8);
                if u.five_nines_us > 900.0 {
                    v.push(format!(
                        "ULL {} tail {:.0}us beyond hundreds of us",
                        p.label, u.five_nines_us
                    ));
                }
            }
        }
        v
    }
}

impl fmt::Display for Fig04 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Fig 4: latency vs queue depth (libaio, 4KB)")?;
        writeln!(
            f,
            "{:10}{:8}{:>6}{:>12}{:>14}",
            "device", "pattern", "qd", "avg(us)", "p99.999(us)"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:10}{:8}{:>6}{:>12.1}{:>14.1}",
                r.device.label(),
                r.pattern,
                r.qd,
                r.mean_us,
                r.five_nines_us
            )?;
        }
        Ok(())
    }
}

// ---------------------------------------------------------------- fig. 5

/// One point of fig. 5.
#[derive(Debug, Clone)]
pub struct Fig05Row {
    /// Device under test.
    pub device: Device,
    /// Access pattern label.
    pub pattern: &'static str,
    /// Queue depth.
    pub qd: u32,
    /// Measured bandwidth, MB/s.
    pub bandwidth_mbps: f64,
    /// Bandwidth normalized to the device's maximum across the sweep.
    pub normalized: f64,
}

/// Fig. 5: normalized bandwidth vs queue depth.
#[derive(Debug)]
pub struct Fig05 {
    /// All measured points.
    pub rows: Vec<Fig05Row>,
}

/// ULL queue-depth sweep (paper: 1-32).
pub const FIG05_ULL_QDS: [u32; 8] = [1, 2, 4, 8, 12, 16, 24, 32];
/// NVMe queue-depth sweep (paper: 1-256).
pub const FIG05_NVME_QDS: [u32; 8] = [1, 4, 8, 16, 32, 64, 128, 256];

/// Fig. 5 as a registry experiment.
#[derive(Debug)]
pub struct Fig05Exp;

impl Experiment for Fig05Exp {
    type Cell = Fig05Row;
    type Report = Fig05;

    fn name(&self) -> &'static str {
        "fig5"
    }

    fn title(&self) -> &'static str {
        "Fig 5 (bandwidth vs queue depth)"
    }

    fn description(&self) -> &'static str {
        "device bandwidth vs queue depth and saturation points"
    }

    fn cells(&self, scale: Scale) -> Vec<SweepCell<Fig05Row>> {
        // Writes need enough I/Os to push past the DRAM write buffer into
        // drain-limited steady state.
        let ios = scale.ios(20_000, 100_000);
        let mut cells = Vec::new();
        for device in Device::ALL {
            let qds: &[u32] = if device == Device::Ull {
                &FIG05_ULL_QDS
            } else {
                &FIG05_NVME_QDS
            };
            for p in PATTERNS {
                for &qd in qds {
                    cells.push(SweepCell::new(
                        format!("{}/{}/qd{qd}", device.label(), p.label),
                        move || {
                            let mut h = host(device, IoPath::KernelInterrupt);
                            let r = run_job(&mut h, &qd_job(&p, qd, ios));
                            Fig05Row {
                                device,
                                pattern: p.label,
                                qd,
                                bandwidth_mbps: r.bandwidth_mbps(),
                                normalized: 0.0,
                            }
                        },
                    ));
                }
            }
        }
        cells
    }

    /// Cross-cell normalization (bandwidth / device max) happens here,
    /// over the declaration-order slice — the classic example of work
    /// that must live in `collect`, not in the cells.
    fn collect(&self, _scale: Scale, mut rows: Vec<Fig05Row>) -> Fig05 {
        for device in Device::ALL {
            let max = rows
                .iter()
                .filter(|r| r.device == device)
                .map(|r| r.bandwidth_mbps)
                .fold(0.0, f64::max);
            for r in rows.iter_mut().filter(|r| r.device == device) {
                r.normalized = r.bandwidth_mbps / max;
            }
        }
        Fig05 { rows }
    }
}

/// Runs fig. 5.
pub fn fig05_run(scale: Scale) -> Fig05 {
    run_experiment(&Fig05Exp, scale, 1)
}

impl Report for Fig05 {
    fn check(&self) -> Vec<String> {
        Fig05::check(self)
    }

    fn into_json(self) -> Json {
        let rows: Vec<Json> = self
            .rows
            .iter()
            .map(|r| {
                Json::obj()
                    .field("device", r.device.label())
                    .field("pattern", r.pattern)
                    .field("qd", r.qd)
                    .field("bandwidth_mbps", r.bandwidth_mbps)
                    .field("normalized", r.normalized)
            })
            .collect();
        Json::obj().field("rows", rows)
    }
}

impl Fig05 {
    fn norm(&self, device: Device, pattern: &str, qd: u32) -> f64 {
        self.rows
            .iter()
            .find(|r| r.device == device && r.pattern == pattern && r.qd == qd)
            .expect("swept point")
            .normalized
    }

    /// Shape violations vs §IV-C.
    pub fn check(&self) -> Vec<String> {
        let mut v = Vec::new();
        // ULL: "8 queue entries for sequential accesses; 16 in the worst
        // case" (within ~90% of its saturation there).
        for p in ["SeqRd", "RndRd"] {
            let n = self.norm(Device::Ull, p, 16);
            if n < 0.85 {
                v.push(format!("ULL {p} only {:.0}% of max at qd16", n * 100.0));
            }
        }
        if self.norm(Device::Ull, "SeqRd", 8) < 0.65 {
            v.push("ULL SeqRd should be most of the way to max by qd8".into());
        }
        // ULL writes reach ~87-90%.
        for p in ["SeqWr", "RndWr"] {
            let n = self.norm(Device::Ull, p, 32);
            if n < 0.60 {
                v.push(format!("ULL {p} at qd32 only {:.0}%", n * 100.0));
            }
        }
        // NVMe 4KB writes cap around 40% of the device max.
        for p in ["SeqWr", "RndWr"] {
            let n = self.norm(Device::Nvme750, p, 256);
            if !(0.20..=0.60).contains(&n) {
                v.push(format!("NVMe {p} cap {:.0}%, paper ~40%", n * 100.0));
            }
        }
        // NVMe random reads need very deep queues.
        let shallow = self.norm(Device::Nvme750, "RndRd", 32);
        let deep = self.norm(Device::Nvme750, "RndRd", 256);
        if deep < 0.9 {
            v.push(format!(
                "NVMe RndRd never saturates ({:.0}% at qd256)",
                deep * 100.0
            ));
        }
        if shallow > 0.85 {
            v.push(format!(
                "NVMe RndRd saturates too early ({:.0}% at qd32)",
                shallow * 100.0
            ));
        }
        v
    }
}

impl fmt::Display for Fig05 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Fig 5: bandwidth vs queue depth (normalized to device max, 4KB)"
        )?;
        writeln!(
            f,
            "{:10}{:8}{:>6}{:>12}{:>8}",
            "device", "pattern", "qd", "MB/s", "norm%"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:10}{:8}{:>6}{:>12.0}{:>8.1}",
                r.device.label(),
                r.pattern,
                r.qd,
                r.bandwidth_mbps,
                r.normalized * 100.0
            )?;
        }
        Ok(())
    }
}

// ---------------------------------------------------------------- fig. 6

/// One point of fig. 6.
#[derive(Debug, Clone)]
pub struct Fig06Row {
    /// Device under test.
    pub device: Device,
    /// Write fraction of the mixed workload, percent.
    pub write_pct: u32,
    /// Average read latency, µs.
    pub read_mean_us: f64,
    /// 99.999th percentile read latency, µs.
    pub read_five_nines_us: f64,
}

/// Fig. 6: read latency under read/write interference.
#[derive(Debug)]
pub struct Fig06 {
    /// All measured points.
    pub rows: Vec<Fig06Row>,
}

/// The write fractions swept (percent).
pub const FIG06_WRITE_PCTS: [u32; 5] = [0, 20, 40, 60, 80];

/// Fig. 6 as a registry experiment.
#[derive(Debug)]
pub struct Fig06Exp;

impl Experiment for Fig06Exp {
    type Cell = Fig06Row;
    type Report = Fig06;

    fn name(&self) -> &'static str {
        "fig6"
    }

    fn title(&self) -> &'static str {
        "Fig 6 (read/write interference)"
    }

    fn description(&self) -> &'static str {
        "read latency degradation when co-running writes"
    }

    fn cells(&self, scale: Scale) -> Vec<SweepCell<Fig06Row>> {
        let ios = scale.ios(8_000, 200_000);
        let mut cells = Vec::new();
        for device in Device::ALL {
            for wf in FIG06_WRITE_PCTS {
                cells.push(SweepCell::new(
                    format!("{}/w{wf}", device.label()),
                    move || {
                        let mut h = host(device, IoPath::KernelInterrupt);
                        // Steady-state methodology: the device is
                        // preconditioned, so interleaved writes carry
                        // their real GC cost.
                        ull_workload::precondition_full(&mut h);
                        let spec = JobSpec::new(format!("mix-w{wf}"))
                            .pattern(Pattern::Random)
                            .read_fraction(1.0 - wf as f64 / 100.0)
                            .engine(Engine::Libaio)
                            .iodepth(4)
                            .ios(ios)
                            .seed(0xF1606 ^ wf as u64);
                        let r = run_job(&mut h, &spec);
                        Fig06Row {
                            device,
                            write_pct: wf,
                            read_mean_us: r.read_latency.mean().as_micros_f64(),
                            read_five_nines_us: r.read_latency.five_nines().as_micros_f64(),
                        }
                    },
                ));
            }
        }
        cells
    }

    fn collect(&self, _scale: Scale, rows: Vec<Fig06Row>) -> Fig06 {
        Fig06 { rows }
    }
}

/// Runs fig. 6.
pub fn fig06_run(scale: Scale) -> Fig06 {
    run_experiment(&Fig06Exp, scale, 1)
}

impl Report for Fig06 {
    fn check(&self) -> Vec<String> {
        Fig06::check(self)
    }

    fn into_json(self) -> Json {
        let rows: Vec<Json> = self
            .rows
            .iter()
            .map(|r| {
                Json::obj()
                    .field("device", r.device.label())
                    .field("write_pct", r.write_pct)
                    .field("read_mean_us", r.read_mean_us)
                    .field("read_five_nines_us", r.read_five_nines_us)
            })
            .collect();
        Json::obj().field("rows", rows)
    }
}

impl Fig06 {
    fn mean(&self, device: Device, wf: u32) -> f64 {
        self.rows
            .iter()
            .find(|r| r.device == device && r.write_pct == wf)
            .expect("swept point")
            .read_mean_us
    }

    /// Shape violations vs §IV-D1.
    pub fn check(&self) -> Vec<String> {
        let mut v = Vec::new();
        let n0 = self.mean(Device::Nvme750, 0);
        let n20 = self.mean(Device::Nvme750, 20);
        let n80 = self.mean(Device::Nvme750, 80);
        if n20 < 1.3 * n0 {
            v.push(format!(
                "NVMe reads at 20% writes only {:.2}x read-only",
                n20 / n0
            ));
        }
        // The paper's curve keeps rising with write fraction; our model's
        // dominant effect is the 20% jump, with the remainder within a
        // band (closed-loop self-throttling offsets added program traffic
        // until GC engages at full scale). Enforce no-collapse.
        if n80 < 0.6 * n20 {
            v.push(format!(
                "NVMe interference collapsed at high write fraction ({n20:.0} -> {n80:.0}us)"
            ));
        }
        let u0 = self.mean(Device::Ull, 0);
        let u80 = self.mean(Device::Ull, 80);
        if u80 > 2.5 * u0 {
            v.push(format!(
                "ULL reads blow up {:.1}x under writes; paper: flat",
                u80 / u0
            ));
        }
        if self.mean(Device::Nvme750, 80) < 3.0 * u80 {
            v.push("NVMe mixed reads should be several times ULL's".into());
        }
        v
    }
}

impl fmt::Display for Fig06 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Fig 6: random-read latency vs interleaved write fraction (libaio qd4)"
        )?;
        writeln!(
            f,
            "{:10}{:>8}{:>14}{:>18}",
            "device", "write%", "read avg(us)", "read p99.999(us)"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:10}{:>8}{:>14.1}{:>18.1}",
                r.device.label(),
                r.write_pct,
                r.read_mean_us,
                r.read_five_nines_us
            )?;
        }
        Ok(())
    }
}

// ---------------------------------------------------------------- fig. 7a

/// One bar of fig. 7a.
#[derive(Debug, Clone)]
pub struct Fig07aRow {
    /// Device under test.
    pub device: Device,
    /// Workload label ("Async SeqRd", ..., "Idle").
    pub label: String,
    /// Average power, watts.
    pub power_w: f64,
}

/// Fig. 7a: average power by workload.
#[derive(Debug)]
pub struct Fig07a {
    /// All bars.
    pub rows: Vec<Fig07aRow>,
}

/// Fig. 7a as a registry experiment.
#[derive(Debug)]
pub struct Fig07aExp;

impl Experiment for Fig07aExp {
    type Cell = Fig07aRow;
    type Report = Fig07a;

    fn name(&self) -> &'static str {
        "fig7a"
    }

    fn title(&self) -> &'static str {
        "Fig 7a (average power)"
    }

    fn description(&self) -> &'static str {
        "average device power across patterns and queue depths"
    }

    fn cells(&self, scale: Scale) -> Vec<SweepCell<Fig07aRow>> {
        let ios = scale.ios(8_000, 100_000);
        let mut cells = Vec::new();
        for device in Device::ALL {
            for (mode, engine, qd) in [
                ("Async", Engine::Libaio, 16u32),
                ("Sync", Engine::Pvsync2, 1),
            ] {
                for p in PATTERNS {
                    cells.push(SweepCell::new(
                        format!("{}/{mode} {}", device.label(), p.label),
                        move || {
                            let mut h = host(device, IoPath::KernelInterrupt);
                            let spec = JobSpec::new(format!("{mode}-{}", p.label))
                                .pattern(p.pattern)
                                .read_fraction(p.read_fraction)
                                .engine(engine)
                                .iodepth(qd)
                                .ios(ios)
                                .seed(0xF1607);
                            let r = run_job(&mut h, &spec);
                            Fig07aRow {
                                device,
                                label: format!("{mode} {}", p.label),
                                power_w: r.avg_power_w,
                            }
                        },
                    ));
                }
            }
        }
        cells
    }

    /// Appends the datasheet idle bar after each device's measured
    /// bars — constant data, so it belongs in the fold, not in a cell.
    fn collect(&self, _scale: Scale, outputs: Vec<Fig07aRow>) -> Fig07a {
        let mut rows = Vec::with_capacity(outputs.len() + Device::ALL.len());
        for device in Device::ALL {
            rows.extend(outputs.iter().filter(|r| r.device == device).cloned());
            rows.push(Fig07aRow {
                device,
                label: "Idle".into(),
                power_w: device.config().power.idle_w,
            });
        }
        Fig07a { rows }
    }
}

/// Runs fig. 7a.
pub fn fig07a_run(scale: Scale) -> Fig07a {
    run_experiment(&Fig07aExp, scale, 1)
}

impl Report for Fig07a {
    fn check(&self) -> Vec<String> {
        Fig07a::check(self)
    }

    fn into_json(self) -> Json {
        let rows: Vec<Json> = self
            .rows
            .iter()
            .map(|r| {
                Json::obj()
                    .field("device", r.device.label())
                    .field("workload", r.label.as_str())
                    .field("power_w", r.power_w)
            })
            .collect();
        Json::obj().field("rows", rows)
    }
}

impl Fig07a {
    fn power(&self, device: Device, label: &str) -> f64 {
        self.rows
            .iter()
            .find(|r| r.device == device && r.label == label)
            .expect("measured bar")
            .power_w
    }

    /// Shape violations vs §IV-D2.
    pub fn check(&self) -> Vec<String> {
        let mut v = Vec::new();
        // ULL consumes ~30% less power on async writes.
        for p in ["Async SeqWr", "Async RndWr"] {
            let n = self.power(Device::Nvme750, p);
            let u = self.power(Device::Ull, p);
            if n < 1.15 * u {
                v.push(format!("{p}: NVMe {n:.1}W not clearly above ULL {u:.1}W"));
            }
        }
        // Reads sit near idle and close to each other.
        let nr = self.power(Device::Nvme750, "Async RndRd");
        let ur = self.power(Device::Ull, "Async RndRd");
        if (nr - ur).abs() / nr.max(ur) > 0.30 {
            v.push(format!(
                "read power gap too wide: NVMe {nr:.1}W vs ULL {ur:.1}W"
            ));
        }
        for device in Device::ALL {
            let idle = self.power(device, "Idle");
            if (idle - 3.8).abs() > 0.01 {
                v.push("idle power should be 3.8W".into());
            }
            for r in self
                .rows
                .iter()
                .filter(|r| r.device == device && r.label != "Idle")
            {
                if r.power_w < idle {
                    v.push(format!("{} {} below idle", device.label(), r.label));
                }
            }
        }
        v
    }
}

impl fmt::Display for Fig07a {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Fig 7a: average power (W)")?;
        writeln!(f, "{:10}{:14}{:>8}", "device", "workload", "power")?;
        for r in &self.rows {
            writeln!(f, "{:10}{:14}{:>8.2}", r.device.label(), r.label, r.power_w)?;
        }
        Ok(())
    }
}

// ------------------------------------------------------- fig. 7b + fig. 8

/// Per-device GC time-series result.
#[derive(Debug)]
pub struct GcSeries {
    /// Device under test.
    pub device: Device,
    /// `(time, mean write latency in µs)` per 10 ms bin.
    pub latency_bins: Vec<(SimTime, f64)>,
    /// `(time, watts)` per 10 ms bin.
    pub power_bins: Vec<(SimTime, f64)>,
    /// Mean write latency before GC onset, µs.
    pub early_latency_us: f64,
    /// Mean write latency in the GC-active window, µs.
    pub late_latency_us: f64,
    /// Mean power before GC onset, W.
    pub early_power_w: f64,
    /// Mean power in the GC-active window, W.
    pub late_power_w: f64,
    /// Garbage-collection work observed.
    pub gc_migrated_units: u64,
}

/// Fig. 7b/8: write latency and power over time on a preconditioned device.
#[derive(Debug)]
pub struct Fig07b08 {
    /// One series per device.
    pub series: Vec<GcSeries>,
}

/// Figs. 7b/8 as a registry experiment (one heavy cell per device).
#[derive(Debug)]
pub struct Fig07b08Exp;

impl Experiment for Fig07b08Exp {
    type Cell = GcSeries;
    type Report = Fig07b08;

    fn name(&self) -> &'static str {
        "fig7b"
    }

    fn title(&self) -> &'static str {
        "Fig 7b/8 (GC latency & power)"
    }

    fn description(&self) -> &'static str {
        "garbage-collection latency spikes and power under overwrite"
    }

    fn aliases(&self) -> &'static [&'static str] {
        &["fig8"]
    }

    fn cells(&self, scale: Scale) -> Vec<SweepCell<GcSeries>> {
        Device::ALL
            .into_iter()
            .map(|device| {
                let ios = match device {
                    Device::Nvme750 => scale.ios(70_000, 1_500_000),
                    Device::Ull => scale.ios(260_000, 4_000_000),
                };
                SweepCell::new(device.label(), move || {
                    let mut h = host(device, IoPath::KernelInterrupt);
                    ull_workload::precondition_full(&mut h);
                    let spec = JobSpec::new("gc-overwrite")
                        .pattern(Pattern::Random)
                        .read_fraction(0.0)
                        .engine(Engine::Libaio)
                        .iodepth(2)
                        .ios(ios)
                        .seed(0xF1608);
                    let r = run_job(&mut h, &spec);
                    let latency_bins = r.latency_series.bins();
                    let power_bins = r.power_series; // moved, not copied: r is owned here
                                                     // "Early" is the pre-GC quiet period right after
                                                     // preconditioning — an absolute window (the first few
                                                     // 10 ms bins), because once GC engages the run
                                                     // stretches and percentages land past the onset.
                    let early = |bins: &[(SimTime, f64)]| {
                        let hi = bins.len().clamp(1, 3);
                        bins[..hi].iter().map(|(_, x)| x).sum::<f64>() / hi as f64
                    };
                    let late = |bins: &[(SimTime, f64)]| {
                        let n = bins.len();
                        let lo = (n as f64 * 0.7) as usize;
                        let slice = &bins[lo..];
                        slice.iter().map(|(_, x)| x).sum::<f64>() / slice.len().max(1) as f64
                    };
                    GcSeries {
                        device,
                        early_latency_us: early(&latency_bins),
                        late_latency_us: late(&latency_bins),
                        early_power_w: early(&power_bins),
                        late_power_w: late(&power_bins),
                        gc_migrated_units: r.device.gc_migrated_units,
                        latency_bins,
                        power_bins,
                    }
                })
            })
            .collect()
    }

    fn collect(&self, _scale: Scale, series: Vec<GcSeries>) -> Fig07b08 {
        Fig07b08 { series }
    }
}

/// Runs the GC time-series experiment (precondition the whole address
/// space, then sustained 4 KB random overwrites at queue depth 2).
pub fn fig07b08_run(scale: Scale) -> Fig07b08 {
    run_experiment(&Fig07b08Exp, scale, 1)
}

impl Report for Fig07b08 {
    fn check(&self) -> Vec<String> {
        Fig07b08::check(self)
    }

    fn into_json(self) -> Json {
        let series: Vec<Json> = self
            .series
            .iter()
            .map(|s| {
                Json::obj()
                    .field("device", s.device.label())
                    .field("early_latency_us", s.early_latency_us)
                    .field("late_latency_us", s.late_latency_us)
                    .field("early_power_w", s.early_power_w)
                    .field("late_power_w", s.late_power_w)
                    .field("gc_migrated_units", s.gc_migrated_units)
                    .field("latency_bin_count", s.latency_bins.len())
                    .field("power_bin_count", s.power_bins.len())
            })
            .collect();
        Json::obj().field("series", series)
    }
}

impl Fig07b08 {
    fn of(&self, device: Device) -> &GcSeries {
        self.series
            .iter()
            .find(|s| s.device == device)
            .expect("both devices run")
    }

    /// Shape violations vs §IV-D2 (fig. 7b) and fig. 8.
    pub fn check(&self) -> Vec<String> {
        let mut v = Vec::new();
        let n = self.of(Device::Nvme750);
        let u = self.of(Device::Ull);
        if n.gc_migrated_units == 0 || u.gc_migrated_units == 0 {
            v.push("GC never engaged".into());
        }
        // Fig 7b: NVMe write latency climbs sharply once GC starts; ULL flat.
        let n_ratio = n.late_latency_us / n.early_latency_us;
        if n_ratio < 2.5 {
            v.push(format!("NVMe GC latency ratio {n_ratio:.1}, paper ~6x"));
        }
        let u_ratio = u.late_latency_us / u.early_latency_us;
        if u_ratio > 2.0 {
            v.push(format!("ULL GC latency ratio {u_ratio:.1}, paper ~flat"));
        }
        // Fig 8: NVMe power dips during GC; ULL rises ~12%.
        if n.late_power_w > n.early_power_w * 0.98 {
            v.push(format!(
                "NVMe power should dip during GC ({:.1} -> {:.1}W)",
                n.early_power_w, n.late_power_w
            ));
        }
        if u.late_power_w < u.early_power_w * 1.02 {
            v.push(format!(
                "ULL power should rise during GC ({:.1} -> {:.1}W)",
                u.early_power_w, u.late_power_w
            ));
        }
        v
    }
}

impl fmt::Display for Fig07b08 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Fig 7b/8: GC time series (preconditioned, random 4KB overwrites)"
        )?;
        for s in &self.series {
            writeln!(
                f,
                "{:10} latency {:>8.1} -> {:>8.1} us | power {:>5.2} -> {:>5.2} W | migrated {} units",
                s.device.label(),
                s.early_latency_us,
                s.late_latency_us,
                s.early_power_w,
                s.late_power_w,
                s.gc_migrated_units
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig04_shapes_hold() {
        let r = fig04_run(Scale::Quick);
        assert!(r.check().is_empty(), "{:#?}", r.check());
    }

    #[test]
    fn fig05_shapes_hold() {
        let r = fig05_run(Scale::Quick);
        assert!(r.check().is_empty(), "{:#?}", r.check());
    }

    #[test]
    fn fig06_shapes_hold() {
        let r = fig06_run(Scale::Quick);
        assert!(r.check().is_empty(), "{:#?}", r.check());
    }

    #[test]
    fn fig07a_shapes_hold() {
        let r = fig07a_run(Scale::Quick);
        assert!(r.check().is_empty(), "{:#?}", r.check());
    }

    #[test]
    fn fig07b08_shapes_hold() {
        let r = fig07b08_run(Scale::Quick);
        assert!(r.check().is_empty(), "{:#?}\n{r}", r.check());
    }
}
