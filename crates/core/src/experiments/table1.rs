//! Table I — analysis of 3D flash characteristics.

use core::fmt;

use ull_flash::FlashSpec;

/// The reproduced Table I.
#[derive(Debug)]
pub struct Table1 {
    /// BiCS, V-NAND, Z-NAND (the paper's column order).
    pub columns: Vec<FlashSpec>,
}

/// Builds the table from the `ull-flash` presets.
pub fn run() -> Table1 {
    Table1 {
        columns: vec![FlashSpec::bics(), FlashSpec::v_nand(), FlashSpec::z_nand()],
    }
}

impl Table1 {
    /// Shape violations vs the paper's Table I claims.
    pub fn check(&self) -> Vec<String> {
        let mut v = Vec::new();
        let z = &self.columns[2];
        for other in &self.columns[..2] {
            let t_read_ratio = other.t_read.ratio(z.t_read);
            if !(15.0..=20.0).contains(&t_read_ratio) {
                v.push(format!(
                    "{}: tR ratio {t_read_ratio:.1} outside 15-20x",
                    other.name
                ));
            }
            let t_prog_ratio = other.t_prog.ratio(z.t_prog);
            if !(6.0..=7.5).contains(&t_prog_ratio) {
                v.push(format!(
                    "{}: tPROG ratio {t_prog_ratio:.1} outside 6.6-7x",
                    other.name
                ));
            }
        }
        if z.page_size != 2 * 1024 {
            v.push("Z-NAND page size must be 2KB".into());
        }
        v
    }
}

impl fmt::Display for Table1 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Table I: 3D flash characteristics")?;
        write!(f, "{:12}", "")?;
        for c in &self.columns {
            write!(f, "{:>12}", c.name)?;
        }
        writeln!(f)?;
        write!(f, "{:12}", "# layer")?;
        for c in &self.columns {
            write!(f, "{:>12}", c.layers)?;
        }
        writeln!(f)?;
        write!(f, "{:12}", "tR")?;
        for c in &self.columns {
            write!(f, "{:>12}", c.t_read.to_string())?;
        }
        writeln!(f)?;
        write!(f, "{:12}", "tPROG")?;
        for c in &self.columns {
            write!(f, "{:>12}", c.t_prog.to_string())?;
        }
        writeln!(f)?;
        write!(f, "{:12}", "Capacity")?;
        for c in &self.columns {
            write!(f, "{:>10}Gb", c.die_capacity_gbit)?;
        }
        writeln!(f)?;
        write!(f, "{:12}", "Page size")?;
        for c in &self.columns {
            write!(f, "{:>10}KB", c.page_size / 1024)?;
        }
        writeln!(f)
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn table1_matches_paper() {
        let t = super::run();
        assert!(t.check().is_empty(), "{:?}", t.check());
        let s = t.to_string();
        assert!(s.contains("Z-NAND") && s.contains("BiCS") && s.contains("V-NAND"));
    }
}
