//! Table I — analysis of 3D flash characteristics.

use core::fmt;

use ull_flash::FlashSpec;
use ull_workload::Json;

use crate::engine::{run_experiment, Experiment, Report, SweepCell};
use crate::testbed::Scale;

/// The reproduced Table I.
#[derive(Debug)]
pub struct Table1 {
    /// BiCS, V-NAND, Z-NAND (the paper's column order).
    pub columns: Vec<FlashSpec>,
}

/// Table I as a registry experiment (a single constant cell — the table
/// is built from preset specs, not from simulation).
#[derive(Debug)]
pub struct Table1Exp;

impl Experiment for Table1Exp {
    type Cell = FlashSpec;
    type Report = Table1;

    fn name(&self) -> &'static str {
        "table1"
    }

    fn title(&self) -> &'static str {
        "Table I"
    }

    fn description(&self) -> &'static str {
        "device-level characteristics table: Z-NAND vs conventional NVMe"
    }

    fn cells(&self, _scale: Scale) -> Vec<SweepCell<FlashSpec>> {
        vec![
            SweepCell::new("BiCS", FlashSpec::bics),
            SweepCell::new("V-NAND", FlashSpec::v_nand),
            SweepCell::new("Z-NAND", FlashSpec::z_nand),
        ]
    }

    fn collect(&self, _scale: Scale, columns: Vec<FlashSpec>) -> Table1 {
        Table1 { columns }
    }
}

/// Builds the table from the `ull-flash` presets.
pub fn run() -> Table1 {
    run_experiment(&Table1Exp, Scale::Quick, 1)
}

impl Report for Table1 {
    fn check(&self) -> Vec<String> {
        Table1::check(self)
    }

    fn into_json(self) -> Json {
        let columns: Vec<Json> = self
            .columns
            .iter()
            .map(|c| {
                Json::obj()
                    .field("name", c.name)
                    .field("layers", c.layers)
                    .field("t_read_us", c.t_read.as_micros_f64())
                    .field("t_prog_us", c.t_prog.as_micros_f64())
                    .field("die_capacity_gbit", c.die_capacity_gbit)
                    .field("page_size", c.page_size)
            })
            .collect();
        Json::obj().field("columns", columns)
    }
}

impl Table1 {
    /// Shape violations vs the paper's Table I claims.
    pub fn check(&self) -> Vec<String> {
        let mut v = Vec::new();
        let z = &self.columns[2];
        for other in &self.columns[..2] {
            let t_read_ratio = other.t_read.ratio(z.t_read);
            if !(15.0..=20.0).contains(&t_read_ratio) {
                v.push(format!(
                    "{}: tR ratio {t_read_ratio:.1} outside 15-20x",
                    other.name
                ));
            }
            let t_prog_ratio = other.t_prog.ratio(z.t_prog);
            if !(6.0..=7.5).contains(&t_prog_ratio) {
                v.push(format!(
                    "{}: tPROG ratio {t_prog_ratio:.1} outside 6.6-7x",
                    other.name
                ));
            }
        }
        if z.page_size != 2 * 1024 {
            v.push("Z-NAND page size must be 2KB".into());
        }
        v
    }
}

impl fmt::Display for Table1 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Table I: 3D flash characteristics")?;
        write!(f, "{:12}", "")?;
        for c in &self.columns {
            write!(f, "{:>12}", c.name)?;
        }
        writeln!(f)?;
        write!(f, "{:12}", "# layer")?;
        for c in &self.columns {
            write!(f, "{:>12}", c.layers)?;
        }
        writeln!(f)?;
        write!(f, "{:12}", "tR")?;
        for c in &self.columns {
            write!(f, "{:>12}", c.t_read.to_string())?;
        }
        writeln!(f)?;
        write!(f, "{:12}", "tPROG")?;
        for c in &self.columns {
            write!(f, "{:>12}", c.t_prog.to_string())?;
        }
        writeln!(f)?;
        write!(f, "{:12}", "Capacity")?;
        for c in &self.columns {
            write!(f, "{:>10}Gb", c.die_capacity_gbit)?;
        }
        writeln!(f)?;
        write!(f, "{:12}", "Page size")?;
        for c in &self.columns {
            write!(f, "{:>10}KB", c.page_size / 1024)?;
        }
        writeln!(f)
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn table1_matches_paper() {
        let t = super::run();
        assert!(t.check().is_empty(), "{:?}", t.check());
        let s = t.to_string();
        assert!(s.contains("Z-NAND") && s.contains("BiCS") && s.contains("V-NAND"));
    }
}
