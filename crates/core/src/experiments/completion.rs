//! §V — I/O completion methods and challenges: figures 9/10 (interrupt vs
//! poll latency), 11 (five-nines), 12 (hybrid CPU), 13 (CPU utilization),
//! 14 (cycle breakdown), 15 (memory instructions) and 16 (hybrid latency
//! reduction).

use core::fmt;

use ull_simkit::SimDuration;
use ull_stack::{IoPath, Mode, StackFn};
use ull_workload::{run_job, Engine, JobReport, JobSpec, Json};

use crate::engine::{run_experiment, Experiment, Report, SweepCell};
use crate::experiments::{PatternSpec, BLOCK_SIZES, PATTERNS};
use crate::testbed::{host, reduction_pct, Device, Scale};

fn sync_report(device: Device, path: IoPath, p: &PatternSpec, bs: u32, ios: u64) -> JobReport {
    let mut h = host(device, path);
    let spec = JobSpec::new(format!("{}-{}k-{}", p.label, bs / 1024, path.label()))
        .pattern(p.pattern)
        .read_fraction(p.read_fraction)
        .block_size(bs)
        .engine(Engine::Pvsync2)
        .ios(ios)
        .seed(0xF1609);
    run_job(&mut h, &spec)
}

// ----------------------------------------------------------- figs. 9 & 10

/// One point of figs. 9/10.
#[derive(Debug, Clone)]
pub struct CompletionRow {
    /// Device under test.
    pub device: Device,
    /// Access pattern label.
    pub pattern: &'static str,
    /// Block size, bytes.
    pub block_size: u32,
    /// Mean latency under interrupts, µs.
    pub interrupt_us: f64,
    /// Mean latency under polling, µs.
    pub poll_us: f64,
}

impl CompletionRow {
    /// Percent latency reduction of polling vs interrupts.
    pub fn poll_gain_pct(&self) -> f64 {
        reduction_pct(self.interrupt_us, self.poll_us)
    }
}

/// Figs. 9 (NVMe) and 10 (ULL): poll vs interrupt mean latency.
#[derive(Debug)]
pub struct Fig0910 {
    /// All measured points.
    pub rows: Vec<CompletionRow>,
}

/// Figs. 9/10 as a registry experiment.
#[derive(Debug)]
pub struct Fig0910Exp;

impl Experiment for Fig0910Exp {
    type Cell = CompletionRow;
    type Report = Fig0910;

    fn name(&self) -> &'static str {
        "fig9"
    }

    fn title(&self) -> &'static str {
        "Fig 9/10 (poll vs interrupt)"
    }

    fn description(&self) -> &'static str {
        "mean latency of polling vs interrupts across block sizes"
    }

    fn aliases(&self) -> &'static [&'static str] {
        &["fig10"]
    }

    fn cells(&self, scale: Scale) -> Vec<SweepCell<CompletionRow>> {
        let ios = scale.ios(4_000, 100_000);
        let mut cells = Vec::new();
        for device in Device::ALL {
            for p in PATTERNS {
                for bs in BLOCK_SIZES {
                    cells.push(SweepCell::new(
                        format!("{}/{}/{}K", device.label(), p.label, bs / 1024),
                        move || {
                            let int = sync_report(device, IoPath::KernelInterrupt, &p, bs, ios);
                            let poll = sync_report(device, IoPath::KernelPolled, &p, bs, ios);
                            CompletionRow {
                                device,
                                pattern: p.label,
                                block_size: bs,
                                interrupt_us: int.mean_latency().as_micros_f64(),
                                poll_us: poll.mean_latency().as_micros_f64(),
                            }
                        },
                    ));
                }
            }
        }
        cells
    }

    fn collect(&self, _scale: Scale, rows: Vec<CompletionRow>) -> Fig0910 {
        Fig0910 { rows }
    }
}

/// Runs figs. 9 and 10.
pub fn fig0910_run(scale: Scale) -> Fig0910 {
    run_experiment(&Fig0910Exp, scale, 1)
}

impl Report for Fig0910 {
    fn check(&self) -> Vec<String> {
        Fig0910::check(self)
    }

    fn into_json(self) -> Json {
        let rows: Vec<Json> = self
            .rows
            .iter()
            .map(|r| {
                Json::obj()
                    .field("device", r.device.label())
                    .field("pattern", r.pattern)
                    .field("block_size", r.block_size)
                    .field("interrupt_us", r.interrupt_us)
                    .field("poll_us", r.poll_us)
                    .field("gain_pct", r.poll_gain_pct())
            })
            .collect();
        Json::obj().field("rows", rows)
    }
}

impl Fig0910 {
    /// Average poll gain over reads/writes for one device (percent).
    pub fn mean_gain(&self, device: Device, write: bool) -> f64 {
        let rows: Vec<&CompletionRow> = self
            .rows
            .iter()
            .filter(|r| r.device == device && r.pattern.contains("Wr") == write)
            .collect();
        rows.iter().map(|r| r.poll_gain_pct()).sum::<f64>() / rows.len() as f64
    }

    /// Shape violations vs §V-A1.
    pub fn check(&self) -> Vec<String> {
        let mut v = Vec::new();
        // ULL: polling helps noticeably (paper: 16.3% reads, 13.5% writes).
        let ull_r = self.mean_gain(Device::Ull, false);
        if !(8.0..=30.0).contains(&ull_r) {
            v.push(format!("ULL read poll gain {ull_r:.1}%, paper ~16%"));
        }
        let ull_w = self.mean_gain(Device::Ull, true);
        if !(8.0..=30.0).contains(&ull_w) {
            v.push(format!("ULL write poll gain {ull_w:.1}%, paper ~14%"));
        }
        // NVMe: negligible for reads (paper: <2.2%), modest for writes
        // (paper: ~11.2%).
        let nvme_r = self.mean_gain(Device::Nvme750, false);
        if nvme_r > 10.0 {
            v.push(format!("NVMe read poll gain {nvme_r:.1}%, paper <2.2%"));
        }
        let nvme_w = self.mean_gain(Device::Nvme750, true);
        if nvme_w > 25.0 {
            v.push(format!("NVMe write poll gain {nvme_w:.1}%, paper ~11%"));
        }
        if nvme_r >= ull_r {
            v.push("polling must help the ULL device more than the NVMe device".into());
        }
        v
    }
}

impl fmt::Display for Fig0910 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Fig 9/10: poll vs interrupt mean latency (pvsync2)")?;
        writeln!(
            f,
            "{:10}{:8}{:>7}{:>12}{:>10}{:>8}",
            "device", "pattern", "bs", "intr(us)", "poll(us)", "gain%"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:10}{:8}{:>6}K{:>12.1}{:>10.1}{:>8.1}",
                r.device.label(),
                r.pattern,
                r.block_size / 1024,
                r.interrupt_us,
                r.poll_us,
                r.poll_gain_pct()
            )?;
        }
        Ok(())
    }
}

// ----------------------------------------------------------------- fig. 11

/// One point of fig. 11.
#[derive(Debug, Clone)]
pub struct Fig11Row {
    /// Whether this row measures writes.
    pub write: bool,
    /// Block size, bytes.
    pub block_size: u32,
    /// Five-nines latency under interrupts, µs.
    pub interrupt_us: f64,
    /// Five-nines latency under polling, µs.
    pub poll_us: f64,
}

/// Fig. 11: five-nines latency of polling vs interrupts on the ULL SSD.
#[derive(Debug)]
pub struct Fig11 {
    /// All measured points.
    pub rows: Vec<Fig11Row>,
}

/// Fig. 11 as a registry experiment.
#[derive(Debug)]
pub struct Fig11Exp;

impl Experiment for Fig11Exp {
    type Cell = Fig11Row;
    type Report = Fig11;

    fn name(&self) -> &'static str {
        "fig11"
    }

    fn title(&self) -> &'static str {
        "Fig 11 (five-nines, poll vs interrupt)"
    }

    fn description(&self) -> &'static str {
        "99.999th-percentile latency, polling vs interrupts"
    }

    fn cells(&self, scale: Scale) -> Vec<SweepCell<Fig11Row>> {
        let ios = scale.ios(200_000, 1_000_000);
        let mut cells = Vec::new();
        for p in [PatternSpec::seq_rd(), PatternSpec::seq_wr()] {
            for bs in BLOCK_SIZES {
                cells.push(SweepCell::new(
                    format!("{}/{}K", p.label, bs / 1024),
                    move || {
                        let int = sync_report(Device::Ull, IoPath::KernelInterrupt, &p, bs, ios);
                        let poll = sync_report(Device::Ull, IoPath::KernelPolled, &p, bs, ios);
                        Fig11Row {
                            write: p.read_fraction == 0.0,
                            block_size: bs,
                            interrupt_us: int.five_nines().as_micros_f64(),
                            poll_us: poll.five_nines().as_micros_f64(),
                        }
                    },
                ));
            }
        }
        cells
    }

    fn collect(&self, _scale: Scale, rows: Vec<Fig11Row>) -> Fig11 {
        Fig11 { rows }
    }
}

/// Runs fig. 11.
pub fn fig11_run(scale: Scale) -> Fig11 {
    run_experiment(&Fig11Exp, scale, 1)
}

impl Report for Fig11 {
    fn check(&self) -> Vec<String> {
        Fig11::check(self)
    }

    fn into_json(self) -> Json {
        let rows: Vec<Json> = self
            .rows
            .iter()
            .map(|r| {
                Json::obj()
                    .field("op", if r.write { "write" } else { "read" })
                    .field("block_size", r.block_size)
                    .field("interrupt_us", r.interrupt_us)
                    .field("poll_us", r.poll_us)
            })
            .collect();
        Json::obj().field("rows", rows)
    }
}

impl Fig11 {
    /// Shape violations vs §V-A2: the tail inverts — polling is *worse*.
    pub fn check(&self) -> Vec<String> {
        let mut v = Vec::new();
        let mut worse = 0;
        for r in &self.rows {
            if r.poll_us > r.interrupt_us {
                worse += 1;
            }
        }
        if worse < self.rows.len() * 3 / 4 {
            v.push(format!(
                "poll tail worse in only {worse}/{} cells",
                self.rows.len()
            ));
        }
        let avg_excess: f64 = self
            .rows
            .iter()
            .map(|r| (r.poll_us - r.interrupt_us) / r.interrupt_us * 100.0)
            .sum::<f64>()
            / self.rows.len() as f64;
        if !(2.0..=40.0).contains(&avg_excess) {
            v.push(format!("poll tail excess {avg_excess:.1}%, paper ~11-12%"));
        }
        v
    }
}

impl fmt::Display for Fig11 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Fig 11: ULL five-nines latency, poll vs interrupt")?;
        writeln!(
            f,
            "{:6}{:>7}{:>12}{:>10}",
            "op", "bs", "intr(us)", "poll(us)"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:6}{:>6}K{:>12.1}{:>10.1}",
                if r.write { "write" } else { "read" },
                r.block_size / 1024,
                r.interrupt_us,
                r.poll_us
            )?;
        }
        Ok(())
    }
}

// ----------------------------------------------- figs. 12 & 13 (CPU util)

/// One point of figs. 12/13.
#[derive(Debug, Clone)]
pub struct CpuRow {
    /// Completion path measured.
    pub path: IoPath,
    /// Access pattern label.
    pub pattern: &'static str,
    /// Block size, bytes.
    pub block_size: u32,
    /// User-mode utilization, 0-1.
    pub user: f64,
    /// Kernel-mode utilization, 0-1.
    pub kernel: f64,
}

/// Figs. 12 and 13: CPU utilization of the completion methods on the ULL
/// SSD.
#[derive(Debug)]
pub struct Fig1213 {
    /// All measured points.
    pub rows: Vec<CpuRow>,
}

/// Figs. 12/13 as a registry experiment.
#[derive(Debug)]
pub struct Fig1213Exp;

impl Experiment for Fig1213Exp {
    type Cell = CpuRow;
    type Report = Fig1213;

    fn name(&self) -> &'static str {
        "fig12"
    }

    fn title(&self) -> &'static str {
        "Fig 12/13 (CPU utilization)"
    }

    fn description(&self) -> &'static str {
        "CPU utilization cost of each completion method"
    }

    fn aliases(&self) -> &'static [&'static str] {
        &["fig13"]
    }

    fn cells(&self, scale: Scale) -> Vec<SweepCell<CpuRow>> {
        let ios = scale.ios(4_000, 200_000);
        let mut cells = Vec::new();
        for path in [
            IoPath::KernelInterrupt,
            IoPath::KernelPolled,
            IoPath::KernelHybrid,
        ] {
            for p in PATTERNS {
                for bs in BLOCK_SIZES {
                    cells.push(SweepCell::new(
                        format!("{}/{}/{}K", path.label(), p.label, bs / 1024),
                        move || {
                            let r = sync_report(Device::Ull, path, &p, bs, ios);
                            CpuRow {
                                path,
                                pattern: p.label,
                                block_size: bs,
                                user: r.user_util,
                                kernel: r.kernel_util,
                            }
                        },
                    ));
                }
            }
        }
        cells
    }

    fn collect(&self, _scale: Scale, rows: Vec<CpuRow>) -> Fig1213 {
        Fig1213 { rows }
    }
}

/// Runs figs. 12 and 13.
pub fn fig1213_run(scale: Scale) -> Fig1213 {
    run_experiment(&Fig1213Exp, scale, 1)
}

impl Report for Fig1213 {
    fn check(&self) -> Vec<String> {
        Fig1213::check(self)
    }

    fn into_json(self) -> Json {
        let rows: Vec<Json> = self
            .rows
            .iter()
            .map(|r| {
                Json::obj()
                    .field("path", r.path.label())
                    .field("pattern", r.pattern)
                    .field("block_size", r.block_size)
                    .field("user", r.user)
                    .field("kernel", r.kernel)
            })
            .collect();
        Json::obj().field("rows", rows)
    }
}

impl Fig1213 {
    /// Mean total utilization of one path.
    pub fn mean_total(&self, path: IoPath) -> f64 {
        let rows: Vec<&CpuRow> = self.rows.iter().filter(|r| r.path == path).collect();
        rows.iter().map(|r| r.user + r.kernel).sum::<f64>() / rows.len() as f64
    }

    /// Mean kernel utilization of one path.
    pub fn mean_kernel(&self, path: IoPath) -> f64 {
        let rows: Vec<&CpuRow> = self.rows.iter().filter(|r| r.path == path).collect();
        rows.iter().map(|r| r.kernel).sum::<f64>() / rows.len() as f64
    }

    /// Shape violations vs §V-B1 (fig. 13) and §V-C (fig. 12).
    pub fn check(&self) -> Vec<String> {
        let mut v = Vec::new();
        let poll_k = self.mean_kernel(IoPath::KernelPolled);
        if poll_k < 0.80 {
            v.push(format!(
                "poll kernel util {:.0}%, paper ~96%",
                poll_k * 100.0
            ));
        }
        let int_total = self.mean_total(IoPath::KernelInterrupt);
        if int_total > 0.45 {
            v.push(format!(
                "interrupt total util {:.0}%, paper ~18%",
                int_total * 100.0
            ));
        }
        let hybrid = self.mean_total(IoPath::KernelHybrid);
        if !(0.30..=0.80).contains(&hybrid) {
            v.push(format!("hybrid util {:.0}%, paper ~56-58%", hybrid * 100.0));
        }
        if !(int_total < hybrid && hybrid < self.mean_total(IoPath::KernelPolled)) {
            v.push("utilization must order interrupt < hybrid < poll".into());
        }
        v
    }
}

impl fmt::Display for Fig1213 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Fig 12/13: CPU utilization by completion method (ULL, pvsync2)"
        )?;
        writeln!(
            f,
            "{:10}{:8}{:>7}{:>8}{:>8}",
            "method", "pattern", "bs", "user%", "sys%"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:10}{:8}{:>6}K{:>8.1}{:>8.1}",
                r.path.label(),
                r.pattern,
                r.block_size / 1024,
                r.user * 100.0,
                r.kernel * 100.0
            )?;
        }
        Ok(())
    }
}

// ----------------------------------------------------------------- fig. 14

/// One pattern's breakdown in fig. 14.
#[derive(Debug, Clone)]
pub struct Fig14Row {
    /// Access pattern label.
    pub pattern: &'static str,
    /// Fraction of kernel cycles spent in the NVMe driver (fig. 14a).
    pub nvme_driver_frac: f64,
    /// Fraction of kernel cycles in `blk_mq_poll` (fig. 14b).
    pub blk_mq_poll_frac: f64,
    /// Fraction of kernel cycles in `nvme_poll` (fig. 14b).
    pub nvme_poll_frac: f64,
}

/// Fig. 14: kernel CPU-cycle breakdown under polling (ULL, 4 KB).
#[derive(Debug)]
pub struct Fig14 {
    /// One row per pattern.
    pub rows: Vec<Fig14Row>,
}

/// Fig. 14 as a registry experiment.
#[derive(Debug)]
pub struct Fig14Exp;

impl Experiment for Fig14Exp {
    type Cell = Fig14Row;
    type Report = Fig14;

    fn name(&self) -> &'static str {
        "fig14"
    }

    fn title(&self) -> &'static str {
        "Fig 14 (kernel cycle breakdown)"
    }

    fn description(&self) -> &'static str {
        "per-function kernel cycle breakdown of the I/O path"
    }

    fn cells(&self, scale: Scale) -> Vec<SweepCell<Fig14Row>> {
        let ios = scale.ios(4_000, 200_000);
        PATTERNS
            .into_iter()
            .map(|p| {
                SweepCell::new(p.label, move || {
                    let r = sync_report(Device::Ull, IoPath::KernelPolled, &p, 4096, ios);
                    let kernel_total: SimDuration = r
                        .busy_by_fn
                        .iter()
                        .filter(|(_, m, _)| *m == Mode::Kernel)
                        .map(|(_, _, d)| *d)
                        .sum();
                    let frac = |f: StackFn| r.busy_of(f).ratio(kernel_total);
                    Fig14Row {
                        pattern: p.label,
                        nvme_driver_frac: frac(StackFn::NvmePoll) + frac(StackFn::NvmeDriverSubmit),
                        blk_mq_poll_frac: frac(StackFn::BlkMqPoll),
                        nvme_poll_frac: frac(StackFn::NvmePoll),
                    }
                })
            })
            .collect()
    }

    fn collect(&self, _scale: Scale, rows: Vec<Fig14Row>) -> Fig14 {
        Fig14 { rows }
    }
}

/// Runs fig. 14.
pub fn fig14_run(scale: Scale) -> Fig14 {
    run_experiment(&Fig14Exp, scale, 1)
}

impl Report for Fig14 {
    fn check(&self) -> Vec<String> {
        Fig14::check(self)
    }

    fn into_json(self) -> Json {
        let rows: Vec<Json> = self
            .rows
            .iter()
            .map(|r| {
                Json::obj()
                    .field("pattern", r.pattern)
                    .field("nvme_driver_frac", r.nvme_driver_frac)
                    .field("blk_mq_poll_frac", r.blk_mq_poll_frac)
                    .field("nvme_poll_frac", r.nvme_poll_frac)
            })
            .collect();
        Json::obj().field("rows", rows)
    }
}

impl Fig14 {
    /// Shape violations vs §V-B1.
    pub fn check(&self) -> Vec<String> {
        let mut v = Vec::new();
        for r in &self.rows {
            // Paper: driver ~17.5% of kernel cycles; blk_mq_poll ~67%,
            // nvme_poll ~17%; together ~84%.
            if !(0.10..=0.35).contains(&r.nvme_driver_frac) {
                v.push(format!(
                    "{}: driver share {:.0}%",
                    r.pattern,
                    r.nvme_driver_frac * 100.0
                ));
            }
            if !(0.50..=0.85).contains(&r.blk_mq_poll_frac) {
                v.push(format!(
                    "{}: blk_mq_poll share {:.0}%",
                    r.pattern,
                    r.blk_mq_poll_frac * 100.0
                ));
            }
            let both = r.blk_mq_poll_frac + r.nvme_poll_frac;
            if both < 0.70 {
                v.push(format!(
                    "{}: polling pair {:.0}%, paper ~84%",
                    r.pattern,
                    both * 100.0
                ));
            }
        }
        v
    }
}

impl fmt::Display for Fig14 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Fig 14: kernel cycle breakdown under polling (ULL, 4KB)")?;
        writeln!(
            f,
            "{:8}{:>14}{:>14}{:>12}",
            "pattern", "nvme-driver%", "blk_mq_poll%", "nvme_poll%"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:8}{:>14.1}{:>14.1}{:>12.1}",
                r.pattern,
                r.nvme_driver_frac * 100.0,
                r.blk_mq_poll_frac * 100.0,
                r.nvme_poll_frac * 100.0
            )?;
        }
        Ok(())
    }
}

// ----------------------------------------------------------------- fig. 15

/// One point of fig. 15.
#[derive(Debug, Clone)]
pub struct Fig15Row {
    /// Whether this row measures writes.
    pub write: bool,
    /// Block size, bytes.
    pub block_size: u32,
    /// Poll/interrupt load-instruction ratio.
    pub load_ratio: f64,
    /// Poll/interrupt store-instruction ratio.
    pub store_ratio: f64,
}

/// Fig. 15: memory instructions of polling, normalized to interrupts (ULL).
#[derive(Debug)]
pub struct Fig15 {
    /// All measured points.
    pub rows: Vec<Fig15Row>,
}

/// Fig. 15 as a registry experiment.
#[derive(Debug)]
pub struct Fig15Exp;

impl Experiment for Fig15Exp {
    type Cell = Fig15Row;
    type Report = Fig15;

    fn name(&self) -> &'static str {
        "fig15"
    }

    fn title(&self) -> &'static str {
        "Fig 15 (poll memory instructions)"
    }

    fn description(&self) -> &'static str {
        "memory-instruction inflation of the polling loop"
    }

    fn cells(&self, scale: Scale) -> Vec<SweepCell<Fig15Row>> {
        let ios = scale.ios(4_000, 200_000);
        let mut cells = Vec::new();
        for p in [PatternSpec::seq_rd(), PatternSpec::seq_wr()] {
            for bs in BLOCK_SIZES {
                cells.push(SweepCell::new(
                    format!("{}/{}K", p.label, bs / 1024),
                    move || {
                        let int = sync_report(Device::Ull, IoPath::KernelInterrupt, &p, bs, ios);
                        let poll = sync_report(Device::Ull, IoPath::KernelPolled, &p, bs, ios);
                        Fig15Row {
                            write: p.read_fraction == 0.0,
                            block_size: bs,
                            load_ratio: poll.mem.loads as f64 / int.mem.loads as f64,
                            store_ratio: poll.mem.stores as f64 / int.mem.stores as f64,
                        }
                    },
                ));
            }
        }
        cells
    }

    fn collect(&self, _scale: Scale, rows: Vec<Fig15Row>) -> Fig15 {
        Fig15 { rows }
    }
}

/// Runs fig. 15.
pub fn fig15_run(scale: Scale) -> Fig15 {
    run_experiment(&Fig15Exp, scale, 1)
}

impl Report for Fig15 {
    fn check(&self) -> Vec<String> {
        Fig15::check(self)
    }

    fn into_json(self) -> Json {
        let rows: Vec<Json> = self
            .rows
            .iter()
            .map(|r| {
                Json::obj()
                    .field("op", if r.write { "write" } else { "read" })
                    .field("block_size", r.block_size)
                    .field("load_ratio", r.load_ratio)
                    .field("store_ratio", r.store_ratio)
            })
            .collect();
        Json::obj().field("rows", rows)
    }
}

impl Fig15 {
    /// Shape violations vs §V-B2 (paper: +137% loads, +78% stores).
    pub fn check(&self) -> Vec<String> {
        let mut v = Vec::new();
        let mean_l = self.rows.iter().map(|r| r.load_ratio).sum::<f64>() / self.rows.len() as f64;
        let mean_s = self.rows.iter().map(|r| r.store_ratio).sum::<f64>() / self.rows.len() as f64;
        if !(1.6..=3.4).contains(&mean_l) {
            v.push(format!("poll load ratio {mean_l:.2}, paper ~2.4"));
        }
        if !(1.2..=2.6).contains(&mean_s) {
            v.push(format!("poll store ratio {mean_s:.2}, paper ~1.8"));
        }
        if mean_s >= mean_l {
            v.push("loads must inflate more than stores".into());
        }
        v
    }
}

impl fmt::Display for Fig15 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Fig 15: poll memory instructions / interrupt (ULL)")?;
        writeln!(f, "{:6}{:>7}{:>8}{:>8}", "op", "bs", "loads", "stores")?;
        for r in &self.rows {
            writeln!(
                f,
                "{:6}{:>6}K{:>8.2}{:>8.2}",
                if r.write { "write" } else { "read" },
                r.block_size / 1024,
                r.load_ratio,
                r.store_ratio
            )?;
        }
        Ok(())
    }
}

// ----------------------------------------------------------------- fig. 16

/// One point of fig. 16.
#[derive(Debug, Clone)]
pub struct Fig16Row {
    /// Access pattern label.
    pub pattern: &'static str,
    /// Block size, bytes.
    pub block_size: u32,
    /// Latency reduction of pure polling vs interrupts, percent.
    pub poll_reduction_pct: f64,
    /// Latency reduction of hybrid polling vs interrupts, percent.
    pub hybrid_reduction_pct: f64,
}

/// Fig. 16: hybrid polling vs polling latency reduction (ULL).
#[derive(Debug)]
pub struct Fig16 {
    /// All measured points.
    pub rows: Vec<Fig16Row>,
}

/// Fig. 16 as a registry experiment.
#[derive(Debug)]
pub struct Fig16Exp;

impl Experiment for Fig16Exp {
    type Cell = Fig16Row;
    type Report = Fig16;

    fn name(&self) -> &'static str {
        "fig16"
    }

    fn title(&self) -> &'static str {
        "Fig 16 (hybrid polling latency)"
    }

    fn description(&self) -> &'static str {
        "hybrid sleep-then-poll latency between poll and interrupt"
    }

    fn cells(&self, scale: Scale) -> Vec<SweepCell<Fig16Row>> {
        let ios = scale.ios(4_000, 200_000);
        let mut cells = Vec::new();
        for p in PATTERNS {
            for bs in BLOCK_SIZES {
                cells.push(SweepCell::new(
                    format!("{}/{}K", p.label, bs / 1024),
                    move || {
                        let int = sync_report(Device::Ull, IoPath::KernelInterrupt, &p, bs, ios);
                        let poll = sync_report(Device::Ull, IoPath::KernelPolled, &p, bs, ios);
                        let hybrid = sync_report(Device::Ull, IoPath::KernelHybrid, &p, bs, ios);
                        let i = int.mean_latency().as_micros_f64();
                        Fig16Row {
                            pattern: p.label,
                            block_size: bs,
                            poll_reduction_pct: reduction_pct(
                                i,
                                poll.mean_latency().as_micros_f64(),
                            ),
                            hybrid_reduction_pct: reduction_pct(
                                i,
                                hybrid.mean_latency().as_micros_f64(),
                            ),
                        }
                    },
                ));
            }
        }
        cells
    }

    fn collect(&self, _scale: Scale, rows: Vec<Fig16Row>) -> Fig16 {
        Fig16 { rows }
    }
}

/// Runs fig. 16.
pub fn fig16_run(scale: Scale) -> Fig16 {
    run_experiment(&Fig16Exp, scale, 1)
}

impl Report for Fig16 {
    fn check(&self) -> Vec<String> {
        Fig16::check(self)
    }

    fn into_json(self) -> Json {
        let rows: Vec<Json> = self
            .rows
            .iter()
            .map(|r| {
                Json::obj()
                    .field("pattern", r.pattern)
                    .field("block_size", r.block_size)
                    .field("poll_reduction_pct", r.poll_reduction_pct)
                    .field("hybrid_reduction_pct", r.hybrid_reduction_pct)
            })
            .collect();
        Json::obj().field("rows", rows)
    }
}

impl Fig16 {
    /// Shape violations vs §V-C.
    pub fn check(&self) -> Vec<String> {
        let mut v = Vec::new();
        let mut hybrid_wins = 0;
        for r in &self.rows {
            if r.hybrid_reduction_pct > r.poll_reduction_pct {
                hybrid_wins += 1;
            }
            if r.hybrid_reduction_pct < -5.0 {
                v.push(format!(
                    "{} {}K: hybrid slower than interrupts by {:.0}%",
                    r.pattern,
                    r.block_size / 1024,
                    -r.hybrid_reduction_pct
                ));
            }
        }
        // Hybrid must not beat pure polling (its sleep is inaccurate).
        if hybrid_wins > self.rows.len() / 4 {
            v.push(format!(
                "hybrid beat polling in {hybrid_wins}/{} cells",
                self.rows.len()
            ));
        }
        let mean_poll =
            self.rows.iter().map(|r| r.poll_reduction_pct).sum::<f64>() / self.rows.len() as f64;
        if !(8.0..=35.0).contains(&mean_poll) {
            v.push(format!(
                "mean poll reduction {mean_poll:.1}%, paper up to 33%"
            ));
        }
        v
    }
}

impl fmt::Display for Fig16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Fig 16: latency reduction vs interrupts (ULL)")?;
        writeln!(
            f,
            "{:8}{:>7}{:>8}{:>9}",
            "pattern", "bs", "poll%", "hybrid%"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:8}{:>6}K{:>8.1}{:>9.1}",
                r.pattern,
                r.block_size / 1024,
                r.poll_reduction_pct,
                r.hybrid_reduction_pct
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig0910_shapes_hold() {
        let r = fig0910_run(Scale::Quick);
        assert!(r.check().is_empty(), "{:#?}\n{r}", r.check());
    }

    #[test]
    fn fig11_shapes_hold() {
        let r = fig11_run(Scale::Quick);
        assert!(r.check().is_empty(), "{:#?}\n{r}", r.check());
    }

    #[test]
    fn fig1213_shapes_hold() {
        let r = fig1213_run(Scale::Quick);
        assert!(r.check().is_empty(), "{:#?}\n{r}", r.check());
    }

    #[test]
    fn fig14_shapes_hold() {
        let r = fig14_run(Scale::Quick);
        assert!(r.check().is_empty(), "{:#?}\n{r}", r.check());
    }

    #[test]
    fn fig15_shapes_hold() {
        let r = fig15_run(Scale::Quick);
        assert!(r.check().is_empty(), "{:#?}\n{r}", r.check());
    }

    #[test]
    fn fig16_shapes_hold() {
        let r = fig16_run(Scale::Quick);
        assert!(r.check().is_empty(), "{:#?}\n{r}", r.check());
    }
}
