//! §VI — advanced storage stack (SPDK) analysis: figures 17/18 (SPDK vs
//! kernel latency on NVMe/ULL), 19 (large blocks), 20 (CPU utilization)
//! and 21/22 (memory instructions and their per-function breakdown).

use core::fmt;

use ull_stack::{IoPath, StackFn};
use ull_workload::{run_job, Engine, JobReport, JobSpec, Json};

use crate::engine::{run_experiment, Experiment, Report, SweepCell};
use crate::experiments::{PatternSpec, BIG_BLOCK_SIZES, BLOCK_SIZES, PATTERNS};
use crate::testbed::{host, reduction_pct, Device, Scale};

fn path_report(device: Device, path: IoPath, p: &PatternSpec, bs: u32, ios: u64) -> JobReport {
    let mut h = host(device, path);
    let engine = if path == IoPath::Spdk {
        Engine::SpdkPlugin
    } else {
        Engine::Pvsync2
    };
    let spec = JobSpec::new(format!("{}-{}k-{}", p.label, bs / 1024, path.label()))
        .pattern(p.pattern)
        .read_fraction(p.read_fraction)
        .block_size(bs)
        .engine(engine)
        .ios(ios)
        .seed(0xF1617);
    run_job(&mut h, &spec)
}

// ------------------------------------------------------ figs. 17, 18, 19

/// One point of figs. 17/18/19.
#[derive(Debug, Clone)]
pub struct SpdkLatencyRow {
    /// Device under test.
    pub device: Device,
    /// Access pattern label.
    pub pattern: &'static str,
    /// Block size, bytes.
    pub block_size: u32,
    /// Kernel-interrupt mean latency, µs.
    pub kernel_us: f64,
    /// SPDK mean latency, µs.
    pub spdk_us: f64,
}

impl SpdkLatencyRow {
    /// Percent latency reduction of SPDK vs the kernel path.
    pub fn gain_pct(&self) -> f64 {
        reduction_pct(self.kernel_us, self.spdk_us)
    }
}

/// Figs. 17/18 (small blocks) and 19 (large blocks): SPDK vs kernel.
#[derive(Debug)]
pub struct Fig171819 {
    /// Small-block points (figs. 17/18).
    pub small: Vec<SpdkLatencyRow>,
    /// Large-block ULL points (fig. 19).
    pub large: Vec<SpdkLatencyRow>,
}

/// Figs. 17/18/19 as a registry experiment.
///
/// Cells span two grids (the small-block grid of figs. 17/18 and the
/// large-block ULL grid of fig. 19), so each cell output is tagged with
/// which grid it belongs to and `collect` partitions in order.
#[derive(Debug)]
pub struct Fig171819Exp;

impl Experiment for Fig171819Exp {
    type Cell = (bool, SpdkLatencyRow); // (is_large_block, row)
    type Report = Fig171819;

    fn name(&self) -> &'static str {
        "fig17"
    }

    fn title(&self) -> &'static str {
        "Fig 17/18/19 (SPDK vs kernel latency)"
    }

    fn description(&self) -> &'static str {
        "SPDK userspace driver latency vs the kernel stack"
    }

    fn aliases(&self) -> &'static [&'static str] {
        &["fig18", "fig19"]
    }

    fn cells(&self, scale: Scale) -> Vec<SweepCell<(bool, SpdkLatencyRow)>> {
        let ios = scale.ios(3_000, 100_000);
        let mut cells = Vec::new();
        for device in Device::ALL {
            for p in PATTERNS {
                for bs in BLOCK_SIZES {
                    cells.push(SweepCell::new(
                        format!("{}/{}/{}K", device.label(), p.label, bs / 1024),
                        move || {
                            let kernel = path_report(device, IoPath::KernelInterrupt, &p, bs, ios);
                            let spdk = path_report(device, IoPath::Spdk, &p, bs, ios);
                            (
                                false,
                                SpdkLatencyRow {
                                    device,
                                    pattern: p.label,
                                    block_size: bs,
                                    kernel_us: kernel.mean_latency().as_micros_f64(),
                                    spdk_us: spdk.mean_latency().as_micros_f64(),
                                },
                            )
                        },
                    ));
                }
            }
        }
        let big_ios = scale.ios(1_500, 30_000);
        for p in PATTERNS {
            for bs in BIG_BLOCK_SIZES {
                cells.push(SweepCell::new(
                    format!("ULL/{}/{}K", p.label, bs / 1024),
                    move || {
                        let kernel =
                            path_report(Device::Ull, IoPath::KernelInterrupt, &p, bs, big_ios);
                        let spdk = path_report(Device::Ull, IoPath::Spdk, &p, bs, big_ios);
                        (
                            true,
                            SpdkLatencyRow {
                                device: Device::Ull,
                                pattern: p.label,
                                block_size: bs,
                                kernel_us: kernel.mean_latency().as_micros_f64(),
                                spdk_us: spdk.mean_latency().as_micros_f64(),
                            },
                        )
                    },
                ));
            }
        }
        cells
    }

    fn collect(&self, _scale: Scale, outputs: Vec<(bool, SpdkLatencyRow)>) -> Fig171819 {
        let mut small = Vec::new();
        let mut large = Vec::new();
        for (is_large, row) in outputs {
            if is_large {
                large.push(row);
            } else {
                small.push(row);
            }
        }
        Fig171819 { small, large }
    }
}

/// Runs figs. 17, 18 and 19.
pub fn fig171819_run(scale: Scale) -> Fig171819 {
    run_experiment(&Fig171819Exp, scale, 1)
}

fn spdk_row_json(r: &SpdkLatencyRow) -> Json {
    Json::obj()
        .field("device", r.device.label())
        .field("pattern", r.pattern)
        .field("block_size", r.block_size)
        .field("kernel_us", r.kernel_us)
        .field("spdk_us", r.spdk_us)
        .field("gain_pct", r.gain_pct())
}

impl Report for Fig171819 {
    fn check(&self) -> Vec<String> {
        Fig171819::check(self)
    }

    fn into_json(self) -> Json {
        Json::obj()
            .field(
                "small",
                Json::Arr(self.small.iter().map(spdk_row_json).collect()),
            )
            .field(
                "large",
                Json::Arr(self.large.iter().map(spdk_row_json).collect()),
            )
    }
}

impl Fig171819 {
    /// Mean SPDK gain for one device over the small-block grid, percent.
    pub fn mean_small_gain(&self, device: Device) -> f64 {
        let rows: Vec<&SpdkLatencyRow> = self.small.iter().filter(|r| r.device == device).collect();
        rows.iter().map(|r| r.gain_pct()).sum::<f64>() / rows.len() as f64
    }

    /// Shape violations vs §VI-A/B.
    pub fn check(&self) -> Vec<String> {
        let mut v = Vec::new();
        let ull = self.mean_small_gain(Device::Ull);
        let nvme = self.mean_small_gain(Device::Nvme750);
        // SPDK pays off on the ULL device (paper: 6-25% by pattern)...
        if !(10.0..=35.0).contains(&ull) {
            v.push(format!("ULL SPDK gain {ull:.1}%, paper ~15-25%"));
        }
        // ...and matters less on the NVMe device.
        if nvme >= ull {
            v.push(format!("SPDK gain NVMe {nvme:.1}% !< ULL {ull:.1}%"));
        }
        // Fig. 19: the benefit vanishes with large blocks.
        let mean_large: f64 =
            self.large.iter().map(|r| r.gain_pct()).sum::<f64>() / self.large.len() as f64;
        if mean_large > 0.5 * ull {
            v.push(format!(
                "large-block gain {mean_large:.1}% should collapse vs {ull:.1}%"
            ));
        }
        let mb = self.large.iter().filter(|r| r.block_size == 1 << 20);
        for r in mb {
            if r.gain_pct() > 8.0 {
                v.push(format!(
                    "1MB {}: SPDK still gains {:.1}%",
                    r.pattern,
                    r.gain_pct()
                ));
            }
        }
        v
    }
}

impl fmt::Display for Fig171819 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Fig 17/18: SPDK vs kernel-interrupt mean latency")?;
        writeln!(
            f,
            "{:10}{:8}{:>7}{:>12}{:>10}{:>8}",
            "device", "pattern", "bs", "kernel(us)", "spdk(us)", "gain%"
        )?;
        for r in &self.small {
            writeln!(
                f,
                "{:10}{:8}{:>6}K{:>12.1}{:>10.1}{:>8.1}",
                r.device.label(),
                r.pattern,
                r.block_size / 1024,
                r.kernel_us,
                r.spdk_us,
                r.gain_pct()
            )?;
        }
        writeln!(f, "Fig 19: large blocks (ULL)")?;
        for r in &self.large {
            writeln!(
                f,
                "{:10}{:8}{:>6}K{:>12.1}{:>10.1}{:>8.1}",
                r.device.label(),
                r.pattern,
                r.block_size / 1024,
                r.kernel_us,
                r.spdk_us,
                r.gain_pct()
            )?;
        }
        Ok(())
    }
}

// ----------------------------------------------------------------- fig. 20

/// One point of fig. 20.
#[derive(Debug, Clone)]
pub struct Fig20Row {
    /// True for the SPDK path, false for the conventional stack.
    pub spdk: bool,
    /// Access pattern label.
    pub pattern: &'static str,
    /// Block size, bytes.
    pub block_size: u32,
    /// User-mode utilization, 0-1.
    pub user: f64,
    /// Kernel-mode utilization, 0-1.
    pub kernel: f64,
}

/// Fig. 20: CPU utilization of SPDK vs the conventional stack (ULL).
#[derive(Debug)]
pub struct Fig20 {
    /// All measured points.
    pub rows: Vec<Fig20Row>,
}

/// Fig. 20 as a registry experiment.
#[derive(Debug)]
pub struct Fig20Exp;

impl Experiment for Fig20Exp {
    type Cell = Fig20Row;
    type Report = Fig20;

    fn name(&self) -> &'static str {
        "fig20"
    }

    fn title(&self) -> &'static str {
        "Fig 20 (SPDK CPU utilization)"
    }

    fn description(&self) -> &'static str {
        "SPDK reactor core occupancy vs kernel paths"
    }

    fn cells(&self, scale: Scale) -> Vec<SweepCell<Fig20Row>> {
        let ios = scale.ios(3_000, 100_000);
        let mut cells = Vec::new();
        for spdk in [false, true] {
            let path = if spdk {
                IoPath::Spdk
            } else {
                IoPath::KernelInterrupt
            };
            for p in PATTERNS {
                for bs in BLOCK_SIZES {
                    cells.push(SweepCell::new(
                        format!("{}/{}/{}K", path.label(), p.label, bs / 1024),
                        move || {
                            let r = path_report(Device::Ull, path, &p, bs, ios);
                            Fig20Row {
                                spdk,
                                pattern: p.label,
                                block_size: bs,
                                user: r.user_util,
                                kernel: r.kernel_util,
                            }
                        },
                    ));
                }
            }
        }
        cells
    }

    fn collect(&self, _scale: Scale, rows: Vec<Fig20Row>) -> Fig20 {
        Fig20 { rows }
    }
}

/// Runs fig. 20.
pub fn fig20_run(scale: Scale) -> Fig20 {
    run_experiment(&Fig20Exp, scale, 1)
}

impl Report for Fig20 {
    fn check(&self) -> Vec<String> {
        Fig20::check(self)
    }

    fn into_json(self) -> Json {
        let rows: Vec<Json> = self
            .rows
            .iter()
            .map(|r| {
                Json::obj()
                    .field("stack", if r.spdk { "spdk" } else { "kernel" })
                    .field("pattern", r.pattern)
                    .field("block_size", r.block_size)
                    .field("user", r.user)
                    .field("kernel", r.kernel)
            })
            .collect();
        Json::obj().field("rows", rows)
    }
}

impl Fig20 {
    /// Shape violations vs §VI-B.
    pub fn check(&self) -> Vec<String> {
        let mut v = Vec::new();
        for r in &self.rows {
            if r.spdk {
                if r.user + r.kernel < 0.95 {
                    v.push(format!(
                        "SPDK {} {}K util {:.0}%, paper 100%",
                        r.pattern,
                        r.block_size / 1024,
                        (r.user + r.kernel) * 100.0
                    ));
                }
                if r.kernel > 0.05 {
                    v.push("SPDK must not burn kernel time".into());
                }
            } else if r.user + r.kernel > 0.50 {
                v.push(format!(
                    "conventional {} {}K util {:.0}%, paper ~25%",
                    r.pattern,
                    r.block_size / 1024,
                    (r.user + r.kernel) * 100.0
                ));
            }
        }
        v
    }
}

impl fmt::Display for Fig20 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Fig 20: CPU utilization, SPDK vs conventional (ULL)")?;
        writeln!(
            f,
            "{:8}{:8}{:>7}{:>8}{:>8}",
            "stack", "pattern", "bs", "user%", "sys%"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:8}{:8}{:>6}K{:>8.1}{:>8.1}",
                if r.spdk { "spdk" } else { "kernel" },
                r.pattern,
                r.block_size / 1024,
                r.user * 100.0,
                r.kernel * 100.0
            )?;
        }
        Ok(())
    }
}

// ------------------------------------------------------------ figs. 21/22

/// One pattern/block-size cell of fig. 21, with fig. 22's breakdown.
#[derive(Debug, Clone)]
pub struct Fig2122Row {
    /// Access pattern label.
    pub pattern: &'static str,
    /// Block size, bytes.
    pub block_size: u32,
    /// SPDK/interrupt load ratio (fig. 21).
    pub spdk_load_ratio: f64,
    /// SPDK/interrupt store ratio (fig. 21).
    pub spdk_store_ratio: f64,
    /// Kernel polling: share of loads+stores in `blk_mq_poll`+`nvme_poll`
    /// (fig. 22a).
    pub poll_pair_share: f64,
    /// SPDK: share of loads in `spdk_nvme_qpair_process_completions`
    /// (fig. 22b).
    pub spdk_qpair_share: f64,
    /// SPDK: share of loads in `nvme_pcie_qpair_process_completions`.
    pub spdk_pcie_share: f64,
    /// SPDK: share of loads in `nvme_qpair_check_enabled`.
    pub spdk_check_share: f64,
}

/// Figs. 21 and 22: memory-instruction inflation and per-function
/// breakdown (ULL).
#[derive(Debug)]
pub struct Fig2122 {
    /// All measured points.
    pub rows: Vec<Fig2122Row>,
}

/// Figs. 21/22 as a registry experiment.
#[derive(Debug)]
pub struct Fig2122Exp;

impl Experiment for Fig2122Exp {
    type Cell = Fig2122Row;
    type Report = Fig2122;

    fn name(&self) -> &'static str {
        "fig21"
    }

    fn title(&self) -> &'static str {
        "Fig 21/22 (SPDK memory instructions)"
    }

    fn description(&self) -> &'static str {
        "memory-instruction profile of the SPDK reactor"
    }

    fn aliases(&self) -> &'static [&'static str] {
        &["fig22"]
    }

    fn cells(&self, scale: Scale) -> Vec<SweepCell<Fig2122Row>> {
        let ios = scale.ios(3_000, 100_000);
        let mut cells = Vec::new();
        for p in PATTERNS {
            for bs in BLOCK_SIZES {
                cells.push(SweepCell::new(
                    format!("{}/{}K", p.label, bs / 1024),
                    move || {
                        let int = path_report(Device::Ull, IoPath::KernelInterrupt, &p, bs, ios);
                        let poll = path_report(Device::Ull, IoPath::KernelPolled, &p, bs, ios);
                        let spdk = path_report(Device::Ull, IoPath::Spdk, &p, bs, ios);
                        let poll_pair = poll.mem_of(StackFn::BlkMqPoll).total()
                            + poll.mem_of(StackFn::NvmePoll).total();
                        let spdk_loads = spdk.mem.loads as f64;
                        Fig2122Row {
                            pattern: p.label,
                            block_size: bs,
                            spdk_load_ratio: spdk.mem.loads as f64 / int.mem.loads as f64,
                            spdk_store_ratio: spdk.mem.stores as f64 / int.mem.stores as f64,
                            poll_pair_share: poll_pair as f64 / poll.mem.total() as f64,
                            spdk_qpair_share: spdk.mem_of(StackFn::SpdkQpairProcess).loads as f64
                                / spdk_loads,
                            spdk_pcie_share: spdk.mem_of(StackFn::SpdkPcieProcess).loads as f64
                                / spdk_loads,
                            spdk_check_share: spdk.mem_of(StackFn::SpdkCheckEnabled).loads as f64
                                / spdk_loads,
                        }
                    },
                ));
            }
        }
        cells
    }

    fn collect(&self, _scale: Scale, rows: Vec<Fig2122Row>) -> Fig2122 {
        Fig2122 { rows }
    }
}

/// Runs figs. 21 and 22.
pub fn fig2122_run(scale: Scale) -> Fig2122 {
    run_experiment(&Fig2122Exp, scale, 1)
}

impl Report for Fig2122 {
    fn check(&self) -> Vec<String> {
        Fig2122::check(self)
    }

    fn into_json(self) -> Json {
        let rows: Vec<Json> = self
            .rows
            .iter()
            .map(|r| {
                Json::obj()
                    .field("pattern", r.pattern)
                    .field("block_size", r.block_size)
                    .field("spdk_load_ratio", r.spdk_load_ratio)
                    .field("spdk_store_ratio", r.spdk_store_ratio)
                    .field("poll_pair_share", r.poll_pair_share)
                    .field("spdk_qpair_share", r.spdk_qpair_share)
                    .field("spdk_pcie_share", r.spdk_pcie_share)
                    .field("spdk_check_share", r.spdk_check_share)
            })
            .collect();
        Json::obj().field("rows", rows)
    }
}

impl Fig2122 {
    /// Shape violations vs §VI-B (figs. 21/22).
    pub fn check(&self) -> Vec<String> {
        let mut v = Vec::new();
        let n = self.rows.len() as f64;
        let mean = |f: fn(&Fig2122Row) -> f64| self.rows.iter().map(f).sum::<f64>() / n;
        let loads = mean(|r| r.spdk_load_ratio);
        let stores = mean(|r| r.spdk_store_ratio);
        // Paper: ~23x loads, ~16x stores ("dozens of times" §VI-B); accept
        // the order of magnitude — rare tail events add reactor spin, so
        // the ratio drifts upward with sample count.
        if !(8.0..=48.0).contains(&loads) {
            v.push(format!("SPDK load ratio {loads:.1}, paper ~23x"));
        }
        if !(6.0..=36.0).contains(&stores) {
            v.push(format!("SPDK store ratio {stores:.1}, paper ~16x"));
        }
        // The paper reports ~39%; our per-iteration attribution runs higher
        // (~60-75%) because the fixed per-IO "others" work VTune sees is
        // larger than our cost table's. The qualitative claim — the polling
        // pair dominates the profile — is what we enforce.
        let pair = mean(|r| r.poll_pair_share);
        if !(0.25..=0.85).contains(&pair) {
            v.push(format!("poll pair share {:.0}%, paper ~39%", pair * 100.0));
        }
        let qpair = mean(|r| r.spdk_qpair_share);
        let pcie = mean(|r| r.spdk_pcie_share);
        let check = mean(|r| r.spdk_check_share);
        if !(qpair > pcie && pcie > check * 0.8) {
            v.push(format!(
                "SPDK load ranking qpair {qpair:.2} > pcie {pcie:.2} > check {check:.2} broken"
            ));
        }
        if !(0.10..=0.35).contains(&check) {
            v.push(format!(
                "check_enabled share {:.0}%, paper ~20%",
                check * 100.0
            ));
        }
        v
    }
}

impl fmt::Display for Fig2122 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Fig 21/22: memory instructions, SPDK vs interrupt (ULL)")?;
        writeln!(
            f,
            "{:8}{:>7}{:>8}{:>8}{:>10}{:>9}{:>9}{:>9}",
            "pattern", "bs", "ld-x", "st-x", "pollpair%", "qpair%", "pcie%", "check%"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:8}{:>6}K{:>8.1}{:>8.1}{:>10.1}{:>9.1}{:>9.1}{:>9.1}",
                r.pattern,
                r.block_size / 1024,
                r.spdk_load_ratio,
                r.spdk_store_ratio,
                r.poll_pair_share * 100.0,
                r.spdk_qpair_share * 100.0,
                r.spdk_pcie_share * 100.0,
                r.spdk_check_share * 100.0
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig171819_shapes_hold() {
        let r = fig171819_run(Scale::Quick);
        assert!(r.check().is_empty(), "{:#?}\n{r}", r.check());
    }

    #[test]
    fn fig20_shapes_hold() {
        let r = fig20_run(Scale::Quick);
        assert!(r.check().is_empty(), "{:#?}\n{r}", r.check());
    }

    #[test]
    fn fig2122_shapes_hold() {
        let r = fig2122_run(Scale::Quick);
        assert!(r.check().is_empty(), "{:#?}\n{r}", r.check());
    }
}
