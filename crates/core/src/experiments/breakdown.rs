//! Observability extension: software-vs-device latency attribution.
//!
//! The paper's central method is splitting each I/O's latency into
//! software-stack time and device time (§IV-B, §V): on a flash SSD the
//! device dwarfs the kernel, so nobody noticed the kernel; on a ULL
//! device the same kernel is suddenly a first-order cost. This
//! experiment reproduces that attribution with the `ull-probe` span
//! machinery: every request's latency is tiled into stages
//! (submit → SQ wait → controller → flash → DMA → completion delivery),
//! summed into a [`MetricSet`] per cell, and the software/device split
//! is checked for the paper's qualitative shapes:
//!
//! * device time dominates end-to-end latency on the NVMe SSD,
//! * the software *share* grows sharply on the ULL SSD (same kernel,
//!   much faster device),
//! * polling trades interrupt delivery + context switch for spin time
//!   (the `irq_deliver` bucket empties, `poll_pickup` fills), buying a
//!   lower mean on the ULL device.
//!
//! The sweep is excluded from `reproduce all` (it extends the paper's
//! figure list); run it with `reproduce breakdown` (alias `sw_vs_dev`).
//! CI pins its quick-scale JSON in `BENCH_breakdown_quick.json`.

use core::fmt;

use ull_probe::{MetricSet, ProbeConfig, ProbeReport, Stage};
use ull_stack::IoPath;
use ull_workload::{JobSpec, Json, Pattern};

use crate::engine::{run_experiment, Experiment, Report, SweepCell};
use crate::testbed::{host, Device, Scale};

/// The completion paths swept, with their row labels.
pub const PATHS: [(IoPath, &str); 3] = [
    (IoPath::KernelInterrupt, "interrupt"),
    (IoPath::KernelPolled, "poll"),
    (IoPath::KernelHybrid, "hybrid"),
];

/// One measured cell of the breakdown sweep.
#[derive(Debug, Clone)]
pub struct BreakdownRow {
    /// Device under test.
    pub device: Device,
    /// Completion-path label (`"interrupt"`, `"poll"`, `"hybrid"`).
    pub path_label: &'static str,
    /// Aggregated per-stage metrics for the whole cell.
    pub metrics: MetricSet,
}

impl BreakdownRow {
    /// Fraction of total end-to-end time spent in host software.
    pub fn software_share(&self) -> f64 {
        let total = self.metrics.e2e_total_ns();
        if total == 0 {
            return 0.0;
        }
        self.metrics.software_ns() as f64 / total as f64
    }

    /// Mean end-to-end latency in microseconds.
    pub fn mean_us(&self) -> f64 {
        ull_probe::mean_ns(self.metrics.e2e_total_ns(), self.metrics.ios()).as_micros_f64()
    }

    fn scenario(&self) -> String {
        format!("{}/{}", self.device.label(), self.path_label)
    }
}

/// The breakdown sweep as a registry experiment.
#[derive(Debug)]
pub struct BreakdownExp;

impl Experiment for BreakdownExp {
    type Cell = BreakdownRow;
    type Report = Breakdown;

    fn name(&self) -> &'static str {
        "breakdown"
    }

    fn title(&self) -> &'static str {
        "Breakdown (software vs device latency attribution)"
    }

    fn aliases(&self) -> &'static [&'static str] {
        &["sw_vs_dev"]
    }

    fn description(&self) -> &'static str {
        "per-stage latency attribution: software share explodes on ULL"
    }

    fn traceable(&self) -> bool {
        true
    }

    fn trace(&self, scale: Scale) -> Option<ProbeReport> {
        // A representative lane for `reproduce --trace`: the ULL device
        // on the interrupt path, where the paper's headline attribution
        // (kernel costs of the same magnitude as the media) is most
        // visible request by request.
        let ios = scale.ios(1_000, 20_000);
        let mut h = host(Device::Ull, IoPath::KernelInterrupt);
        h.enable_probe(ProbeConfig::default());
        let spec = JobSpec::new("trace/ULL/interrupt")
            .pattern(Pattern::Random)
            .read_fraction(0.7)
            .block_size(4096)
            .ios(ios)
            .seed(0x00B4_EAD0)
            .iodepth(1);
        let _ = ull_workload::run_job(&mut h, &spec);
        h.take_probe()
    }

    fn cells(&self, scale: Scale) -> Vec<SweepCell<BreakdownRow>> {
        let ios = scale.ios(4_000, 400_000);
        let mut cells = Vec::new();
        for device in Device::ALL {
            for (path, path_label) in PATHS {
                let label = format!("{}/{}", device.label(), path_label);
                cells.push(SweepCell::new(label.clone(), move || {
                    let mut h = host(device, path);
                    h.enable_probe(ProbeConfig::default());
                    let spec = JobSpec::new(label)
                        .pattern(Pattern::Random)
                        .read_fraction(0.7)
                        .block_size(4096)
                        .ios(ios)
                        .seed(0x00B4_EAD0)
                        .iodepth(1);
                    let _ = ull_workload::run_job(&mut h, &spec);
                    let report = h
                        .take_probe()
                        // simlint: allow(S006): enable_probe ran four lines above on this host
                        .expect("probe was enabled before the job");
                    BreakdownRow {
                        device,
                        path_label,
                        metrics: report.metrics,
                    }
                }));
            }
        }
        cells
    }

    fn collect(&self, _scale: Scale, rows: Vec<BreakdownRow>) -> Breakdown {
        Breakdown { rows }
    }
}

/// The finished breakdown sweep.
#[derive(Debug)]
pub struct Breakdown {
    /// All measured cells, device-major, path-minor (the order of
    /// [`BreakdownExp::cells`]).
    pub rows: Vec<BreakdownRow>,
}

/// Runs the breakdown sweep serially.
pub fn breakdown_run(scale: Scale) -> Breakdown {
    run_experiment(&BreakdownExp, scale, 1)
}

impl Breakdown {
    fn row(&self, device: Device, path_label: &str) -> Option<&BreakdownRow> {
        self.rows
            .iter()
            .find(|r| r.device == device && r.path_label == path_label)
    }

    /// Shape violations: exact accounting in every cell, device dominance
    /// on flash, software-share growth on ULL, and the poll-for-interrupt
    /// stage trade.
    pub fn check(&self) -> Vec<String> {
        let mut v = Vec::new();
        for r in &self.rows {
            let sc = r.scenario();
            if !r.metrics.accounting_exact() {
                v.push(format!("{sc}: sum(stages) != end-to-end"));
            }
            if r.metrics.ios() == 0 {
                v.push(format!("{sc}: no I/Os recorded"));
            }
            // The stage trade: interrupt delivers via IRQ + wakeup, the
            // polling paths spin — their pickup buckets must not mix.
            let irq = r.metrics.stage_total_ns(Stage::IrqDeliver);
            let poll = r.metrics.stage_total_ns(Stage::PollPickup);
            match r.path_label {
                "interrupt" if irq == 0 || poll != 0 => {
                    v.push(format!("{sc}: interrupt must pick up via irq_deliver only"));
                }
                "poll" | "hybrid" if poll == 0 || irq != 0 => {
                    v.push(format!(
                        "{sc}: {} must pick up via poll_pickup only",
                        r.path_label
                    ));
                }
                _ => {}
            }
        }
        // Device time dominates on the flash SSD in every mode (§IV-B).
        for (_, path_label) in PATHS {
            let Some(r) = self.row(Device::Nvme750, path_label) else {
                v.push(format!("NVMe SSD/{path_label}: missing row"));
                continue;
            };
            if r.metrics.device_ns() <= r.metrics.software_ns() {
                v.push(format!(
                    "NVMe SSD/{path_label}: device time must dominate (sw share {:.0}%)",
                    r.software_share() * 100.0
                ));
            }
        }
        // The software share grows sharply on the ULL device: the same
        // kernel stack against a much faster device (§V). Hybrid is
        // excluded: its sleep is tuned to the device's mean, so oversleep
        // against the flash SSD's spread inflates the flash-side share
        // (checked separately below).
        for path_label in ["interrupt", "poll"] {
            let (Some(ull), Some(nvme)) = (
                self.row(Device::Ull, path_label),
                self.row(Device::Nvme750, path_label),
            ) else {
                continue;
            };
            if ull.software_share() <= 1.5 * nvme.software_share() {
                v.push(format!(
                    "{path_label}: ULL software share {:.1}% must far exceed flash {:.1}%",
                    ull.software_share() * 100.0,
                    nvme.software_share() * 100.0
                ));
            }
        }
        // Hybrid's oversleep is visible in the attribution: against the
        // flash SSD's wide latency spread, the EWMA-tuned sleep overshoots
        // and the overshoot lands in poll_pickup — far beyond what pure
        // polling pays on the same device.
        if let (Some(hy), Some(po)) = (
            self.row(Device::Nvme750, "hybrid"),
            self.row(Device::Nvme750, "poll"),
        ) {
            if hy.metrics.stage_total_ns(Stage::PollPickup)
                <= 2 * po.metrics.stage_total_ns(Stage::PollPickup)
            {
                v.push("NVMe SSD: hybrid oversleep must show up in poll_pickup".into());
            }
        }
        // Polling buys a lower mean on the ULL device (fig. 10).
        if let (Some(int), Some(poll)) = (
            self.row(Device::Ull, "interrupt"),
            self.row(Device::Ull, "poll"),
        ) {
            if poll.mean_us() >= int.mean_us() {
                v.push(format!(
                    "ULL: poll mean {:.1}us must beat interrupt {:.1}us",
                    poll.mean_us(),
                    int.mean_us()
                ));
            }
        }
        v
    }
}

impl Report for Breakdown {
    fn check(&self) -> Vec<String> {
        Breakdown::check(self)
    }

    fn into_json(self) -> Json {
        let rows: Vec<Json> = self
            .rows
            .iter()
            .map(|r| {
                Json::obj()
                    .field("device", r.device.label())
                    .field("path", r.path_label)
                    .field("software_share", r.software_share())
                    .field("metrics", r.metrics.to_json())
            })
            .collect();
        Json::obj().field("rows", rows)
    }
}

impl fmt::Display for Breakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Latency breakdown: software vs device attribution (4K random, 70% read, QD1)"
        )?;
        writeln!(
            f,
            "{:22}{:>8}{:>11}{:>9}{:>9}{:>12}{:>12}{:>12}",
            "scenario",
            "ios",
            "mean(us)",
            "sw(%)",
            "dev(%)",
            "submit(us)",
            "pickup(us)",
            "flash(us)"
        )?;
        for r in &self.rows {
            let m = &r.metrics;
            let per_io = |ns: u128| ull_probe::mean_ns(ns, m.ios()).as_micros_f64();
            let pickup = m.stage_total_ns(Stage::IrqDeliver)
                + m.stage_total_ns(Stage::PollPickup)
                + m.stage_total_ns(Stage::CompleteDeliver);
            writeln!(
                f,
                "{:22}{:>8}{:>11.2}{:>9.1}{:>9.1}{:>12.2}{:>12.2}{:>12.2}",
                r.scenario(),
                m.ios(),
                r.mean_us(),
                r.software_share() * 100.0,
                (1.0 - r.software_share()) * 100.0,
                per_io(m.stage_total_ns(Stage::SubmitStack)),
                per_io(pickup),
                per_io(m.stage_total_ns(Stage::FlashCell)),
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::run_experiment;

    #[test]
    fn breakdown_shapes_hold() {
        let r = breakdown_run(Scale::Quick);
        assert!(r.check().is_empty(), "{:#?}\n{r}", r.check());
    }

    #[test]
    fn serial_and_parallel_sweeps_are_byte_identical() {
        let serial = run_experiment(&BreakdownExp, Scale::Quick, 1);
        let parallel = run_experiment(&BreakdownExp, Scale::Quick, 4);
        assert_eq!(
            serial.into_json().to_string(),
            parallel.into_json().to_string(),
            "breakdown sweep must be deterministic under --jobs"
        );
    }

    #[test]
    fn shares_are_fractions() {
        let r = breakdown_run(Scale::Quick);
        for row in &r.rows {
            let s = row.software_share();
            assert!((0.0..=1.0).contains(&s), "{}: share {s}", row.scenario());
        }
    }
}
