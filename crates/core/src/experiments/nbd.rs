//! §VI-C — fig. 23: SPDK in a real server-client system (kernel NBD vs
//! SPDK NBD with a client-side ext4).

use core::fmt;

use ull_netblock::{NbdServerKind, NbdSystem};
use ull_simkit::{SimDuration, SimTime, Summary};
use ull_ssd::presets;
use ull_workload::Json;

use crate::engine::{run_experiment, Experiment, Report, SweepCell};
use crate::testbed::{reduction_pct, Scale};

/// The file sizes swept in fig. 23.
pub const FIG23_SIZES: [u32; 5] = [4 << 10, 8 << 10, 16 << 10, 32 << 10, 64 << 10];

/// One point of fig. 23.
#[derive(Debug, Clone)]
pub struct Fig23Row {
    /// Whether this row measures writes.
    pub write: bool,
    /// Whether the accesses are sequential file ids.
    pub sequential: bool,
    /// File size, bytes.
    pub file_size: u32,
    /// Kernel-NBD mean latency, µs.
    pub kernel_us: f64,
    /// SPDK-NBD mean latency, µs.
    pub spdk_us: f64,
}

impl Fig23Row {
    /// Percent latency reduction of SPDK NBD.
    pub fn gain_pct(&self) -> f64 {
        reduction_pct(self.kernel_us, self.spdk_us)
    }
}

/// Fig. 23: server-client latency, kernel NBD vs SPDK NBD (ULL SSD).
#[derive(Debug)]
pub struct Fig23 {
    /// All measured points.
    pub rows: Vec<Fig23Row>,
}

/// Fig. 23 as a registry experiment.
#[derive(Debug)]
pub struct Fig23Exp;

impl Experiment for Fig23Exp {
    type Cell = Fig23Row;
    type Report = Fig23;

    fn name(&self) -> &'static str {
        "fig23"
    }

    fn title(&self) -> &'static str {
        "Fig 23 (kernel NBD vs SPDK NBD)"
    }

    fn description(&self) -> &'static str {
        "server-client latency over ext4/NBD, kernel vs SPDK export"
    }

    fn cells(&self, scale: Scale) -> Vec<SweepCell<Fig23Row>> {
        let ops = scale.ios(2_000, 50_000);
        let mut cells = Vec::new();
        for write in [false, true] {
            for sequential in [true, false] {
                for size in FIG23_SIZES {
                    cells.push(SweepCell::new(
                        format!(
                            "{}/{}/{}K",
                            if write { "write" } else { "read" },
                            if sequential { "seq" } else { "rnd" },
                            size / 1024
                        ),
                        move || {
                            let mut lat = [0.0f64; 2];
                            for (i, kind) in [NbdServerKind::Kernel, NbdServerKind::Spdk]
                                .iter()
                                .enumerate()
                            {
                                let mut sys = NbdSystem::new(presets::ull_800g(), *kind, 0xF1623)
                                    .expect("preset valid");
                                let mut s = Summary::new();
                                let mut at = SimTime::ZERO;
                                for k in 0..ops {
                                    let file_id = if sequential {
                                        k
                                    } else {
                                        k.wrapping_mul(2654435761)
                                    };
                                    let r = if write {
                                        sys.file_write(at, file_id, size)
                                    } else {
                                        sys.file_read(at, file_id, size)
                                    };
                                    s.record(r.latency.as_micros_f64());
                                    at = r.done + SimDuration::from_micros(2);
                                }
                                lat[i] = s.mean();
                            }
                            Fig23Row {
                                write,
                                sequential,
                                file_size: size,
                                kernel_us: lat[0],
                                spdk_us: lat[1],
                            }
                        },
                    ));
                }
            }
        }
        cells
    }

    fn collect(&self, _scale: Scale, rows: Vec<Fig23Row>) -> Fig23 {
        Fig23 { rows }
    }
}

/// Runs fig. 23 (10 M-file working set approximated by hashing file ids
/// over the exported device).
pub fn fig23_run(scale: Scale) -> Fig23 {
    run_experiment(&Fig23Exp, scale, 1)
}

impl Report for Fig23 {
    fn check(&self) -> Vec<String> {
        Fig23::check(self)
    }

    fn into_json(self) -> Json {
        let rows: Vec<Json> = self
            .rows
            .iter()
            .map(|r| {
                Json::obj()
                    .field("op", if r.write { "write" } else { "read" })
                    .field("order", if r.sequential { "seq" } else { "rnd" })
                    .field("file_size", r.file_size)
                    .field("kernel_us", r.kernel_us)
                    .field("spdk_us", r.spdk_us)
                    .field("gain_pct", r.gain_pct())
            })
            .collect();
        Json::obj().field("rows", rows)
    }
}

impl Fig23 {
    /// Mean SPDK-NBD gain over one direction, percent.
    pub fn mean_gain(&self, write: bool) -> f64 {
        let rows: Vec<&Fig23Row> = self.rows.iter().filter(|r| r.write == write).collect();
        rows.iter().map(|r| r.gain_pct()).sum::<f64>() / rows.len() as f64
    }

    /// Shape violations vs §VI-C (paper: reads −39%/−38%, writes
    /// −3.7%/−4.6%).
    pub fn check(&self) -> Vec<String> {
        let mut v = Vec::new();
        let reads = self.mean_gain(false);
        let writes = self.mean_gain(true);
        if !(25.0..=55.0).contains(&reads) {
            v.push(format!("NBD read gain {reads:.1}%, paper ~39%"));
        }
        if !(0.0..=15.0).contains(&writes) {
            v.push(format!("NBD write gain {writes:.1}%, paper ~4%"));
        }
        if writes >= reads / 2.0 {
            v.push("writes must benefit far less than reads".into());
        }
        v
    }
}

impl fmt::Display for Fig23 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Fig 23: kernel NBD vs SPDK NBD over ext4 (ULL SSD)")?;
        writeln!(
            f,
            "{:6}{:6}{:>7}{:>12}{:>10}{:>8}",
            "op", "order", "size", "kernel(us)", "spdk(us)", "gain%"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:6}{:6}{:>6}K{:>12.1}{:>10.1}{:>8.1}",
                if r.write { "write" } else { "read" },
                if r.sequential { "seq" } else { "rnd" },
                r.file_size / 1024,
                r.kernel_us,
                r.spdk_us,
                r.gain_pct()
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig23_shapes_hold() {
        let r = fig23_run(Scale::Quick);
        assert!(r.check().is_empty(), "{:#?}\n{r}", r.check());
    }
}
