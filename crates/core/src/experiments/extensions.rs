//! Extensions beyond the paper's measurements: the three directions its
//! discussion explicitly points at.
//!
//! 1. **Faster NVM projection** (§V-A: polling "benefits can be more
//!    notable with future SSDs that employ faster NVM technologies such as
//!    ReRAM") — swap the Z-NAND media for a ReRAM-class spec with a leaner
//!    controller and re-run the completion-method comparison.
//! 2. **Lightweight queue protocol** (§IV-C: "a future ULL-enabled system
//!    may require to have a lighter queue mechanism and simpler protocol,
//!    such as NCQ") — shrink the blk-mq/driver protocol costs and measure
//!    what the rich NVMe queueing machinery costs a ULL device at low
//!    queue depth.
//! 3. **CPU opportunity cost** (§V-B1: "allocating an entire core to refer
//!    the I/O completions can hurt the overall system performance") — the
//!    compute headroom a co-located task would get under each completion
//!    method.

use core::fmt;

use ull_flash::FlashSpec;
use ull_simkit::SimDuration;
use ull_ssd::SsdConfig;
use ull_stack::{IoPath, SoftwareCosts};
use ull_workload::{run_job, Engine, JobSpec, Json, Pattern};

use crate::engine::{run_experiment, Experiment, Report, SweepCell};
use crate::testbed::{host, reduction_pct, Device, Scale};

/// The ReRAM-class device projection: ULL geometry with far faster media
/// and a leaner firmware path.
pub fn reram_projection() -> SsdConfig {
    let mut cfg = Device::Ull.config();
    cfg.name = "ReRAM-class projection";
    cfg.flash = FlashSpec::reram_class();
    // Short writes need no suspension.
    cfg.suspend_resume = false;
    // Faster media ships with leaner firmware paths.
    cfg.controller_read = SimDuration::from_nanos(800);
    cfg.controller_write = SimDuration::from_nanos(1_000);
    cfg.controller_per_op = SimDuration::from_nanos(500);
    cfg.channel_mbps = 1_600;
    cfg.read_tail = ull_ssd::TailEvent {
        probability: 1e-5,
        delay: SimDuration::from_micros(60),
    };
    cfg.write_tail = ull_ssd::TailEvent {
        probability: 1e-5,
        delay: SimDuration::from_micros(80),
    };
    cfg
}

/// A lightweight (NCQ-like) protocol cost table: single shallow queue, no
/// software/hardware queue indirection, minimal tagging.
pub fn light_queue_costs() -> SoftwareCosts {
    let mut c = SoftwareCosts::linux_4_14();
    c.block_layer = ull_stack::Segment::busy_ns(90, 110, 80);
    c.driver_submit = ull_stack::Segment::busy_ns(110, 70, 50);
    c
}

/// One row of the extension study.
#[derive(Debug, Clone)]
pub struct ExtRow {
    /// Configuration label.
    pub label: String,
    /// Mean 4 KB read latency under interrupts, µs.
    pub interrupt_us: f64,
    /// Mean 4 KB read latency under polling, µs.
    pub poll_us: f64,
    /// Mean 4 KB read latency over SPDK, µs.
    pub spdk_us: f64,
}

impl ExtRow {
    /// Polling's latency reduction vs interrupts, percent.
    pub fn poll_gain_pct(&self) -> f64 {
        reduction_pct(self.interrupt_us, self.poll_us)
    }

    /// SPDK's latency reduction vs interrupts, percent.
    pub fn spdk_gain_pct(&self) -> f64 {
        reduction_pct(self.interrupt_us, self.spdk_us)
    }
}

/// CPU headroom a co-located compute task gets per completion method.
#[derive(Debug, Clone)]
pub struct HeadroomRow {
    /// Completion method.
    pub path: IoPath,
    /// Fraction of the core left for other work.
    pub compute_headroom: f64,
    /// I/O throughput achieved meanwhile, KIOPS.
    pub kiops: f64,
}

/// The combined extension study.
#[derive(Debug)]
pub struct Extensions {
    /// Completion-method gains on Z-NAND vs the ReRAM projection.
    pub media: Vec<ExtRow>,
    /// NVMe-protocol vs light-queue latency on the ULL device (qd1).
    pub light_queue: Vec<ExtRow>,
    /// Compute headroom per completion method (ULL device).
    pub headroom: Vec<HeadroomRow>,
}

fn sweep_paths(cfg: SsdConfig, costs: SoftwareCosts, ios: u64, label: &str) -> ExtRow {
    let mut lat = [0.0f64; 3];
    for (i, path) in [IoPath::KernelInterrupt, IoPath::KernelPolled, IoPath::Spdk]
        .into_iter()
        .enumerate()
    {
        let ctrl = ull_nvme::NvmeController::new(
            ull_ssd::Ssd::new(cfg.clone()).expect("valid config"),
            1,
            1024,
        );
        let mut h = ull_stack::Host::new(ctrl, costs.clone(), path);
        let engine = if path == IoPath::Spdk {
            Engine::SpdkPlugin
        } else {
            Engine::Pvsync2
        };
        let spec = JobSpec::new("ext")
            .pattern(Pattern::Random)
            .engine(engine)
            .ios(ios);
        lat[i] = run_job(&mut h, &spec).mean_latency().as_micros_f64();
    }
    ExtRow {
        label: label.into(),
        interrupt_us: lat[0],
        poll_us: lat[1],
        spdk_us: lat[2],
    }
}

/// One cell output of the extension study: which sub-study it belongs
/// to, plus its row.
#[derive(Debug)]
pub enum ExtCell {
    /// A row of the media-speed comparison.
    Media(ExtRow),
    /// A row of the queue-protocol comparison.
    Light(ExtRow),
    /// A row of the compute-headroom study.
    Headroom(HeadroomRow),
}

/// The extension study as a registry experiment.
#[derive(Debug)]
pub struct ExtensionsExp;

/// A labelled sweep variant: name + device config + software-cost model.
type Variant = (&'static str, fn() -> SsdConfig, fn() -> SoftwareCosts);

impl Experiment for ExtensionsExp {
    type Cell = ExtCell;
    type Report = Extensions;

    fn name(&self) -> &'static str {
        "extensions"
    }

    fn title(&self) -> &'static str {
        "Extensions (faster NVM / light queue / CPU headroom)"
    }

    fn description(&self) -> &'static str {
        "what-if sweeps beyond the paper: faster media, lighter queues"
    }

    fn cells(&self, scale: Scale) -> Vec<SweepCell<ExtCell>> {
        let ios = scale.ios(5_000, 100_000);
        let mut cells = Vec::new();
        let media: [Variant; 2] = [
            ("Z-NAND", || Device::Ull.config(), SoftwareCosts::linux_4_14),
            ("ReRAM-class", reram_projection, SoftwareCosts::linux_4_14),
        ];
        for (label, cfg, costs) in media {
            cells.push(SweepCell::new(format!("media/{label}"), move || {
                ExtCell::Media(sweep_paths(cfg(), costs(), ios, label))
            }));
        }
        let queues: [Variant; 2] = [
            (
                "NVMe protocol",
                || Device::Ull.config(),
                SoftwareCosts::linux_4_14,
            ),
            ("light queue", || Device::Ull.config(), light_queue_costs),
        ];
        for (label, cfg, costs) in queues {
            cells.push(SweepCell::new(format!("queue/{label}"), move || {
                ExtCell::Light(sweep_paths(cfg(), costs(), ios, label))
            }));
        }
        for path in [
            IoPath::KernelInterrupt,
            IoPath::KernelHybrid,
            IoPath::KernelPolled,
        ] {
            cells.push(SweepCell::new(
                format!("headroom/{}", path.label()),
                move || {
                    let mut h = host(Device::Ull, path);
                    let spec = JobSpec::new("headroom").pattern(Pattern::Random).ios(ios);
                    let r = run_job(&mut h, &spec);
                    ExtCell::Headroom(HeadroomRow {
                        path,
                        compute_headroom: (1.0 - r.cpu_util()).max(0.0),
                        kiops: r.iops() / 1e3,
                    })
                },
            ));
        }
        cells
    }

    fn collect(&self, _scale: Scale, outputs: Vec<ExtCell>) -> Extensions {
        let mut media = Vec::new();
        let mut light_queue = Vec::new();
        let mut headroom = Vec::new();
        for cell in outputs {
            match cell {
                ExtCell::Media(r) => media.push(r),
                ExtCell::Light(r) => light_queue.push(r),
                ExtCell::Headroom(r) => headroom.push(r),
            }
        }
        Extensions {
            media,
            light_queue,
            headroom,
        }
    }
}

/// Runs the extension study.
pub fn run(scale: Scale) -> Extensions {
    run_experiment(&ExtensionsExp, scale, 1)
}

fn ext_row_json(r: &ExtRow) -> Json {
    Json::obj()
        .field("label", r.label.as_str())
        .field("interrupt_us", r.interrupt_us)
        .field("poll_us", r.poll_us)
        .field("spdk_us", r.spdk_us)
        .field("poll_gain_pct", r.poll_gain_pct())
        .field("spdk_gain_pct", r.spdk_gain_pct())
}

impl Report for Extensions {
    fn check(&self) -> Vec<String> {
        Extensions::check(self)
    }

    fn into_json(self) -> Json {
        Json::obj()
            .field(
                "media",
                Json::Arr(self.media.iter().map(ext_row_json).collect()),
            )
            .field(
                "light_queue",
                Json::Arr(self.light_queue.iter().map(ext_row_json).collect()),
            )
            .field(
                "headroom",
                Json::Arr(
                    self.headroom
                        .iter()
                        .map(|r| {
                            Json::obj()
                                .field("path", r.path.label())
                                .field("compute_headroom", r.compute_headroom)
                                .field("kiops", r.kiops)
                        })
                        .collect(),
                ),
            )
    }
}

impl Extensions {
    /// Shape violations for the extension claims.
    pub fn check(&self) -> Vec<String> {
        let mut v = Vec::new();
        // 1. Faster media must make completion-method choice matter *more*.
        let z = &self.media[0];
        let r = &self.media[1];
        if r.interrupt_us >= z.interrupt_us {
            v.push("ReRAM-class device must be faster outright".into());
        }
        if r.poll_gain_pct() <= z.poll_gain_pct() {
            v.push(format!(
                "poll gain must grow with faster media ({:.1}% -> {:.1}%)",
                z.poll_gain_pct(),
                r.poll_gain_pct()
            ));
        }
        if r.spdk_gain_pct() <= z.spdk_gain_pct() {
            v.push("SPDK gain must grow with faster media".into());
        }
        // 2. The lighter queue protocol shaves visible latency at qd1.
        let heavy = &self.light_queue[0];
        let light = &self.light_queue[1];
        let gain = reduction_pct(heavy.interrupt_us, light.interrupt_us);
        if !(1.0..=25.0).contains(&gain) {
            v.push(format!("light-queue gain {gain:.1}% out of expected band"));
        }
        // 3. Headroom orders interrupt > hybrid > poll, while polling still
        // wins throughput.
        let h = |p: IoPath| {
            self.headroom
                .iter()
                .find(|r| r.path == p)
                .expect("measured")
                .compute_headroom
        };
        if !(h(IoPath::KernelInterrupt) > h(IoPath::KernelHybrid)
            && h(IoPath::KernelHybrid) > h(IoPath::KernelPolled))
        {
            v.push("headroom must order interrupt > hybrid > poll".into());
        }
        if h(IoPath::KernelPolled) > 0.10 {
            v.push("polling should leave almost no headroom".into());
        }
        v
    }
}

impl fmt::Display for Extensions {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Extension 1: completion methods vs media speed (4KB random reads)"
        )?;
        writeln!(
            f,
            "{:16}{:>10}{:>9}{:>9}{:>11}{:>11}",
            "media", "intr(us)", "poll", "spdk", "poll-gain%", "spdk-gain%"
        )?;
        for r in &self.media {
            writeln!(
                f,
                "{:16}{:>10.2}{:>9.2}{:>9.2}{:>11.1}{:>11.1}",
                r.label,
                r.interrupt_us,
                r.poll_us,
                r.spdk_us,
                r.poll_gain_pct(),
                r.spdk_gain_pct()
            )?;
        }
        writeln!(
            f,
            "Extension 2: NVMe protocol vs lightweight queue (ULL, qd1)"
        )?;
        for r in &self.light_queue {
            writeln!(
                f,
                "{:16}{:>10.2}{:>9.2}{:>9.2}",
                r.label, r.interrupt_us, r.poll_us, r.spdk_us
            )?;
        }
        writeln!(
            f,
            "Extension 3: compute headroom per completion method (ULL)"
        )?;
        for r in &self.headroom {
            writeln!(
                f,
                "{:16}{:>10.1}%{:>12.0} KIOPS",
                r.path.label(),
                r.compute_headroom * 100.0,
                r.kiops
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extension_shapes_hold() {
        let r = run(Scale::Quick);
        assert!(r.check().is_empty(), "{:#?}\n{r}", r.check());
    }

    #[test]
    fn reram_projection_is_valid_and_fast() {
        let cfg = reram_projection();
        cfg.validate().unwrap();
        assert!(cfg.flash.t_read < FlashSpec::z_nand().t_read);
    }
}
