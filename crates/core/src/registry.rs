//! The experiment registry: every table/figure reproduction, runnable by
//! name.
//!
//! `reproduce`, `ull-bench` and the integration tests all drive the same
//! [`entries`] table, so "which figures exist and what are they called"
//! is defined exactly once. Names follow `EXPERIMENTS.md` (`table1`,
//! `fig4`, ..., `extensions`); figures that share a run are reachable
//! through aliases (`fig10` → `fig9`, `fig8` → `fig7b`, ...).

use ull_workload::Json;

use crate::engine::{run_experiment_sharded, Experiment, Report};
use crate::experiments::{
    breakdown, completion, device_level, extensions, faults, nbd, rebuild, spdk, table1,
};
use crate::testbed::Scale;

/// One finished registry run: the printable section plus its
/// machine-readable report.
#[derive(Debug)]
pub struct Section {
    /// Primary registry name.
    pub name: &'static str,
    /// Section heading.
    pub title: &'static str,
    /// The rows, as `reproduce` prints them.
    pub body: String,
    /// Violated shape claims (empty = OK).
    pub violations: Vec<String>,
    /// The report's JSON form.
    pub report: Json,
}

impl Section {
    /// Whether the reproduction upholds the paper's shape claims.
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }

    /// The section as one JSON object (name, title, verdict, report).
    ///
    /// Consumes the section: the report tree (often the largest part of
    /// the whole document) moves into the output instead of being
    /// deep-copied.
    pub fn into_json(self) -> Json {
        let ok = self.ok();
        Json::obj()
            .field("name", self.name)
            .field("title", self.title)
            .field("ok", ok)
            .field(
                "violations",
                Json::Arr(self.violations.into_iter().map(Json::from).collect()),
            )
            .field("report", self.report)
    }
}

/// One registry entry.
pub struct Entry {
    /// Primary name (`"fig9"`).
    pub name: &'static str,
    /// Section heading (`"Fig 9/10 (poll vs interrupt)"`).
    pub title: &'static str,
    /// One-line summary, shown by `reproduce --list`.
    pub description: &'static str,
    /// Alternate names that resolve here (`["fig10"]`).
    pub aliases: &'static [&'static str],
    /// Whether `reproduce all` (and hence the `BENCH_quick.json`
    /// baseline) includes this entry. Extensions that sweep beyond the
    /// paper's figures (e.g. `faults`) opt out and keep their own
    /// baseline file.
    pub in_all: bool,
    /// Whether the experiment probes its hosts, i.e. supports
    /// `reproduce NAME --trace out.json`. Shown by `reproduce --list`.
    pub traceable: bool,
    runner: fn(Scale, usize, usize) -> Section,
    tracer: fn(Scale) -> Option<ull_probe::ProbeReport>,
}

impl Entry {
    /// Runs the experiment at `scale` on up to `jobs` workers.
    pub fn run(&self, scale: Scale, jobs: usize) -> Section {
        (self.runner)(scale, jobs, 1)
    }

    /// Runs the experiment with its cells partitioned round-robin into
    /// `shards` serial groups (`reproduce --shards N`). Like `jobs`, the
    /// shard count cannot change the section's bytes.
    pub fn run_sharded(&self, scale: Scale, jobs: usize, shards: usize) -> Section {
        (self.runner)(scale, jobs, shards)
    }

    /// A representative probed run for `--trace`, or `None` when the
    /// experiment does not probe.
    pub fn trace(&self, scale: Scale) -> Option<ull_probe::ProbeReport> {
        (self.tracer)(scale)
    }

    /// Whether `name` refers to this entry (primary name or alias).
    pub fn matches(&self, name: &str) -> bool {
        self.name == name || self.aliases.contains(&name)
    }
}

impl core::fmt::Debug for Entry {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Entry")
            .field("name", &self.name)
            .field("title", &self.title)
            .field("aliases", &self.aliases)
            .finish()
    }
}

fn section<E: Experiment>(exp: &E, scale: Scale, jobs: usize, shards: usize) -> Section {
    let report = run_experiment_sharded(exp, scale, jobs, shards);
    Section {
        name: exp.name(),
        title: exp.title(),
        body: report.to_string(),
        violations: report.check(),
        report: report.into_json(),
    }
}

/// All experiments, in the paper's presentation order.
pub fn entries() -> &'static [Entry] {
    macro_rules! entry {
        ($exp:expr) => {
            entry!($exp, in_all: true)
        };
        ($exp:expr, in_all: $in_all:expr) => {{
            Entry {
                name: $exp.name(),
                title: $exp.title(),
                description: $exp.description(),
                aliases: $exp.aliases(),
                in_all: $in_all,
                traceable: $exp.traceable(),
                runner: |scale, jobs, shards| section(&$exp, scale, jobs, shards),
                tracer: |scale| $exp.trace(scale),
            }
        }};
    }
    // The cell is written exactly once with a value derived from constants,
    // so no shard can observe another's mutation; callers depend on the
    // &'static [Entry] this provides (find(), default_entries(), reproduce).
    // simlint: allow(S011): init-once memoization of an immutable catalogue
    static ENTRIES: std::sync::OnceLock<Vec<Entry>> = std::sync::OnceLock::new();
    ENTRIES.get_or_init(|| {
        vec![
            entry!(table1::Table1Exp),
            entry!(device_level::Fig04Exp),
            entry!(device_level::Fig05Exp),
            entry!(device_level::Fig06Exp),
            entry!(device_level::Fig07aExp),
            entry!(device_level::Fig07b08Exp),
            entry!(completion::Fig0910Exp),
            entry!(completion::Fig11Exp),
            entry!(completion::Fig1213Exp),
            entry!(completion::Fig14Exp),
            entry!(completion::Fig15Exp),
            entry!(completion::Fig16Exp),
            entry!(spdk::Fig171819Exp),
            entry!(spdk::Fig20Exp),
            entry!(spdk::Fig2122Exp),
            entry!(extensions::ExtensionsExp),
            entry!(nbd::Fig23Exp),
            // The fault sweep extends the paper; it keeps its own
            // baseline (BENCH_faults_quick.json) instead of joining the
            // `all` document.
            entry!(faults::FaultsExp, in_all: false),
            // Same deal for the latency-attribution sweep: its baseline
            // is BENCH_breakdown_quick.json.
            entry!(breakdown::BreakdownExp, in_all: false),
            // And the nexus rebuild sweep: BENCH_rebuild_quick.json.
            entry!(rebuild::RebuildExp, in_all: false),
        ]
    })
}

/// Looks an experiment up by primary name or alias.
pub fn find(name: &str) -> Option<&'static Entry> {
    entries().iter().find(|e| e.matches(name))
}

/// The entries `reproduce all` runs — exactly the set recorded in the
/// committed `BENCH_quick.json` baseline.
pub fn default_entries() -> impl Iterator<Item = &'static Entry> {
    entries().iter().filter(|e| e.in_all)
}

/// Assembles finished sections into the suite-level JSON document that
/// `reproduce --json` prints and `BENCH_quick.json` records.
///
/// Deliberately excludes anything host-dependent (wall-clock, job
/// count), so the document is byte-identical across `--jobs` values and
/// machines.
pub fn json_document(scale: Scale, sections: Vec<Section>) -> Json {
    let ok = sections.iter().all(Section::ok);
    Json::obj()
        .field("suite", "ull-ssd-study")
        .field(
            "scale",
            match scale {
                Scale::Quick => "quick",
                Scale::Full => "full",
            },
        )
        .field("ok", ok)
        .field(
            "sections",
            Json::Arr(sections.into_iter().map(Section::into_json).collect()),
        )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_covers_every_experiments_md_section() {
        // The 17 sections of EXPERIMENTS.md plus the fault-sweep
        // extension, by primary name.
        let names: Vec<&str> = entries().iter().map(|e| e.name).collect();
        assert_eq!(
            names,
            [
                "table1",
                "fig4",
                "fig5",
                "fig6",
                "fig7a",
                "fig7b",
                "fig9",
                "fig11",
                "fig12",
                "fig14",
                "fig15",
                "fig16",
                "fig17",
                "fig20",
                "fig21",
                "extensions",
                "fig23",
                "faults",
                "breakdown",
                "rebuild",
            ]
        );
    }

    #[test]
    fn fault_sweep_is_named_but_not_in_all() {
        let e = find("faults").expect("fault sweep registered");
        assert!(
            !e.in_all,
            "faults must stay out of the BENCH_quick baseline"
        );
        assert_eq!(find("tail_under_faults").unwrap().name, "faults");
        assert!(
            default_entries().all(|e| e.in_all),
            "default set must honor in_all"
        );
        assert_eq!(
            default_entries().count(),
            entries().len() - 3,
            "only the fault, breakdown and rebuild sweeps opt out"
        );
        assert!(
            !e.description.is_empty(),
            "every entry carries a --list description"
        );
    }

    #[test]
    fn breakdown_is_named_but_not_in_all() {
        let e = find("breakdown").expect("breakdown sweep registered");
        assert!(
            !e.in_all,
            "breakdown must stay out of the BENCH_quick baseline"
        );
        assert_eq!(find("sw_vs_dev").unwrap().name, "breakdown");
        assert!(
            find("fig11").is_some_and(|f| f.name == "fig11"),
            "fig11 keeps its own primary entry — breakdown must not shadow it"
        );
    }

    #[test]
    fn every_figure_number_resolves() {
        // Every figure the paper numbers, including the ones that share
        // a run with a sibling, must be reachable by name.
        for name in [
            "fig4",
            "fig5",
            "fig6",
            "fig7a",
            "fig7b",
            "fig8",
            "fig9",
            "fig10",
            "fig11",
            "fig12",
            "fig13",
            "fig14",
            "fig15",
            "fig16",
            "fig17",
            "fig18",
            "fig19",
            "fig20",
            "fig21",
            "fig22",
            "fig23",
            "table1",
            "extensions",
        ] {
            assert!(find(name).is_some(), "{name} not in registry");
        }
        assert!(find("fig24").is_none());
        assert_eq!(find("fig10").unwrap().name, "fig9");
        assert_eq!(find("fig8").unwrap().name, "fig7b");
        assert_eq!(find("fig19").unwrap().name, "fig17");
    }

    #[test]
    fn names_and_aliases_are_unique() {
        let mut seen = Vec::new();
        for e in entries() {
            for n in std::iter::once(&e.name).chain(e.aliases) {
                assert!(!seen.contains(n), "duplicate registry name {n}");
                seen.push(n);
            }
        }
    }

    #[test]
    fn table1_runs_through_the_registry() {
        let s = find("table1").unwrap().run(Scale::Quick, 1);
        assert!(s.ok(), "{:?}", s.violations);
        assert!(s.body.contains("Z-NAND"));
        assert!(s.into_json().to_string().contains("\"name\":\"table1\""));
    }

    #[test]
    fn breakdown_is_the_only_traceable_entry() {
        for e in entries() {
            assert_eq!(
                e.traceable,
                e.name == "breakdown",
                "{} traceability surprising",
                e.name
            );
        }
        let probed = find("breakdown")
            .unwrap()
            .trace(Scale::Quick)
            .expect("breakdown supports --trace");
        assert!(probed.metrics.ios() > 0);
        assert!(probed.metrics.accounting_exact());
        assert!(
            !probed.trace.events().is_empty(),
            "capture must admit events"
        );
        assert!(find("table1").unwrap().trace(Scale::Quick).is_none());
    }

    #[test]
    fn json_key_order_is_stable() {
        // The committed baselines diff textually, so key order is part of
        // the contract: document keys, then section keys, in the exact
        // order `json_document` and `Section::to_json` emit them.
        let s = find("table1").unwrap().run(Scale::Quick, 1);
        let text = json_document(Scale::Quick, vec![s]).to_string();
        let mut last = 0;
        for key in [
            "\"suite\":",
            "\"scale\":",
            "\"ok\":",
            "\"sections\":",
            "\"name\":",
            "\"title\":",
            "\"violations\":",
            "\"report\":",
        ] {
            let pos = text.find(key).unwrap_or_else(|| panic!("{key} missing"));
            assert!(pos > last, "{key} out of order");
            last = pos;
        }
    }

    #[test]
    fn json_document_shape() {
        let s = find("table1").unwrap().run(Scale::Quick, 2);
        let doc = json_document(Scale::Quick, vec![s]);
        let text = doc.to_pretty_string();
        assert!(text.contains("\"suite\": \"ull-ssd-study\""));
        assert!(text.contains("\"scale\": \"quick\""));
        assert!(text.contains("\"sections\""));
    }
}
