//! The evaluation testbed (§III of the paper): device presets, host
//! construction, and experiment scaling.

use ull_nvme::NvmeController;
use ull_ssd::{presets, Ssd, SsdConfig};
use ull_stack::{Host, IoPath, SoftwareCosts};

/// The two devices under test.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Device {
    /// The 800 GB Z-SSD prototype.
    Ull,
    /// The Intel 750 NVMe SSD.
    Nvme750,
}

impl Device {
    /// Both devices, in the paper's presentation order.
    pub const ALL: [Device; 2] = [Device::Ull, Device::Nvme750];

    /// The device's configuration preset.
    pub fn config(&self) -> SsdConfig {
        match self {
            Device::Ull => presets::ull_800g(),
            Device::Nvme750 => presets::nvme750(),
        }
    }

    /// Short label used in tables.
    pub fn label(&self) -> &'static str {
        match self {
            Device::Ull => "ULL SSD",
            Device::Nvme750 => "NVMe SSD",
        }
    }
}

/// How much work each experiment runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Reduced I/O counts: seconds per experiment; used by tests and
    /// Criterion benches.
    Quick,
    /// Paper-scale I/O counts (five-nines-capable).
    Full,
}

impl Scale {
    /// Picks an I/O count by scale.
    pub fn ios(&self, quick: u64, full: u64) -> u64 {
        match self {
            Scale::Quick => quick,
            Scale::Full => full,
        }
    }
}

/// Builds a fresh single-core host over a device, with the given path and
/// queue size 1024 (deep enough for the paper's largest sweep).
pub fn host(device: Device, path: IoPath) -> Host {
    host_with(device.config(), path)
}

/// Builds a fresh host over an explicit device configuration.
pub fn host_with(cfg: SsdConfig, path: IoPath) -> Host {
    let ssd = Ssd::new(cfg).expect("preset configurations are valid");
    let ctrl = NvmeController::new(ssd, 1, 1024);
    Host::new(ctrl, SoftwareCosts::linux_4_14(), path)
}

/// Percentage change `(base - new) / base * 100` (positive = improvement).
pub fn reduction_pct(base: f64, new: f64) -> f64 {
    if base == 0.0 {
        return 0.0;
    }
    (base - new) / base * 100.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn devices_have_distinct_presets() {
        assert_ne!(Device::Ull.config().name, Device::Nvme750.config().name);
        assert_eq!(Device::ALL.len(), 2);
    }

    #[test]
    fn scale_selects_counts() {
        assert_eq!(Scale::Quick.ios(10, 100), 10);
        assert_eq!(Scale::Full.ios(10, 100), 100);
    }

    #[test]
    fn reduction_math() {
        assert!((reduction_pct(10.0, 7.5) - 25.0).abs() < 1e-12);
        assert!(reduction_pct(0.0, 5.0).abs() < 1e-12);
    }

    #[test]
    fn hosts_are_fresh() {
        let h = host(Device::Ull, IoPath::KernelPolled);
        assert!(h.cpu().busy_total().is_zero());
    }
}
