//! `ull-study` — the top of the ull-ssd-study workspace: testbed presets
//! and one experiment module per table/figure of *"Faster than Flash: An
//! In-Depth Study of System Challenges for Emerging Ultra-Low Latency
//! SSDs"* (IISWC 2019).
//!
//! Each experiment exposes `run(scale)`, a `Display` that prints the rows
//! the paper plots, and `check()` returning the list of violated *shape*
//! claims (empty = the reproduction upholds the paper's qualitative
//! results). The `reproduce` binary prints any or all experiments.
//!
//! # Examples
//!
//! ```no_run
//! use ull_study::experiments::completion;
//! use ull_study::testbed::Scale;
//!
//! let fig10 = completion::fig0910_run(Scale::Quick);
//! assert!(fig10.check().is_empty());
//! println!("{fig10}");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod experiments;
pub mod registry;
pub mod testbed;

pub use engine::{run_experiment, run_experiment_sharded, Experiment, Report, SweepCell};
pub use registry::{entries, find, json_document, Entry, Section};
pub use testbed::{host, host_with, reduction_pct, Device, Scale};
