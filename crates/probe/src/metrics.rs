//! Per-stage histograms and counters, mergeable in declaration order.
//!
//! A [`MetricSet`] aggregates [`LatencyBreakdown`]s into one log-bucketed
//! [`Histogram`] per stage plus exact integer totals. Merging is
//! commutative bucket-wise addition (see the order-independence property
//! test on [`Histogram`]), so `ull-exec` can aggregate per-worker shards
//! in declaration order and `--jobs N` output stays byte-identical.

use ull_simkit::{Histogram, Json, SimDuration};

use crate::span::{LatencyBreakdown, OpKind, Stage};

/// Aggregated per-stage metrics for one run (or one shard of a run).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricSet {
    /// One latency histogram per stage, indexed by [`Stage::index`].
    per_stage: Vec<Histogram>,
    /// Exact per-stage nanosecond totals, indexed by [`Stage::index`].
    stage_total_ns: Vec<u128>,
    /// End-to-end latency histogram.
    e2e: Histogram,
    /// Exact end-to-end nanosecond total.
    e2e_total_ns: u128,
    /// Requests recorded.
    ios: u64,
    /// Reads recorded.
    reads: u64,
    /// Writes recorded.
    writes: u64,
    /// Flushes recorded.
    flushes: u64,
}

impl MetricSet {
    /// Creates an empty metric set.
    pub fn new() -> MetricSet {
        MetricSet {
            per_stage: vec![Histogram::new(); Stage::COUNT],
            stage_total_ns: vec![0; Stage::COUNT],
            e2e: Histogram::new(),
            e2e_total_ns: 0,
            ios: 0,
            reads: 0,
            writes: 0,
            flushes: 0,
        }
    }

    /// Records one finished breakdown.
    pub fn record(&mut self, bd: &LatencyBreakdown) {
        for s in Stage::ALL {
            let d = bd.stage(s);
            self.per_stage[s.index()].record(d);
            self.stage_total_ns[s.index()] += u128::from(d.as_nanos());
        }
        let e2e = bd.end_to_end();
        self.e2e.record(e2e);
        self.e2e_total_ns += u128::from(e2e.as_nanos());
        self.ios += 1;
        match bd.op {
            OpKind::Read => self.reads += 1,
            OpKind::Write => self.writes += 1,
            OpKind::Flush => self.flushes += 1,
        }
    }

    /// Merges another shard into this one (commutative, associative).
    pub fn merge(&mut self, other: &MetricSet) {
        for (a, b) in self.per_stage.iter_mut().zip(&other.per_stage) {
            a.merge(b);
        }
        for (a, b) in self.stage_total_ns.iter_mut().zip(&other.stage_total_ns) {
            *a += b;
        }
        self.e2e.merge(&other.e2e);
        self.e2e_total_ns += other.e2e_total_ns;
        self.ios += other.ios;
        self.reads += other.reads;
        self.writes += other.writes;
        self.flushes += other.flushes;
    }

    /// Requests recorded.
    pub fn ios(&self) -> u64 {
        self.ios
    }

    /// The end-to-end latency histogram.
    pub fn e2e(&self) -> &Histogram {
        &self.e2e
    }

    /// The histogram for one stage.
    pub fn stage(&self, s: Stage) -> &Histogram {
        &self.per_stage[s.index()]
    }

    /// Exact nanoseconds charged to one stage across all requests.
    pub fn stage_total_ns(&self, s: Stage) -> u128 {
        self.stage_total_ns[s.index()]
    }

    /// Exact end-to-end nanoseconds across all requests.
    pub fn e2e_total_ns(&self) -> u128 {
        self.e2e_total_ns
    }

    /// Exact software-half nanoseconds (see [`Stage::is_software`]).
    pub fn software_ns(&self) -> u128 {
        Stage::ALL
            .iter()
            .filter(|s| s.is_software())
            .map(|s| self.stage_total_ns[s.index()])
            .sum()
    }

    /// Exact device-half nanoseconds.
    pub fn device_ns(&self) -> u128 {
        Stage::ALL
            .iter()
            .filter(|s| !s.is_software())
            .map(|s| self.stage_total_ns[s.index()])
            .sum()
    }

    /// The accounting invariant: per-stage totals sum exactly to the
    /// end-to-end total. The recorder guarantees this per request, so it
    /// must hold for every aggregate — checked in the breakdown
    /// experiment's shape claims and the fault-injection property test.
    pub fn accounting_exact(&self) -> bool {
        self.stage_total_ns.iter().sum::<u128>() == self.e2e_total_ns
            && self.software_ns() + self.device_ns() == self.e2e_total_ns
    }

    /// JSON form: counters, end-to-end summary and one object per stage,
    /// emitted in [`Stage::ALL`] order (a pure function of construction —
    /// byte-identical across runs and `--jobs` values).
    pub fn to_json(&self) -> Json {
        let mut stages = Json::obj();
        for s in Stage::ALL {
            let h = &self.per_stage[s.index()];
            stages = stages.field(
                s.name(),
                Json::obj()
                    .field("total_ns", u128_json(self.stage_total_ns[s.index()]))
                    .field("mean_us", h.mean().as_micros_f64())
                    .field("p99_us", h.quantile(0.99).as_micros_f64())
                    .field("max_us", h.max().as_micros_f64()),
            );
        }
        Json::obj()
            .field("ios", self.ios)
            .field("reads", self.reads)
            .field("writes", self.writes)
            .field("flushes", self.flushes)
            .field("e2e_total_ns", u128_json(self.e2e_total_ns))
            .field("software_ns", u128_json(self.software_ns()))
            .field("device_ns", u128_json(self.device_ns()))
            .field("accounting_exact", self.accounting_exact())
            .field("e2e_mean_us", self.e2e.mean().as_micros_f64())
            .field("e2e_p99_us", self.e2e.quantile(0.99).as_micros_f64())
            .field("e2e_p99999_us", self.e2e.five_nines().as_micros_f64())
            .field("stages", stages)
    }
}

impl Default for MetricSet {
    fn default() -> MetricSet {
        MetricSet::new()
    }
}

/// Mean duration helper used by table renderers: `total / n` in exact
/// integer nanoseconds.
pub fn mean_ns(total_ns: u128, n: u64) -> SimDuration {
    if n == 0 {
        SimDuration::ZERO
    } else {
        SimDuration::from_nanos((total_ns / u128::from(n)).min(u128::from(u64::MAX)) as u64)
    }
}

fn u128_json(v: u128) -> Json {
    // Totals stay far below 2^63 at the scales we simulate; saturate
    // rather than wrap if one ever does not (mirrors Json::from(u64)).
    Json::Int(i64::try_from(v).unwrap_or(i64::MAX))
}

#[cfg(test)]
mod tests {
    use ull_simkit::SimTime;

    use super::*;
    use crate::span::SpanRecorder;

    fn bd(req: u64, us: u64) -> LatencyBreakdown {
        let t0 = SimTime::from_micros(req * 100);
        let mut r = SpanRecorder::start(req, OpKind::Read, 0, 4096, t0);
        r.stamp(Stage::SubmitStack, t0 + SimDuration::from_micros(us / 2));
        r.finish(Stage::FlashCell, t0 + SimDuration::from_micros(us))
    }

    #[test]
    fn record_merge_accounting() {
        let mut a = MetricSet::new();
        let mut b = MetricSet::new();
        let mut whole = MetricSet::new();
        for req in 0..100 {
            let x = bd(req, 10 + req % 7);
            whole.record(&x);
            if req % 2 == 0 { &mut a } else { &mut b }.record(&x);
        }
        a.merge(&b);
        assert_eq!(a, whole);
        assert!(whole.accounting_exact());
        assert_eq!(whole.ios(), 100);
        assert_eq!(
            whole.software_ns() + whole.device_ns(),
            whole.e2e_total_ns()
        );
    }

    #[test]
    fn merge_into_empty_adopts_other() {
        let mut d = MetricSet::default();
        let mut m = MetricSet::new();
        m.record(&bd(1, 12));
        d.merge(&m);
        assert_eq!(d, m);
    }

    #[test]
    fn json_keys_follow_stage_order() {
        let mut m = MetricSet::new();
        m.record(&bd(0, 15));
        let text = m.to_json().to_string();
        let mut last = 0;
        for s in Stage::ALL {
            let key = format!("\"{}\":", s.name());
            let pos = text.find(&key).expect("stage key present");
            assert!(pos > last, "stage keys out of order at {}", s.name());
            last = pos;
        }
    }
}
