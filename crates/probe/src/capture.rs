//! Bounded trace capture: first/last K requests plus every slow request.
//!
//! A full-fidelity trace of a million-IO run would be hundreds of
//! megabytes; the capture policy instead keeps (a) the first `first_k`
//! requests (warm-up behaviour), (b) a ring of the last `last_k`
//! requests (steady state / shutdown), and (c) up to `slow_cap` requests
//! whose end-to-end latency meets `slow_threshold` (the tail the paper
//! cares about). Everything is deterministic: admission depends only on
//! the request stream itself, never on host state.

use std::collections::VecDeque;

use ull_simkit::SimDuration;

use crate::span::LatencyBreakdown;

/// Capture policy for the trace ring buffer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProbeConfig {
    /// Keep the first `first_k` requests verbatim.
    pub first_k: usize,
    /// Keep a ring of the last `last_k` requests.
    pub last_k: usize,
    /// Additionally keep any request at least this slow end-to-end.
    pub slow_threshold: SimDuration,
    /// Cap on the slow-request set (oldest kept; later ones counted as
    /// dropped so the file size stays bounded).
    pub slow_cap: usize,
}

impl Default for ProbeConfig {
    fn default() -> ProbeConfig {
        ProbeConfig {
            first_k: 64,
            last_k: 64,
            slow_threshold: SimDuration::from_micros(500),
            slow_cap: 256,
        }
    }
}

/// Bounded, deterministic capture of per-request breakdowns.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceBuffer {
    cfg: ProbeConfig,
    first: Vec<LatencyBreakdown>,
    last: VecDeque<LatencyBreakdown>,
    slow: Vec<LatencyBreakdown>,
    seen: u64,
    dropped_ring: u64,
    dropped_slow: u64,
}

impl TraceBuffer {
    /// Creates an empty buffer with the given policy.
    pub fn new(cfg: ProbeConfig) -> TraceBuffer {
        TraceBuffer {
            cfg,
            first: Vec::new(),
            last: VecDeque::new(),
            slow: Vec::new(),
            seen: 0,
            dropped_ring: 0,
            dropped_slow: 0,
        }
    }

    /// Offers one finished breakdown to the capture policy.
    pub fn push(&mut self, bd: &LatencyBreakdown) {
        self.seen += 1;
        if self.first.len() < self.cfg.first_k {
            self.first.push(bd.clone());
        } else if self.cfg.last_k > 0 {
            if self.last.len() == self.cfg.last_k {
                self.last.pop_front();
                self.dropped_ring += 1;
            }
            self.last.push_back(bd.clone());
        } else {
            self.dropped_ring += 1;
        }
        if bd.end_to_end() >= self.cfg.slow_threshold {
            if self.slow.len() < self.cfg.slow_cap {
                self.slow.push(bd.clone());
            } else {
                self.dropped_slow += 1;
            }
        }
    }

    /// Total requests offered (captured or not).
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// Requests that aged out of the last-K ring.
    pub fn dropped_ring(&self) -> u64 {
        self.dropped_ring
    }

    /// Slow requests beyond `slow_cap`.
    pub fn dropped_slow(&self) -> u64 {
        self.dropped_slow
    }

    /// The captured breakdowns, deduplicated by request number and
    /// sorted by it — a canonical order independent of which capture
    /// class admitted each request.
    pub fn events(&self) -> Vec<&LatencyBreakdown> {
        let mut out: Vec<&LatencyBreakdown> = self
            .first
            .iter()
            .chain(self.last.iter())
            .chain(self.slow.iter())
            .collect();
        out.sort_by_key(|bd| bd.req);
        out.dedup_by_key(|bd| bd.req);
        out
    }
}

impl Default for TraceBuffer {
    fn default() -> TraceBuffer {
        TraceBuffer::new(ProbeConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use ull_simkit::SimTime;

    use super::*;
    use crate::span::{OpKind, SpanRecorder, Stage};

    fn bd(req: u64, us: u64) -> LatencyBreakdown {
        let t0 = SimTime::from_micros(req * 1_000);
        let mut r = SpanRecorder::start(req, OpKind::Read, 0, 4096, t0);
        r.stamp(Stage::SubmitStack, t0 + SimDuration::from_micros(1));
        r.finish(Stage::FlashCell, t0 + SimDuration::from_micros(us))
    }

    fn cfg() -> ProbeConfig {
        ProbeConfig {
            first_k: 3,
            last_k: 3,
            slow_threshold: SimDuration::from_micros(100),
            slow_cap: 2,
        }
    }

    #[test]
    fn keeps_first_last_and_slow() {
        let mut buf = TraceBuffer::new(cfg());
        for req in 0..20 {
            let us = if req == 10 || req == 11 || req == 12 {
                150
            } else {
                10
            };
            buf.push(&bd(req, us));
        }
        let reqs: Vec<u64> = buf.events().iter().map(|b| b.req).collect();
        // First 3, slow 10/11 (12 over cap), last 3.
        assert_eq!(reqs, [0, 1, 2, 10, 11, 17, 18, 19]);
        assert_eq!(buf.seen(), 20);
        assert_eq!(buf.dropped_slow(), 1);
        assert!(buf.dropped_ring() > 0);
    }

    #[test]
    fn slow_request_in_ring_is_not_duplicated() {
        let mut buf = TraceBuffer::new(cfg());
        for req in 0..5 {
            buf.push(&bd(req, 150)); // all slow; 3 also in first/ring
        }
        let reqs: Vec<u64> = buf.events().iter().map(|b| b.req).collect();
        assert_eq!(reqs, [0, 1, 2, 3, 4]);
    }

    #[test]
    fn short_run_captures_everything() {
        let mut buf = TraceBuffer::new(cfg());
        for req in 0..4 {
            buf.push(&bd(req, 10));
        }
        assert_eq!(buf.events().len(), 4);
        assert_eq!(buf.dropped_ring(), 0);
    }
}
