//! `ull-probe` — deterministic span tracing and latency-breakdown
//! attribution for the ull-ssd-study simulator.
//!
//! The paper's central method is *attribution*: splitting each I/O's
//! latency into software-stack time vs. device time and charging
//! completion-mode overheads (interrupt delivery, context switches,
//! polling spin) to explain why ultra-low-latency devices expose kernel
//! costs that flash hid (§IV–§V). This crate supplies the machinery:
//!
//! * [`SpanRecorder`] / [`Stage`] / [`LatencyBreakdown`] — per-request
//!   stage stamping whose charges tile the end-to-end interval exactly
//!   (`sum(stages) == end_to_end` holds by construction),
//! * [`DeviceSpan`] — the device-internal decomposition the SSD model
//!   computes for every command,
//! * [`MetricSet`] — per-stage log-bucketed histograms and exact integer
//!   totals, mergeable shard-wise in declaration order,
//! * [`TraceBuffer`] / [`ProbeConfig`] — bounded first/last-K +
//!   slow-request capture,
//! * [`chrome_trace`] — a serde-free Chrome `trace_event` JSON writer
//!   (open the file in `chrome://tracing` or Perfetto).
//!
//! Everything runs on simulated time only — no wall clock, no unordered
//! maps (simlint rule S009 polices this crate) — and observation never
//! perturbs the simulation: a traced run and an untraced run of the same
//! seed produce byte-identical reports (golden-tested in the workspace
//! test suite). See `docs/OBSERVABILITY.md` for the span model.
//!
//! # Examples
//!
//! ```
//! use ull_probe::{MetricSet, OpKind, SpanRecorder, Stage};
//! use ull_simkit::SimTime;
//!
//! let t0 = SimTime::from_micros(10);
//! let mut span = SpanRecorder::start(0, OpKind::Read, 0, 4096, t0);
//! span.stamp(Stage::SubmitStack, SimTime::from_micros(12));
//! span.stamp(Stage::FlashCell, SimTime::from_micros(15));
//! let bd = span.finish(Stage::IrqDeliver, SimTime::from_micros(16));
//! assert_eq!(bd.total(), bd.end_to_end());
//!
//! let mut metrics = MetricSet::new();
//! metrics.record(&bd);
//! assert!(metrics.accounting_exact());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod capture;
mod chrome;
mod metrics;
mod span;

pub use capture::{ProbeConfig, TraceBuffer};
pub use chrome::chrome_trace;
pub use metrics::{mean_ns, MetricSet};
pub use span::{DeviceSpan, LatencyBreakdown, OpKind, SpanRecorder, Stage};

/// Everything a probed run yields: aggregated metrics plus the bounded
/// trace capture. Hosts hand this out via `take_probe()`-style methods
/// so enabling observability never changes the shape (or `Debug`
/// fingerprint) of the ordinary job report.
#[derive(Debug, Clone, PartialEq)]
pub struct ProbeReport {
    /// Aggregated per-stage metrics.
    pub metrics: MetricSet,
    /// Captured per-request breakdowns.
    pub trace: TraceBuffer,
}

impl ProbeReport {
    /// An empty report with the given capture policy.
    pub fn new(cfg: ProbeConfig) -> ProbeReport {
        ProbeReport {
            metrics: MetricSet::new(),
            trace: TraceBuffer::new(cfg),
        }
    }

    /// Records one finished breakdown into both the metrics and the
    /// capture buffer.
    pub fn record(&mut self, bd: &LatencyBreakdown) {
        self.metrics.record(bd);
        self.trace.push(bd);
    }

    /// The Chrome `trace_event` document for the captured requests.
    pub fn chrome_trace(&self) -> ull_simkit::Json {
        chrome_trace(self.trace.events())
    }
}

impl Default for ProbeReport {
    fn default() -> ProbeReport {
        ProbeReport::new(ProbeConfig::default())
    }
}
