//! The span model: the stage taxonomy, the per-request recorder, and the
//! finished per-request [`LatencyBreakdown`].
//!
//! A request's life is a strictly monotone sequence of simulated instants
//! (submit, doorbell, controller fetch, flash, DMA, CQ post, completion
//! delivery, ...). Each [`Stage`] is *defined* as the difference between
//! two consecutive instants on the request's critical path, so the central
//! invariant
//!
//! ```text
//! sum(stages) == end_to_end
//! ```
//!
//! holds *by construction* — there is no way to stamp a recorder and end
//! up with a lossy decomposition. Residual device time that no modelled
//! resource accounts for (pipeline slack between units, tail-event delays,
//! cache-hit service) lands in [`Stage::MediaMisc`] and is provably
//! non-negative because every instant is monotone.

use ull_simkit::{SimDuration, SimTime};

/// One attribution stage of a request's end-to-end latency.
///
/// The taxonomy follows the paper's §IV–§V decomposition: a software half
/// (kernel submission path and completion delivery) and a device half
/// (controller, flash array, data movement). Ordering is the canonical
/// critical-path order for reads; writes reuse the same stages with
/// [`Stage::Dma`] meaning host→device data-in and [`Stage::WriteDrain`]
/// covering buffer admission / foreground GC after data-in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Stage {
    /// Submission-side software: syscall + VFS + block layer + driver
    /// submit (or the SPDK userspace submit path), up to the SQ doorbell.
    SubmitStack,
    /// Replicated-volume routing while the mirror is degraded: picking a
    /// surviving replica, fanning writes out to the reduced set, and
    /// dirty-range bookkeeping. Zero whenever every child is serving
    /// (and on plain single-device hosts).
    DegradedRoute,
    /// Doorbell → controller fetch start: SQ residency, including
    /// SQ-full backpressure requeues and fault-recovery waits
    /// (timeout, abort, backoff, controller reset).
    SqWait,
    /// Portion of a replica's service during which the replica was also
    /// servicing rebuild copy traffic — the tail an online rebuild
    /// inflicts on foreground I/O. Zero when no rebuild is running.
    RebuildWait,
    /// Controller command fetch/parse: the controller's per-op service
    /// slot.
    CtrlFetch,
    /// Firmware/FTL processing after fetch (translation, DRAM lookup
    /// issue) before the flash array takes over.
    Firmware,
    /// Critical flash unit's wait for its die to become free (program
    /// suspension wait rides here too).
    DieWait,
    /// The cell operation itself: tR sense (plus read-retry passes) or
    /// tPROG on the critical unit.
    FlashCell,
    /// Channel wait + data transfer for the critical unit.
    Channel,
    /// Residual intra-device time not attributable to a modelled
    /// resource: multi-unit pipeline slack, read/write tail events,
    /// DRAM/write-buffer hit service. Non-negative by construction.
    MediaMisc,
    /// PCIe DMA wait + transfer (device→host for reads, host→device
    /// data-in for writes).
    Dma,
    /// Write-path drain after data-in: write-buffer admission,
    /// foreground GC stall, program tail — up to CQ post.
    WriteDrain,
    /// CQ post → interrupt delivered (MSI latency). Zero on polled paths.
    IrqDeliver,
    /// CQ post → poll-loop pickup: completion sitting in the CQ until a
    /// poll iteration sees it (includes hybrid oversleep and resched
    /// stalls). Zero on interrupt paths.
    PollPickup,
    /// Completion delivery to the application: ISR + softirq + wakeup
    /// (interrupt), or the poll/SPDK completion callback cost.
    CompleteDeliver,
}

impl Stage {
    /// Number of stages.
    pub const COUNT: usize = 15;

    /// Every stage, in canonical critical-path order.
    pub const ALL: [Stage; Stage::COUNT] = [
        Stage::SubmitStack,
        Stage::DegradedRoute,
        Stage::SqWait,
        Stage::RebuildWait,
        Stage::CtrlFetch,
        Stage::Firmware,
        Stage::DieWait,
        Stage::FlashCell,
        Stage::Channel,
        Stage::MediaMisc,
        Stage::Dma,
        Stage::WriteDrain,
        Stage::IrqDeliver,
        Stage::PollPickup,
        Stage::CompleteDeliver,
    ];

    /// Stable machine-readable name (JSON keys, trace event names).
    pub const fn name(self) -> &'static str {
        match self {
            Stage::SubmitStack => "submit_stack",
            Stage::DegradedRoute => "degraded_route",
            Stage::SqWait => "sq_wait",
            Stage::RebuildWait => "rebuild_wait",
            Stage::CtrlFetch => "ctrl_fetch",
            Stage::Firmware => "firmware",
            Stage::DieWait => "die_wait",
            Stage::FlashCell => "flash_cell",
            Stage::Channel => "channel",
            Stage::MediaMisc => "media_misc",
            Stage::Dma => "dma",
            Stage::WriteDrain => "write_drain",
            Stage::IrqDeliver => "irq_deliver",
            Stage::PollPickup => "poll_pickup",
            Stage::CompleteDeliver => "complete_deliver",
        }
    }

    /// Index into per-stage arrays (the position in [`Stage::ALL`]).
    pub const fn index(self) -> usize {
        self as usize
    }

    /// Whether the stage is charged to the *software* half of the
    /// paper's software-vs-device split (§IV): submission-path kernel
    /// work and completion delivery. Everything else — SQ residency
    /// onward through CQ post — is device time, matching how the paper
    /// measures "device time" from doorbell to completion posting.
    pub const fn is_software(self) -> bool {
        matches!(
            self,
            Stage::SubmitStack
                | Stage::DegradedRoute
                | Stage::IrqDeliver
                | Stage::PollPickup
                | Stage::CompleteDeliver
        )
    }
}

/// What kind of operation a span describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    /// A read command.
    Read,
    /// A write command.
    Write,
    /// A flush command.
    Flush,
}

impl OpKind {
    /// Stable machine-readable name.
    pub const fn name(self) -> &'static str {
        match self {
            OpKind::Read => "read",
            OpKind::Write => "write",
            OpKind::Flush => "flush",
        }
    }
}

/// The device-internal portion of a span, computed by the SSD model for
/// every command it services.
///
/// All durations are consecutive segments of the command's critical path
/// inside the device, so they satisfy
/// `sum(segments) == done - arrive` exactly (see
/// [`DeviceSpan::accounted`]). The host's [`SpanRecorder`] absorbs this
/// whole struct at completion-collection time via
/// [`SpanRecorder::absorb_device`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeviceSpan {
    /// When the command arrived at the controller (doorbell ring time).
    pub arrive: SimTime,
    /// When the completion was posted to the CQ.
    pub done: SimTime,
    /// Controller queue wait before the fetch slot starts.
    pub ctrl_wait: SimDuration,
    /// Controller fetch/parse service time.
    pub ctrl_fetch: SimDuration,
    /// Firmware/FTL time after fetch.
    pub firmware: SimDuration,
    /// Critical unit's die queue wait.
    pub die_wait: SimDuration,
    /// Critical unit's cell time (tR/tPROG incl. retries).
    pub cell: SimDuration,
    /// Critical unit's channel wait + transfer.
    pub channel: SimDuration,
    /// Residual device time (pipeline slack, tails, cache-hit service).
    pub media_misc: SimDuration,
    /// PCIe DMA wait + transfer.
    pub dma: SimDuration,
    /// Write drain after data-in (buffer admit, foreground GC, tail).
    pub write_drain: SimDuration,
}

impl DeviceSpan {
    /// An all-zero span anchored at `at` (used for instantaneous
    /// completions such as flushes on an idle device).
    pub fn empty(at: SimTime) -> DeviceSpan {
        DeviceSpan {
            arrive: at,
            done: at,
            ctrl_wait: SimDuration::ZERO,
            ctrl_fetch: SimDuration::ZERO,
            firmware: SimDuration::ZERO,
            die_wait: SimDuration::ZERO,
            cell: SimDuration::ZERO,
            channel: SimDuration::ZERO,
            media_misc: SimDuration::ZERO,
            dma: SimDuration::ZERO,
            write_drain: SimDuration::ZERO,
        }
    }

    /// Sum of all segments — the device-internal accounting invariant is
    /// `self.accounted() == self.done - self.arrive`.
    pub fn accounted(&self) -> SimDuration {
        self.ctrl_wait
            + self.ctrl_fetch
            + self.firmware
            + self.die_wait
            + self.cell
            + self.channel
            + self.media_misc
            + self.dma
            + self.write_drain
    }

    /// Whether the segments tile `arrive..done` exactly.
    pub fn is_exact(&self) -> bool {
        self.accounted() == self.done.saturating_since(self.arrive) && self.done >= self.arrive
    }
}

/// A finished per-request latency decomposition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencyBreakdown {
    /// Monotone per-run request number (assigned by the host probe).
    pub req: u64,
    /// Operation kind.
    pub op: OpKind,
    /// Byte offset of the request.
    pub offset: u64,
    /// Length in bytes.
    pub len: u32,
    /// When the application issued the request.
    pub issue: SimTime,
    /// When the completion became visible to the application.
    pub complete: SimTime,
    /// Nanoseconds charged to each stage, indexed by [`Stage::index`].
    pub stages: [SimDuration; Stage::COUNT],
}

impl LatencyBreakdown {
    /// End-to-end latency (`complete - issue`).
    pub fn end_to_end(&self) -> SimDuration {
        self.complete.saturating_since(self.issue)
    }

    /// Sum of all stage charges. The recorder guarantees
    /// `total() == end_to_end()`.
    pub fn total(&self) -> SimDuration {
        self.stages.iter().copied().sum()
    }

    /// Nanoseconds charged to one stage.
    pub fn stage(&self, s: Stage) -> SimDuration {
        self.stages[s.index()]
    }

    /// Software-half total (submission path + completion delivery).
    pub fn software(&self) -> SimDuration {
        Stage::ALL
            .iter()
            .filter(|s| s.is_software())
            .map(|s| self.stages[s.index()])
            .sum()
    }

    /// Device-half total (doorbell through CQ post).
    pub fn device(&self) -> SimDuration {
        Stage::ALL
            .iter()
            .filter(|s| !s.is_software())
            .map(|s| self.stages[s.index()])
            .sum()
    }
}

/// Per-request recorder the host carries from submit to completion.
///
/// Layers stamp instants at stage boundaries; every charge advances an
/// internal cursor, so the stage array always tiles `issue..cursor`
/// exactly — the breakdown invariant cannot be violated by construction.
/// All methods are pure arithmetic on values the simulation already
/// computed: recording never draws randomness, reserves resources or
/// otherwise perturbs the run.
#[derive(Debug, Clone)]
pub struct SpanRecorder {
    req: u64,
    op: OpKind,
    offset: u64,
    len: u32,
    issue: SimTime,
    cursor: SimTime,
    stages: [SimDuration; Stage::COUNT],
}

impl SpanRecorder {
    /// Starts a span for request `req` issued at `issue`.
    pub fn start(req: u64, op: OpKind, offset: u64, len: u32, issue: SimTime) -> SpanRecorder {
        SpanRecorder {
            req,
            op,
            offset,
            len,
            issue,
            cursor: issue,
            stages: [SimDuration::ZERO; Stage::COUNT],
        }
    }

    /// The current cursor (the instant everything so far is accounted
    /// up to).
    pub fn cursor(&self) -> SimTime {
        self.cursor
    }

    /// Charges `stage` with the time from the cursor to `at` and
    /// advances the cursor. Instants on a request's critical path are
    /// monotone; if a caller ever hands a stale instant the charge
    /// saturates to zero rather than corrupting the tiling.
    pub fn stamp(&mut self, stage: Stage, at: SimTime) {
        debug_assert!(at >= self.cursor, "span stamp went backwards");
        self.stages[stage.index()] += at.saturating_since(self.cursor);
        self.cursor = self.cursor.max(at);
    }

    /// Charges the whole device-internal decomposition: the gap from the
    /// cursor to the device arrival is charged to [`Stage::SqWait`]
    /// (together with the device's own controller queue wait), then each
    /// device segment lands on its stage, leaving the cursor at the CQ
    /// post instant.
    pub fn absorb_device(&mut self, d: &DeviceSpan) {
        self.stamp(Stage::SqWait, d.arrive);
        self.stages[Stage::SqWait.index()] += d.ctrl_wait;
        self.stages[Stage::CtrlFetch.index()] += d.ctrl_fetch;
        self.stages[Stage::Firmware.index()] += d.firmware;
        self.stages[Stage::DieWait.index()] += d.die_wait;
        self.stages[Stage::FlashCell.index()] += d.cell;
        self.stages[Stage::Channel.index()] += d.channel;
        self.stages[Stage::MediaMisc.index()] += d.media_misc;
        self.stages[Stage::Dma.index()] += d.dma;
        self.stages[Stage::WriteDrain.index()] += d.write_drain;
        // The segments tile arrive..done; keep any rounding residue (there
        // is none when the span is exact) on MediaMisc so the recorder
        // tiling stays airtight even for a non-exact span.
        let accounted = d.arrive + d.accounted();
        self.cursor = accounted;
        self.stamp(Stage::MediaMisc, d.done.max(accounted));
    }

    /// Finishes the span at `complete` (the instant the application saw
    /// the completion), charging the remainder to `final_stage`.
    pub fn finish(mut self, final_stage: Stage, complete: SimTime) -> LatencyBreakdown {
        self.stamp(final_stage, complete);
        LatencyBreakdown {
            req: self.req,
            op: self.op,
            offset: self.offset,
            len: self.len,
            issue: self.issue,
            complete: self.cursor,
            stages: self.stages,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(us: u64) -> SimTime {
        SimTime::from_micros(us)
    }

    #[test]
    fn stage_all_is_in_discriminant_order() {
        for (i, s) in Stage::ALL.iter().enumerate() {
            assert_eq!(s.index(), i);
        }
        assert_eq!(Stage::ALL.len(), Stage::COUNT);
    }

    #[test]
    fn stage_names_are_unique() {
        let mut names: Vec<&str> = Stage::ALL.iter().map(|s| s.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Stage::COUNT);
    }

    #[test]
    fn recorder_tiles_exactly() {
        let mut r = SpanRecorder::start(7, OpKind::Read, 4096, 4096, t(10));
        r.stamp(Stage::SubmitStack, t(12));
        let d = DeviceSpan {
            arrive: t(13),
            done: t(20),
            ctrl_wait: SimDuration::from_micros(1),
            ctrl_fetch: SimDuration::from_micros(1),
            firmware: SimDuration::ZERO,
            die_wait: SimDuration::ZERO,
            cell: SimDuration::from_micros(3),
            channel: SimDuration::from_micros(1),
            media_misc: SimDuration::ZERO,
            dma: SimDuration::from_micros(1),
            write_drain: SimDuration::ZERO,
        };
        assert!(d.is_exact());
        r.absorb_device(&d);
        let bd = r.finish(Stage::IrqDeliver, t(21));
        assert_eq!(bd.total(), bd.end_to_end());
        assert_eq!(bd.end_to_end(), SimDuration::from_micros(11));
        assert_eq!(bd.stage(Stage::SqWait), SimDuration::from_micros(2)); // 1us gap + 1us ctrl wait
        assert_eq!(bd.stage(Stage::IrqDeliver), SimDuration::from_micros(1));
        assert_eq!(bd.software() + bd.device(), bd.end_to_end());
    }

    #[test]
    fn non_exact_device_span_residue_lands_on_media_misc() {
        // A span whose segments under-account done-arrive by 2us.
        let mut d = DeviceSpan::empty(t(5));
        d.done = t(9);
        d.cell = SimDuration::from_micros(2);
        assert!(!d.is_exact());
        let mut r = SpanRecorder::start(0, OpKind::Read, 0, 512, t(5));
        r.absorb_device(&d);
        let bd = r.finish(Stage::PollPickup, t(9));
        assert_eq!(bd.total(), bd.end_to_end());
        assert_eq!(bd.stage(Stage::MediaMisc), SimDuration::from_micros(2));
    }

    #[test]
    fn stale_stamp_saturates() {
        let mut r = SpanRecorder::start(0, OpKind::Write, 0, 512, t(5));
        r.stamp(Stage::SubmitStack, t(8));
        // Release builds must not panic or go negative on a stale instant.
        let bd = r.clone().finish(Stage::CompleteDeliver, t(8));
        assert_eq!(bd.total(), bd.end_to_end());
    }
}
