//! Chrome `trace_event` export.
//!
//! Renders captured breakdowns as a Chrome/Perfetto-loadable JSON
//! document (the `trace_event` format's "JSON object" flavour: a
//! `traceEvents` array of complete `"X"` events with microsecond `ts`
//! and `dur`). Each request is one timeline lane (`tid` = request
//! number); the lane holds one enclosing event for the request plus one
//! event per non-zero stage, tiled in canonical [`Stage::ALL`] order from
//! the issue instant. Because stage charges tile the end-to-end interval
//! exactly, the rendered lane is gapless — Perfetto's ruler reads the
//! breakdown directly.
//!
//! Determinism: output bytes are a pure function of the captured
//! events (no wall clock, no host identifiers), so a traced run is as
//! replayable as an untraced one.

use ull_simkit::Json;

use crate::span::{LatencyBreakdown, Stage};

/// Process id used for all simulator lanes.
const PID: i64 = 1;

fn micros(ns: u64) -> f64 {
    // Reporting-only float conversion (one-way, never fed back into sim
    // arithmetic).
    ns as f64 / 1_000.0
}

fn event(name: &str, cat: &str, tid: u64, ts_ns: u64, dur_ns: u64, args: Json) -> Json {
    Json::obj()
        .field("name", name)
        .field("cat", cat)
        .field("ph", "X")
        .field("ts", micros(ts_ns))
        .field("dur", micros(dur_ns))
        .field("pid", PID)
        .field("tid", tid)
        .field("args", args)
}

/// Renders one request as its enclosing event plus per-stage events.
fn request_events(bd: &LatencyBreakdown, out: &mut Vec<Json>) {
    let issue = bd.issue.as_nanos();
    let e2e = bd.end_to_end().as_nanos();
    let label = format!("{} {}B @{}", bd.op.name(), bd.len, bd.offset);
    out.push(event(
        &label,
        "request",
        bd.req,
        issue,
        e2e,
        Json::obj()
            .field("req", bd.req)
            .field("software_ns", bd.software().as_nanos())
            .field("device_ns", bd.device().as_nanos()),
    ));
    let mut cursor = issue;
    for s in Stage::ALL {
        let d = bd.stage(s).as_nanos();
        if d == 0 {
            continue;
        }
        let cat = if s.is_software() {
            "software"
        } else {
            "device"
        };
        out.push(event(s.name(), cat, bd.req, cursor, d, Json::obj()));
        cursor += d;
    }
}

/// Assembles a Chrome `trace_event` document from captured breakdowns.
///
/// `events` is typically [`crate::TraceBuffer::events`]; any iterator of
/// breakdowns works (the document preserves the given order).
pub fn chrome_trace<'a>(events: impl IntoIterator<Item = &'a LatencyBreakdown>) -> Json {
    let mut out = Vec::new();
    for bd in events {
        request_events(bd, &mut out);
    }
    Json::obj()
        .field("displayTimeUnit", "ns")
        .field("traceEvents", Json::Arr(out))
}

#[cfg(test)]
mod tests {
    use ull_simkit::{SimDuration, SimTime};

    use super::*;
    use crate::span::{OpKind, SpanRecorder};

    fn sample() -> LatencyBreakdown {
        let t0 = SimTime::from_micros(100);
        let mut r = SpanRecorder::start(3, OpKind::Read, 8192, 4096, t0);
        r.stamp(Stage::SubmitStack, t0 + SimDuration::from_micros(2));
        r.stamp(Stage::FlashCell, t0 + SimDuration::from_micros(5));
        r.finish(Stage::IrqDeliver, t0 + SimDuration::from_micros(6))
    }

    #[test]
    fn stages_tile_the_request_lane() {
        let doc = chrome_trace([&sample()]);
        let text = doc.to_string();
        assert!(text.starts_with("{\"displayTimeUnit\":\"ns\",\"traceEvents\":["));
        // Enclosing event at ts=100us dur=6us, then gapless stages.
        assert!(text.contains("\"name\":\"read 4096B @8192\""));
        assert!(text.contains("\"ts\":100.0,\"dur\":6.0"));
        assert!(text.contains(
            "\"name\":\"submit_stack\",\"cat\":\"software\",\"ph\":\"X\",\"ts\":100.0,\"dur\":2.0"
        ));
        assert!(text.contains(
            "\"name\":\"flash_cell\",\"cat\":\"device\",\"ph\":\"X\",\"ts\":102.0,\"dur\":3.0"
        ));
        assert!(text.contains(
            "\"name\":\"irq_deliver\",\"cat\":\"software\",\"ph\":\"X\",\"ts\":105.0,\"dur\":1.0"
        ));
        // Zero stages are omitted.
        assert!(!text.contains("\"name\":\"write_drain\""));
    }

    #[test]
    fn deterministic_bytes() {
        let a = chrome_trace([&sample()]).to_pretty_string();
        let b = chrome_trace([&sample()]).to_pretty_string();
        assert_eq!(a, b);
    }
}
