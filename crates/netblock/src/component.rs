//! The NBD server-client pair as [`Component`] actors.
//!
//! [`NbdSystem`](crate::NbdSystem) models fig. 23's client synchronously
//! — one borrow-the-whole-system call per file operation. This module is
//! the message-passing formulation of the same machine: clients and the
//! server are separate actors that exchange timestamped [`NbdWire`]
//! events through a [`Scheduler`], which is what lets one export serve
//! many client machines *and* lets the whole system run sharded — the
//! network's one-way latency is a physical floor on how soon a request
//! or response can arrive, so it becomes the world's
//! [`Lookahead`](ull_simkit::Lookahead) and the client/server actors can
//! live on different cores while producing byte-identical results at any
//! shard count (see `docs/SHARDING.md`).

use ull_nvme::NvmeController;
use ull_simkit::{ActorId, Component, Histogram, Scheduler, SimDuration, SimTime, SplitMix64};
use ull_ssd::{ConfigError, Ssd, SsdConfig};
use ull_stack::{Host, IoOp, IoPath, SoftwareCosts};

use crate::nbd::{NbdServerKind, NetworkParams};

/// One NBD request on the wire, client → server.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NbdRequestEvent {
    /// When the client issued the operation (latency is measured from
    /// here).
    pub issued: SimTime,
    /// Per-client request sequence number (tie-break identity).
    pub seq: u64,
    /// Actor to deliver the response to.
    pub reply_to: ActorId,
    /// Direction.
    pub op: IoOp,
    /// Byte offset on the exported device.
    pub offset: u64,
    /// Length in bytes.
    pub len: u32,
}

/// One NBD response on the wire, server → client.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NbdResponseEvent {
    /// Echo of the request's issue instant.
    pub issued: SimTime,
    /// Echo of the request's sequence number.
    pub seq: u64,
    /// When the response reached the client.
    pub done: SimTime,
}

/// The wire protocol between NBD actors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NbdWire {
    /// Client → server.
    Request(NbdRequestEvent),
    /// Server → client.
    Response(NbdResponseEvent),
}

/// The server actor: one exported ULL device behind one network port.
///
/// Requests are serviced in arrival order on a single service thread
/// (the NBD worker): each waits for the previous one to finish, pays the
/// server-kind software overhead, runs synchronously through the host
/// stack, and the response crosses the link back.
#[derive(Debug)]
pub struct NbdServerActor {
    host: Host,
    net: NetworkParams,
    server_overhead: SimDuration,
    /// The single service thread's availability.
    busy_until: SimTime,
    served: u64,
}

impl NbdServerActor {
    /// Builds a server exporting a device built from `ssd`.
    ///
    /// # Errors
    ///
    /// Propagates invalid device configurations.
    pub fn new(ssd: SsdConfig, kind: NbdServerKind) -> Result<Self, ConfigError> {
        let ctrl = NvmeController::new(Ssd::new(ssd)?, 1, 1024);
        let (path, server_overhead) = match kind {
            NbdServerKind::Kernel => (IoPath::KernelInterrupt, SimDuration::from_micros(22)),
            NbdServerKind::Spdk => (IoPath::Spdk, SimDuration::from_nanos(1_500)),
        };
        Ok(NbdServerActor {
            host: Host::new(ctrl, SoftwareCosts::linux_4_14(), path),
            net: NetworkParams::ten_gbe(),
            server_overhead,
            busy_until: SimTime::ZERO,
            served: 0,
        })
    }

    /// Requests serviced so far.
    pub fn served(&self) -> u64 {
        self.served
    }

    /// The server host (CPU ledger, device metrics).
    pub fn host(&self) -> &Host {
        &self.host
    }

    fn serve(&mut self, now: SimTime, req: NbdRequestEvent, sched: &mut Scheduler<'_, NbdWire>) {
        let start = now.max(self.busy_until) + self.server_overhead;
        let r = self.host.io_sync(req.op, req.offset, req.len, start);
        self.busy_until = r.user_visible;
        self.served += 1;
        let resp_bytes = if matches!(req.op, IoOp::Read) {
            req.len + 64
        } else {
            64
        };
        let done = r.user_visible + self.net.transfer_time(resp_bytes) + self.net.one_way;
        sched.send(
            req.reply_to,
            done,
            NbdWire::Response(NbdResponseEvent {
                issued: req.issued,
                seq: req.seq,
                done,
            }),
        );
    }
}

/// A closed-loop client actor: issues `ops` 4 KiB requests back to back
/// (think time between them), addressed by a seeded stream over the
/// export.
#[derive(Debug)]
pub struct NbdClientActor {
    server: ActorId,
    net: NetworkParams,
    rng: SplitMix64,
    capacity: u64,
    ops: u64,
    think: SimDuration,
    issued: u64,
    /// Completed requests.
    pub completed: u64,
    /// Client-visible request latency.
    pub latency: Histogram,
    /// Order-sensitive checksum of `(seq, done)` pairs — two runs that
    /// complete the same requests in a different order disagree here.
    pub checksum: u64,
}

impl NbdClientActor {
    /// A client that will issue `ops` requests to `server`.
    pub fn new(server: ActorId, capacity: u64, seed: u64, ops: u64) -> Self {
        NbdClientActor {
            server,
            net: NetworkParams::ten_gbe(),
            rng: SplitMix64::new(seed),
            capacity,
            ops,
            think: SimDuration::from_micros(5),
            issued: 0,
            completed: 0,
            latency: Histogram::new(),
            checksum: 0,
        }
    }

    /// Issues the next request at `at` (no-op once `ops` are out).
    pub fn issue(&mut self, at: SimTime, sched: &mut Scheduler<'_, NbdWire>) {
        if self.issued >= self.ops {
            return;
        }
        let op = if self.rng.next_u64().is_multiple_of(4) {
            IoOp::Write
        } else {
            IoOp::Read
        };
        let len = 4096u32;
        let units = (self.capacity / 4096).saturating_sub(2).max(1);
        let offset = (self.rng.next_u64() % units) * 4096;
        let seq = self.issued;
        self.issued += 1;
        let req_bytes = if matches!(op, IoOp::Write) {
            len + 64
        } else {
            64
        };
        let arrive = at + self.net.transfer_time(req_bytes) + self.net.one_way;
        sched.send(
            self.server,
            arrive,
            NbdWire::Request(NbdRequestEvent {
                issued: at,
                seq,
                reply_to: sched.me(),
                op,
                offset,
                len,
            }),
        );
    }
}

/// One actor of the NBD world: a client machine or the server.
///
/// The server (a whole `Host` + device) dwarfs a client, so it lives
/// behind a `Box` to keep the world's actor vector densely packed.
#[derive(Debug)]
pub enum NbdActor {
    /// A client machine.
    Client(NbdClientActor),
    /// The export server.
    Server(Box<NbdServerActor>),
}

impl Component for NbdActor {
    type Event = NbdWire;

    fn on_event(&mut self, now: SimTime, ev: NbdWire, sched: &mut Scheduler<'_, NbdWire>) {
        match (self, ev) {
            (NbdActor::Server(s), NbdWire::Request(req)) => s.serve(now, req, sched),
            (NbdActor::Client(c), NbdWire::Response(resp)) => {
                c.completed += 1;
                c.latency.record(resp.done.saturating_since(resp.issued));
                c.checksum = c
                    .checksum
                    .wrapping_mul(0x100_0000_01B3)
                    .wrapping_add(resp.seq ^ resp.done.as_nanos());
                c.issue(now + c.think, sched);
            }
            // A request delivered to a client or a response to the
            // server is a routing bug in the world builder.
            (actor, ev) => unreachable!("misrouted NBD event {ev:?} at {actor:?}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ull_simkit::{Lookahead, ShardedWorld};
    use ull_ssd::presets;

    fn run_world(shards: usize, kind: NbdServerKind, clients: u32) -> Vec<(u64, u64, u64)> {
        let capacity = presets::ull_800g().capacity_bytes;
        let mut actors = vec![NbdActor::Server(Box::new(
            NbdServerActor::new(presets::ull_800g(), kind).unwrap(),
        ))];
        for i in 0..clients {
            actors.push(NbdActor::Client(NbdClientActor::new(
                ActorId(0),
                capacity,
                0x5EED_0000 + u64::from(i),
                200,
            )));
        }
        let lookahead = Lookahead::from_floor(NetworkParams::ten_gbe().one_way);
        let mut world = ShardedWorld::new(shards, lookahead, actors);
        for c in 1..=clients {
            world.seed(ActorId(c), |actor, sched| {
                if let NbdActor::Client(cl) = actor {
                    cl.issue(SimTime::ZERO, sched);
                }
            });
        }
        world.run();
        world
            .into_actors()
            .into_iter()
            .filter_map(|a| match a {
                NbdActor::Client(c) => Some((c.completed, c.checksum, c.latency.mean().as_nanos())),
                NbdActor::Server(_) => None,
            })
            .collect()
    }

    #[test]
    fn sharded_nbd_world_is_byte_identical_at_any_shard_count() {
        for kind in [NbdServerKind::Kernel, NbdServerKind::Spdk] {
            let serial = run_world(1, kind, 3);
            assert_eq!(serial.len(), 3);
            for (completed, _, _) in &serial {
                assert_eq!(*completed, 200, "every client finishes its ops");
            }
            for shards in [2, 3, 4] {
                assert_eq!(run_world(shards, kind, 3), serial, "shards={shards}");
            }
        }
    }

    #[test]
    fn responses_reflect_server_serialization() {
        // Three clients share one service thread: per-request latency
        // must exceed the single-client baseline's mean.
        let one = run_world(1, NbdServerKind::Spdk, 1);
        let three = run_world(1, NbdServerKind::Spdk, 3);
        assert!(
            three.iter().all(|(_, _, mean)| *mean > one[0].2),
            "contended mean {:?} must exceed solo mean {}",
            three,
            one[0].2
        );
    }
}
