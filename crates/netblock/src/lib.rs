//! `ull-netblock` — the server-client network block device substrate for
//! fig. 23 of the paper.
//!
//! Composes a client-side ext4 cost model ([`Ext4Model`]), a 10 GbE-class
//! network link, and a server host exporting the ULL SSD either through the
//! kernel NBD path or through SPDK-NBD.
//!
//! # Examples
//!
//! ```
//! use ull_netblock::{NbdServerKind, NbdSystem};
//! use ull_simkit::SimTime;
//! use ull_ssd::presets;
//!
//! let mut kernel = NbdSystem::new(presets::ull_800g(), NbdServerKind::Kernel, 1)?;
//! let mut spdk = NbdSystem::new(presets::ull_800g(), NbdServerKind::Spdk, 1)?;
//! let k = kernel.file_read(SimTime::ZERO, 9, 4096).latency;
//! let s = spdk.file_read(SimTime::ZERO, 9, 4096).latency;
//! assert!(s < k, "SPDK-NBD reads are faster");
//! # Ok::<(), ull_ssd::ConfigError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod component;
mod fs;
mod nbd;

pub use component::{
    NbdActor, NbdClientActor, NbdRequestEvent, NbdResponseEvent, NbdServerActor, NbdWire,
};
pub use fs::{Ext4Model, Ext4Params};
pub use nbd::{NbdIoResult, NbdServerKind, NbdSystem, NetworkParams};
