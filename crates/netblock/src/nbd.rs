//! The server-client network block device of fig. 23.
//!
//! A client machine mounts ext4 over NBD; the server exports the ULL SSD
//! either through the conventional kernel NBD server (full kernel storage
//! stack plus user/kernel copies) or through SPDK-NBD (userspace driver,
//! reactor polling). The client's filesystem and the network are identical
//! in both setups — only the server-side I/O path differs, which is the
//! paper's point.

use ull_faults::{FaultPlan, NbdFaults, SALT_NBD, SALT_NBD_BACKOFF};
use ull_nvme::NvmeController;
use ull_simkit::{SimDuration, SimTime, SplitMix64, Timeline};
use ull_ssd::{Ssd, SsdConfig};
use ull_stack::{Host, IoOp, IoPath, SoftwareCosts};

use crate::fs::{Ext4Model, Ext4Params};

/// Which server implementation exports the device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NbdServerKind {
    /// Linux kernel NBD + conventional interrupt-driven stack.
    Kernel,
    /// SPDK NBD target (userspace driver, polled completion).
    Spdk,
}

impl NbdServerKind {
    /// Short label used in reports.
    pub fn label(&self) -> &'static str {
        match self {
            NbdServerKind::Kernel => "kernel-nbd",
            NbdServerKind::Spdk => "spdk-nbd",
        }
    }
}

/// Point-to-point network between client and server.
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkParams {
    /// One-way propagation + protocol latency.
    pub one_way: SimDuration,
    /// Link bandwidth in MB/s (10 GbE ≈ 1200 MB/s).
    pub bandwidth_mbps: u32,
}

impl NetworkParams {
    /// A 10 GbE datacenter link.
    pub fn ten_gbe() -> Self {
        NetworkParams {
            one_way: SimDuration::from_micros(10),
            bandwidth_mbps: 1200,
        }
    }

    /// Serialization time of `bytes` on the link.
    pub fn transfer_time(&self, bytes: u32) -> SimDuration {
        SimDuration::from_nanos(bytes as u64 * 1000 / self.bandwidth_mbps as u64)
    }
}

/// Outcome of one file operation on the client.
#[derive(Debug, Clone, Copy)]
pub struct NbdIoResult {
    /// Client-visible completion instant.
    pub done: SimTime,
    /// Client-visible latency.
    pub latency: SimDuration,
    /// Synchronous server round trips taken.
    pub server_ios: u32,
}

/// The full server-client system.
///
/// # Examples
///
/// ```
/// use ull_netblock::{NbdServerKind, NbdSystem};
/// use ull_simkit::SimTime;
/// use ull_ssd::presets;
///
/// let mut sys = NbdSystem::new(presets::ull_800g(), NbdServerKind::Spdk, 7)?;
/// let r = sys.file_read(SimTime::ZERO, 42, 4096);
/// assert!(r.latency.as_micros_f64() < 100.0);
/// # Ok::<(), ull_ssd::ConfigError>(())
/// ```
#[derive(Debug)]
pub struct NbdSystem {
    kind: NbdServerKind,
    server: Host,
    ext4: Ext4Model,
    net: NetworkParams,
    link: Timeline,
    /// Kernel NBD server: socket syscalls, user/kernel copies, nbd thread
    /// wakeups per request. SPDK NBD: reactor dispatch only.
    server_overhead: SimDuration,
    capacity: u64,
    faults: Option<NbdFaultState>,
}

/// Link-drop lottery plus reconnect parameters and accounting.
#[derive(Debug)]
struct NbdFaultState {
    rng: SplitMix64,
    /// Jitter stream for the reconnect backoff, decorrelated from the
    /// drop lottery so backoff cannot shift which round trips drop.
    backoff_rng: SplitMix64,
    drop_prob: f64,
    /// How long the client waits before declaring the link dead.
    detect_timeout: SimDuration,
    /// TCP + NBD handshake time on reconnect.
    reconnect_delay: SimDuration,
    /// Base of the bounded exponential reconnect backoff; consecutive
    /// dropped round trips wait `base << k` (jittered), `k` capped.
    backoff_base: SimDuration,
    /// Exponent cap (mirrors the NVMe host retry budget).
    backoff_cap: u32,
    /// Round trips dropped back-to-back; cleared by any round trip
    /// whose drop lottery comes up clean.
    consecutive_drops: u32,
    counters: NbdFaults,
}

impl NbdFaultState {
    /// The backoff the client sleeps before the next reconnect attempt:
    /// bounded exponential in the consecutive-drop count, with ±25%
    /// seeded jitter so repeated reconnect storms do not synchronize.
    fn backoff(&mut self) -> SimDuration {
        let k = self.consecutive_drops.min(self.backoff_cap);
        let base = self.backoff_base.as_nanos() << k;
        // Jitter multiplier in [75%, 125%], drawn from the dedicated
        // stream: 75 + r, r uniform in 0..=50.
        let pct = 75 + self.backoff_rng.below(51);
        SimDuration::from_nanos(base * pct / 100)
    }
}

impl NbdSystem {
    /// Builds a server-client system exporting a device built from `ssd`.
    ///
    /// # Errors
    ///
    /// Propagates invalid device configurations.
    pub fn new(
        ssd: SsdConfig,
        kind: NbdServerKind,
        seed: u64,
    ) -> Result<Self, ull_ssd::ConfigError> {
        let capacity = ssd.capacity_bytes;
        let ctrl = NvmeController::new(Ssd::new(ssd)?, 1, 1024);
        let (path, server_overhead) = match kind {
            NbdServerKind::Kernel => (IoPath::KernelInterrupt, SimDuration::from_micros(22)),
            NbdServerKind::Spdk => (IoPath::Spdk, SimDuration::from_nanos(1_500)),
        };
        Ok(NbdSystem {
            kind,
            server: Host::new(ctrl, SoftwareCosts::linux_4_14(), path),
            ext4: Ext4Model::new(Ext4Params::ordered_mode(), seed),
            net: NetworkParams::ten_gbe(),
            link: Timeline::new(),
            server_overhead,
            capacity,
            faults: None,
        })
    }

    /// Installs a fault plan on the whole export path: the link-drop
    /// lottery here plus the server host's NVMe/SSD/flash fault hooks.
    /// A plan whose probabilities are all zero is indistinguishable from
    /// no plan at all.
    pub fn set_fault_plan(&mut self, plan: &FaultPlan) {
        self.server.set_fault_plan(plan);
        if plan.nbd_drop_prob > 0.0 {
            self.faults = Some(NbdFaultState {
                rng: plan.stream(SALT_NBD),
                backoff_rng: plan.stream(SALT_NBD_BACKOFF),
                drop_prob: plan.nbd_drop_prob,
                detect_timeout: plan.host_timeout,
                reconnect_delay: plan.reconnect_delay,
                backoff_base: plan.backoff_base,
                backoff_cap: plan.max_retries,
                consecutive_drops: 0,
                counters: NbdFaults::default(),
            });
        } else {
            self.faults = None;
        }
    }

    /// Link-drop/reconnect accounting (`link_drops == reconnects ==
    /// replayed_commands` by construction: every drop reconnects once and
    /// replays the one in-flight request).
    pub fn nbd_fault_counters(&self) -> NbdFaults {
        self.faults
            .as_ref()
            .map_or_else(NbdFaults::default, |f| f.counters)
    }

    /// Which server kind this system uses.
    pub fn kind(&self) -> NbdServerKind {
        self.kind
    }

    /// The server host (CPU ledger, device metrics).
    pub fn server(&self) -> &Host {
        &self.server
    }

    /// Turns on per-request latency-breakdown recording on the *server*
    /// host: the spans cover the exported device's I/O path (submit →
    /// device → completion delivery), not the client's filesystem or the
    /// network link. Observation only — timings are unchanged.
    pub fn enable_probe(&mut self, cfg: ull_probe::ProbeConfig) {
        self.server.enable_probe(cfg);
    }

    /// Takes the server host's accumulated probe report, disabling
    /// recording. `None` when the probe was never enabled.
    pub fn take_probe(&mut self) -> Option<ull_probe::ProbeReport> {
        self.server.take_probe()
    }

    /// Whether server-side latency-breakdown recording is enabled.
    pub fn probing(&self) -> bool {
        self.server.probing()
    }

    /// Draws the per-round-trip link-drop lottery. Without an installed
    /// plan no stream exists and nothing is drawn.
    fn draw_link_drop(&mut self) -> bool {
        match &mut self.faults {
            Some(f) if f.drop_prob > 0.0 => f.rng.chance(f.drop_prob),
            _ => false,
        }
    }

    /// The link dropped with one request in flight: the client detects the
    /// dead connection after its timeout, sleeps a bounded-exponential
    /// backoff (seeded jitter, escalating with consecutive drops — the
    /// NBD mirror of the NVMe host retry machine), re-establishes the
    /// connection (handshake occupies the link), and replays the request.
    /// Returns the instant the replayed request can be (re)transmitted.
    fn reconnect_and_replay(&mut self, at: SimTime) -> SimTime {
        let (timeout, delay, backoff) = {
            let Some(f) = &mut self.faults else { return at };
            f.counters.link_drops += 1;
            let backoff = f.backoff();
            f.consecutive_drops += 1;
            f.counters.backoff_ns_total += backoff.as_nanos();
            (f.detect_timeout, f.reconnect_delay, backoff)
        };
        let handshake = self.link.reserve(at + timeout + backoff, delay);
        if let Some(f) = &mut self.faults {
            f.counters.reconnects += 1;
            f.counters.replayed_commands += 1;
        }
        handshake.end
    }

    /// One synchronous server round trip for `len` bytes at `offset`.
    fn server_round_trip(&mut self, at: SimTime, op: IoOp, offset: u64, len: u32) -> SimTime {
        // Seeded link-drop fault: the request is lost in flight, the
        // client times out, reconnects and replays it. The replay itself
        // is exempt (one draw per round trip), so recovery terminates.
        let at = if self.draw_link_drop() {
            self.reconnect_and_replay(at)
        } else {
            // A clean round trip ends any reconnect storm: the next drop
            // restarts the exponential ladder from its base rung.
            if let Some(f) = &mut self.faults {
                f.consecutive_drops = 0;
            }
            at
        };
        // Request crosses the link (small frame for reads, payload for
        // writes).
        let req_bytes = if matches!(op, IoOp::Write) {
            len + 64
        } else {
            64
        };
        let req = self.link.reserve(at, self.net.transfer_time(req_bytes));
        let arrive = req.end + self.net.one_way;
        // Server-side software before the block I/O.
        let start = arrive + self.server_overhead;
        let r = self.server.io_sync(op, offset, len, start);
        // Response returns (payload for reads).
        let resp_bytes = if matches!(op, IoOp::Read) {
            len + 64
        } else {
            64
        };
        let resp = self
            .link
            .reserve(r.user_visible, self.net.transfer_time(resp_bytes));
        resp.end + self.net.one_way
    }

    fn file_offset(&self, file_id: u64, len: u32) -> u64 {
        // Hash file ids across the exported device.
        let h = file_id.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let units = self.capacity / 4096;
        let max_unit = units.saturating_sub(len.div_ceil(4096) as u64 + 1);
        (h % max_unit.max(1)) * 4096
    }

    /// Reads `len` bytes of file `file_id` through ext4 over NBD.
    pub fn file_read(&mut self, at: SimTime, file_id: u64, len: u32) -> NbdIoResult {
        let fs = self.ext4.read_cost();
        let offset = self.file_offset(file_id, len);
        let done = self.server_round_trip(at + fs, IoOp::Read, offset, len);
        NbdIoResult {
            done,
            latency: done - at,
            server_ios: 1,
        }
    }

    /// Writes `len` bytes of file `file_id` through ext4 over NBD.
    ///
    /// Most writes are absorbed by the client page cache + journal; a
    /// fraction carries a synchronous commit (data + metadata round trips).
    pub fn file_write(&mut self, at: SimTime, file_id: u64, len: u32) -> NbdIoResult {
        let (fs, sync_ios) = self.ext4.write_cost();
        let offset = self.file_offset(file_id, len);
        let mut t = at + fs;
        for i in 0..sync_ios {
            let io_len = if i == 0 { len } else { 4096 };
            t = self.server_round_trip(t, IoOp::Write, offset, io_len);
        }
        NbdIoResult {
            done: t,
            latency: t - at,
            server_ios: sync_ios,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ull_ssd::presets;

    fn mean_latency(kind: NbdServerKind, write: bool, n: u64) -> f64 {
        let mut sys = NbdSystem::new(presets::ull_800g(), kind, 11).unwrap();
        let mut at = SimTime::ZERO;
        let mut sum = 0.0;
        for i in 0..n {
            let r = if write {
                sys.file_write(at, i * 31 + 7, 4096)
            } else {
                sys.file_read(at, i * 31 + 7, 4096)
            };
            sum += r.latency.as_micros_f64();
            at = r.done + SimDuration::from_micros(5);
        }
        sum / n as f64
    }

    #[test]
    fn spdk_nbd_cuts_read_latency_sharply() {
        let kernel = mean_latency(NbdServerKind::Kernel, false, 2000);
        let spdk = mean_latency(NbdServerKind::Spdk, false, 2000);
        let gain = (kernel - spdk) / kernel;
        // Paper fig. 23: ~39% for reads.
        assert!(
            gain > 0.25 && gain < 0.55,
            "kernel={kernel:.1} spdk={spdk:.1} gain={gain:.2}"
        );
    }

    #[test]
    fn spdk_nbd_barely_helps_writes() {
        let kernel = mean_latency(NbdServerKind::Kernel, true, 4000);
        let spdk = mean_latency(NbdServerKind::Spdk, true, 4000);
        let gain = (kernel - spdk) / kernel;
        // Paper fig. 23: ~4-5% for writes (client-side ext4 dominates).
        assert!(
            gain > 0.0 && gain < 0.15,
            "kernel={kernel:.1} spdk={spdk:.1} gain={gain:.2}"
        );
    }

    #[test]
    fn write_latency_dominated_by_client_fs() {
        let spdk_w = mean_latency(NbdServerKind::Spdk, true, 2000);
        let fs = Ext4Params::ordered_mode().write_overhead.as_micros_f64();
        assert!(spdk_w > fs, "writes must include the fs overhead");
        assert!(spdk_w < 2.5 * fs, "server path must not dominate writes");
    }

    #[test]
    fn file_offsets_stay_in_bounds() {
        let sys = NbdSystem::new(presets::ull_800g(), NbdServerKind::Kernel, 3).unwrap();
        for id in 0..10_000u64 {
            let off = sys.file_offset(id, 65536);
            assert!(off + 65536 <= sys.capacity);
        }
    }

    #[test]
    fn link_drops_reconnect_and_replay() {
        let mut sys = NbdSystem::new(presets::ull_800g(), NbdServerKind::Spdk, 11).unwrap();
        let plan = FaultPlan {
            seed: 5,
            nbd_drop_prob: 0.05,
            ..FaultPlan::none()
        };
        sys.set_fault_plan(&plan);
        let mut at = SimTime::ZERO;
        let mut sum = 0.0;
        let n = 2000u64;
        for i in 0..n {
            let r = sys.file_read(at, i * 31 + 7, 4096);
            sum += r.latency.as_micros_f64();
            at = r.done + SimDuration::from_micros(5);
        }
        let faulty = sum / n as f64;
        let c = sys.nbd_fault_counters();
        assert!(c.link_drops > 0, "rate 0.05 over 2000 reads must fire");
        assert_eq!(c.link_drops, c.reconnects);
        assert_eq!(c.link_drops, c.replayed_commands);
        assert!(
            c.backoff_ns_total > 0,
            "every reconnect pays a nonzero backoff"
        );
        let nominal = mean_latency(NbdServerKind::Spdk, false, 2000);
        assert!(
            faulty > nominal * 1.5,
            "timeout+reconnect must show: nominal={nominal:.1}us faulty={faulty:.1}us"
        );
    }

    #[test]
    fn server_probe_attributes_exported_ios() {
        let run = |probe: bool| {
            let mut sys = NbdSystem::new(presets::ull_800g(), NbdServerKind::Kernel, 11).unwrap();
            if probe {
                sys.enable_probe(ull_probe::ProbeConfig::default());
            }
            let mut at = SimTime::ZERO;
            let mut lat = Vec::new();
            for i in 0..300u64 {
                let r = if i % 3 == 0 {
                    sys.file_write(at, i * 31 + 7, 4096)
                } else {
                    sys.file_read(at, i * 31 + 7, 4096)
                };
                lat.push(r.latency.as_nanos());
                at = r.done + SimDuration::from_micros(5);
            }
            (lat, sys.take_probe())
        };
        let (base, none) = run(false);
        assert!(none.is_none());
        let (probed, report) = run(true);
        assert_eq!(base, probed, "probing must not perturb the system");
        let report = report.unwrap();
        // 200 reads are one server I/O each; writes may be absorbed by
        // the client page cache (zero server round trips).
        assert!(report.metrics.ios() >= 200, "every server I/O is recorded");
        assert!(report.metrics.accounting_exact());
    }

    #[test]
    fn reconnect_backoff_escalates_and_caps() {
        // Drop probability 1.0: every fresh round trip drops (the replay
        // itself is exempt), so consecutive_drops never resets and the
        // ladder climbs to its cap.
        let run = |n: u64| {
            let mut sys = NbdSystem::new(presets::ull_800g(), NbdServerKind::Spdk, 11).unwrap();
            let plan = FaultPlan {
                seed: 5,
                nbd_drop_prob: 1.0,
                ..FaultPlan::none()
            };
            sys.set_fault_plan(&plan);
            let mut at = SimTime::ZERO;
            for i in 0..n {
                let r = sys.file_read(at, i * 31 + 7, 4096);
                at = r.done + SimDuration::from_micros(5);
            }
            sys.nbd_fault_counters()
        };
        let plan = FaultPlan::none();
        let base = plan.backoff_base.as_nanos();
        let cap = plan.max_retries;
        let one = run(1);
        assert_eq!(one.link_drops, 1);
        // First drop waits base << 0, jittered into [75%, 125%].
        assert!(one.backoff_ns_total >= base * 75 / 100);
        assert!(one.backoff_ns_total <= base * 125 / 100);
        let many = run(12);
        assert_eq!(many.link_drops, 12);
        // Rungs 0,1,2,cap,cap,... — the sum is bounded by the capped
        // ladder, so the exponent cannot run away.
        let uncapped_rungs: u64 = (0..12u32).map(|k| base << k.min(cap)).sum();
        assert!(many.backoff_ns_total <= uncapped_rungs * 125 / 100);
        assert!(
            many.backoff_ns_total >= uncapped_rungs * 75 / 100,
            "consecutive drops must escalate: {} < {}",
            many.backoff_ns_total,
            uncapped_rungs * 75 / 100
        );
        // Escalation is real: twelve consecutive drops wait far more
        // than twelve first-rung backoffs.
        assert!(many.backoff_ns_total > 12 * base * 125 / 100);
    }

    #[test]
    fn clean_round_trip_resets_the_backoff_ladder() {
        let mut sys = NbdSystem::new(presets::ull_800g(), NbdServerKind::Spdk, 11).unwrap();
        let plan = FaultPlan {
            seed: 5,
            nbd_drop_prob: 0.5,
            ..FaultPlan::none()
        };
        sys.set_fault_plan(&plan);
        let mut at = SimTime::ZERO;
        for i in 0..400u64 {
            let r = sys.file_read(at, i * 31 + 7, 4096);
            at = r.done + SimDuration::from_micros(5);
        }
        let f = sys.faults.as_ref().unwrap();
        assert!(f.counters.link_drops > 100);
        // At rate 0.5 clean trips are common, so the ladder keeps
        // resetting: the mean rung must sit near the base, far below
        // the capped maximum.
        let mean = f.counters.backoff_ns_total / f.counters.link_drops;
        let base = FaultPlan::none().backoff_base.as_nanos();
        assert!(mean >= base * 75 / 100);
        assert!(
            mean < base * 4,
            "resets must keep the mean rung low: mean {mean} vs base {base}"
        );
    }

    #[test]
    fn zero_rate_fault_plan_is_bitwise_nominal() {
        let run = |plan: Option<FaultPlan>| {
            let mut sys = NbdSystem::new(presets::ull_800g(), NbdServerKind::Kernel, 11).unwrap();
            if let Some(p) = plan {
                sys.set_fault_plan(&p);
            }
            let mut at = SimTime::ZERO;
            let mut lat = Vec::new();
            for i in 0..500u64 {
                let r = sys.file_read(at, i * 31 + 7, 4096);
                lat.push(r.latency.as_nanos());
                at = r.done + SimDuration::from_micros(5);
            }
            lat
        };
        let base = run(None);
        assert_eq!(base, run(Some(FaultPlan::none())));
        assert_eq!(base, run(Some(FaultPlan::uniform(13, 0.0))));
        // Aggressive backoff settings are inert too: with no drops the
        // ladder is never consulted, so reconfiguring it cannot move a
        // single completion (the jitter stream is decorrelated from the
        // drop lottery and draws nothing on the clean path).
        let aggressive = FaultPlan {
            seed: 99,
            max_retries: 9,
            backoff_base: SimDuration::from_micros(900),
            ..FaultPlan::none()
        };
        assert_eq!(base, run(Some(aggressive)));
        let sys = {
            let mut s = NbdSystem::new(presets::ull_800g(), NbdServerKind::Kernel, 11).unwrap();
            s.set_fault_plan(&FaultPlan::none());
            s
        };
        assert_eq!(sys.nbd_fault_counters(), NbdFaults::default());
    }
}
