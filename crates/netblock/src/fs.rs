//! Client-side ext4 cost model.
//!
//! Fig. 23's server-client experiment mounts ext4 *on the client* over a
//! network block device — the one layer kernel-bypass can never remove.
//! Reads touch little metadata (an access-time update); writes create or
//! modify inodes and bitmaps and join a journal transaction, most of which
//! is absorbed by the client page cache and journal batching, with only a
//! fraction of operations synchronously reaching the block device. That
//! asymmetry is exactly why SPDK-NBD helps reads ~39% but writes only ~4%.

use ull_simkit::{SimDuration, SplitMix64};

/// Ext4-like filesystem cost parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct Ext4Params {
    /// Client CPU + page-cache path for a read (lookup, atime).
    pub read_overhead: SimDuration,
    /// Client CPU + journal path for a write (inode/bitmap updates,
    /// transaction join, commit amortization).
    pub write_overhead: SimDuration,
    /// Fraction of writes whose journal commit synchronously reaches the
    /// block device (a full transaction flush on the critical path).
    pub write_sync_fraction: f64,
    /// Extra block I/Os (metadata blocks) issued per synchronous commit.
    pub commit_block_ios: u32,
}

impl Ext4Params {
    /// Calibrated defaults (ordered-mode ext4, 5 s commit interval, small
    /// files).
    pub fn ordered_mode() -> Self {
        Ext4Params {
            read_overhead: SimDuration::from_micros(3),
            write_overhead: SimDuration::from_micros(62),
            write_sync_fraction: 0.10,
            commit_block_ios: 1,
        }
    }
}

/// Per-operation filesystem decisions (deterministic under a seed).
#[derive(Debug)]
pub struct Ext4Model {
    params: Ext4Params,
    rng: SplitMix64,
    sync_commits: u64,
    writes: u64,
}

impl Ext4Model {
    /// Creates a model with the given parameters and seed.
    pub fn new(params: Ext4Params, seed: u64) -> Self {
        Ext4Model {
            params,
            rng: SplitMix64::new(seed),
            sync_commits: 0,
            writes: 0,
        }
    }

    /// The parameters in use.
    pub fn params(&self) -> &Ext4Params {
        &self.params
    }

    /// Client-side latency added to a read.
    pub fn read_cost(&self) -> SimDuration {
        self.params.read_overhead
    }

    /// Client-side latency added to a write, plus how many *synchronous*
    /// block I/Os (data + metadata) must reach the device on the critical
    /// path (0 when the page cache and journal absorb it).
    pub fn write_cost(&mut self) -> (SimDuration, u32) {
        self.writes += 1;
        let sync = self.rng.chance(self.params.write_sync_fraction);
        if sync {
            self.sync_commits += 1;
            (self.params.write_overhead, 1 + self.params.commit_block_ios)
        } else {
            (self.params.write_overhead, 0)
        }
    }

    /// Observed synchronous-commit fraction.
    pub fn sync_fraction(&self) -> f64 {
        if self.writes == 0 {
            0.0
        } else {
            self.sync_commits as f64 / self.writes as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_cost_more_than_reads() {
        let p = Ext4Params::ordered_mode();
        assert!(p.write_overhead > p.read_overhead * 10);
    }

    #[test]
    fn sync_commit_fraction_tracks_parameter() {
        let mut m = Ext4Model::new(Ext4Params::ordered_mode(), 42);
        for _ in 0..20_000 {
            m.write_cost();
        }
        assert!(
            (m.sync_fraction() - 0.10).abs() < 0.01,
            "{}",
            m.sync_fraction()
        );
    }

    #[test]
    fn sync_commits_carry_extra_block_ios() {
        let mut m = Ext4Model::new(
            Ext4Params {
                write_sync_fraction: 1.0,
                ..Ext4Params::ordered_mode()
            },
            1,
        );
        let (cost, ios) = m.write_cost();
        assert_eq!(cost, Ext4Params::ordered_mode().write_overhead);
        assert_eq!(ios, 2); // data + 1 metadata block
    }
}
