//! The seeded fault plan: which faults fire, how often, and the
//! recovery parameters every layer shares.

use ull_simkit::{SimDuration, SplitMix64};

/// Stream salt for the flash read-marginal lottery (ECC read retries).
pub const SALT_FLASH_READ: u64 = 0xF1A5_4EAD;
/// Stream salt for the flash program-fail lottery.
pub const SALT_PROGRAM: u64 = 0x94A6_FA11;
/// Stream salt for the NVMe command-loss (timeout) lottery.
pub const SALT_NVME: u64 = 0x0077_3EAD;
/// Stream salt for the NBD link-drop lottery.
pub const SALT_NBD: u64 = 0x11B_D409;
/// Stream salt for the NBD reconnect-backoff jitter stream. Separate
/// from [`SALT_NBD`] so adding backoff jitter cannot shift the
/// link-drop lottery itself.
pub const SALT_NBD_BACKOFF: u64 = 0xBAC_0FF;
/// Stream salt for the nexus rebuild-scan pacing jitter (throttle gap
/// randomization between range copies).
pub const SALT_REBUILD: u64 = 0x4EB_171D;

/// A deterministic fault-injection plan.
///
/// The plan is pure data: probabilities per fault class plus the
/// recovery parameters the layers apply. All randomness is derived
/// from [`FaultPlan::stream`], which forks a per-layer
/// [`SplitMix64`] stream from `seed` — so two runs with the same plan
/// draw the same lottery, and a plan with all probabilities zero draws
/// nothing at all.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// Root seed for every fault lottery stream.
    pub seed: u64,
    /// Per-unit probability that a flash read comes back ECC-marginal
    /// and needs read-retry steps.
    pub flash_read_marginal_prob: f64,
    /// Maximum read-retry steps for one marginal read (the actual step
    /// count is drawn uniformly from `1..=flash_read_max_steps`).
    pub flash_read_max_steps: u32,
    /// Per-unit probability that a flash program operation fails,
    /// triggering relocation and (eventually) block retirement.
    pub program_fail_prob: f64,
    /// Per-command probability that the NVMe controller silently loses
    /// a completion, forcing the host down the timeout/abort/retry
    /// path.
    pub nvme_timeout_prob: f64,
    /// Per-round-trip probability that the NBD link drops, forcing a
    /// reconnect and in-flight replay.
    pub nbd_drop_prob: f64,
    /// How long the host waits for a completion before declaring the
    /// command timed out.
    pub host_timeout: SimDuration,
    /// Bounded retry budget per command before the host escalates to a
    /// controller reset.
    pub max_retries: u32,
    /// Base of the exponential (integer, sim-time) retry backoff:
    /// attempt `k` waits `backoff_base << k`.
    pub backoff_base: SimDuration,
    /// Controller reset + re-initialization time, paid when a command
    /// exhausts its retry budget.
    pub reset_latency: SimDuration,
    /// Link re-establishment time after an NBD drop.
    pub reconnect_delay: SimDuration,
}

impl FaultPlan {
    /// The empty plan: all probabilities zero. Installing it is
    /// indistinguishable from installing no plan at all.
    pub fn none() -> Self {
        FaultPlan {
            seed: 0,
            flash_read_marginal_prob: 0.0,
            flash_read_max_steps: 0,
            program_fail_prob: 0.0,
            nvme_timeout_prob: 0.0,
            nbd_drop_prob: 0.0,
            host_timeout: SimDuration::from_micros(500),
            max_retries: 3,
            backoff_base: SimDuration::from_micros(50),
            reset_latency: SimDuration::from_millis(2),
            reconnect_delay: SimDuration::from_micros(200),
        }
    }

    /// A uniform plan: every fault class fires at `rate`, with default
    /// recovery parameters. The experiment sweep uses this.
    pub fn uniform(seed: u64, rate: f64) -> Self {
        FaultPlan {
            seed,
            flash_read_marginal_prob: rate,
            flash_read_max_steps: 4,
            program_fail_prob: rate,
            nvme_timeout_prob: rate,
            nbd_drop_prob: rate,
            ..FaultPlan::none()
        }
    }

    /// Whether any fault class can fire at all. Layers skip installing
    /// their fault state (and hence all lottery draws) when this is
    /// false.
    pub fn enabled(&self) -> bool {
        self.flash_read_marginal_prob > 0.0
            || self.program_fail_prob > 0.0
            || self.nvme_timeout_prob > 0.0
            || self.nbd_drop_prob > 0.0
    }

    /// Forks the per-layer lottery stream for `salt` (one of the
    /// `SALT_*` constants). Distinct salts give decorrelated streams;
    /// the same `(seed, salt)` pair always gives the same stream.
    pub fn stream(&self, salt: u64) -> SplitMix64 {
        SplitMix64::new(self.seed ^ 0xFA_017).fork(salt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_disabled() {
        assert!(!FaultPlan::none().enabled());
    }

    #[test]
    fn uniform_zero_rate_is_disabled() {
        assert!(!FaultPlan::uniform(7, 0.0).enabled());
        assert!(FaultPlan::uniform(7, 1e-3).enabled());
    }

    #[test]
    fn streams_are_reproducible_and_salted() {
        let p = FaultPlan::uniform(42, 1e-3);
        let a: Vec<u64> = {
            let mut s = p.stream(SALT_FLASH_READ);
            (0..8).map(|_| s.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut s = p.stream(SALT_FLASH_READ);
            (0..8).map(|_| s.next_u64()).collect()
        };
        assert_eq!(a, b, "same (seed, salt) must replay the same lottery");
        let c: Vec<u64> = {
            let mut s = p.stream(SALT_NVME);
            (0..8).map(|_| s.next_u64()).collect()
        };
        assert_ne!(a, c, "different salts must decorrelate");
    }

    #[test]
    fn seeds_decorrelate() {
        let a = FaultPlan::uniform(1, 1e-3).stream(SALT_NBD).next_u64();
        let b = FaultPlan::uniform(2, 1e-3).stream(SALT_NBD).next_u64();
        assert_ne!(a, b);
    }
}
