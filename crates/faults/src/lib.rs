//! Deterministic fault-injection plans and recovery accounting.
//!
//! This crate is the workspace's single source of truth for *what can go
//! wrong* in a simulated run: a seeded [`FaultPlan`] describes typed
//! faults for every layer of the stack (flash read/program, NVMe
//! command loss, NBD link drops) plus the recovery parameters the
//! layers use to heal (host timeout, bounded retry with exponential
//! backoff, reconnect delay).
//!
//! The injection *decisions* are made by the layers themselves — each
//! forks its own [`SplitMix64`](ull_simkit::SplitMix64) stream from the
//! plan via [`FaultPlan::stream`], so the fault lottery never perturbs
//! the nominal-path RNG streams. A plan with every probability at zero
//! (or no plan at all) is therefore bit-for-bit identical to the
//! pre-fault simulator: zero extra draws, zero extra events.
//!
//! Each layer accumulates its recovery work into the plain-integer
//! counter structs of [`report`], which roll up into one
//! [`FaultReport`] per simulated host. Same seed + same plan ⇒
//! byte-identical reports, regardless of `--jobs`.
//!
//! See `docs/FAULTS.md` for the taxonomy, the recovery state machines
//! and the determinism contract.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod plan;
pub mod report;

pub use plan::{
    FaultPlan, SALT_FLASH_READ, SALT_NBD, SALT_NBD_BACKOFF, SALT_NVME, SALT_PROGRAM, SALT_REBUILD,
};
pub use report::{FaultReport, FlashFaults, NbdFaults, NvmeFaults, SsdRecovery};
