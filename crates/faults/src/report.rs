//! Recovery accounting: plain-integer counters per layer, rolled up
//! into one [`FaultReport`] per simulated host.
//!
//! Everything here is a `u64` on purpose — counters merge with
//! wrapping-free addition, compare with `Eq`, and serialize exactly,
//! so reports are byte-identical across hosts and `--jobs` values.

/// Flash-layer fault and recovery counters.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct FlashFaults {
    /// Reads that came back ECC-marginal and needed retry steps.
    pub read_marginal_events: u64,
    /// Total read-retry steps executed across all marginal reads.
    pub read_retry_steps: u64,
    /// Program operations that failed outright.
    pub program_failures: u64,
}

/// SSD/FTL-layer recovery counters (bad-block handling).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct SsdRecovery {
    /// Virtual blocks retired after a program failure.
    pub retired_blocks: u64,
    /// Retirements absorbed by remapping into overprovisioned spares.
    pub remapped: u64,
    /// Retirements that exhausted the spare pool and shrank capacity.
    pub marked_bad: u64,
    /// Retirements deferred because the block was busy (open append
    /// point or GC victim) or destination capacity was insufficient.
    pub deferred_retirements: u64,
    /// Units relocated off failing blocks during recovery.
    pub relocated_units: u64,
}

/// NVMe-layer fault and host-recovery counters.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct NvmeFaults {
    /// Completions the controller lost (injected timeouts).
    pub injected_timeouts: u64,
    /// Commands the host aborted after its timeout expired.
    pub aborts: u64,
    /// Bounded retries the host issued after an abort.
    pub retries: u64,
    /// Total sim-time nanoseconds spent in exponential retry backoff.
    pub backoff_ns_total: u64,
    /// Controller resets after the retry budget was exhausted.
    pub controller_resets: u64,
    /// Commands requeued (injection-exempt) after a controller reset.
    pub requeues: u64,
    /// Submissions that hit a full SQ and were deterministically
    /// requeued after draining the ring (backpressure, not a fault).
    pub sq_requeues: u64,
}

/// NBD-layer fault and recovery counters.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct NbdFaults {
    /// Link drops injected mid round trip.
    pub link_drops: u64,
    /// Reconnect handshakes completed.
    pub reconnects: u64,
    /// In-flight commands replayed after a reconnect.
    pub replayed_commands: u64,
    /// Total sim-time nanoseconds the client spent in bounded
    /// exponential reconnect backoff (jitter included).
    pub backoff_ns_total: u64,
}

/// The full per-host fault report: every layer's counters.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct FaultReport {
    /// Flash-layer counters.
    pub flash: FlashFaults,
    /// SSD/FTL recovery counters.
    pub ssd: SsdRecovery,
    /// NVMe fault/recovery counters.
    pub nvme: NvmeFaults,
    /// NBD fault/recovery counters.
    pub nbd: NbdFaults,
}

impl FaultReport {
    /// Folds `other` into `self` (plain counter addition). Used when a
    /// sweep cell aggregates several hosts.
    pub fn merge(&mut self, other: &FaultReport) {
        self.flash.read_marginal_events += other.flash.read_marginal_events;
        self.flash.read_retry_steps += other.flash.read_retry_steps;
        self.flash.program_failures += other.flash.program_failures;
        self.ssd.retired_blocks += other.ssd.retired_blocks;
        self.ssd.remapped += other.ssd.remapped;
        self.ssd.marked_bad += other.ssd.marked_bad;
        self.ssd.deferred_retirements += other.ssd.deferred_retirements;
        self.ssd.relocated_units += other.ssd.relocated_units;
        self.nvme.injected_timeouts += other.nvme.injected_timeouts;
        self.nvme.aborts += other.nvme.aborts;
        self.nvme.retries += other.nvme.retries;
        self.nvme.backoff_ns_total += other.nvme.backoff_ns_total;
        self.nvme.controller_resets += other.nvme.controller_resets;
        self.nvme.requeues += other.nvme.requeues;
        self.nvme.sq_requeues += other.nvme.sq_requeues;
        self.nbd.link_drops += other.nbd.link_drops;
        self.nbd.reconnects += other.nbd.reconnects;
        self.nbd.replayed_commands += other.nbd.replayed_commands;
        self.nbd.backoff_ns_total += other.nbd.backoff_ns_total;
    }

    /// Total *injected* faults (recovery work excluded): marginal
    /// reads + program failures + lost completions + link drops.
    ///
    /// The accounting property tests assert this equals the sum of the
    /// recovery events each injection forces.
    pub fn injected_total(&self) -> u64 {
        self.flash.read_marginal_events
            + self.flash.program_failures
            + self.nvme.injected_timeouts
            + self.nbd.link_drops
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_all_zero() {
        let r = FaultReport::default();
        assert_eq!(r.injected_total(), 0);
        assert_eq!(r, FaultReport::default());
    }

    #[test]
    fn merge_adds_counters() {
        let mut a = FaultReport::default();
        a.flash.read_marginal_events = 3;
        a.nvme.injected_timeouts = 2;
        let mut b = FaultReport::default();
        b.flash.read_marginal_events = 4;
        b.nbd.link_drops = 1;
        b.ssd.retired_blocks = 5;
        a.merge(&b);
        assert_eq!(a.flash.read_marginal_events, 7);
        assert_eq!(a.nvme.injected_timeouts, 2);
        assert_eq!(a.nbd.link_drops, 1);
        assert_eq!(a.ssd.retired_blocks, 5);
        assert_eq!(a.injected_total(), 7 + 2 + 1);
    }
}
