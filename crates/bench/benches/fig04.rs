//! Bench target for fig. 4 (latency vs queue depth).
//!
//! Regenerates the figure at `Scale::Quick` (rows + shape verdict printed
//! into the bench log) and times a representative simulation kernel.

use std::hint::black_box;

use ull_bench::Scale;
use ull_study::experiments::device_level;

fn main() {
    let r = device_level::fig04_run(Scale::Quick);
    ull_bench::announce("Fig 4", &r, r.check());
    let mut g = ull_bench::BenchGroup::new("fig04");
    g.sample_size(10);
    g.bench_function("ull_randread_qd16_1k_ios", |b| {
        b.iter(|| black_box(ull_bench::ull_randread_point(1_000)))
    });
    g.finish();
}
