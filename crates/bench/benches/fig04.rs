//! Bench target for fig. 4 (latency vs queue depth).

fn main() {
    ull_bench::figure_bench(Some("fig4"), "fig04", "ull_randread_qd16_1k_ios", || {
        ull_bench::ull_randread_point(1_000)
    });
}
