//! Bench target for fig. 6 (read/write interference).

use ull_stack::IoPath;
use ull_study::testbed::Device;
use ull_workload::{Engine, Pattern};

fn main() {
    ull_bench::figure_bench(Some("fig6"), "fig06", "nvme_mixed_qd4_1k_ios", || {
        ull_bench::job_kernel(
            Device::Nvme750,
            IoPath::KernelInterrupt,
            Engine::Libaio,
            Pattern::Random,
            0.8,
            4096,
            4,
            1_000,
        )
        .mean_latency()
    });
}
