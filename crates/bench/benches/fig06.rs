//! Bench target for fig. 6 (read/write interference).
//!
//! Regenerates the figure at `Scale::Quick` (rows + shape verdict printed
//! into the bench log) and times a representative simulation kernel.

use std::hint::black_box;

use ull_bench::Scale;
use ull_stack::IoPath;
use ull_study::experiments::device_level;
use ull_study::testbed::Device;
use ull_workload::{Engine, Pattern};

fn main() {
    let r = device_level::fig06_run(Scale::Quick);
    ull_bench::announce("Fig 6", &r, r.check());
    let mut g = ull_bench::BenchGroup::new("fig06");
    g.sample_size(10);
    g.bench_function("nvme_mixed_qd4_1k_ios", |b| {
        b.iter(|| {
            black_box(
                ull_bench::job_kernel(
                    Device::Nvme750,
                    IoPath::KernelInterrupt,
                    Engine::Libaio,
                    Pattern::Random,
                    0.8,
                    4096,
                    4,
                    1_000,
                )
                .mean_latency(),
            )
        })
    });
    g.finish();
}
