//! Bench target for fig. 21 (SPDK memory instructions).

fn main() {
    ull_bench::figure_bench(Some("fig21"), "fig21", "ull_spdk_2k_ios", || {
        ull_bench::ull_spdk_point(2_000)
    });
}
