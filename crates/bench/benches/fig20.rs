//! Bench target for fig. 20 (SPDK CPU utilization).

fn main() {
    ull_bench::figure_bench(Some("fig20"), "fig20", "ull_spdk_2k_ios", || {
        ull_bench::ull_spdk_point(2_000)
    });
}
