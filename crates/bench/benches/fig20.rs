//! Bench target for fig. 20 (SPDK CPU utilization).
//!
//! Regenerates the figure at `Scale::Quick` (rows + shape verdict printed
//! into the bench log) and times a representative simulation kernel.

use std::hint::black_box;

use ull_bench::Scale;
use ull_study::experiments::spdk;

fn main() {
    let r = spdk::fig20_run(Scale::Quick);
    ull_bench::announce("Fig 20", &r, r.check());
    let mut g = ull_bench::BenchGroup::new("fig20");
    g.sample_size(10);
    g.bench_function("ull_spdk_2k_ios", |b| {
        b.iter(|| black_box(ull_bench::ull_spdk_point(2_000)))
    });
    g.finish();
}
