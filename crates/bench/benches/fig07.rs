//! Bench target for fig. 7a (average power).
//!
//! Regenerates the figure at `Scale::Quick` (rows + shape verdict printed
//! into the bench log) and times a representative simulation kernel.

use std::hint::black_box;

use ull_bench::Scale;
use ull_stack::IoPath;
use ull_study::experiments::device_level;
use ull_study::testbed::Device;
use ull_workload::{Engine, Pattern};

fn main() {
    let r = device_level::fig07a_run(Scale::Quick);
    ull_bench::announce("Fig 7a", &r, r.check());
    let mut g = ull_bench::BenchGroup::new("fig07");
    g.sample_size(10);
    g.bench_function("nvme_write_power_1k_ios", |b| {
        b.iter(|| {
            black_box(
                ull_bench::job_kernel(
                    Device::Nvme750,
                    IoPath::KernelInterrupt,
                    Engine::Libaio,
                    Pattern::Sequential,
                    0.0,
                    4096,
                    16,
                    1_000,
                )
                .avg_power_w,
            )
        })
    });
    g.finish();
}
