//! Bench target for fig. 7a (average power).

use ull_stack::IoPath;
use ull_study::testbed::Device;
use ull_workload::{Engine, Pattern};

fn main() {
    ull_bench::figure_bench(Some("fig7a"), "fig07", "nvme_write_power_1k_ios", || {
        ull_bench::job_kernel(
            Device::Nvme750,
            IoPath::KernelInterrupt,
            Engine::Libaio,
            Pattern::Sequential,
            0.0,
            4096,
            16,
            1_000,
        )
        .avg_power_w
    });
}
