//! Bench target for fig. 15 (poll memory instructions).
//!
//! Regenerates the figure at `Scale::Quick` (rows + shape verdict printed
//! into the bench log) and times a representative simulation kernel.

use std::hint::black_box;

use ull_bench::Scale;
use ull_study::experiments::completion;

fn main() {
    let r = completion::fig15_run(Scale::Quick);
    ull_bench::announce("Fig 15", &r, r.check());
    let mut g = ull_bench::BenchGroup::new("fig15");
    g.sample_size(10);
    g.bench_function("ull_polled_sync_2k_ios", |b| {
        b.iter(|| black_box(ull_bench::ull_polled_point(2_000)))
    });
    g.finish();
}
