//! Bench target for fig. 15 (poll memory instructions).

fn main() {
    ull_bench::figure_bench(Some("fig15"), "fig15", "ull_polled_sync_2k_ios", || {
        ull_bench::ull_polled_point(2_000)
    });
}
