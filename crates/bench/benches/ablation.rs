//! Ablation benches for the design choices DESIGN.md §5 calls out: the
//! mechanisms the paper credits for ULL behaviour are switched off one at
//! a time and the affected metric is reported.

use std::hint::black_box;

use ull_nvme::NvmeController;
use ull_ssd::{presets, GcPolicy, Ssd, SsdConfig};
use ull_stack::{Host, IoPath, SoftwareCosts};
use ull_workload::{precondition_full, run_job, Engine, JobSpec, Pattern};

fn host_for(cfg: SsdConfig, path: IoPath) -> Host {
    let ctrl = NvmeController::new(Ssd::new(cfg).expect("valid ablation config"), 1, 1024);
    Host::new(ctrl, SoftwareCosts::linux_4_14(), path)
}

fn read_latency(cfg: SsdConfig) -> f64 {
    let mut h = host_for(cfg, IoPath::KernelInterrupt);
    let spec = JobSpec::new("abl-read")
        .pattern(Pattern::Random)
        .engine(Engine::Libaio)
        .iodepth(4)
        .ios(6_000);
    run_job(&mut h, &spec).mean_latency().as_micros_f64()
}

fn mixed_read_latency(cfg: SsdConfig) -> f64 {
    let mut h = host_for(cfg, IoPath::KernelInterrupt);
    let spec = JobSpec::new("abl-mix")
        .pattern(Pattern::Random)
        .read_fraction(0.5)
        .engine(Engine::Libaio)
        .iodepth(4)
        .ios(10_000);
    run_job(&mut h, &spec).read_latency.mean().as_micros_f64()
}

fn gc_write_latency(cfg: SsdConfig) -> f64 {
    let mut h = host_for(cfg, IoPath::KernelInterrupt);
    precondition_full(&mut h);
    let spec = JobSpec::new("abl-gc")
        .pattern(Pattern::Random)
        .read_fraction(0.0)
        .engine(Engine::Libaio)
        .iodepth(2)
        .ios(250_000);
    run_job(&mut h, &spec).mean_latency().as_micros_f64()
}

fn hybrid_latency(sleep_fraction: f64) -> f64 {
    let mut costs = SoftwareCosts::linux_4_14();
    costs.hybrid_sleep_fraction = sleep_fraction;
    let ctrl = NvmeController::new(Ssd::new(presets::ull_800g()).unwrap(), 1, 1024);
    let mut h = Host::new(ctrl, costs, IoPath::KernelHybrid);
    run_job(
        &mut h,
        &JobSpec::new("abl-hybrid")
            .pattern(Pattern::Sequential)
            .ios(6_000),
    )
    .mean_latency()
    .as_micros_f64()
}

fn print_ablation_table() {
    let base = presets::ull_800g();

    println!("\n===== ablation: ULL design mechanisms =====");
    let with = read_latency(base.clone());
    let without = read_latency(base.clone().builder().super_channel(false).build().unwrap());
    println!("split-DMA/super-channel : rnd-read {with:.1}us -> {without:.1}us without");

    let with = mixed_read_latency(base.clone());
    let without = mixed_read_latency(
        base.clone()
            .builder()
            .suspend_resume(false)
            .build()
            .unwrap(),
    );
    println!("suspend/resume          : mixed-read {with:.1}us -> {without:.1}us without");

    let with = gc_write_latency(base.clone());
    let serial_gc = base
        .clone()
        .builder()
        .gc(GcPolicy {
            parallel: false,
            ..base.gc
        })
        .build()
        .unwrap();
    let without = gc_write_latency(serial_gc);
    println!("parallel GC             : gc-write {with:.1}us -> {without:.1}us without");

    let big = gc_write_latency(base.clone());
    let small = gc_write_latency(
        base.clone()
            .builder()
            .write_buffer_units(64)
            .build()
            .unwrap(),
    );
    println!("write buffer 4096->64   : gc-write {big:.1}us -> {small:.1}us");

    let tight_op = base.clone().builder().overprovision(0.10).build().unwrap();
    let op_lat = gc_write_latency(tight_op);
    println!("over-provision 28->10%  : gc-write {with:.1}us -> {op_lat:.1}us");

    println!(
        "hybrid sleep fraction   : 0.25 -> {:.1}us, 0.50 -> {:.1}us, 0.75 -> {:.1}us",
        hybrid_latency(0.25),
        hybrid_latency(0.5),
        hybrid_latency(0.75)
    );
}

fn main() {
    print_ablation_table();
    let mut g = ull_bench::BenchGroup::new("ablation");
    g.sample_size(10);
    g.bench_function("ull_baseline_rnd_read", |b| {
        b.iter(|| black_box(read_latency(presets::ull_800g())))
    });
    g.bench_function("ull_no_suspend_mixed", |b| {
        b.iter(|| {
            let cfg = presets::ull_800g()
                .builder()
                .suspend_resume(false)
                .build()
                .unwrap();
            black_box(mixed_read_latency(cfg))
        })
    });
    g.bench_function("hybrid_sleep_quarter", |b| {
        b.iter(|| black_box(hybrid_latency(0.25)))
    });
    g.finish();
}
