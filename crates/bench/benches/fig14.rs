//! Bench target for fig. 14 (kernel cycle breakdown).

fn main() {
    ull_bench::figure_bench(Some("fig14"), "fig14", "ull_polled_sync_2k_ios", || {
        ull_bench::ull_polled_point(2_000)
    });
}
