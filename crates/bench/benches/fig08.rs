//! Bench target for figs. 7b/8 (GC latency and power over time).
//!
//! Regenerates the figure at `Scale::Quick` (rows + shape verdict printed
//! into the bench log) and times a representative simulation kernel.

use std::hint::black_box;

use ull_bench::Scale;
use ull_study::experiments::device_level;

fn main() {
    let r = device_level::fig07b08_run(Scale::Quick);
    ull_bench::announce("Fig 7b/8", &r, r.check());
    let mut g = ull_bench::BenchGroup::new("fig08");
    g.sample_size(10);
    g.bench_function("nvme_preconditioned_overwrites_5k", |b| {
        b.iter(|| black_box(ull_bench::nvme_gc_point(5_000)))
    });
    g.finish();
}
