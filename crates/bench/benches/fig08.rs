//! Bench target for figs. 7b/8 (GC latency and power over time).

fn main() {
    ull_bench::figure_bench(
        Some("fig7b"),
        "fig08",
        "nvme_preconditioned_overwrites_5k",
        || ull_bench::nvme_gc_point(5_000),
    );
}
