//! Bench target for fig. 16 (hybrid polling latency reduction).
//!
//! Regenerates the figure at `Scale::Quick` (rows + shape verdict printed
//! into the bench log) and times a representative simulation kernel.

use std::hint::black_box;

use ull_bench::Scale;
use ull_stack::IoPath;
use ull_study::experiments::completion;
use ull_study::testbed::Device;
use ull_workload::{Engine, Pattern};

fn main() {
    let r = completion::fig16_run(Scale::Quick);
    ull_bench::announce("Fig 16", &r, r.check());
    let mut g = ull_bench::BenchGroup::new("fig16");
    g.sample_size(10);
    g.bench_function("ull_hybrid_sync_2k_ios", |b| {
        b.iter(|| {
            black_box(
                ull_bench::job_kernel(
                    Device::Ull,
                    IoPath::KernelHybrid,
                    Engine::Pvsync2,
                    Pattern::Random,
                    1.0,
                    4096,
                    1,
                    2_000,
                )
                .mean_latency(),
            )
        })
    });
    g.finish();
}
