//! Bench target for fig. 16 (hybrid polling latency reduction).

use ull_stack::IoPath;
use ull_study::testbed::Device;
use ull_workload::{Engine, Pattern};

fn main() {
    ull_bench::figure_bench(Some("fig16"), "fig16", "ull_hybrid_sync_2k_ios", || {
        ull_bench::job_kernel(
            Device::Ull,
            IoPath::KernelHybrid,
            Engine::Pvsync2,
            Pattern::Random,
            1.0,
            4096,
            1,
            2_000,
        )
        .mean_latency()
    });
}
