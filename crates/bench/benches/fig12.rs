//! Bench target for fig. 12 (hybrid polling CPU utilization).
//!
//! Regenerates the figure at `Scale::Quick` (rows + shape verdict printed
//! into the bench log) and times a representative simulation kernel.

use std::hint::black_box;

use ull_bench::Scale;
use ull_stack::IoPath;
use ull_study::experiments::completion;
use ull_study::testbed::Device;
use ull_workload::{Engine, Pattern};

fn main() {
    let r = completion::fig1213_run(Scale::Quick);
    ull_bench::announce("Fig 12/13", &r, r.check());
    let mut g = ull_bench::BenchGroup::new("fig12");
    g.sample_size(10);
    g.bench_function("ull_hybrid_sync_1k_ios", |b| {
        b.iter(|| {
            black_box(
                ull_bench::job_kernel(
                    Device::Ull,
                    IoPath::KernelHybrid,
                    Engine::Pvsync2,
                    Pattern::Sequential,
                    1.0,
                    4096,
                    1,
                    1_000,
                )
                .cpu_util(),
            )
        })
    });
    g.finish();
}
