//! Bench target for fig. 12 (hybrid polling CPU utilization).

use ull_stack::IoPath;
use ull_study::testbed::Device;
use ull_workload::{Engine, Pattern};

fn main() {
    ull_bench::figure_bench(Some("fig12"), "fig12", "ull_hybrid_sync_1k_ios", || {
        ull_bench::job_kernel(
            Device::Ull,
            IoPath::KernelHybrid,
            Engine::Pvsync2,
            Pattern::Sequential,
            1.0,
            4096,
            1,
            1_000,
        )
        .cpu_util()
    });
}
