//! Bench target for Table I (flash characteristics).

use ull_study::experiments::table1;

fn main() {
    ull_bench::figure_bench(Some("table1"), "table1", "build_table", table1::run);
}
