//! Bench target for Table I (flash characteristics).
//!
//! Regenerates the figure at `Scale::Quick` (rows + shape verdict printed
//! into the bench log) and times a representative simulation kernel.

use std::hint::black_box;

use ull_study::experiments::table1;

fn main() {
    let t = table1::run();
    ull_bench::announce("Table I", &t, t.check());
    let mut g = ull_bench::BenchGroup::new("table1");
    g.sample_size(10);
    g.bench_function("build_table", |b| b.iter(|| black_box(table1::run())));
    g.finish();
}
