//! Bench target for Table I (flash characteristics).
//!
//! Regenerates the figure at `Scale::Quick` (rows + shape verdict printed
//! into the bench log) and times a representative simulation kernel.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use ull_study::experiments::table1;

fn bench(c: &mut Criterion) {
    let t = table1::run();
    ull_bench::announce("Table I", &t, t.check());
    let mut g = c.benchmark_group("table1");
    g.sample_size(10);
    g.bench_function("build_table", |b| b.iter(|| black_box(table1::run())));
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
