//! Bench target for fig. 17 (SPDK vs kernel, NVMe SSD).

use ull_stack::IoPath;
use ull_study::testbed::Device;
use ull_workload::{Engine, Pattern};

fn main() {
    ull_bench::figure_bench(Some("fig17"), "fig17", "nvme_spdk_1k_ios", || {
        ull_bench::job_kernel(
            Device::Nvme750,
            IoPath::Spdk,
            Engine::SpdkPlugin,
            Pattern::Sequential,
            1.0,
            4096,
            1,
            1_000,
        )
        .mean_latency()
    });
}
