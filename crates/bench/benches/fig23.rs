//! Bench target for fig. 23 (kernel NBD vs SPDK NBD).

use ull_netblock::{NbdServerKind, NbdSystem};
use ull_simkit::{SimDuration, SimTime};
use ull_ssd::presets;

fn main() {
    ull_bench::figure_bench(Some("fig23"), "fig23", "spdk_nbd_reads_1k_ops", || {
        let mut sys = NbdSystem::new(presets::ull_800g(), NbdServerKind::Spdk, 1).unwrap();
        let mut at = SimTime::ZERO;
        let mut sum = 0.0;
        for k in 0..1_000u64 {
            let r = sys.file_read(at, k.wrapping_mul(2654435761), 4096);
            sum += r.latency.as_micros_f64();
            at = r.done + SimDuration::from_micros(2);
        }
        sum
    });
}
