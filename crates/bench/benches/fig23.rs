//! Bench target for fig. 23 (kernel NBD vs SPDK NBD).
//!
//! Regenerates the figure at `Scale::Quick` (rows + shape verdict printed
//! into the bench log) and times a representative simulation kernel.

use std::hint::black_box;

use ull_bench::Scale;
use ull_netblock::{NbdServerKind, NbdSystem};
use ull_simkit::{SimDuration, SimTime};
use ull_ssd::presets;
use ull_study::experiments::nbd;

fn main() {
    let r = nbd::fig23_run(Scale::Quick);
    ull_bench::announce("Fig 23", &r, r.check());
    let mut g = ull_bench::BenchGroup::new("fig23");
    g.sample_size(10);
    g.bench_function("spdk_nbd_reads_1k_ops", |b| {
        b.iter(|| {
            black_box({
                let mut sys = NbdSystem::new(presets::ull_800g(), NbdServerKind::Spdk, 1).unwrap();
                let mut at = SimTime::ZERO;
                let mut sum = 0.0;
                for k in 0..1_000u64 {
                    let r = sys.file_read(at, k.wrapping_mul(2654435761), 4096);
                    sum += r.latency.as_micros_f64();
                    at = r.done + SimDuration::from_micros(2);
                }
                sum
            })
        })
    });
    g.finish();
}
