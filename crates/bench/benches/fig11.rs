//! Bench target for fig. 11 (five-nines, poll vs interrupt).

fn main() {
    ull_bench::figure_bench(Some("fig11"), "fig11", "ull_polled_tail_20k_ios", || {
        ull_bench::ull_polled_point(20_000)
    });
}
