//! Bench target for fig. 11 (five-nines, poll vs interrupt).
//!
//! Regenerates the figure at `Scale::Quick` (rows + shape verdict printed
//! into the bench log) and times a representative simulation kernel.

use std::hint::black_box;

use ull_bench::Scale;
use ull_study::experiments::completion;

fn main() {
    let r = completion::fig11_run(Scale::Quick);
    ull_bench::announce("Fig 11", &r, r.check());
    let mut g = ull_bench::BenchGroup::new("fig11");
    g.sample_size(10);
    g.bench_function("ull_polled_tail_20k_ios", |b| {
        b.iter(|| black_box(ull_bench::ull_polled_point(20_000)))
    });
    g.finish();
}
