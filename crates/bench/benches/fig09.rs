//! Bench target for fig. 9 (poll vs interrupt, NVMe SSD).

use ull_stack::IoPath;
use ull_study::testbed::Device;
use ull_workload::{Engine, Pattern};

fn main() {
    ull_bench::figure_bench(Some("fig9"), "fig09", "nvme_polled_sync_1k_ios", || {
        ull_bench::job_kernel(
            Device::Nvme750,
            IoPath::KernelPolled,
            Engine::Pvsync2,
            Pattern::Sequential,
            1.0,
            4096,
            1,
            1_000,
        )
        .mean_latency()
    });
}
