//! Bench target for fig. 9 (poll vs interrupt, NVMe SSD).
//!
//! Regenerates the figure at `Scale::Quick` (rows + shape verdict printed
//! into the bench log) and times a representative simulation kernel.

use std::hint::black_box;

use ull_bench::Scale;
use ull_stack::IoPath;
use ull_study::experiments::completion;
use ull_study::testbed::Device;
use ull_workload::{Engine, Pattern};

fn main() {
    let r = completion::fig0910_run(Scale::Quick);
    ull_bench::announce("Fig 9/10", &r, r.check());
    let mut g = ull_bench::BenchGroup::new("fig09");
    g.sample_size(10);
    g.bench_function("nvme_polled_sync_1k_ios", |b| {
        b.iter(|| {
            black_box(
                ull_bench::job_kernel(
                    Device::Nvme750,
                    IoPath::KernelPolled,
                    Engine::Pvsync2,
                    Pattern::Sequential,
                    1.0,
                    4096,
                    1,
                    1_000,
                )
                .mean_latency(),
            )
        })
    });
    g.finish();
}
