//! Bench target for fig. 5 (bandwidth vs queue depth).

use ull_stack::IoPath;
use ull_study::testbed::Device;
use ull_workload::{Engine, Pattern};

fn main() {
    ull_bench::figure_bench(Some("fig5"), "fig05", "ull_seqread_qd32_1k_ios", || {
        ull_bench::job_kernel(
            Device::Ull,
            IoPath::KernelInterrupt,
            Engine::Libaio,
            Pattern::Sequential,
            1.0,
            4096,
            32,
            1_000,
        )
        .bandwidth_mbps()
    });
}
