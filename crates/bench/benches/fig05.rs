//! Bench target for fig. 5 (bandwidth vs queue depth).
//!
//! Regenerates the figure at `Scale::Quick` (rows + shape verdict printed
//! into the bench log) and times a representative simulation kernel.

use std::hint::black_box;

use ull_bench::Scale;
use ull_stack::IoPath;
use ull_study::experiments::device_level;
use ull_study::testbed::Device;
use ull_workload::{Engine, Pattern};

fn main() {
    let r = device_level::fig05_run(Scale::Quick);
    ull_bench::announce("Fig 5", &r, r.check());
    let mut g = ull_bench::BenchGroup::new("fig05");
    g.sample_size(10);
    g.bench_function("ull_seqread_qd32_1k_ios", |b| {
        b.iter(|| {
            black_box(
                ull_bench::job_kernel(
                    Device::Ull,
                    IoPath::KernelInterrupt,
                    Engine::Libaio,
                    Pattern::Sequential,
                    1.0,
                    4096,
                    32,
                    1_000,
                )
                .bandwidth_mbps(),
            )
        })
    });
    g.finish();
}
