//! Docs-drift guard: the perf-harness result keys documented in
//! `docs/PERFORMANCE.md` and present in the committed `BENCH_perf.json`
//! must exactly track the live harness (`ull_bench::PERF_RESULT_KEYS`).
//! Renaming, adding or retiring a metric without updating both fails
//! here instead of silently drifting.

use ull_bench::PERF_RESULT_KEYS;

fn repo_file(rel: &str) -> String {
    let path = format!("{}/../../{rel}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"))
}

#[test]
fn performance_doc_documents_every_live_result_key() {
    let doc = repo_file("docs/PERFORMANCE.md");
    for key in PERF_RESULT_KEYS {
        assert!(
            doc.contains(&format!("`{key}`")),
            "docs/PERFORMANCE.md does not document perf result key `{key}` \
             (the harness table must list every PERF_RESULT_KEYS entry)"
        );
    }
}

#[test]
fn committed_baseline_carries_every_live_result_key() {
    let json = repo_file("BENCH_perf.json");
    for key in PERF_RESULT_KEYS {
        assert!(
            json.contains(&format!("\"{key}\": ")),
            "committed BENCH_perf.json lacks result key {key} — \
             regenerate it with `./target/release/perf --out BENCH_perf.json`"
        );
    }
}

#[test]
fn committed_baseline_records_sample_spread() {
    // Satellite contract: per-result min/max across samples.
    let json = repo_file("BENCH_perf.json");
    assert!(
        json.contains("\"spread\""),
        "committed BENCH_perf.json lacks the per-result spread object"
    );
    for needle in ["\"min\": ", "\"max\": "] {
        assert!(json.contains(needle), "spread object lacks {needle}");
    }
}
