//! Wall-clock performance baseline for the simulator's hot loops.
//!
//! Unlike the figure benches (which regenerate paper results), this
//! harness measures the *simulator itself*: events/sec through the
//! scheduler hot loop (timing wheel vs the retained `EventQueue`
//! binary-heap reference), simulated I/Os per wall-clock second
//! through the full closed-loop stack, and the shard-scaling curve of
//! one gossip-coupled fleet world at `--shards {1,2,4}`
//! (`docs/SHARDING.md`). It writes `BENCH_perf.json`.
//!
//! Wall-clock numbers are machine-dependent, so `BENCH_perf.json` is
//! deliberately *outside* the byte-diffed baseline set (those are the
//! `reproduce` JSONs): CI's perf-smoke job only *warns* when events/sec
//! drops more than 25% below the committed file. See
//! docs/PERFORMANCE.md.
//!
//! Usage:
//!
//! ```text
//! perf [--out FILE] [--baseline FILE] [--quick]
//! ```
//!
//! `--baseline FILE` compares against a previously committed
//! `BENCH_perf.json` and prints `PERF-WARN` lines (exit code stays 0 —
//! the gate is advisory by design).

use std::time::Instant;

use ull_bench::PERF_RESULT_KEYS;
use ull_faults::FaultPlan;
use ull_nexus::{run_nexus, NexusConfig};
use ull_simkit::{
    EventQueue, Json, SerialRunner, SimDuration, SimTime, Slab, SlotId, SplitMix64, TimingWheel,
};
use ull_stack::IoPath;
use ull_study::testbed::{host, Device};
use ull_workload::{run_fleet, run_job, Engine, JobSpec, Pattern};

/// Steady-state churn depth for the scheduler microbenches: enough
/// in-flight events that the heap's `O(log n)` sift costs are visible,
/// matching the sweep driver's worst-case concurrency rather than the
/// `iodepth=1` best case.
const CHURN_DEPTH: usize = 1024;

/// Scheduler microbench: prime `CHURN_DEPTH` events, then pop-and-
/// reschedule `ops` times — the exact access pattern of the engine
/// loops. Returns events/sec (one schedule + one pop = two events).
fn wheel_events_per_sec(ops: u64) -> f64 {
    let mut q: TimingWheel<u64> = TimingWheel::new();
    let mut rng = SplitMix64::new(0x5EED_BEEF);
    let mut t = SimTime::ZERO;
    for i in 0..CHURN_DEPTH as u64 {
        q.schedule(t + delta(&mut rng), i);
    }
    let t0 = Instant::now();
    let mut acc = 0u64;
    for _ in 0..ops {
        let (at, v) = q.pop().expect("churn queue never drains");
        t = at;
        acc = acc.wrapping_add(v);
        q.schedule(t + delta(&mut rng), v);
    }
    let secs = t0.elapsed().as_secs_f64();
    std::hint::black_box(acc);
    2.0 * ops as f64 / secs
}

/// Identical churn through the retained binary-heap `EventQueue` — the
/// pre-wheel scheduler, kept as the differential-testing reference.
fn heap_events_per_sec(ops: u64) -> f64 {
    let mut q: EventQueue<u64> = EventQueue::new();
    let mut rng = SplitMix64::new(0x5EED_BEEF);
    let mut t = SimTime::ZERO;
    for i in 0..CHURN_DEPTH as u64 {
        q.schedule(t + delta(&mut rng), i);
    }
    let t0 = Instant::now();
    let mut acc = 0u64;
    for _ in 0..ops {
        let (at, v) = q.pop().expect("churn queue never drains");
        t = at;
        acc = acc.wrapping_add(v);
        q.schedule(t + delta(&mut rng), v);
    }
    let secs = t0.elapsed().as_secs_f64();
    std::hint::black_box(acc);
    2.0 * ops as f64 / secs
}

/// Inter-event gap distribution for the churn benches: mostly short
/// (within the wheel's near horizon, like NVMe completions) with an
/// occasional far outlier (like a GC or timeout event).
fn delta(rng: &mut SplitMix64) -> SimDuration {
    if rng.chance(0.01) {
        SimDuration::from_micros(5_000 + rng.below(20_000))
    } else {
        SimDuration::from_nanos(200 + rng.below(40_000))
    }
}

/// End-to-end kernel: closed-loop libaio random reads on the ULL
/// device. Returns simulated I/Os completed per wall-clock second.
fn closed_loop_ios_per_sec(ios: u64) -> f64 {
    let mut h = host(Device::Ull, IoPath::KernelInterrupt);
    let spec = JobSpec::new("perf-closed-loop")
        .pattern(Pattern::Random)
        .read_fraction(0.7)
        .engine(Engine::Libaio)
        .iodepth(16)
        .ios(ios);
    let t0 = Instant::now();
    let r = run_job(&mut h, &spec);
    let secs = t0.elapsed().as_secs_f64();
    r.completed as f64 / secs
}

/// Sync-path kernel: `pvsync2` polled reads (the latency-critical path
/// of figs. 9-16). Returns simulated I/Os per wall-clock second.
fn sync_ios_per_sec(ios: u64) -> f64 {
    let mut h = host(Device::Ull, IoPath::KernelPolled);
    let spec = JobSpec::new("perf-sync").ios(ios);
    let t0 = Instant::now();
    let r = run_job(&mut h, &spec);
    let secs = t0.elapsed().as_secs_f64();
    r.completed as f64 / secs
}

/// Nexus kernel: a 3-way mirror on the ULL device absorbing one child
/// retirement and an online rebuild under traffic (docs/NEXUS.md) —
/// the heaviest multi-actor world in the tree, dominated by
/// cross-actor event traffic rather than a single engine loop.
/// Returns simulated client I/Os per wall-clock second.
fn nexus_ios_per_sec(ios: u64) -> f64 {
    let mut cfg = NexusConfig::new(ull_ssd::presets::ull_800g());
    cfg.path = IoPath::KernelInterrupt;
    cfg.ios = ios;
    cfg.plan = FaultPlan::uniform(0x4E_BE4C, 2e-2);
    cfg.budget = 2;
    let t0 = Instant::now();
    let r = run_nexus(&cfg, 1, &mut SerialRunner);
    let secs = t0.elapsed().as_secs_f64();
    r.counters.completed as f64 / secs
}

/// Sharded-fleet kernel: one gossip-coupled fleet world (see
/// `ull_workload::run_fleet`) drained at `shards` shards with up to
/// `shards` window workers. Returns `(events/s, simulated ios/s)`
/// aggregated across the fleet — the scaling curve of
/// `docs/SHARDING.md`.
fn fleet_rates(nodes: u32, ios: u64, shards: usize) -> (f64, f64) {
    let mut runner = ull_exec::ParallelRunner { jobs: shards };
    let t0 = Instant::now();
    let reports = run_fleet(nodes, ios, 8, shards, &mut runner);
    let secs = t0.elapsed().as_secs_f64();
    let events: u64 = reports.iter().map(|r| r.completed + r.stats_received).sum();
    let done: u64 = reports.iter().map(|r| r.completed).sum();
    (events as f64 / secs, done as f64 / secs)
}

/// Device-slice microbench: doorbell-sized command bursts executed
/// through [`ull_ssd::Ssd::execute_batch`] — the controller's batched
/// drain with the NVMe rings peeled away. Returns commands/sec.
fn device_batch_drain_events_per_sec(ops: u64) -> f64 {
    const BURST: usize = 32;
    let mut ssd = ull_ssd::Ssd::new(ull_ssd::presets::ull_800g()).expect("preset");
    let mut cmds: Vec<ull_ssd::SsdCommand> = Vec::with_capacity(BURST);
    let mut comps = Vec::with_capacity(BURST);
    let mut t = SimTime::ZERO;
    let mut lba = 0u64;
    let t0 = Instant::now();
    for _ in 0..ops / BURST as u64 {
        cmds.clear();
        for j in 0..BURST as u64 {
            let off = ((lba + j) % 8192) * 4096;
            cmds.push(if (lba + j).is_multiple_of(4) {
                ull_ssd::SsdCommand::Write {
                    offset: off,
                    len: 4096,
                }
            } else {
                ull_ssd::SsdCommand::Read {
                    offset: off,
                    len: 4096,
                }
            });
        }
        lba += BURST as u64;
        ssd.execute_batch(t, &cmds, &mut comps, None);
        t = comps.last().expect("burst is non-empty").done;
        comps.clear();
    }
    let secs = t0.elapsed().as_secs_f64();
    std::hint::black_box(ssd.metrics());
    (ops / BURST as u64 * BURST as u64) as f64 / secs
}

/// Slab-churn microbench: the struct-of-arrays request slab under the
/// completion-burst access pattern — prefetch a window of slot ids,
/// then remove-and-reinsert each (one in-flight request retiring and
/// its replacement arriving). Returns remove+insert pairs/sec.
fn slab_churn_ops_per_sec(ops: u64) -> f64 {
    const DEPTH: usize = 1024;
    const BURST: usize = 32;
    let mut slab: Slab<[u64; 4]> = Slab::with_capacity(DEPTH);
    let mut ids: Vec<SlotId> = (0..DEPTH as u64).map(|i| slab.insert([i; 4])).collect();
    let t0 = Instant::now();
    let mut acc = 0u64;
    for b in 0..ops / BURST as u64 {
        let start = (b as usize * BURST) % DEPTH;
        slab.prefetch(&ids[start..start + BURST]);
        for id in &mut ids[start..start + BURST] {
            let v = slab.remove(*id).expect("window ids are live");
            acc = acc.wrapping_add(v[0]);
            *id = slab.insert(v);
        }
    }
    let secs = t0.elapsed().as_secs_f64();
    std::hint::black_box(acc);
    (ops / BURST as u64 * BURST as u64) as f64 / secs
}

/// Per-metric sample spread: `max` is the headline best-of-N estimate
/// (wall-clock benches are noisy downwards only — cache misses,
/// scheduling — so the max is the stable estimator); `min`/`max`
/// together record the spread across samples in `BENCH_perf.json`.
#[derive(Clone, Copy)]
struct Spread {
    min: f64,
    max: f64,
}

fn sampled<F: FnMut() -> f64>(n: usize, mut f: F) -> Spread {
    let mut min = f64::INFINITY;
    let mut max = 0.0f64;
    for _ in 0..n {
        let v = f();
        min = min.min(v);
        max = max.max(v);
    }
    Spread {
        min: if min.is_finite() { min } else { 0.0 },
        max,
    }
}

/// Pulls `"key": <number>` out of a committed `BENCH_perf.json` without
/// a JSON parser (the workspace deliberately has no serde; the writer
/// in `ull-simkit` emits exactly this shape).
fn extract_number(text: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\": ");
    let start = text.find(&needle)? + needle.len();
    let rest = &text[start..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == '+'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out_path = String::from("BENCH_perf.json");
    let mut baseline: Option<String> = None;
    let mut quick = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--out" => out_path = it.next().expect("--out needs a path").clone(),
            "--baseline" => baseline = Some(it.next().expect("--baseline needs a path").clone()),
            "--quick" => quick = true,
            other => {
                eprintln!("unknown argument {other:?}");
                eprintln!("usage: perf [--out FILE] [--baseline FILE] [--quick]");
                std::process::exit(2);
            }
        }
    }

    let (sched_ops, io_n, samples) = if quick {
        (200_000u64, 5_000u64, 2usize)
    } else {
        (2_000_000, 40_000, 3)
    };

    println!("scheduler churn: depth={CHURN_DEPTH} ops={sched_ops} samples={samples}");
    let wheel = sampled(samples, || wheel_events_per_sec(sched_ops));
    let heap = sampled(samples, || heap_events_per_sec(sched_ops));
    let speedup = wheel.max / heap.max;
    println!("  wheel: {:.0} events/s", wheel.max);
    println!("  heap reference: {:.0} events/s", heap.max);
    println!("  speedup: {speedup:.2}x");

    println!("closed-loop libaio qd16 ({io_n} ios):");
    let closed = sampled(samples, || closed_loop_ios_per_sec(io_n));
    println!("  {:.0} simulated ios/s", closed.max);
    println!("sync pvsync2 polled ({io_n} ios):");
    let sync = sampled(samples, || sync_ios_per_sec(io_n));
    println!("  {:.0} simulated ios/s", sync.max);
    let nexus_n = io_n / 4;
    println!("nexus retire + online rebuild, 3-way mirror ({nexus_n} ios):");
    let nexus = sampled(samples, || nexus_ios_per_sec(nexus_n));
    println!("  {:.0} simulated ios/s", nexus.max);
    let drain_ops = sched_ops / 4;
    println!("device batch drain, 32-command doorbell slices ({drain_ops} cmds):");
    let drain = sampled(samples, || device_batch_drain_events_per_sec(drain_ops));
    println!("  {:.0} commands/s", drain.max);
    println!("SoA slab churn, prefetched 32-slot bursts ({sched_ops} pairs):");
    let churn = sampled(samples, || slab_churn_ops_per_sec(sched_ops));
    println!("  {:.0} remove+insert pairs/s", churn.max);

    // Shard-scaling curve: the same gossip-coupled fleet world drained
    // at 1, 2 and 4 shards. The reports are byte-identical at every
    // point (the golden tests pin that); only wall-clock may differ.
    let (fleet_nodes, fleet_ios) = if quick { (8u32, 2_000u64) } else { (8, 12_000) };
    println!("sharded fleet: nodes={fleet_nodes} ios/node={fleet_ios} qd=8");
    // Per entry: (shards, best events/s, its paired ios/s, min events/s
    // across samples) — the min records the spread like the scalars'.
    let mut curve: Vec<(usize, f64, f64, f64)> = Vec::new();
    for shards in [1usize, 2, 4] {
        let mut best = (0.0f64, 0.0f64);
        let mut ev_min = f64::INFINITY;
        for _ in 0..samples {
            let (ev, io) = fleet_rates(fleet_nodes, fleet_ios, shards);
            ev_min = ev_min.min(ev);
            if ev > best.0 {
                best = (ev, io);
            }
        }
        curve.push((shards, best.0, best.1, ev_min));
        println!(
            "  shards={shards}: {:.0} events/s, {:.0} sim ios/s",
            best.0, best.1
        );
    }
    let scale4 = curve[2].1 / curve[0].1;
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!("  scaling at 4 shards: {scale4:.2}x (cores available: {cores})");
    if cores >= 4 && scale4 < 1.5 {
        // Advisory only — a loaded or small runner must not fail CI.
        println!("PERF-WARN: shard scaling at 4 shards below 1.5x ({scale4:.2}x)");
    }

    let doc = Json::obj()
        .field("schema", 1i64)
        .field(
            "note",
            "wall-clock numbers: machine-dependent, advisory only; NOT part of the byte-diffed baseline set (docs/PERFORMANCE.md)",
        )
        .field(
            "config",
            Json::obj()
                .field("churn_depth", CHURN_DEPTH as i64)
                .field("sched_ops", sched_ops as i64)
                .field("io_n", io_n as i64)
                .field("samples", samples as i64),
        )
        .field(
            "results",
            Json::obj()
                .field("wheel_events_per_sec", wheel.max)
                .field("heap_events_per_sec", heap.max)
                .field("wheel_speedup_vs_heap", speedup)
                .field("closed_loop_ios_per_sec", closed.max)
                .field("sync_ios_per_sec", sync.max)
                .field("nexus_ios_per_sec", nexus.max)
                .field("device_batch_drain_events_per_sec", drain.max)
                .field("slab_churn_ops_per_sec", churn.max),
        )
        .field(
            "spread",
            // min/max across samples per sampled metric (the ratio
            // `wheel_speedup_vs_heap` has no per-sample spread).
            [
                ("wheel_events_per_sec", wheel),
                ("heap_events_per_sec", heap),
                ("closed_loop_ios_per_sec", closed),
                ("sync_ios_per_sec", sync),
                ("nexus_ios_per_sec", nexus),
                ("device_batch_drain_events_per_sec", drain),
                ("slab_churn_ops_per_sec", churn),
            ]
            .into_iter()
            .fold(Json::obj(), |o, (key, s)| {
                o.field(key, Json::obj().field("min", s.min).field("max", s.max))
            }),
        )
        .field(
            "shard_scaling",
            Json::Arr(
                curve
                    .iter()
                    .map(|&(shards, ev, io, ev_min)| {
                        Json::obj()
                            .field("shards", shards as i64)
                            .field("events_per_sec", ev)
                            .field("sim_ios_per_sec", io)
                            .field("events_per_sec_min", ev_min)
                    })
                    .collect(),
            ),
        );
    std::fs::write(&out_path, doc.to_pretty_string()).expect("write perf baseline");
    println!("wrote {out_path}");

    // Every gated key must be a live results key (PERF_RESULT_KEYS is
    // what the docs-drift test pins to docs/PERFORMANCE.md).
    let gated = [
        ("wheel_events_per_sec", wheel.max),
        ("closed_loop_ios_per_sec", closed.max),
        ("sync_ios_per_sec", sync.max),
        ("nexus_ios_per_sec", nexus.max),
        ("device_batch_drain_events_per_sec", drain.max),
        ("slab_churn_ops_per_sec", churn.max),
    ];
    for (key, _) in &gated {
        assert!(
            PERF_RESULT_KEYS.contains(key),
            "gated key {key} missing from PERF_RESULT_KEYS"
        );
    }

    if let Some(path) = baseline {
        let text = std::fs::read_to_string(&path).expect("read baseline");
        let mut warned = false;
        for (key, current) in gated {
            let Some(base) = extract_number(&text, key) else {
                println!("PERF-WARN: baseline {path} has no {key}");
                warned = true;
                continue;
            };
            if current < 0.75 * base {
                println!(
                    "PERF-WARN: {key} dropped >25%: {current:.0} vs baseline {base:.0} ({:.0}%)",
                    100.0 * current / base
                );
                warned = true;
            } else {
                println!(
                    "perf ok: {key} {current:.0} vs baseline {base:.0} ({:.0}%)",
                    100.0 * current / base
                );
            }
        }
        if !warned {
            println!("perf ok: all metrics within 25% of {path}");
        }
        // Advisory by design: never fail the build on wall-clock noise.
    }
}
