//! `ull-bench` — benchmark harness support.
//!
//! Each bench target (`benches/table1.rs`, `benches/fig04.rs`, ...) does
//! two things:
//!
//! 1. **Regenerates its table/figure** once at [`Scale::Quick`] and prints
//!    the rows plus the shape-check verdict, so `cargo bench` output
//!    contains the reproduced evaluation (EXPERIMENTS.md records the
//!    `--full` numbers).
//! 2. **Times a representative kernel** of that experiment (a single sweep
//!    point) so regressions in simulator performance are visible.
//!
//! The kernels here are shared by those targets, as is [`BenchGroup`] — a
//! self-contained micro-harness with a Criterion-shaped API (the workspace
//! builds fully offline, so it vendors no benchmarking framework).
//!
//! Note on sim-purity: this crate is the *measurement* harness, so it is
//! deliberately outside the simlint S001 wall-clock scope — timing the
//! simulator with `std::time::Instant` is its whole job. The simulation
//! crates themselves must never read the wall clock (docs/DETERMINISM.md).

use std::time::{Duration, Instant};

use ull_stack::IoPath;
use ull_study::registry::{find, Section};
use ull_study::testbed::{host, Device};
use ull_workload::{run_job, Engine, JobReport, JobSpec, Json, Pattern};

pub use ull_study::testbed::Scale;

/// Keys of the `results` object the perf harness
/// (`crates/bench/src/bin/perf.rs`) writes to `BENCH_perf.json`, in
/// emission order. Single source of truth shared by the harness, the
/// committed baseline, and `docs/PERFORMANCE.md` — the docs-drift test
/// (`tests/perf_keys.rs`) pins all three to this list, so renaming or
/// adding a metric without updating the documentation fails the build.
pub const PERF_RESULT_KEYS: [&str; 8] = [
    "wheel_events_per_sec",
    "heap_events_per_sec",
    "wheel_speedup_vs_heap",
    "closed_loop_ios_per_sec",
    "sync_ios_per_sec",
    "nexus_ios_per_sec",
    "device_batch_drain_events_per_sec",
    "slab_churn_ops_per_sec",
];

/// A named group of timed kernels; API mirrors Criterion's
/// `BenchmarkGroup` so bench targets read the same as they always did.
#[derive(Debug)]
pub struct BenchGroup {
    name: String,
    samples: usize,
}

/// Passed to the closure of [`BenchGroup::bench_function`]; its
/// [`Bencher::iter`] runs and times the kernel.
#[derive(Debug)]
pub struct Bencher {
    samples: usize,
    timings: Vec<Duration>,
}

impl Bencher {
    /// Times `f` over the group's configured sample count (after one
    /// untimed warm-up call).
    pub fn iter<T, F: FnMut() -> T>(&mut self, mut f: F) {
        std::hint::black_box(f()); // warm-up
        self.timings.reserve(self.samples);
        for _ in 0..self.samples {
            let t0 = Instant::now();
            std::hint::black_box(f());
            self.timings.push(t0.elapsed());
        }
    }
}

impl BenchGroup {
    /// Creates a group named `name` with the default 10 samples.
    pub fn new(name: impl Into<String>) -> Self {
        BenchGroup {
            name: name.into(),
            samples: 10,
        }
    }

    /// Sets how many timed samples each kernel runs.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    /// Runs and reports one timed kernel.
    pub fn bench_function<F: FnOnce(&mut Bencher)>(&mut self, id: &str, f: F) {
        let mut b = Bencher {
            samples: self.samples,
            timings: Vec::new(),
        };
        f(&mut b);
        let n = b.timings.len().max(1) as u32;
        let total: Duration = b.timings.iter().sum();
        let mean = total / n;
        let min = b.timings.iter().min().copied().unwrap_or_default();
        let max = b.timings.iter().max().copied().unwrap_or_default();
        println!(
            "{}/{id}: mean {mean:?} min {min:?} max {max:?} ({} samples)",
            self.name,
            b.timings.len()
        );
    }

    /// Ends the group (kept for API parity; reporting is per-function).
    pub fn finish(self) {}
}

/// Regenerates one registry experiment at [`Scale::Quick`] and prints
/// its rows, its shape verdict, and a one-line JSON summary into the
/// bench log. Panics on names the registry doesn't know — a bench
/// target naming a retired figure should fail loudly.
pub fn regenerate(name: &str) -> Section {
    let entry = find(name).unwrap_or_else(|| panic!("{name} is not in the experiment registry"));
    let s = entry.run(Scale::Quick, 1);
    println!("\n===== {} (regenerated at Scale::Quick) =====", s.title);
    println!("{}", s.body);
    if s.ok() {
        println!("shape check: OK");
    } else {
        println!("shape check: {:#?}", s.violations);
    }
    println!(
        "summary: {}",
        Json::obj()
            .field("name", s.name)
            .field("ok", s.ok())
            .field("violations", s.violations.len() as u64)
    );
    s
}

/// The shared body of every figure bench target: optionally regenerate
/// the figure through the registry, then time one representative
/// kernel. Alias targets (`fig10`, `fig13`, ...) pass `regen: None`
/// because their primary sibling already regenerates the shared
/// experiment.
pub fn figure_bench<T, F: FnMut() -> T>(regen: Option<&str>, group: &str, id: &str, mut kernel: F) {
    if let Some(name) = regen {
        regenerate(name);
    }
    let mut g = BenchGroup::new(group);
    g.sample_size(10);
    g.bench_function(id, |b| b.iter(&mut kernel));
    g.finish();
}

/// One small job — the unit kernel most figure benches time.
#[allow(clippy::too_many_arguments)] // mirrors the fio option set deliberately
pub fn job_kernel(
    device: Device,
    path: IoPath,
    engine: Engine,
    pattern: Pattern,
    read_fraction: f64,
    block_size: u32,
    iodepth: u32,
    ios: u64,
) -> JobReport {
    let mut h = host(device, path);
    let spec = JobSpec::new("bench-kernel")
        .pattern(pattern)
        .read_fraction(read_fraction)
        .block_size(block_size)
        .engine(engine)
        .iodepth(iodepth)
        .ios(ios);
    run_job(&mut h, &spec)
}

/// Random-read point on the ULL device through the kernel stack.
pub fn ull_randread_point(ios: u64) -> f64 {
    job_kernel(
        Device::Ull,
        IoPath::KernelInterrupt,
        Engine::Libaio,
        Pattern::Random,
        1.0,
        4096,
        16,
        ios,
    )
    .mean_latency()
    .as_micros_f64()
}

/// Polled sync-read point on the ULL device.
pub fn ull_polled_point(ios: u64) -> f64 {
    job_kernel(
        Device::Ull,
        IoPath::KernelPolled,
        Engine::Pvsync2,
        Pattern::Sequential,
        1.0,
        4096,
        1,
        ios,
    )
    .mean_latency()
    .as_micros_f64()
}

/// SPDK point on the ULL device.
pub fn ull_spdk_point(ios: u64) -> f64 {
    job_kernel(
        Device::Ull,
        IoPath::Spdk,
        Engine::SpdkPlugin,
        Pattern::Sequential,
        1.0,
        4096,
        1,
        ios,
    )
    .mean_latency()
    .as_micros_f64()
}

/// GC-pressure point: preconditioned random overwrites on the NVMe device.
pub fn nvme_gc_point(ios: u64) -> f64 {
    let mut h = host(Device::Nvme750, IoPath::KernelInterrupt);
    ull_workload::precondition_full(&mut h);
    let spec = JobSpec::new("bench-gc")
        .pattern(Pattern::Random)
        .read_fraction(0.0)
        .engine(Engine::Libaio)
        .iodepth(2)
        .ios(ios);
    run_job(&mut h, &spec).mean_latency().as_micros_f64()
}
