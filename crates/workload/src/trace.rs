//! Trace-driven workloads: replay `(time, op, offset, len)` records against
//! a host, either open-loop (honouring trace timestamps) or closed-loop
//! (back-to-back, as fast as the stack allows).
//!
//! The text format is one record per line, CSV:
//!
//! ```text
//! # time_us,op,offset,len      (op is R or W; '#' lines are comments)
//! 0,R,4096,4096
//! 12.5,W,1048576,8192
//! ```

use ull_simkit::{Component, Engine, Histogram, Scheduler, SimDuration, SimTime, SlotId};
use ull_stack::{AsyncPort, Host, IoOp};

/// One trace record.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceOp {
    /// Issue time relative to trace start.
    pub at: SimDuration,
    /// Direction.
    pub op: IoOp,
    /// Byte offset.
    pub offset: u64,
    /// Length in bytes.
    pub len: u32,
}

/// Error parsing a trace line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseTraceError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl core::fmt::Display for ParseTraceError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "trace line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseTraceError {}

/// Parses the CSV trace format.
///
/// # Errors
///
/// Returns the first malformed line.
///
/// # Examples
///
/// ```
/// use ull_workload::parse_trace;
///
/// let ops = parse_trace("0,R,0,4096\n5.5,W,8192,4096\n")?;
/// assert_eq!(ops.len(), 2);
/// # Ok::<(), ull_workload::ParseTraceError>(())
/// ```
pub fn parse_trace(text: &str) -> Result<Vec<TraceOp>, ParseTraceError> {
    let mut ops = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let err = |message: String| ParseTraceError {
            line: i + 1,
            message,
        };
        let fields: Vec<&str> = line.split(',').map(str::trim).collect();
        if fields.len() != 4 {
            // simlint: allow(S010): parse-error path — runs at most once per replay, never per I/O
            return Err(err(format!("expected 4 fields, got {}", fields.len())));
        }
        let at_us: f64 = fields[0]
            .parse()
            // simlint: allow(S010): parse-error path — runs at most once per replay, never per I/O
            .map_err(|_| err(format!("bad time {:?}", fields[0])))?;
        let op = match fields[1] {
            "R" | "r" => IoOp::Read,
            "W" | "w" => IoOp::Write,
            // simlint: allow(S010): parse-error path — runs at most once per replay, never per I/O
            other => return Err(err(format!("bad op {other:?}, expected R or W"))),
        };
        let offset: u64 = fields[2]
            .parse()
            // simlint: allow(S010): parse-error path — runs at most once per replay, never per I/O
            .map_err(|_| err(format!("bad offset {:?}", fields[2])))?;
        let len: u32 = fields[3]
            .parse()
            // simlint: allow(S010): parse-error path — runs at most once per replay, never per I/O
            .map_err(|_| err(format!("bad len {:?}", fields[3])))?;
        if len == 0 {
            return Err(err("zero-length record".into()));
        }
        ops.push(TraceOp {
            at: SimDuration::from_micros_f64(at_us),
            op,
            offset,
            len,
        });
    }
    Ok(ops)
}

/// Result of a trace replay.
#[derive(Debug)]
pub struct TraceReport {
    /// Records replayed.
    pub completed: u64,
    /// Latency histogram (submission to user-visible completion).
    pub latency: Histogram,
    /// Wall-clock span of the replay.
    pub elapsed: SimDuration,
    /// Records that could not be issued at their trace time because the
    /// previous dependency chain ran late (open-loop slip count).
    pub slipped: u64,
}

impl TraceReport {
    /// Mean latency of the replay.
    pub fn mean_latency(&self) -> SimDuration {
        self.latency.mean()
    }
}

/// Bound in-flight records so driver tags can never exhaust even for
/// pathological all-at-once traces.
const MAX_IN_FLIGHT: usize = 512;

/// Same-instant tie-break keys: when a submit opportunity and a pending
/// completion land on the same instant, the submitting thread wins the
/// tie (`s <= c` in the pre-component loop), so submits carry the
/// smaller key.
const KEY_SUBMIT: u64 = 0;
const KEY_COMPLETE: u64 = 1;

/// The replay's two event kinds on one timeline.
#[derive(Debug, Clone, Copy)]
enum Ev {
    /// The submitting thread wakes to issue the next trace record.
    Submit,
    /// The I/O parked in this port slot completed on the device.
    Complete(SlotId),
}

/// Open-loop trace replay as a [`Component`].
///
/// Invariant: at most one `Submit` event is pending at any time — it is
/// rescheduled when stale (the thread's `free_at` moved past it) and
/// parked (`stalled`) when the in-flight window is full, to be revived
/// by the next completion.
struct Replay<'a> {
    host: &'a mut Host,
    ops: &'a [TraceOp],
    port: AsyncPort,
    latency: Histogram,
    completed: u64,
    slipped: u64,
    end: SimTime,
    free_at: SimTime, // submitting thread availability
    idx: usize,
    stalled: bool,
}

impl Replay<'_> {
    /// Schedules the submit wakeup for record `idx` (no-op past the end).
    fn schedule_submit(&self, sched: &mut Scheduler<'_, Ev>) {
        if let Some(o) = self.ops.get(self.idx) {
            let at = (SimTime::ZERO + o.at).max(self.free_at);
            sched.at_keyed(at, KEY_SUBMIT, Ev::Submit);
        }
    }
}

impl Component for Replay<'_> {
    type Event = Ev;

    fn on_event(&mut self, now: SimTime, ev: Ev, sched: &mut Scheduler<'_, Ev>) {
        match ev {
            Ev::Submit => {
                let o = self.ops[self.idx];
                let want = SimTime::ZERO + o.at;
                let at = want.max(self.free_at);
                if at > now {
                    // Stale wakeup: a completion pushed `free_at` past
                    // the scheduled instant. Try again when free.
                    sched.at_keyed(at, KEY_SUBMIT, Ev::Submit);
                    return;
                }
                if self.port.len() >= MAX_IN_FLIGHT {
                    // Window full: park until a completion frees a tag.
                    self.stalled = true;
                    return;
                }
                self.idx += 1;
                if at > want {
                    self.slipped += 1;
                }
                let (slot, done) = self.port.submit(self.host, o.op, o.offset, o.len, at);
                sched.at_keyed(done, KEY_COMPLETE, Ev::Complete(slot));
                // The submitting thread serializes `io_submit` calls.
                self.free_at = at + SimDuration::from_micros(1);
                self.schedule_submit(sched);
            }
            Ev::Complete(slot) => {
                let (_, r) = self.port.finish(self.host, slot).expect("token in flight");
                self.latency.record(r.latency);
                self.completed += 1;
                self.end = self.end.max(r.user_visible);
                self.free_at = self.free_at.max(r.user_visible);
                if self.stalled {
                    self.stalled = false;
                    self.schedule_submit(sched);
                }
            }
        }
    }
}

/// Replays `ops` open-loop: each record is submitted at its trace time (or
/// as soon as the submitting thread is free, counting a *slip*).
///
/// # Panics
///
/// Panics if any record exceeds the device capacity.
pub fn replay(host: &mut Host, ops: &[TraceOp]) -> TraceReport {
    let mut engine: Engine<Ev> = Engine::new();
    let mut comp = Replay {
        host,
        ops,
        port: AsyncPort::with_capacity(64),
        latency: Histogram::new(),
        completed: 0,
        slipped: 0,
        end: SimTime::ZERO,
        free_at: SimTime::ZERO,
        idx: 0,
        stalled: false,
    };
    engine.with_scheduler(SimTime::ZERO, |sched| comp.schedule_submit(sched));
    // Stepped dispatch: a submit handler may emit the *next* submit at
    // the current instant, and it must interleave with already-pending
    // same-instant completions by key — batch draining would reorder.
    engine.run_stepped(&mut comp);
    TraceReport {
        completed: comp.completed,
        latency: comp.latency,
        elapsed: comp.end.saturating_since(SimTime::ZERO),
        slipped: comp.slipped,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ull_nvme::NvmeController;
    use ull_ssd::{presets, Ssd};
    use ull_stack::{IoPath, SoftwareCosts};

    fn host() -> Host {
        let ctrl = NvmeController::new(Ssd::new(presets::ull_800g()).unwrap(), 1, 1024);
        Host::new(ctrl, SoftwareCosts::linux_4_14(), IoPath::KernelInterrupt)
    }

    #[test]
    fn parses_valid_traces() {
        let t = "# comment\n0,R,0,4096\n\n10,W,8192,4096\n12.25,r,0,512\n";
        let ops = parse_trace(t).unwrap();
        assert_eq!(ops.len(), 3);
        assert_eq!(ops[1].op, IoOp::Write);
        assert_eq!(ops[2].at, SimDuration::from_nanos(12_250));
    }

    #[test]
    fn rejects_malformed_lines() {
        assert_eq!(parse_trace("0,R,0").unwrap_err().line, 1);
        assert!(parse_trace("0,X,0,4096")
            .unwrap_err()
            .message
            .contains("bad op"));
        assert!(parse_trace("zz,R,0,4096")
            .unwrap_err()
            .message
            .contains("bad time"));
        assert!(parse_trace("0,R,0,0")
            .unwrap_err()
            .message
            .contains("zero-length"));
    }

    #[test]
    fn replay_completes_all_records() {
        let mut text = String::new();
        for i in 0..500u64 {
            text.push_str(&format!(
                "{},{},{},4096\n",
                i * 20,
                if i % 3 == 0 { 'W' } else { 'R' },
                (i % 1000) * 4096
            ));
        }
        let ops = parse_trace(&text).unwrap();
        let mut h = host();
        let r = replay(&mut h, &ops);
        assert_eq!(r.completed, 500);
        assert!(r.mean_latency().as_micros_f64() > 5.0);
        assert!(r.elapsed >= SimDuration::from_micros(499 * 20));
    }

    #[test]
    fn bursty_traces_slip() {
        // 200 records all at t=0: the single submitting thread must slip.
        let text: String = (0..200)
            .map(|i| format!("0,R,{},4096\n", i * 4096))
            .collect();
        let ops = parse_trace(&text).unwrap();
        let mut h = host();
        let r = replay(&mut h, &ops);
        assert_eq!(r.completed, 200);
        assert!(r.slipped > 0, "burst must slip the open loop");
    }
}
