//! Trace-driven workloads: replay `(time, op, offset, len)` records against
//! a host, either open-loop (honouring trace timestamps) or closed-loop
//! (back-to-back, as fast as the stack allows).
//!
//! The text format is one record per line, CSV:
//!
//! ```text
//! # time_us,op,offset,len      (op is R or W; '#' lines are comments)
//! 0,R,4096,4096
//! 12.5,W,1048576,8192
//! ```

use ull_simkit::{Histogram, SimDuration, SimTime, Slab, SlotId, TimingWheel};
use ull_ssd::DeviceCompletion;
use ull_stack::{Host, IoOp};

/// One trace record.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceOp {
    /// Issue time relative to trace start.
    pub at: SimDuration,
    /// Direction.
    pub op: IoOp,
    /// Byte offset.
    pub offset: u64,
    /// Length in bytes.
    pub len: u32,
}

/// Error parsing a trace line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseTraceError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl core::fmt::Display for ParseTraceError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "trace line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseTraceError {}

/// Parses the CSV trace format.
///
/// # Errors
///
/// Returns the first malformed line.
///
/// # Examples
///
/// ```
/// use ull_workload::parse_trace;
///
/// let ops = parse_trace("0,R,0,4096\n5.5,W,8192,4096\n")?;
/// assert_eq!(ops.len(), 2);
/// # Ok::<(), ull_workload::ParseTraceError>(())
/// ```
pub fn parse_trace(text: &str) -> Result<Vec<TraceOp>, ParseTraceError> {
    let mut ops = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let err = |message: String| ParseTraceError {
            line: i + 1,
            message,
        };
        let fields: Vec<&str> = line.split(',').map(str::trim).collect();
        if fields.len() != 4 {
            // simlint: allow(S010): parse-error path — runs at most once per replay, never per I/O
            return Err(err(format!("expected 4 fields, got {}", fields.len())));
        }
        let at_us: f64 = fields[0]
            .parse()
            // simlint: allow(S010): parse-error path — runs at most once per replay, never per I/O
            .map_err(|_| err(format!("bad time {:?}", fields[0])))?;
        let op = match fields[1] {
            "R" | "r" => IoOp::Read,
            "W" | "w" => IoOp::Write,
            // simlint: allow(S010): parse-error path — runs at most once per replay, never per I/O
            other => return Err(err(format!("bad op {other:?}, expected R or W"))),
        };
        let offset: u64 = fields[2]
            .parse()
            // simlint: allow(S010): parse-error path — runs at most once per replay, never per I/O
            .map_err(|_| err(format!("bad offset {:?}", fields[2])))?;
        let len: u32 = fields[3]
            .parse()
            // simlint: allow(S010): parse-error path — runs at most once per replay, never per I/O
            .map_err(|_| err(format!("bad len {:?}", fields[3])))?;
        if len == 0 {
            return Err(err("zero-length record".into()));
        }
        ops.push(TraceOp {
            at: SimDuration::from_micros_f64(at_us),
            op,
            offset,
            len,
        });
    }
    Ok(ops)
}

/// Result of a trace replay.
#[derive(Debug)]
pub struct TraceReport {
    /// Records replayed.
    pub completed: u64,
    /// Latency histogram (submission to user-visible completion).
    pub latency: Histogram,
    /// Wall-clock span of the replay.
    pub elapsed: SimDuration,
    /// Records that could not be issued at their trace time because the
    /// previous dependency chain ran late (open-loop slip count).
    pub slipped: u64,
}

impl TraceReport {
    /// Mean latency of the replay.
    pub fn mean_latency(&self) -> SimDuration {
        self.latency.mean()
    }
}

/// Replays `ops` open-loop: each record is submitted at its trace time (or
/// as soon as the submitting thread is free, counting a *slip*).
///
/// # Panics
///
/// Panics if any record exceeds the device capacity.
pub fn replay(host: &mut Host, ops: &[TraceOp]) -> TraceReport {
    let mut events: TimingWheel<SlotId> = TimingWheel::new();
    let mut in_flight: Slab<(SlotId, DeviceCompletion)> = Slab::with_capacity(64);
    let mut latency = Histogram::new();
    let mut completed = 0u64;
    let mut slipped = 0u64;
    let mut end = SimTime::ZERO;
    let mut free_at = SimTime::ZERO; // submitting thread availability
    let mut idx = 0usize;

    // Bound in-flight records so driver tags can never exhaust even for
    // pathological all-at-once traces.
    const MAX_IN_FLIGHT: usize = 512;

    loop {
        let sub_at = ops.get(idx).map(|o| (SimTime::ZERO + o.at).max(free_at));
        let next_complete = events.peek_time();
        let submit_now = match (sub_at, next_complete) {
            (None, None) => break,
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (Some(s), Some(c)) => s <= c && in_flight.len() < MAX_IN_FLIGHT,
        };
        if submit_now {
            let o = ops[idx];
            idx += 1;
            let want = SimTime::ZERO + o.at;
            let at = want.max(free_at);
            if at > want {
                slipped += 1;
            }
            let (token, dev) = host.submit_async(o.op, o.offset, o.len, at);
            let done = dev.done;
            events.schedule(done, in_flight.insert((token, dev)));
            // The submitting thread serializes `io_submit` calls.
            free_at = at + SimDuration::from_micros(1);
        } else {
            let (_, slot) = events.pop().expect("completion pending");
            let (token, dev) = in_flight.remove(slot).expect("token in flight");
            let r = host.finish_async(token, dev);
            latency.record(r.latency);
            completed += 1;
            end = end.max(r.user_visible);
            free_at = free_at.max(r.user_visible);
        }
    }
    TraceReport {
        completed,
        latency,
        elapsed: end.saturating_since(SimTime::ZERO),
        slipped,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ull_nvme::NvmeController;
    use ull_ssd::{presets, Ssd};
    use ull_stack::{IoPath, SoftwareCosts};

    fn host() -> Host {
        let ctrl = NvmeController::new(Ssd::new(presets::ull_800g()).unwrap(), 1, 1024);
        Host::new(ctrl, SoftwareCosts::linux_4_14(), IoPath::KernelInterrupt)
    }

    #[test]
    fn parses_valid_traces() {
        let t = "# comment\n0,R,0,4096\n\n10,W,8192,4096\n12.25,r,0,512\n";
        let ops = parse_trace(t).unwrap();
        assert_eq!(ops.len(), 3);
        assert_eq!(ops[1].op, IoOp::Write);
        assert_eq!(ops[2].at, SimDuration::from_nanos(12_250));
    }

    #[test]
    fn rejects_malformed_lines() {
        assert_eq!(parse_trace("0,R,0").unwrap_err().line, 1);
        assert!(parse_trace("0,X,0,4096")
            .unwrap_err()
            .message
            .contains("bad op"));
        assert!(parse_trace("zz,R,0,4096")
            .unwrap_err()
            .message
            .contains("bad time"));
        assert!(parse_trace("0,R,0,0")
            .unwrap_err()
            .message
            .contains("zero-length"));
    }

    #[test]
    fn replay_completes_all_records() {
        let mut text = String::new();
        for i in 0..500u64 {
            text.push_str(&format!(
                "{},{},{},4096\n",
                i * 20,
                if i % 3 == 0 { 'W' } else { 'R' },
                (i % 1000) * 4096
            ));
        }
        let ops = parse_trace(&text).unwrap();
        let mut h = host();
        let r = replay(&mut h, &ops);
        assert_eq!(r.completed, 500);
        assert!(r.mean_latency().as_micros_f64() > 5.0);
        assert!(r.elapsed >= SimDuration::from_micros(499 * 20));
    }

    #[test]
    fn bursty_traces_slip() {
        // 200 records all at t=0: the single submitting thread must slip.
        let text: String = (0..200)
            .map(|i| format!("0,R,{},4096\n", i * 4096))
            .collect();
        let ops = parse_trace(&text).unwrap();
        let mut h = host();
        let r = replay(&mut h, &ops);
        assert_eq!(r.completed, 200);
        assert!(r.slipped > 0, "burst must slip the open loop");
    }
}
