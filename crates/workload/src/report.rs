//! Job results, fio-style.

use core::fmt;

use ull_simkit::{Histogram, Label, SimDuration, SimTime, TimeSeries};
use ull_ssd::SsdMetrics;
use ull_stack::{MemCounts, Mode, StackFn};

use crate::Json;

/// Everything a finished job measured.
///
/// Produced by [`crate::run_job`]; the accessors mirror what fio prints
/// (IOPS, bandwidth, latency percentiles) plus the paper's extra
/// dimensions: CPU utilization split, per-function memory instructions,
/// device metrics and average power.
#[derive(Debug)]
pub struct JobReport {
    /// Job name (shared with the spec; cloning it is an rc bump, not a
    /// string copy).
    pub name: Label,
    /// I/Os completed.
    pub completed: u64,
    /// Bytes transferred.
    pub bytes: u64,
    /// Wall-clock span of the job.
    pub elapsed: SimDuration,
    /// All-I/O latency histogram.
    pub latency: Histogram,
    /// Read-only latency histogram.
    pub read_latency: Histogram,
    /// Write-only latency histogram.
    pub write_latency: Histogram,
    /// User-mode CPU utilization over the job.
    pub user_util: f64,
    /// Kernel-mode CPU utilization over the job.
    pub kernel_util: f64,
    /// Total memory instructions.
    pub mem: MemCounts,
    /// Memory instructions by function.
    pub mem_by_fn: Vec<(StackFn, MemCounts)>,
    /// CPU busy time by function and mode, descending.
    pub busy_by_fn: Vec<(StackFn, Mode, SimDuration)>,
    /// Device counters at job end.
    pub device: SsdMetrics,
    /// Average device power over the job, watts.
    pub avg_power_w: f64,
    /// Per-submission latency time series (µs values).
    pub latency_series: TimeSeries,
    /// Device power series, watts per bin.
    pub power_series: Vec<(SimTime, f64)>,
}

impl JobReport {
    /// I/Os per second.
    pub fn iops(&self) -> f64 {
        if self.elapsed.is_zero() {
            return 0.0;
        }
        self.completed as f64 / self.elapsed.as_secs_f64()
    }

    /// Bandwidth in MB/s.
    pub fn bandwidth_mbps(&self) -> f64 {
        if self.elapsed.is_zero() {
            return 0.0;
        }
        self.bytes as f64 / 1e6 / self.elapsed.as_secs_f64()
    }

    /// Mean latency.
    pub fn mean_latency(&self) -> SimDuration {
        self.latency.mean()
    }

    /// 99.999th percentile latency.
    pub fn five_nines(&self) -> SimDuration {
        self.latency.five_nines()
    }

    /// Total CPU utilization (user + kernel), clamped to 1.
    pub fn cpu_util(&self) -> f64 {
        (self.user_util + self.kernel_util).min(1.0)
    }

    /// Memory instructions of one function.
    pub fn mem_of(&self, f: StackFn) -> MemCounts {
        self.mem_by_fn
            .iter()
            .find(|(g, _)| *g == f)
            .map(|(_, m)| *m)
            .unwrap_or_default()
    }

    /// CPU busy time of one function across modes.
    pub fn busy_of(&self, f: StackFn) -> SimDuration {
        self.busy_by_fn
            .iter()
            .filter(|(g, _, _)| *g == f)
            .map(|(_, _, d)| *d)
            .sum()
    }

    /// Machine-readable summary of the report (the fields fio's JSON
    /// output would carry, in µs), used by the experiment engine's
    /// `--json` mode and by `ull-bench`.
    ///
    /// The rendering is deterministic: members are emitted in a fixed
    /// order and every number is a pure function of the sim state, so
    /// identical runs serialize to identical bytes (see
    /// docs/DETERMINISM.md).
    pub fn to_json(&self) -> Json {
        Json::obj()
            .field("name", self.name.as_str())
            .field("ios", self.completed)
            .field("bytes", self.bytes)
            .field("elapsed_us", self.elapsed.as_micros_f64())
            .field("iops", self.iops())
            .field("bw_mbps", self.bandwidth_mbps())
            .field(
                "lat_us",
                Json::obj()
                    .field("mean", self.mean_latency().as_micros_f64())
                    .field("p50", self.latency.quantile(0.5).as_micros_f64())
                    .field("p99", self.latency.quantile(0.99).as_micros_f64())
                    .field("p99999", self.five_nines().as_micros_f64())
                    .field("max", self.latency.max().as_micros_f64()),
            )
            .field(
                "cpu",
                Json::obj()
                    .field("user", self.user_util)
                    .field("kernel", self.kernel_util),
            )
            .field(
                "mem",
                Json::obj()
                    .field("loads", self.mem.loads)
                    .field("stores", self.mem.stores),
            )
            .field("power_w", self.avg_power_w)
            .field("write_amplification", self.device.write_amplification())
    }
}

impl fmt::Display for JobReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{}: ios={} bw={:.1}MB/s iops={:.0} lat(mean={} p99={} p99.999={} max={})",
            self.name,
            self.completed,
            self.bandwidth_mbps(),
            self.iops(),
            self.mean_latency(),
            self.latency.quantile(0.99),
            self.five_nines(),
            self.latency.max(),
        )?;
        write!(
            f,
            "  cpu: usr={:.1}% sys={:.1}% | mem: {} loads, {} stores | power={:.2}W | WA={:.2}",
            self.user_util * 100.0,
            self.kernel_util * 100.0,
            self.mem.loads,
            self.mem.stores,
            self.avg_power_w,
            self.device.write_amplification(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy() -> JobReport {
        let mut latency = Histogram::new();
        latency.record(SimDuration::from_micros(10));
        latency.record(SimDuration::from_micros(20));
        JobReport {
            name: "t".into(),
            completed: 2,
            bytes: 8192,
            elapsed: SimDuration::from_micros(100),
            latency,
            read_latency: Histogram::new(),
            write_latency: Histogram::new(),
            user_util: 0.1,
            kernel_util: 0.2,
            mem: MemCounts {
                loads: 5,
                stores: 3,
            },
            mem_by_fn: vec![(
                StackFn::NvmePoll,
                MemCounts {
                    loads: 5,
                    stores: 3,
                },
            )],
            busy_by_fn: vec![(StackFn::NvmePoll, Mode::Kernel, SimDuration::from_micros(3))],
            device: SsdMetrics::default(),
            avg_power_w: 4.0,
            latency_series: TimeSeries::new(SimDuration::from_millis(1)),
            power_series: Vec::new(),
        }
    }

    #[test]
    fn rates_derive_from_elapsed() {
        let r = dummy();
        assert!((r.iops() - 20_000.0).abs() < 1.0);
        assert!((r.bandwidth_mbps() - 81.92).abs() < 0.1);
        assert_eq!(r.mean_latency(), SimDuration::from_micros(15));
    }

    #[test]
    fn lookups_by_function() {
        let r = dummy();
        assert_eq!(r.mem_of(StackFn::NvmePoll).loads, 5);
        assert_eq!(r.mem_of(StackFn::Isr).loads, 0);
        assert_eq!(r.busy_of(StackFn::NvmePoll), SimDuration::from_micros(3));
    }

    #[test]
    fn display_is_informative() {
        let s = dummy().to_string();
        assert!(s.contains("iops"));
        assert!(s.contains("p99.999"));
        assert!(s.contains("usr=10.0%"));
    }
}
