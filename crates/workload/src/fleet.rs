//! A fleet of independent hosts with cross-node gossip — the sharded
//! world's workload.
//!
//! [`run_job`](crate::run_job) drives one host; a *fleet* is many hosts
//! (one per [`FleetNode`] actor), each running its own closed-loop async
//! job, that additionally exchange periodic statistics messages around a
//! ring. The gossip is what makes the fleet a genuine parallel-DES
//! workload rather than embarrassingly-parallel cells: nodes are coupled
//! through timestamped cross-actor events, yet every per-node report is
//! byte-identical at any shard count because the gossip link has a
//! latency floor that becomes the world's lookahead (`docs/SHARDING.md`).
//!
//! This is also the perf harness's scaling workload: `bench`'s shard
//! curve runs one fleet at `--shards {1,2,4}` and reports aggregate
//! events/s.

use ull_nvme::NvmeController;
use ull_simkit::{
    ActorId, Component, Histogram, Lookahead, Scheduler, ShardedWorld, SimDuration, SimTime,
    SlotId, WindowRunner,
};
use ull_ssd::{presets, Ssd};
use ull_stack::{AsyncPort, Host, IoOp, IoPath, SoftwareCosts};

use crate::pattern::AddressStream;
use crate::spec::{JobSpec, Pattern};

/// How many completions between gossip messages to the ring peer.
const GOSSIP_EVERY: u64 = 64;

/// The latency floor of the gossip link between nodes (an in-rack
/// network hop). This is the fleet world's lookahead.
pub const GOSSIP_LINK: SimDuration = SimDuration::from_micros(10);

/// Events of the fleet world.
#[derive(Debug, Clone, Copy)]
pub enum FleetEvent {
    /// A node's own I/O completed (port slot).
    Complete(SlotId),
    /// Gossip from the ring predecessor: its completion count when sent.
    Stat {
        /// Sender's completed-I/O count at send time.
        count: u64,
    },
}

/// Deterministic per-node outcome of a fleet run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FleetNodeReport {
    /// I/Os completed by this node.
    pub completed: u64,
    /// Mean completion latency in nanoseconds.
    pub mean_latency_ns: u64,
    /// Gossip messages received.
    pub stats_received: u64,
    /// Order-sensitive digest of this node's event history (completions
    /// and gossip interleaved) — two runs that observe the same events
    /// in a different order disagree here.
    pub checksum: u64,
}

/// One fleet member: a host running a closed-loop async job, gossiping
/// its progress to the next node on the ring.
#[derive(Debug)]
pub struct FleetNode {
    host: Host,
    stream: AddressStream,
    port: AsyncPort,
    spec: JobSpec,
    next: ActorId,
    submitted: u64,
    completed: u64,
    latency: Histogram,
    stats_received: u64,
    checksum: u64,
}

impl FleetNode {
    /// Builds node `index` of an `n_nodes`-ring, running `ios` random
    /// 4 KiB reads/writes at queue depth `iodepth`.
    pub fn new(index: u32, n_nodes: u32, ios: u64, iodepth: u32) -> Self {
        let ssd = Ssd::new(presets::ull_800g()).expect("preset config is valid");
        let capacity = ssd.capacity_bytes();
        let ctrl = NvmeController::new(ssd, 1, 1024);
        let host = Host::new(ctrl, SoftwareCosts::linux_4_14(), IoPath::KernelPolled);
        let spec = JobSpec::new("fleet")
            .pattern(Pattern::Random)
            .read_fraction(0.75)
            .iodepth(iodepth)
            .ios(ios)
            .seed(0xF1EE_7000 + u64::from(index));
        let stream = AddressStream::new(&spec, capacity);
        FleetNode {
            host,
            stream,
            port: AsyncPort::with_capacity(iodepth as usize),
            spec,
            next: ActorId((index + 1) % n_nodes),
            submitted: 0,
            completed: 0,
            latency: Histogram::new(),
            stats_received: 0,
            checksum: 0,
        }
    }

    /// Issues the node's initial queue-depth worth of I/O (the priming
    /// step; call through [`ShardedWorld::seed`]).
    pub fn prime(&mut self, sched: &mut Scheduler<'_, FleetEvent>) {
        let prime = self.spec.ios.min(u64::from(self.spec.iodepth));
        for _ in 0..prime {
            self.submit(SimTime::ZERO, sched);
        }
    }

    fn submit(&mut self, at: SimTime, sched: &mut Scheduler<'_, FleetEvent>) {
        let (op, offset) = self.stream.next_io();
        let (slot, done) = self
            .port
            .submit(&mut self.host, op, offset, self.spec.block_size, at);
        sched.at(done, FleetEvent::Complete(slot));
        self.submitted += 1;
    }

    fn digest(&mut self, tag: u64, value: u64) {
        self.checksum = self
            .checksum
            .wrapping_mul(0x100_0000_01B3)
            .wrapping_add(tag ^ value);
    }

    /// This node's deterministic run report.
    pub fn report(&self) -> FleetNodeReport {
        FleetNodeReport {
            completed: self.completed,
            mean_latency_ns: self.latency.mean().as_nanos(),
            stats_received: self.stats_received,
            checksum: self.checksum,
        }
    }

    /// Total simulated events this node processed (completions plus
    /// gossip) — the numerator of the perf harness's events/s.
    pub fn events_processed(&self) -> u64 {
        self.completed + self.stats_received
    }
}

impl Component for FleetNode {
    type Event = FleetEvent;

    fn on_event(&mut self, now: SimTime, ev: FleetEvent, sched: &mut Scheduler<'_, FleetEvent>) {
        match ev {
            FleetEvent::Complete(slot) => {
                let (op, r) = self
                    .port
                    .finish(&mut self.host, slot)
                    .expect("completion for an in-flight slot");
                self.completed += 1;
                self.latency.record(r.latency);
                self.digest(
                    if matches!(op, IoOp::Read) { 1 } else { 2 },
                    r.user_visible.as_nanos(),
                );
                if self.completed.is_multiple_of(GOSSIP_EVERY) && self.next != sched.me() {
                    // The send is floored to now + lookahead, which is
                    // exactly the link latency: the floor never distorts.
                    sched.send(
                        self.next,
                        now + GOSSIP_LINK,
                        FleetEvent::Stat {
                            count: self.completed,
                        },
                    );
                }
                if self.submitted < self.spec.ios {
                    self.submit(r.user_visible + self.spec.think_time, sched);
                }
            }
            FleetEvent::Stat { count } => {
                self.stats_received += 1;
                self.digest(3, count ^ now.as_nanos());
            }
        }
    }
}

/// Builds an `n_nodes` fleet, runs it to completion on `shards` shards
/// with `runner` driving the windows, and returns the per-node reports
/// in node order.
pub fn run_fleet(
    n_nodes: u32,
    ios: u64,
    iodepth: u32,
    shards: usize,
    runner: &mut impl WindowRunner,
) -> Vec<FleetNodeReport> {
    let nodes: Vec<FleetNode> = (0..n_nodes)
        .map(|i| FleetNode::new(i, n_nodes, ios, iodepth))
        .collect();
    let mut world = ShardedWorld::new(shards, Lookahead::from_floor(GOSSIP_LINK), nodes);
    for i in 0..n_nodes {
        world.seed(ActorId(i), |node, sched| node.prime(sched));
    }
    world.run_with(runner);
    world.into_actors().iter().map(FleetNode::report).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ull_simkit::SerialRunner;

    #[test]
    fn fleet_reports_are_byte_identical_at_any_shard_count() {
        let serial = run_fleet(4, 400, 4, 1, &mut SerialRunner);
        assert_eq!(serial.len(), 4);
        for r in &serial {
            assert_eq!(r.completed, 400);
            assert!(r.stats_received > 0, "gossip must flow");
        }
        for shards in [2, 3, 4] {
            assert_eq!(
                run_fleet(4, 400, 4, shards, &mut SerialRunner),
                serial,
                "shards={shards}"
            );
        }
    }

    #[test]
    fn single_node_fleet_skips_self_gossip() {
        let r = run_fleet(1, 200, 4, 1, &mut SerialRunner);
        assert_eq!(r[0].completed, 200);
        assert_eq!(r[0].stats_received, 0);
    }
}
