//! fio-like job specifications.

use ull_simkit::{Label, SimDuration};

/// Spatial access pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Pattern {
    /// Ascending offsets, wrapping at the working set.
    Sequential,
    /// Uniformly random aligned offsets.
    Random,
    /// Zipfian offsets (hot spots), exponent 1.0ish.
    Zipf,
}

/// Which fio engine the job models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Engine {
    /// Synchronous `preadv2`/`pwritev2` — used by the completion-method
    /// experiments (figs. 9-16); honours the host's completion path.
    Pvsync2,
    /// Asynchronous `libaio` with a queue depth — used by the
    /// device-characterization experiments (figs. 4-8); interrupt
    /// completion.
    Libaio,
    /// The SPDK fio plugin — asynchronous over the SPDK path.
    SpdkPlugin,
}

/// A complete workload description (the subset of fio options the paper's
/// experiments use, plus `O_DIRECT` semantics which are implicit: the
/// simulator has no page cache).
///
/// # Examples
///
/// ```
/// use ull_workload::{Engine, JobSpec, Pattern};
///
/// let job = JobSpec::new("randread")
///     .pattern(Pattern::Random)
///     .read_fraction(1.0)
///     .block_size(4096)
///     .iodepth(16)
///     .engine(Engine::Libaio)
///     .ios(10_000);
/// assert_eq!(job.iodepth, 16);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Job name for reports. A [`Label`], so fixed names (string
    /// literals) never allocate and sweep-generated names are shared by
    /// reference instead of deep-copied into each report.
    pub name: Label,
    /// Spatial pattern.
    pub pattern: Pattern,
    /// Fraction of operations that are reads (1.0 = read-only).
    pub read_fraction: f64,
    /// Block size in bytes.
    pub block_size: u32,
    /// Outstanding I/Os (async engines; `Pvsync2` is depth 1).
    pub iodepth: u32,
    /// Engine model.
    pub engine: Engine,
    /// Number of I/Os to complete.
    pub ios: u64,
    /// Bytes of device address space the job touches (0 = whole device).
    pub working_set: u64,
    /// RNG seed.
    pub seed: u64,
    /// Think time inserted between a completion and the next submission.
    pub think_time: SimDuration,
}

impl JobSpec {
    /// Creates a job with fio-like defaults: 4 KB random reads, depth 1,
    /// `pvsync2`, 10k I/Os.
    pub fn new(name: impl Into<Label>) -> Self {
        JobSpec {
            name: name.into(),
            pattern: Pattern::Random,
            read_fraction: 1.0,
            block_size: 4096,
            iodepth: 1,
            engine: Engine::Pvsync2,
            ios: 10_000,
            working_set: 0,
            seed: 0xF10,
            think_time: SimDuration::ZERO,
        }
    }

    /// Sets the spatial pattern.
    pub fn pattern(mut self, p: Pattern) -> Self {
        self.pattern = p;
        self
    }

    /// Sets the read fraction (`1.0` read-only, `0.0` write-only).
    ///
    /// # Panics
    ///
    /// Panics if outside `[0, 1]`.
    pub fn read_fraction(mut self, f: f64) -> Self {
        assert!((0.0..=1.0).contains(&f), "read fraction must be in [0,1]");
        self.read_fraction = f;
        self
    }

    /// Sets the block size in bytes.
    ///
    /// # Panics
    ///
    /// Panics if zero or not 4 KB-aligned.
    pub fn block_size(mut self, bs: u32) -> Self {
        assert!(
            bs > 0 && bs.is_multiple_of(4096),
            "block size must be a positive multiple of 4KB"
        );
        self.block_size = bs;
        self
    }

    /// Sets the queue depth.
    ///
    /// # Panics
    ///
    /// Panics if zero.
    pub fn iodepth(mut self, d: u32) -> Self {
        assert!(d > 0, "iodepth must be positive");
        self.iodepth = d;
        self
    }

    /// Sets the engine.
    pub fn engine(mut self, e: Engine) -> Self {
        self.engine = e;
        self
    }

    /// Sets the number of I/Os to complete.
    pub fn ios(mut self, n: u64) -> Self {
        self.ios = n;
        self
    }

    /// Restricts the working set (bytes).
    pub fn working_set(mut self, bytes: u64) -> Self {
        self.working_set = bytes;
        self
    }

    /// Sets the RNG seed.
    pub fn seed(mut self, s: u64) -> Self {
        self.seed = s;
        self
    }

    /// Adds think time between I/Os.
    pub fn think_time(mut self, t: SimDuration) -> Self {
        self.think_time = t;
        self
    }

    /// fio-style shorthand: `"seqread"`, `"randread"`, `"seqwrite"`,
    /// `"randwrite"`, `"randrw"`.
    ///
    /// # Panics
    ///
    /// Panics on an unknown mode string.
    pub fn rw(mut self, mode: &str) -> Self {
        let (pattern, frac) = match mode {
            "seqread" | "read" => (Pattern::Sequential, 1.0),
            "randread" => (Pattern::Random, 1.0),
            "seqwrite" | "write" => (Pattern::Sequential, 0.0),
            "randwrite" => (Pattern::Random, 0.0),
            "randrw" => (Pattern::Random, 0.5),
            other => panic!("unknown rw mode {other:?}"),
        };
        self.pattern = pattern;
        self.read_fraction = frac;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    // Exact constants flow through the builder untouched; bit-equality is
    // the point of the assertion.
    #[allow(clippy::float_cmp)]
    fn defaults_are_fio_like() {
        let j = JobSpec::new("x");
        assert_eq!(j.block_size, 4096);
        assert_eq!(j.iodepth, 1);
        assert_eq!(j.engine, Engine::Pvsync2);
        assert_eq!(j.read_fraction, 1.0);
    }

    #[test]
    #[allow(clippy::float_cmp)]
    fn rw_shorthand() {
        let j = JobSpec::new("x").rw("randwrite");
        assert_eq!(j.pattern, Pattern::Random);
        assert_eq!(j.read_fraction, 0.0);
        let j = JobSpec::new("x").rw("randrw");
        assert_eq!(j.read_fraction, 0.5);
    }

    #[test]
    #[should_panic(expected = "unknown rw mode")]
    fn bad_rw_mode_panics() {
        JobSpec::new("x").rw("sideways");
    }

    #[test]
    #[should_panic(expected = "multiple of 4KB")]
    fn bad_block_size_panics() {
        JobSpec::new("x").block_size(512);
    }
}
