//! Address and operation streams.

use ull_simkit::SplitMix64;
use ull_stack::IoOp;

use crate::spec::{JobSpec, Pattern};

/// Deterministic generator of `(op, offset)` pairs for a job.
///
/// # Examples
///
/// ```
/// use ull_workload::{AddressStream, JobSpec, Pattern};
///
/// let job = JobSpec::new("seq").pattern(Pattern::Sequential).block_size(8192);
/// let mut s = AddressStream::new(&job, 1 << 20);
/// let (_, a) = s.next_io();
/// let (_, b) = s.next_io();
/// assert_eq!(b - a, 8192);
/// ```
#[derive(Debug)]
pub struct AddressStream {
    pattern: Pattern,
    read_fraction: f64,
    block_size: u32,
    span_blocks: u64,
    next_seq: u64,
    rng: SplitMix64,
    /// Zipf normalization constant (computed lazily for Zipf pattern).
    zipf_harmonic: f64,
}

impl AddressStream {
    /// Creates a stream over `capacity` bytes (clamped by the job's working
    /// set).
    ///
    /// # Panics
    ///
    /// Panics if the block size exceeds the usable span.
    pub fn new(spec: &JobSpec, capacity: u64) -> Self {
        let span = if spec.working_set == 0 {
            capacity
        } else {
            spec.working_set.min(capacity)
        };
        let span_blocks = span / spec.block_size as u64;
        assert!(span_blocks > 0, "working set smaller than one block");
        let zipf_harmonic = if spec.pattern == Pattern::Zipf {
            (1..=span_blocks.min(100_000)).map(|k| 1.0 / k as f64).sum()
        } else {
            0.0
        };
        AddressStream {
            pattern: spec.pattern,
            read_fraction: spec.read_fraction,
            block_size: spec.block_size,
            span_blocks,
            next_seq: 0,
            rng: SplitMix64::new(spec.seed),
            zipf_harmonic,
        }
    }

    /// Produces the next `(operation, byte offset)` pair.
    pub fn next_io(&mut self) -> (IoOp, u64) {
        let op = if self.read_fraction >= 1.0 {
            IoOp::Read
        } else if self.read_fraction <= 0.0 {
            IoOp::Write
        } else if self.rng.chance(self.read_fraction) {
            IoOp::Read
        } else {
            IoOp::Write
        };
        let block = match self.pattern {
            Pattern::Sequential => {
                let b = self.next_seq;
                self.next_seq = (self.next_seq + 1) % self.span_blocks;
                b
            }
            Pattern::Random => self.rng.below(self.span_blocks),
            Pattern::Zipf => self.zipf_block(),
        };
        (op, block * self.block_size as u64)
    }

    /// Inverse-CDF Zipf(1.0) over the first `min(span, 100k)` blocks,
    /// scattered across the span so hot blocks are not physically adjacent.
    fn zipf_block(&mut self) -> u64 {
        let n = self.span_blocks.min(100_000);
        let target = self.rng.next_f64() * self.zipf_harmonic;
        let mut acc = 0.0;
        let mut rank = 1u64;
        while rank < n {
            // simlint: allow(S007): the harmonic partial sums are walked in fixed rank order 1..n, so the inverse-CDF accumulation is reproducible bit-for-bit
            acc += 1.0 / rank as f64;
            if acc >= target {
                break;
            }
            rank += 1;
        }
        // Scatter rank r pseudo-randomly but deterministically.
        rank.wrapping_mul(0x9E37_79B9_7F4A_7C15) % self.span_blocks
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::JobSpec;

    #[test]
    fn sequential_wraps_at_span() {
        let job = JobSpec::new("s")
            .pattern(Pattern::Sequential)
            .block_size(4096);
        let mut s = AddressStream::new(&job, 3 * 4096);
        let offs: Vec<u64> = (0..6).map(|_| s.next_io().1).collect();
        assert_eq!(offs, vec![0, 4096, 8192, 0, 4096, 8192]);
    }

    #[test]
    fn random_covers_span_uniformly() {
        let job = JobSpec::new("r")
            .pattern(Pattern::Random)
            .block_size(4096)
            .seed(3);
        let mut s = AddressStream::new(&job, 16 * 4096);
        let mut counts = [0u32; 16];
        for _ in 0..16_000 {
            let (_, off) = s.next_io();
            counts[(off / 4096) as usize] += 1;
        }
        for &c in &counts {
            assert!((800..1200).contains(&c), "non-uniform: {counts:?}");
        }
    }

    #[test]
    fn mixed_ops_follow_read_fraction() {
        let job = JobSpec::new("m").read_fraction(0.8).seed(9);
        let mut s = AddressStream::new(&job, 1 << 20);
        let reads = (0..10_000)
            .filter(|_| matches!(s.next_io().0, IoOp::Read))
            .count();
        assert!((reads as f64 / 10_000.0 - 0.8).abs() < 0.02);
    }

    #[test]
    fn zipf_is_skewed() {
        let job = JobSpec::new("z")
            .pattern(Pattern::Zipf)
            .block_size(4096)
            .seed(5);
        let mut s = AddressStream::new(&job, 1024 * 4096);
        let mut counts = std::collections::HashMap::new();
        for _ in 0..20_000 {
            *counts.entry(s.next_io().1).or_insert(0u32) += 1;
        }
        let max = counts.values().copied().max().unwrap();
        // The hottest block should be far above uniform (20000/1024 ~ 20).
        assert!(max > 200, "max count {max}");
    }

    #[test]
    fn pure_write_jobs_never_read() {
        let job = JobSpec::new("w").read_fraction(0.0);
        let mut s = AddressStream::new(&job, 1 << 20);
        assert!((0..1000).all(|_| matches!(s.next_io().0, IoOp::Write)));
    }
}
