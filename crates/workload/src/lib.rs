//! `ull-workload` — fio-like workload generation for the ull-ssd-study
//! workspace.
//!
//! Models the subset of FIO 3.13 the paper uses: `pvsync2` (synchronous,
//! completion-method experiments), `libaio` (async queue-depth sweeps) and
//! the SPDK fio plugin, with sequential/random/zipfian patterns, read/write
//! mixes and block-size control. `O_DIRECT` is implicit — the simulator has
//! no page cache.
//!
//! # Examples
//!
//! ```
//! use ull_nvme::NvmeController;
//! use ull_ssd::{presets, Ssd};
//! use ull_stack::{Host, IoPath, SoftwareCosts};
//! use ull_workload::{run_job, Engine, JobSpec, Pattern};
//!
//! let ctrl = NvmeController::new(Ssd::new(presets::ull_800g())?, 1, 1024);
//! let mut host = Host::new(ctrl, SoftwareCosts::linux_4_14(), IoPath::KernelInterrupt);
//! let report = run_job(
//!     &mut host,
//!     &JobSpec::new("randread-qd8")
//!         .pattern(Pattern::Random)
//!         .engine(Engine::Libaio)
//!         .iodepth(8)
//!         .ios(2_000),
//! );
//! assert_eq!(report.completed, 2_000);
//! # Ok::<(), ull_ssd::ConfigError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod fleet;
mod pattern;
mod report;
mod runner;
mod spec;
mod trace;

// `Json` moved down to `ull-simkit` so crates below the workload layer
// (notably `ull-probe`'s trace writer) can emit documents too; re-exported
// here so existing `ull_workload::Json` users keep compiling.
pub use fleet::{run_fleet, FleetEvent, FleetNode, FleetNodeReport, GOSSIP_LINK};
pub use pattern::AddressStream;
pub use report::JobReport;
pub use runner::{precondition_full, run_job};
pub use spec::{Engine, JobSpec, Pattern};
pub use trace::{parse_trace, replay, ParseTraceError, TraceOp, TraceReport};
pub use ull_simkit::Json;
