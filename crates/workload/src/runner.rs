//! The job runner: drives a [`crate::JobSpec`] against a host.

use ull_simkit::{
    Component, Engine as EngineLoop, Histogram, Scheduler, SimDuration, SimTime, SlotId, TimeSeries,
};
use ull_stack::{AsyncPort, Host, IoOp, IoPath, Mode};

use crate::pattern::AddressStream;
use crate::report::JobReport;
use crate::spec::{Engine, JobSpec};

/// Fills the device's whole logical space (mapping only, no simulated
/// time) — the paper's preconditioning step before GC experiments.
pub fn precondition_full(host: &mut Host) {
    host.controller_mut().ssd_mut().precondition_full();
}

/// Runs `spec` against a fresh `host` and returns the report.
///
/// The host must be freshly constructed (its ledger empty) so that CPU
/// utilization can be attributed to this job alone.
///
/// # Panics
///
/// Panics if the host has prior CPU charges, or if the engine and the
/// host's I/O path disagree (`SpdkPlugin` requires [`IoPath::Spdk`];
/// `Libaio` requires a kernel path).
pub fn run_job(host: &mut Host, spec: &JobSpec) -> JobReport {
    assert!(
        host.cpu().busy_total().is_zero(),
        "run_job needs a fresh host for per-job CPU accounting"
    );
    match (spec.engine, host.path()) {
        (Engine::SpdkPlugin, IoPath::Spdk) => {}
        (Engine::SpdkPlugin, p) => panic!("SpdkPlugin requires IoPath::Spdk, host has {p:?}"),
        (Engine::Libaio, IoPath::Spdk) => panic!("Libaio cannot run on the SPDK path"),
        _ => {}
    }
    let capacity = host.controller().ssd().capacity_bytes();
    let mut stream = AddressStream::new(spec, capacity);
    let mut rec = Recorder::new(spec);
    match spec.engine {
        Engine::Pvsync2 => run_sync(host, spec, &mut stream, &mut rec),
        Engine::Libaio | Engine::SpdkPlugin => run_async(host, spec, &mut stream, &mut rec),
    }
    rec.finish(host, spec)
}

struct Recorder {
    latency: Histogram,
    read_latency: Histogram,
    write_latency: Histogram,
    series: TimeSeries,
    bytes: u64,
    completed: u64,
    end: SimTime,
}

impl Recorder {
    fn new(_spec: &JobSpec) -> Self {
        Recorder {
            latency: Histogram::new(),
            read_latency: Histogram::new(),
            write_latency: Histogram::new(),
            series: TimeSeries::new(SimDuration::from_millis(10)),
            bytes: 0,
            completed: 0,
            end: SimTime::ZERO,
        }
    }

    fn record(
        &mut self,
        op: IoOp,
        submitted: SimTime,
        latency: SimDuration,
        bytes: u32,
        done: SimTime,
    ) {
        self.latency.record(latency);
        match op {
            IoOp::Read => self.read_latency.record(latency),
            IoOp::Write => self.write_latency.record(latency),
        }
        self.series.record(submitted, latency.as_micros_f64());
        self.bytes += bytes as u64;
        self.completed += 1;
        self.end = self.end.max(done);
    }

    fn finish(self, host: &mut Host, spec: &JobSpec) -> JobReport {
        let elapsed = self.end.saturating_since(SimTime::ZERO);
        host.account_idle_spin(elapsed);
        let cpu = host.cpu();
        let device = host.controller().ssd().metrics();
        let avg_power_w = host.controller().ssd().energy().average_power(self.end);
        let power_series = host.controller().ssd().energy().power_series(self.end);
        JobReport {
            name: spec.name.clone(),
            completed: self.completed,
            bytes: self.bytes,
            elapsed,
            user_util: cpu.utilization(Mode::User, elapsed),
            kernel_util: cpu.utilization(Mode::Kernel, elapsed),
            mem: cpu.mem_total(),
            mem_by_fn: [
                ull_stack::StackFn::FioEngine,
                ull_stack::StackFn::Syscall,
                ull_stack::StackFn::Vfs,
                ull_stack::StackFn::BlockLayer,
                ull_stack::StackFn::NvmeDriverSubmit,
                ull_stack::StackFn::BlkMqPoll,
                ull_stack::StackFn::NvmePoll,
                ull_stack::StackFn::Isr,
                ull_stack::StackFn::Softirq,
                ull_stack::StackFn::ContextSwitch,
                ull_stack::StackFn::HybridSleep,
                ull_stack::StackFn::SpdkSubmit,
                ull_stack::StackFn::SpdkQpairProcess,
                ull_stack::StackFn::SpdkPcieProcess,
                ull_stack::StackFn::SpdkCheckEnabled,
            ]
            .into_iter()
            .map(|f| (f, cpu.mem_of(f)))
            .filter(|(_, m)| m.total() > 0)
            .collect(),
            busy_by_fn: cpu.busy_breakdown(),
            device,
            avg_power_w,
            latency: self.latency,
            read_latency: self.read_latency,
            write_latency: self.write_latency,
            latency_series: self.series,
            power_series,
        }
    }
}

fn run_sync(host: &mut Host, spec: &JobSpec, stream: &mut AddressStream, rec: &mut Recorder) {
    let mut at = SimTime::ZERO;
    for _ in 0..spec.ios {
        let (op, offset) = stream.next_io();
        let r = host.io_sync(op, offset, spec.block_size, at);
        rec.record(op, r.submitted, r.latency, spec.block_size, r.user_visible);
        at = r.user_visible + spec.think_time;
    }
}

/// The async engine loop as a [`Component`]: each event is the slab slot
/// of a completed I/O, and every completion may submit one replacement.
struct AsyncLoop<'a> {
    host: &'a mut Host,
    spec: &'a JobSpec,
    stream: &'a mut AddressStream,
    rec: &'a mut Recorder,
    port: AsyncPort,
    submitted: u64,
}

/// Submits the next I/O of `stream` at `at` and schedules its completion
/// event (FIFO-keyed, exactly like the pre-component loop's
/// `events.schedule`). A free function over the loop's parts so the
/// batch path — where the port is borrowed by
/// [`AsyncPort::finish_batch`] — shares one definition with
/// [`AsyncLoop::submit`].
fn submit_one(
    port: &mut AsyncPort,
    host: &mut Host,
    stream: &mut AddressStream,
    spec: &JobSpec,
    submitted: &mut u64,
    at: SimTime,
    sched: &mut Scheduler<'_, SlotId>,
) {
    let (op, offset) = stream.next_io();
    let (slot, done) = port.submit(host, op, offset, spec.block_size, at);
    sched.at(done, slot);
    *submitted += 1;
}

impl AsyncLoop<'_> {
    /// Submits the next I/O of the stream at `at` and schedules its
    /// completion event.
    fn submit(&mut self, at: SimTime, sched: &mut Scheduler<'_, SlotId>) {
        submit_one(
            &mut self.port,
            self.host,
            self.stream,
            self.spec,
            &mut self.submitted,
            at,
            sched,
        );
    }
}

impl Component for AsyncLoop<'_> {
    type Event = SlotId;

    fn on_event(&mut self, _now: SimTime, slot: SlotId, sched: &mut Scheduler<'_, SlotId>) {
        let (op, r) = self
            .port
            .finish(self.host, slot)
            .expect("completion for an in-flight slot");
        self.rec.record(
            op,
            r.submitted,
            r.latency,
            self.spec.block_size,
            r.user_visible,
        );
        if self.submitted < self.spec.ios {
            self.submit(r.user_visible + self.spec.think_time, sched);
        }
    }

    /// Same-instant completion bursts arrive as one slice: the port
    /// prefetches every slot's slab lines up front, then each
    /// completion runs the identical finish → record → resubmit
    /// sequence in event order. Replacement I/O lands strictly in the
    /// future (`user_visible + think_time > now`), so a resubmit can
    /// never join the batch being drained — the slice is closed.
    fn on_batch(
        &mut self,
        _now: SimTime,
        batch: &mut Vec<SlotId>,
        sched: &mut Scheduler<'_, SlotId>,
    ) {
        let AsyncLoop {
            host,
            spec,
            stream,
            rec,
            port,
            submitted,
        } = self;
        port.finish_batch(host, batch, |port, host, op, r| {
            rec.record(op, r.submitted, r.latency, spec.block_size, r.user_visible);
            if *submitted < spec.ios {
                submit_one(
                    port,
                    host,
                    stream,
                    spec,
                    submitted,
                    r.user_visible + spec.think_time,
                    sched,
                );
            }
        });
    }
}

fn run_async(host: &mut Host, spec: &JobSpec, stream: &mut AddressStream, rec: &mut Recorder) {
    // In-flight state lives in reusable `AsyncPort` slab slots keyed by
    // the event payload, so the steady-state loop performs no per-I/O
    // allocation at all.
    let mut engine: EngineLoop<SlotId> = EngineLoop::new();
    let mut comp = AsyncLoop {
        host,
        spec,
        stream,
        rec,
        port: AsyncPort::with_capacity(spec.iodepth as usize),
        submitted: 0,
    };
    let prime = spec.ios.min(spec.iodepth as u64);
    engine.with_scheduler(SimTime::ZERO, |sched| {
        for _ in 0..prime {
            comp.submit(SimTime::ZERO, sched);
        }
    });
    engine.run(&mut comp);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::Pattern;
    use ull_nvme::NvmeController;
    use ull_ssd::{presets, Ssd};
    use ull_stack::SoftwareCosts;

    fn host(path: IoPath) -> Host {
        let ctrl = NvmeController::new(Ssd::new(presets::ull_800g()).unwrap(), 1, 1024);
        Host::new(ctrl, SoftwareCosts::linux_4_14(), path)
    }

    #[test]
    fn sync_job_completes_requested_ios() {
        let mut h = host(IoPath::KernelInterrupt);
        let spec = JobSpec::new("sync").ios(500);
        let r = run_job(&mut h, &spec);
        assert_eq!(r.completed, 500);
        assert!(r.mean_latency().as_micros_f64() > 5.0);
        assert!(r.iops() > 10_000.0);
    }

    #[test]
    fn deeper_queues_raise_throughput() {
        let run = |depth| {
            let mut h = host(IoPath::KernelInterrupt);
            let spec = JobSpec::new("aio")
                .engine(Engine::Libaio)
                .pattern(Pattern::Random)
                .iodepth(depth)
                .ios(4000);
            run_job(&mut h, &spec).iops()
        };
        let q1 = run(1);
        let q8 = run(8);
        assert!(q8 > 3.0 * q1, "q1={q1:.0} q8={q8:.0}");
    }

    #[test]
    fn mixed_job_records_both_directions() {
        let mut h = host(IoPath::KernelInterrupt);
        let spec = JobSpec::new("mix").read_fraction(0.5).ios(1000).seed(5);
        let r = run_job(&mut h, &spec);
        assert!(r.read_latency.count() > 300);
        assert!(r.write_latency.count() > 300);
        assert_eq!(r.read_latency.count() + r.write_latency.count(), 1000);
    }

    #[test]
    fn spdk_plugin_requires_spdk_path() {
        let mut h = host(IoPath::Spdk);
        let spec = JobSpec::new("spdk")
            .engine(Engine::SpdkPlugin)
            .iodepth(4)
            .ios(1000);
        let r = run_job(&mut h, &spec);
        assert_eq!(r.completed, 1000);
        // Fig. 20: the reactor owns the core.
        assert!(r.user_util > 0.9, "user util {}", r.user_util);
    }

    #[test]
    #[should_panic(expected = "SpdkPlugin requires IoPath::Spdk")]
    fn engine_path_mismatch_panics() {
        let mut h = host(IoPath::KernelInterrupt);
        run_job(&mut h, &JobSpec::new("bad").engine(Engine::SpdkPlugin));
    }

    #[test]
    fn batched_engine_loop_matches_unbatched_bitwise() {
        // Differential contract of `AsyncLoop::on_batch`: suppressing it
        // (every completion delivered one at a time through `on_event`)
        // must reproduce the batched report byte-for-byte. Deep queue +
        // zero think time maximizes same-instant completion bursts.
        let spec = JobSpec::new("diff")
            .engine(Engine::Libaio)
            .pattern(Pattern::Random)
            .iodepth(32)
            .ios(3000)
            .seed(42);
        let mut h = host(IoPath::KernelInterrupt);
        let batched = run_job(&mut h, &spec);

        let mut h = host(IoPath::KernelInterrupt);
        let capacity = h.controller().ssd().capacity_bytes();
        let mut stream = AddressStream::new(&spec, capacity);
        let mut rec = Recorder::new(&spec);
        let mut engine: EngineLoop<SlotId> = EngineLoop::new();
        let mut comp = ull_simkit::Unbatched(AsyncLoop {
            host: &mut h,
            spec: &spec,
            stream: &mut stream,
            rec: &mut rec,
            port: AsyncPort::with_capacity(spec.iodepth as usize),
            submitted: 0,
        });
        let prime = spec.ios.min(spec.iodepth as u64);
        engine.with_scheduler(SimTime::ZERO, |sched| {
            for _ in 0..prime {
                comp.0.submit(SimTime::ZERO, sched);
            }
        });
        engine.run(&mut comp);
        drop(comp);
        let unbatched = rec.finish(&mut h, &spec);

        assert_eq!(format!("{batched:?}"), format!("{unbatched:?}"));
    }

    #[test]
    fn identical_specs_reproduce_identical_reports() {
        let run = || {
            let mut h = host(IoPath::KernelPolled);
            run_job(&mut h, &JobSpec::new("det").ios(2000).seed(77))
        };
        let a = run();
        let b = run();
        assert_eq!(a.mean_latency(), b.mean_latency());
        assert_eq!(a.five_nines(), b.five_nines());
        assert_eq!(a.mem.loads, b.mem.loads);
    }
}
