//! `ullfio` — a fio-like command-line front end for the simulator.
//!
//! ```text
//! ullfio [--device ull|nvme750] [--rw seqread|randread|seqwrite|randwrite|randrw]
//!        [--bs BYTES] [--iodepth N] [--engine pvsync2|libaio|spdk]
//!        [--path interrupt|poll|hybrid|spdk] [--ios N] [--seed N]
//!        [--precondition] [--replay FILE] [--trace OUT.json]
//! ```
//!
//! `--replay FILE` replays a CSV trace of `(time, op, offset, len)`
//! records instead of running a synthetic job. `--trace OUT.json`
//! enables the `ull-probe` span machinery and writes a Chrome
//! `trace_event` document (open in Perfetto / `chrome://tracing`) with
//! the per-request latency breakdown of the run — capture is bounded
//! (first/last-K plus slow requests) and deterministic, and probing
//! never changes the simulated results (see `docs/OBSERVABILITY.md`).
//!
//! Examples:
//!
//! ```sh
//! ullfio --device ull --rw randread --iodepth 16 --engine libaio --ios 100000
//! ullfio --device nvme750 --rw randwrite --precondition --ios 200000
//! ullfio --device ull --path poll --rw seqread
//! ullfio --replay my.trace --device ull
//! ullfio --device ull --rw randread --ios 20000 --trace trace.json
//! ```

use std::process::ExitCode;

use ull_nvme::NvmeController;
use ull_probe::ProbeConfig;
use ull_ssd::{presets, Ssd, SsdConfig};
use ull_stack::{Host, IoPath, SoftwareCosts};
use ull_workload::{parse_trace, precondition_full, replay, run_job, Engine, JobSpec};

struct Args {
    device: SsdConfig,
    rw: String,
    bs: u32,
    iodepth: u32,
    engine: Engine,
    path: IoPath,
    ios: u64,
    seed: u64,
    precondition: bool,
    replay: Option<String>,
    trace: Option<String>,
}

fn usage() -> ! {
    eprintln!(
        "usage: ullfio [--device ull|nvme750] [--rw MODE] [--bs BYTES] \
         [--iodepth N] [--engine pvsync2|libaio|spdk] \
         [--path interrupt|poll|hybrid|spdk] [--ios N] [--seed N] \
         [--precondition] [--replay FILE] [--trace OUT.json]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        device: presets::ull_800g(),
        rw: "randread".into(),
        bs: 4096,
        iodepth: 1,
        engine: Engine::Pvsync2,
        path: IoPath::KernelInterrupt,
        ios: 50_000,
        seed: 0xF10,
        precondition: false,
        replay: None,
        trace: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = || it.next().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--device" => {
                args.device = match value().as_str() {
                    "ull" => presets::ull_800g(),
                    "nvme750" | "nvme" => presets::nvme750(),
                    _ => usage(),
                }
            }
            "--rw" => args.rw = value(),
            "--bs" => args.bs = value().parse().unwrap_or_else(|_| usage()),
            "--iodepth" => args.iodepth = value().parse().unwrap_or_else(|_| usage()),
            "--engine" => {
                args.engine = match value().as_str() {
                    "pvsync2" | "sync" => Engine::Pvsync2,
                    "libaio" => Engine::Libaio,
                    "spdk" => Engine::SpdkPlugin,
                    _ => usage(),
                }
            }
            "--path" => {
                args.path = match value().as_str() {
                    "interrupt" | "int" => IoPath::KernelInterrupt,
                    "poll" => IoPath::KernelPolled,
                    "hybrid" => IoPath::KernelHybrid,
                    "spdk" => IoPath::Spdk,
                    _ => usage(),
                }
            }
            "--ios" => args.ios = value().parse().unwrap_or_else(|_| usage()),
            "--seed" => args.seed = value().parse().unwrap_or_else(|_| usage()),
            "--precondition" => args.precondition = true,
            "--replay" => args.replay = Some(value()),
            "--trace" => args.trace = Some(value()),
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
    // The SPDK engine implies the SPDK path and vice versa.
    if args.engine == Engine::SpdkPlugin {
        args.path = IoPath::Spdk;
    } else if args.path == IoPath::Spdk {
        args.engine = Engine::SpdkPlugin;
    }
    args
}

fn main() -> ExitCode {
    let args = parse_args();
    let device_name = args.device.name;
    let ssd = match Ssd::new(args.device) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("ullfio: {e}");
            return ExitCode::FAILURE;
        }
    };
    let ctrl = NvmeController::new(ssd, 1, 1024);
    let mut host = Host::new(ctrl, SoftwareCosts::linux_4_14(), args.path);
    if args.precondition {
        eprintln!("preconditioning {device_name}...");
        precondition_full(&mut host);
    }

    // Probing observes the run without perturbing it: enabled after
    // preconditioning so the trace holds workload requests only.
    if args.trace.is_some() {
        host.enable_probe(ProbeConfig::default());
    }

    if let Some(path) = args.replay {
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("ullfio: cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let ops = match parse_trace(&text) {
            Ok(o) => o,
            Err(e) => {
                eprintln!("ullfio: {e}");
                return ExitCode::FAILURE;
            }
        };
        let r = replay(&mut host, &ops);
        println!(
            "trace replay on {device_name} ({}): {} records in {}, mean={} p99={} slipped={}",
            args.path.label(),
            r.completed,
            r.elapsed,
            r.mean_latency(),
            r.latency.quantile(0.99),
            r.slipped
        );
        return write_trace(&mut host, args.trace.as_deref());
    }

    let spec = JobSpec::new(format!("{}-{}", args.rw, device_name))
        .rw(&args.rw)
        .block_size(args.bs)
        .iodepth(args.iodepth)
        .engine(args.engine)
        .ios(args.ios)
        .seed(args.seed);
    let report = run_job(&mut host, &spec);
    println!("{report}");
    write_trace(&mut host, args.trace.as_deref())
}

/// Writes the probed run's Chrome trace, if `--trace` asked for one.
fn write_trace(host: &mut Host, out: Option<&str>) -> ExitCode {
    let Some(path) = out else {
        return ExitCode::SUCCESS;
    };
    let Some(report) = host.take_probe() else {
        eprintln!("ullfio: probe was not enabled");
        return ExitCode::FAILURE;
    };
    let doc = report.chrome_trace().to_pretty_string();
    if let Err(e) = std::fs::write(path, &doc) {
        eprintln!("ullfio: cannot write {path}: {e}");
        return ExitCode::FAILURE;
    }
    let m = &report.metrics;
    let total = m.e2e_total_ns();
    let sw_pct = if total == 0 {
        0.0
    } else {
        m.software_ns() as f64 / total as f64 * 100.0
    };
    eprintln!(
        "trace: {} of {} requests captured, software share {:.1}% -> {}",
        report.trace.events().len(),
        report.trace.seen(),
        sw_pct,
        path
    );
    ExitCode::SUCCESS
}
