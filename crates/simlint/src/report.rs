//! Findings and their human / JSON renderings.
//!
//! The JSON writer is hand-rolled (the analyzer must build with zero
//! dependencies so it can run as a tier-1 gate on an offline builder); the
//! schema is documented in docs/DETERMINISM.md.

use core::fmt;
use std::collections::BTreeMap;

use crate::rules::RULES;

/// One rule violation at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule code, e.g. `"S003"`.
    pub rule: &'static str,
    /// Workspace-relative file path.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// The offending source line, trimmed.
    pub snippet: String,
    /// What is wrong and how to fix it.
    pub message: String,
}

impl Finding {
    /// Creates a finding, trimming and bounding the snippet.
    pub fn new(rule: &'static str, path: &str, line: usize, raw: &str, message: String) -> Self {
        let mut snippet = raw.trim().to_string();
        if snippet.len() > 160 {
            let mut cut = 157;
            while !snippet.is_char_boundary(cut) {
                cut -= 1;
            }
            snippet.truncate(cut);
            snippet.push_str("...");
        }
        Finding {
            rule,
            path: path.to_string(),
            line,
            snippet,
            message,
        }
    }
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{}:{}: [{}] {}",
            self.path, self.line, self.rule, self.message
        )?;
        write!(f, "    | {}", self.snippet)
    }
}

/// Per-rule finding counts over the full catalogue — rules with zero
/// findings are present with an explicit 0, so a baseline diff never has
/// to guess whether a rule existed when the baseline was written.
pub fn rule_counts(findings: &[Finding]) -> BTreeMap<&'static str, usize> {
    let mut counts: BTreeMap<&'static str, usize> = RULES.iter().map(|r| (r.code, 0)).collect();
    for f in findings {
        *counts.entry(f.rule).or_insert(0) += 1;
    }
    counts
}

/// Renders findings as the human report.
pub fn render_human(findings: &[Finding], files_scanned: usize) -> String {
    let mut out = String::new();
    for f in findings {
        out.push_str(&f.to_string());
        out.push('\n');
    }
    let range = format!("rules {}-{}", RULES[0].code, RULES[RULES.len() - 1].code);
    if findings.is_empty() {
        out.push_str(&format!(
            "simlint: OK — 0 findings in {files_scanned} files ({range})\n"
        ));
    } else {
        out.push_str(&format!(
            "simlint: {} finding(s) in {files_scanned} files scanned ({range})\n",
            findings.len()
        ));
    }
    out
}

/// Renders findings as a stable JSON document (schema in
/// docs/DETERMINISM.md): scan stats, per-rule counts over the whole
/// catalogue, then the findings.
pub fn render_json(findings: &[Finding], files_scanned: usize) -> String {
    let mut out = String::from("{\"files_scanned\":");
    out.push_str(&files_scanned.to_string());
    out.push_str(",\"count\":");
    out.push_str(&findings.len().to_string());
    out.push_str(",\"rule_counts\":{");
    for (i, (code, n)) in rule_counts(findings).iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        json_string(&mut out, code);
        out.push(':');
        out.push_str(&n.to_string());
    }
    out.push_str("},\"findings\":[");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"rule\":");
        json_string(&mut out, f.rule);
        out.push_str(",\"path\":");
        json_string(&mut out, &f.path);
        out.push_str(",\"line\":");
        out.push_str(&f.line.to_string());
        out.push_str(",\"message\":");
        json_string(&mut out, &f.message);
        out.push_str(",\"snippet\":");
        json_string(&mut out, &f.snippet);
        out.push('}');
    }
    out.push_str("]}");
    out
}

/// Result of diffing current findings against a committed baseline.
#[derive(Debug, Default, PartialEq, Eq)]
pub struct BaselineDiff {
    /// Rules whose count grew: (code, baseline, current). Any entry fails CI.
    pub regressions: Vec<(String, usize, usize)>,
    /// Rules whose count shrank: (code, baseline, current). These are
    /// reported as warnings so the baseline gets ratcheted down.
    pub improvements: Vec<(String, usize, usize)>,
}

/// Extracts the `rule_counts` object from a committed baseline report
/// (itself produced by [`render_json`]). Hand-rolled like the writer: the
/// values are flat `"SNNN": <digits>` pairs, which is all the scanner
/// accepts — anything else returns `None` so a corrupted baseline fails
/// loudly instead of silently sanctioning findings.
pub fn parse_baseline_counts(json: &str) -> Option<BTreeMap<String, usize>> {
    let at = json.find("\"rule_counts\"")?;
    let obj_start = at + json[at..].find('{')?;
    let mut counts = BTreeMap::new();
    let mut rest = json[obj_start + 1..].trim_start();
    if let Some(r) = rest.strip_prefix('}') {
        let _ = r;
        return Some(counts); // empty object
    }
    loop {
        rest = rest.trim_start().strip_prefix('"')?;
        let close = rest.find('"')?;
        let (code, after) = rest.split_at(close);
        rest = after[1..].trim_start().strip_prefix(':')?.trim_start();
        let digits = rest
            .find(|c: char| !c.is_ascii_digit())
            .unwrap_or(rest.len());
        if digits == 0 {
            return None;
        }
        let n: usize = rest[..digits].parse().ok()?;
        counts.insert(code.to_string(), n);
        rest = rest[digits..].trim_start();
        if let Some(r) = rest.strip_prefix(',') {
            rest = r;
            continue;
        }
        rest.strip_prefix('}')?;
        return Some(counts);
    }
}

/// Diffs current findings against baseline per-rule counts. A rule absent
/// from the baseline (added after the baseline was committed) counts as
/// baseline 0, so new rules ratchet in finding-free.
pub fn diff_against_baseline(
    findings: &[Finding],
    baseline: &BTreeMap<String, usize>,
) -> BaselineDiff {
    let current = rule_counts(findings);
    let mut diff = BaselineDiff::default();
    let mut codes: std::collections::BTreeSet<&str> = current.keys().copied().collect();
    codes.extend(baseline.keys().map(String::as_str));
    for code in codes {
        let now = current.get(code).copied().unwrap_or(0);
        let base = baseline.get(code).copied().unwrap_or(0);
        if now > base {
            diff.regressions.push((code.to_string(), base, now));
        } else if now < base {
            diff.improvements.push((code.to_string(), base, now));
        }
    }
    diff
}

fn json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escapes_special_characters() {
        let f = Finding::new(
            "S001",
            "a/b.rs",
            3,
            "let s = \"x\\y\";",
            "bad \"time\"".into(),
        );
        let j = render_json(&[f], 1);
        assert!(j.contains("\\\"time\\\""));
        assert!(j.contains("\\\\y"));
        assert!(j.starts_with('{') && j.ends_with('}'));
    }

    #[test]
    fn long_snippets_are_bounded() {
        let long = "x".repeat(400);
        let f = Finding::new("S006", "a.rs", 1, &long, "m".into());
        assert!(f.snippet.len() <= 160);
        assert!(f.snippet.ends_with("..."));
    }

    #[test]
    fn rule_counts_cover_the_full_catalogue_with_zeros() {
        let f = Finding::new("S003", "a.rs", 1, "x", "m".into());
        let counts = rule_counts(&[f]);
        assert_eq!(counts.len(), RULES.len());
        assert_eq!(counts["S003"], 1);
        assert_eq!(counts["S001"], 0);
        let j = render_json(&[], 3);
        assert!(j.contains("\"rule_counts\":{\"S000\":0,"));
    }

    #[test]
    fn baseline_counts_round_trip_through_the_json_report() {
        let f = Finding::new("S011", "a.rs", 1, "x", "m".into());
        let j = render_json(std::slice::from_ref(&f), 5);
        let parsed = parse_baseline_counts(&j).expect("parse");
        assert_eq!(parsed["S011"], 1);
        assert_eq!(parsed["S014"], 0);
        // Same findings → clean diff.
        let same = diff_against_baseline(std::slice::from_ref(&f), &parsed);
        assert!(same.regressions.is_empty() && same.improvements.is_empty());
        // One more finding → regression; one fewer → improvement.
        let worse = diff_against_baseline(&[f.clone(), f], &parsed);
        assert_eq!(worse.regressions, [("S011".to_string(), 1, 2)]);
        let better = diff_against_baseline(&[], &parsed);
        assert_eq!(better.improvements, [("S011".to_string(), 1, 0)]);
    }

    #[test]
    fn corrupted_baselines_are_rejected() {
        assert!(parse_baseline_counts("{}").is_none());
        assert!(parse_baseline_counts("{\"rule_counts\":{\"S001\":}}").is_none());
        assert!(parse_baseline_counts("{\"rule_counts\":{\"S001\":\"x\"}}").is_none());
        // A rule missing from the baseline counts as zero.
        let base = parse_baseline_counts("{\"rule_counts\":{\"S001\":0}}").expect("parse");
        let f = Finding::new("S012", "a.rs", 1, "x", "m".into());
        let d = diff_against_baseline(&[f], &base);
        assert_eq!(d.regressions, [("S012".to_string(), 0, 1)]);
    }

    #[test]
    fn human_report_has_location_and_verdict() {
        let f = Finding::new(
            "S003",
            "crates/x/src/l.rs",
            12,
            "m.iter()",
            "iteration".into(),
        );
        let h = render_human(&[f], 9);
        assert!(h.contains("crates/x/src/l.rs:12: [S003]"));
        assert!(h.contains("1 finding(s) in 9 files"));
        assert!(render_human(&[], 9).contains("OK"));
    }
}
