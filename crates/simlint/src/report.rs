//! Findings and their human / JSON renderings.
//!
//! The JSON writer is hand-rolled (the analyzer must build with zero
//! dependencies so it can run as a tier-1 gate on an offline builder); the
//! schema is documented in docs/DETERMINISM.md.

use core::fmt;

/// One rule violation at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule code, e.g. `"S003"`.
    pub rule: &'static str,
    /// Workspace-relative file path.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// The offending source line, trimmed.
    pub snippet: String,
    /// What is wrong and how to fix it.
    pub message: String,
}

impl Finding {
    /// Creates a finding, trimming and bounding the snippet.
    pub fn new(rule: &'static str, path: &str, line: usize, raw: &str, message: String) -> Self {
        let mut snippet = raw.trim().to_string();
        if snippet.len() > 160 {
            let mut cut = 157;
            while !snippet.is_char_boundary(cut) {
                cut -= 1;
            }
            snippet.truncate(cut);
            snippet.push_str("...");
        }
        Finding {
            rule,
            path: path.to_string(),
            line,
            snippet,
            message,
        }
    }
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{}:{}: [{}] {}",
            self.path, self.line, self.rule, self.message
        )?;
        write!(f, "    | {}", self.snippet)
    }
}

/// Renders findings as the human report.
pub fn render_human(findings: &[Finding], files_scanned: usize) -> String {
    let mut out = String::new();
    for f in findings {
        out.push_str(&f.to_string());
        out.push('\n');
    }
    if findings.is_empty() {
        out.push_str(&format!(
            "simlint: OK — 0 findings in {files_scanned} files (rules S001-S010)\n"
        ));
    } else {
        out.push_str(&format!(
            "simlint: {} finding(s) in {files_scanned} files scanned\n",
            findings.len()
        ));
    }
    out
}

/// Renders findings as a stable JSON document.
pub fn render_json(findings: &[Finding], files_scanned: usize) -> String {
    let mut out = String::from("{\"files_scanned\":");
    out.push_str(&files_scanned.to_string());
    out.push_str(",\"count\":");
    out.push_str(&findings.len().to_string());
    out.push_str(",\"findings\":[");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"rule\":");
        json_string(&mut out, f.rule);
        out.push_str(",\"path\":");
        json_string(&mut out, &f.path);
        out.push_str(",\"line\":");
        out.push_str(&f.line.to_string());
        out.push_str(",\"message\":");
        json_string(&mut out, &f.message);
        out.push_str(",\"snippet\":");
        json_string(&mut out, &f.snippet);
        out.push('}');
    }
    out.push_str("]}");
    out
}

fn json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escapes_special_characters() {
        let f = Finding::new(
            "S001",
            "a/b.rs",
            3,
            "let s = \"x\\y\";",
            "bad \"time\"".into(),
        );
        let j = render_json(&[f], 1);
        assert!(j.contains("\\\"time\\\""));
        assert!(j.contains("\\\\y"));
        assert!(j.starts_with('{') && j.ends_with('}'));
    }

    #[test]
    fn long_snippets_are_bounded() {
        let long = "x".repeat(400);
        let f = Finding::new("S006", "a.rs", 1, &long, "m".into());
        assert!(f.snippet.len() <= 160);
        assert!(f.snippet.ends_with("..."));
    }

    #[test]
    fn human_report_has_location_and_verdict() {
        let f = Finding::new(
            "S003",
            "crates/x/src/l.rs",
            12,
            "m.iter()",
            "iteration".into(),
        );
        let h = render_human(&[f], 9);
        assert!(h.contains("crates/x/src/l.rs:12: [S003]"));
        assert!(h.contains("1 finding(s) in 9 files"));
        assert!(render_human(&[], 9).contains("OK"));
    }
}
