//! The sim-purity rule catalogue, S000-S014.
//!
//! Each rule walks the stripped [`SourceFile`] lines — and, since the
//! type-aware upgrade, the per-crate [`CrateContext`] resolved from every
//! file's symbols — and reports [`Finding`]s. The scope of every rule,
//! which crates and paths it applies to and why, is part of the rule
//! definition, so the catalogue below is the single source of truth that
//! docs/DETERMINISM.md documents and the tier-1 gate enforces.

use crate::report::Finding;
use crate::resolve::CrateContext;
use crate::source::{token_positions, DirectiveKind, SourceFile};
use crate::symbols::{AdtKind, FileSymbols};

/// Crates whose `src/` trees are simulation code: everything that feeds
/// simulated time, ordering or randomness. `bench` is deliberately absent —
/// it is the wall-clock *measurement* harness. `simlint` is absent from the
/// purity scopes but still walked for S000/S003. `exec` is
/// simulation-adjacent: it must stay free of wall clocks, ambient RNG and
/// float time (S001, S002, S004, S007), but it is the one sanctioned
/// host-parallel driver, so the threading ban (S005) and the shared-state
/// ban (S011) are carved out for it (see `check_file`).
pub const SIM_CRATES: [&str; 13] = [
    "simkit", "faults", "probe", "flash", "ssd", "nvme", "stack", "netblock", "nexus", "workload",
    "core", "exec", "root",
];

/// Crates whose library code must not contain panicking escape hatches
/// (S006): the layers every experiment sits on.
pub const PANIC_FREE_CRATES: [&str; 6] = ["simkit", "faults", "probe", "ssd", "nvme", "stack"];

/// Static description of one rule, for `--list-rules` and the docs.
#[derive(Debug, Clone, Copy)]
pub struct RuleInfo {
    /// Rule code, e.g. `"S001"`.
    pub code: &'static str,
    /// One-line gist, short enough for a docs table row. The drift guard
    /// (`tests/docs_drift.rs`) asserts docs/DETERMINISM.md carries these
    /// verbatim, so edits here must land there too.
    pub brief: &'static str,
    /// Full summary: what is forbidden and what to do instead.
    pub summary: &'static str,
    /// Which files the rule applies to, in words.
    pub scope: &'static str,
}

/// The rule catalogue. S000 (directive hygiene) leads: a malformed
/// directive can silently disable any other rule, so it is checked first
/// and cannot itself be suppressed.
pub const RULES: [RuleInfo; 15] = [
    RuleInfo {
        code: "S000",
        brief: "malformed simlint directives (unknown rule codes, empty justifications)",
        summary: "every `// simlint: allow(...)` must list known rule codes and every \
                  `justify(...)` must carry non-empty text; a typo in a directive would \
                  otherwise silently disable enforcement",
        scope: "src/ of every workspace crate; not suppressible",
    },
    RuleInfo {
        code: "S001",
        brief: "no wall-clock access in simulation code",
        summary: "no wall-clock access (std::time::Instant / SystemTime) in simulation code; \
                  all timing must flow through SimTime/SimDuration",
        scope: "src/ of simulation crates (simkit, flash, ssd, nvme, stack, netblock, workload, core, root)",
    },
    RuleInfo {
        code: "S002",
        brief: "no ambient or OS-seeded randomness in simulation code",
        summary: "no ambient or OS-seeded randomness (thread_rng, rand::random, from_entropy, \
                  OsRng, getrandom, RandomState); every stream must fork from a seeded SplitMix64",
        scope: "src/ of simulation crates",
    },
    RuleInfo {
        code: "S003",
        brief: "no order-dependent iteration over unordered maps, even through aliases and fn boundaries",
        summary: "no order-dependent iteration over HashMap/HashSet (.iter/.keys/.values/.drain/\
                  .retain/for-in), including maps reached through type aliases, struct fields \
                  and function return values; iterated maps must be BTreeMap/BTreeSet or sorted first",
        scope: "src/ of every workspace crate",
    },
    RuleInfo {
        code: "S004",
        brief: "no f64 round-trips in simulation-time arithmetic",
        summary: "no f64 round-trips in simulation-time arithmetic (as_nanos() as f64, \
                  from_micros_f64(x.as_micros_f64()*...)); use the integer ops or the \
                  as_*_f64() reporting accessors one-way only",
        scope: "src/ of simulation crates, except simkit/src/time.rs which defines the accessors",
    },
    RuleInfo {
        code: "S005",
        brief: "no host threading or blocking primitives inside the event-loop crates",
        summary: "no host threading or blocking primitives (thread::spawn/sleep, Mutex, RwLock, \
                  Condvar, mpsc) inside the event-loop crates; the simulator is single-threaded \
                  by construction",
        scope: "src/ of simulation crates, except ull-exec — the sanctioned host-parallel sweep \
                driver (its determinism argument lives in docs/DETERMINISM.md)",
    },
    RuleInfo {
        code: "S006",
        brief: "no panicking escape hatches in library code of the core layers",
        summary: "no unwrap()/expect()/panic!/unreachable!/todo!/unimplemented! in library code \
                  paths; return Result or justify the invariant with an allow directive",
        scope: "src/ of simkit, ssd, nvme, stack (tests and benches exempt)",
    },
    RuleInfo {
        code: "S007",
        brief: "no floating-point accumulation across iterations in simulation code",
        summary: "no floating-point accumulation across iterations (`x += ...` / `-=` / `*=` on \
                  an f32/f64 binding) in simulation code; the running value depends on summation \
                  order, so accumulate in integer units (nanoseconds, nanojoules, counts) or \
                  justify the fixed order with an allow directive",
        scope: "src/ of simulation crates, except simkit/src/time.rs which defines the integer \
                time arithmetic",
    },
    RuleInfo {
        code: "S008",
        brief: "no ambient entropy or wall-clock seeding in fault-injection paths",
        summary: "no ambient entropy or wall-clock seeding in fault-injection paths (SystemTime, \
                  DefaultHasher, env::var, process::id, thread_rng, ...); every fault lottery \
                  must fork from the plan's seeded SplitMix64 streams so a fault run replays \
                  byte-identically",
        scope: "src/ files of simulation crates whose path mentions faults (the ull-faults crate \
                and any fault_*.rs module)",
    },
    RuleInfo {
        code: "S009",
        brief: "no wall clocks or unordered maps in observability paths",
        summary: "no wall clocks and no unordered maps (HashMap/HashSet, even without iteration) \
                  in observability paths; span/metric state must live in Vec/BTreeMap so traced \
                  output is byte-identical across --jobs values and replays",
        scope: "src/ files of the ull-probe crate and any trace/probe-named module in other \
                crates (trace.rs, *_trace.rs, probe.rs, *_probe.rs)",
    },
    RuleInfo {
        code: "S010",
        brief: "no per-I/O String allocation in the request hot path",
        summary: "no per-I/O String allocation (format!, .to_string(), String::from) in the \
                  request hot path; labels must be &'static str or ull_simkit::Label, and \
                  error text belongs on cold paths with a justified allow directive",
        scope: "src/ of the per-I/O crates flash, ssd, nvme (except admin.rs — admin commands \
                are not per-I/O) and stack, plus ull-workload's engine loops \
                (runner.rs, pattern.rs, trace.rs)",
    },
    RuleInfo {
        code: "S011",
        brief: "no shared mutable statics or interior mutability outside the exec driver",
        summary: "no shared mutable state in simulation code: `static mut`, thread_local!, \
                  Cell/RefCell/UnsafeCell, OnceCell/OnceLock/LazyLock, Mutex/RwLock and atomics \
                  are all banned — including when laundered through a type alias — because any \
                  of them lets two shards observe each other; state must be owned by the shard \
                  or passed explicitly",
        scope: "src/ of simulation crates, except ull-exec — the sanctioned host-parallel \
                driver owns the cross-worker machinery",
    },
    RuleInfo {
        code: "S012",
        brief: "no address- or identity-based ordering or hashing in simulation code",
        summary: "no address- or identity-based ordering or hashing: ptr::eq / ptr::hash for \
                  ordering decisions, references or as_ptr() cast to usize — allocation \
                  addresses differ across runs and shards, so any order derived from them is \
                  nondeterministic; compare and hash by value or by explicit id",
        scope: "src/ of simulation crates (including ull-exec: identity ordering is \
                nondeterministic on any thread count)",
    },
    RuleInfo {
        code: "S013",
        brief: "every unsafe block in sim crates carries a justify directive",
        summary: "every `unsafe` occurrence in simulation code must carry a \
                  `// simlint: justify(<why the invariant holds>)` directive on or above the \
                  line (or `justify-file(...)` for an FFI shim module); the workspace also \
                  denies unsafe_code via Cargo lints, so this rule documents the exceptions \
                  wherever that deny is ever relaxed",
        scope: "src/ of simulation crates",
    },
    RuleInfo {
        code: "S014",
        brief: "timestamped event structs exchanged across modules derive a total order",
        summary: "pub structs named *Event carrying a SimTime field must define a total order \
                  for shard-merge determinism: derive(Ord) / impl Ord, or carry an explicit \
                  sequence key (a `seq` field alongside the timestamp) so ties break the same \
                  way on every shard count",
        scope: "src/ of simulation crates",
    },
];

/// Runs every applicable rule over one parsed file belonging to
/// `crate_name` (the directory under `crates/`, or `"root"`), using the
/// crate-wide resolution context built from all of its files' symbols.
pub fn check_file(
    crate_name: &str,
    file: &SourceFile,
    sym: &FileSymbols,
    ctx: &CrateContext,
) -> Vec<Finding> {
    let sim = SIM_CRATES.contains(&crate_name);
    let panic_free = PANIC_FREE_CRATES.contains(&crate_name);
    let is_time_rs = file.path.ends_with("simkit/src/time.rs");

    let mut out = Vec::new();
    check_s000(file, &mut out);
    if sim {
        check_tokens(file, "S001", &S001_TOKENS, S001_MSG, &mut out);
        check_tokens(file, "S002", &S002_TOKENS, S002_MSG, &mut out);
        // `exec` is the scoped worker pool that runs independent sweep
        // cells on host threads — the one place threading and shared
        // cross-worker state are the point.
        if crate_name != "exec" {
            check_tokens(file, "S005", &S005_TOKENS, S005_MSG, &mut out);
            check_tokens(file, "S011", &S011_TOKENS, S011_MSG, &mut out);
            check_s011_resolved(file, sym, ctx, &mut out);
        }
        if !is_time_rs {
            check_s004(file, &mut out);
            check_s007(file, &mut out);
        }
        // Fault-plan paths carry the strictest seeding discipline: the
        // whole point of ull-faults is byte-identical replay, so any
        // ambient seed source — not just the S001/S002 classics —
        // breaks the contract.
        if is_fault_path(&file.path) {
            check_tokens(file, "S008", &S008_TOKENS, S008_MSG, &mut out);
        }
        check_s012(file, &mut out);
        check_s013(file, &mut out);
        check_s014(file, sym, ctx, &mut out);
    }
    check_s003(file, sym, ctx, &mut out);
    // Observability paths (the ull-probe crate and trace/probe modules in
    // any crate) promise byte-identical output across `--jobs` values and
    // replays, so they ban wall clocks and unordered maps *outright*:
    // S003 only catches iteration, but a HashMap's mere presence in a
    // span/metric structure invites one.
    if is_probe_path(&file.path) {
        check_tokens(file, "S009", &S009_TIME_TOKENS, S009_TIME_MSG, &mut out);
        check_tokens(file, "S009", &S009_MAP_TOKENS, S009_MAP_MSG, &mut out);
    }
    // Per-I/O hot paths promise a steady state free of String churn: one
    // format! in a million-IOPS loop is an allocator call per simulated
    // I/O and dominated the pre-wheel profiles (docs/PERFORMANCE.md).
    if is_hot_path(crate_name, &file.path) {
        check_tokens(file, "S010", &S010_TOKENS, S010_MSG, &mut out);
    }
    if panic_free {
        check_s006(file, &mut out);
    }
    out.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    out
}

const S001_TOKENS: [&str; 4] = ["std::time", "Instant::now", "SystemTime", "clock_gettime"];
const S001_MSG: &str =
    "wall-clock access in simulation code; derive all timing from SimTime/SimDuration";

const S002_TOKENS: [&str; 6] = [
    "thread_rng",
    "rand::random",
    "from_entropy",
    "OsRng",
    "getrandom",
    "RandomState",
];
const S002_MSG: &str = "ambient/unseeded randomness; fork a seeded SplitMix64 stream instead";

const S005_TOKENS: [&str; 7] = [
    "thread::spawn",
    "thread::sleep",
    "thread::Builder",
    "Mutex",
    "RwLock",
    "Condvar",
    "mpsc::",
];
const S005_MSG: &str = "host threading/blocking primitive inside the single-threaded event loop";

/// Whether a path belongs to the fault-injection subsystem: the
/// `ull-faults` crate itself, or a `fault`-named module in any layer
/// (`faults.rs`, `fault_state.rs`, ...).
fn is_fault_path(path: &str) -> bool {
    let file = path.rsplit('/').next().unwrap_or(path);
    path.contains("crates/faults/") || file.starts_with("fault")
}

const S008_TOKENS: [&str; 10] = [
    "SystemTime",
    "Instant::now",
    "DefaultHasher",
    "RandomState",
    "env::var",
    "env::vars",
    "process::id",
    "thread_rng",
    "from_entropy",
    "OsRng",
];
const S008_MSG: &str = "ambient seed source in a fault-injection path; fork the lottery from \
                        FaultPlan::stream(salt) so the same plan replays the same faults";

/// Whether a path belongs to the observability subsystem: the `ull-probe`
/// crate itself, or a trace/probe-named module in any layer (`trace.rs`,
/// `chrome_trace.rs`, `host_probe.rs`, ...).
fn is_probe_path(path: &str) -> bool {
    let file = path.rsplit('/').next().unwrap_or(path);
    let stem = file.strip_suffix(".rs").unwrap_or(file);
    path.contains("crates/probe/")
        || stem == "trace"
        || stem == "probe"
        || stem.ends_with("_trace")
        || stem.ends_with("_probe")
}

const S009_TIME_TOKENS: [&str; 4] = ["std::time", "Instant::now", "SystemTime", "clock_gettime"];
const S009_TIME_MSG: &str = "wall-clock access in an observability path; spans and metrics must \
                             carry sim time only, or traced runs stop replaying byte-identically";

/// Whether a path belongs to the per-I/O request hot path (S010 scope):
/// everything a 4 KB I/O touches between the engine loop and the flash
/// timing model. `nvme/src/admin.rs` is carved out — identify/log-page
/// commands run once per device, not once per I/O — as is the rest of
/// `ull-workload` (spec building and report assembly run once per job).
fn is_hot_path(crate_name: &str, path: &str) -> bool {
    let file = path.rsplit('/').next().unwrap_or(path);
    match crate_name {
        "flash" | "ssd" | "stack" => true,
        "nvme" => file != "admin.rs",
        "workload" => matches!(file, "runner.rs" | "pattern.rs" | "trace.rs"),
        _ => false,
    }
}

// NB: the method token is spelled without the leading dot — the
// word-boundary scan requires a non-identifier byte before a match, and
// `.to_string()` is always preceded by an identifier. `to_string()` after
// a `.` passes the boundary check; `into_string()` does not false-positive
// because its `t` is preceded by `_`.
const S010_TOKENS: [&str; 3] = ["format!", "to_string()", "String::from("];
const S010_MSG: &str = "String allocation on a per-I/O hot path; use &'static str or \
                        ull_simkit::Label for labels, or justify a cold branch (error \
                        reporting, setup) with `// simlint: allow(S010): <why>`";

const S009_MAP_TOKENS: [&str; 2] = ["HashMap", "HashSet"];
const S009_MAP_MSG: &str = "unordered map in an observability path; key span/metric state with \
                            Vec or BTreeMap/BTreeSet so merge and serialization order is \
                            deterministic across --jobs values";

fn check_tokens(
    file: &SourceFile,
    rule: &'static str,
    tokens: &[&str],
    msg: &str,
    out: &mut Vec<Finding>,
) {
    for (idx, line) in file.lines.iter().enumerate() {
        let lineno = idx + 1;
        if line.in_test || file.allowed(lineno, rule) {
            continue;
        }
        for tok in tokens {
            if crate::source::contains_token(&line.code, tok) {
                out.push(Finding::new(
                    rule,
                    &file.path,
                    lineno,
                    &line.raw,
                    format!("`{tok}`: {msg}"),
                ));
                break; // one finding per line per rule
            }
        }
    }
}

// ------------------------------------------------------------------ S000

fn check_s000(file: &SourceFile, out: &mut Vec<Finding>) {
    let known = |code: &str| RULES.iter().any(|r| r.code == code);
    for d in file.directives() {
        let raw = file
            .lines
            .get(d.line.wrapping_sub(1))
            .map(|l| l.raw.as_str())
            .unwrap_or("");
        match d.kind {
            DirectiveKind::Allow | DirectiveKind::AllowFile => {
                if d.codes.is_empty() {
                    out.push(Finding::new(
                        "S000",
                        &file.path,
                        d.line,
                        raw,
                        "simlint allow directive lists no rule codes; write \
                         `allow(SNNN): <why>`"
                            .to_string(),
                    ));
                }
                for code in &d.codes {
                    if !known(code) {
                        out.push(Finding::new(
                            "S000",
                            &file.path,
                            d.line,
                            raw,
                            format!(
                                "unknown rule code `{code}` in simlint directive; a typo here \
                                 silently disables nothing — see --list-rules for the catalogue"
                            ),
                        ));
                    }
                }
            }
            DirectiveKind::Justify | DirectiveKind::JustifyFile => {
                if d.text.is_empty() {
                    out.push(Finding::new(
                        "S000",
                        &file.path,
                        d.line,
                        raw,
                        "empty simlint justify directive; state why the unsafe invariant \
                         holds — `justify(<why>)`"
                            .to_string(),
                    ));
                }
            }
        }
    }
}

// ------------------------------------------------------------------ S003

/// Methods whose result order leaks HashMap/HashSet bucket order.
const ORDER_METHODS: [&str; 10] = [
    ".iter()",
    ".iter_mut()",
    ".keys()",
    ".values()",
    ".values_mut()",
    ".drain(",
    ".retain(",
    ".into_iter()",
    ".into_keys()",
    ".into_values()",
];

fn check_s003(file: &SourceFile, sym: &FileSymbols, ctx: &CrateContext, out: &mut Vec<Finding>) {
    // Tainted names: the lexical pass (`name: HashMap<..>`, `name =
    // HashMap::new()`), crate-wide fields/statics resolved by type, and
    // this file's params and lets (kept file-local so a name collision in
    // another file cannot taint unrelated code).
    let mut hash_names = collect_hash_bindings(file);
    hash_names.extend(ctx.unordered_bindings.iter().cloned());
    for f in &sym.fns {
        for p in &f.params {
            if !p.in_test && ctx.is_unordered(sym, &p.ty) {
                hash_names.insert(p.name.clone());
            }
        }
    }
    for l in &sym.lets {
        if l.in_test {
            continue;
        }
        let tainted = ctx.is_unordered(sym, &l.ty)
            || match l.init.as_slice() {
                [] => false,
                // `let m = build();` — a call of a fn returning unordered.
                [single] => ctx.unordered_fns.contains(single),
                // `let m = Frontier::new();` / `frontier::build()` — either
                // the leading type resolves unordered or the trailing fn
                // is known to return one.
                [head, .., last] => {
                    ctx.is_unordered_name(sym, head) || ctx.unordered_fns.contains(last)
                }
            };
        if tainted {
            hash_names.insert(l.name.clone());
        }
    }

    for (idx, line) in file.lines.iter().enumerate() {
        let lineno = idx + 1;
        if line.in_test || file.allowed(lineno, "S003") {
            continue;
        }
        let code = &line.code;
        let mut hit: Option<String> = None;
        for m in ORDER_METHODS {
            for pos in find_all(code, m) {
                if let Some(name) = ident_ending_at(code, pos) {
                    if hash_names.contains(name) {
                        hit = Some(format!("`{name}{m}`"));
                    }
                } else if let Some(callee) = call_result_ident(code, pos) {
                    // `build_frontier().iter()` — iterating the unordered
                    // result of a call, never stored in a binding.
                    if ctx.unordered_fns.contains(callee) {
                        hit = Some(format!("`{callee}(){m}`"));
                    }
                }
            }
        }
        // for PAT in [&[mut]] NAME ... | for PAT in NAME(...)
        if hit.is_none() {
            for pos in token_positions(code, "for") {
                if let Some((name, is_call)) = for_loop_iterable(code, pos) {
                    let flagged = if is_call {
                        ctx.unordered_fns.contains(name.as_str())
                    } else {
                        hash_names.contains(name.as_str())
                    };
                    if flagged {
                        hit = Some(format!("`for _ in {name}`"));
                    }
                }
            }
        }
        if let Some(what) = hit {
            out.push(Finding::new(
                "S003",
                &file.path,
                lineno,
                &line.raw,
                format!(
                    "{what} iterates a HashMap/HashSet in bucket order; switch the map to \
                     BTreeMap/BTreeSet or sort before iterating"
                ),
            ));
        }
    }
}

/// Collects identifiers bound to a HashMap/HashSet anywhere in the file:
/// `name: HashMap<..>` (fields, params, typed lets) and
/// `[let [mut]] name = HashMap::new()/with_capacity/from(..)`.
fn collect_hash_bindings(file: &SourceFile) -> std::collections::BTreeSet<String> {
    let mut names = std::collections::BTreeSet::new();
    for line in &file.lines {
        let code = &line.code;
        for ty in ["HashMap", "HashSet"] {
            for pos in token_positions(code, ty) {
                // Walk back over `std::collections::` / whitespace.
                let mut head = code[..pos].trim_end();
                if let Some(stripped) = head.strip_suffix("std::collections::") {
                    head = stripped.trim_end();
                } else if let Some(stripped) = head.strip_suffix("collections::") {
                    head = stripped.trim_end();
                }
                if let Some(rest) = head.strip_suffix(':') {
                    // `name: HashMap<..>` — reject `::` paths.
                    let rest = rest.strip_suffix(':').map(|_| "").unwrap_or(rest);
                    if let Some(name) = trailing_ident(rest.trim_end()) {
                        names.insert(name.to_string());
                    }
                } else if let Some(rest) = head.strip_suffix('=') {
                    // `name = HashMap::new()` / `let mut name = HashMap::...`.
                    if let Some(name) = trailing_ident(rest.trim_end()) {
                        names.insert(name.to_string());
                    }
                }
            }
        }
    }
    names
}

/// The iterable of a `for PAT in EXPR` header starting at the `for`
/// token: a plain (possibly `&`/`&mut`/`self.`-prefixed) identifier, or a
/// direct call `name(...)` — the bool is true for the call form.
fn for_loop_iterable(code: &str, for_pos: usize) -> Option<(String, bool)> {
    let after = &code[for_pos + 3..];
    let in_rel = token_positions(after, "in").into_iter().next()?;
    let mut rest = after[in_rel + 2..].trim_start();
    rest = rest.strip_prefix("&mut ").unwrap_or(rest);
    rest = rest.strip_prefix('&').unwrap_or(rest).trim_start();
    rest = rest.strip_prefix("self.").unwrap_or(rest);
    let end = rest
        .char_indices()
        .find(|&(_, c)| !(c.is_ascii_alphanumeric() || c == '_'))
        .map(|(i, _)| i)
        .unwrap_or(rest.len());
    if end == 0 {
        return None;
    }
    let name = &rest[..end];
    if name.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        return None;
    }
    // `map.keys()` is handled by the method pass; `m[0]`, `0..n` are not
    // idents; `name(...)` is the call form.
    let follow = rest[end..].trim_start();
    if follow.starts_with('(') {
        return Some((name.to_string(), true));
    }
    if follow.starts_with('.') || follow.starts_with('[') {
        return None;
    }
    Some((name.to_string(), false))
}

/// If the text before byte `end` is a call `callee(...)`, returns the
/// callee identifier — used for `build().iter()`-style chains.
fn call_result_ident(code: &str, end: usize) -> Option<&str> {
    let bytes = code.as_bytes();
    if end == 0 || bytes[end - 1] != b')' {
        return None;
    }
    let mut depth = 0i32;
    let mut i = end;
    while i > 0 {
        i -= 1;
        match bytes[i] {
            b')' => depth += 1,
            b'(' => {
                depth -= 1;
                if depth == 0 {
                    return ident_ending_at(code, i);
                }
            }
            _ => {}
        }
    }
    None
}

fn find_all(code: &str, needle: &str) -> Vec<usize> {
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(p) = code[from..].find(needle) {
        out.push(from + p);
        from += p + needle.len();
    }
    out
}

/// The identifier a string ends with, if any.
fn trailing_ident(s: &str) -> Option<&str> {
    ident_ending_at(s, s.len())
}

/// The identifier (last path segment) ending right before byte `end`.
fn ident_ending_at(code: &str, end: usize) -> Option<&str> {
    let bytes = code.as_bytes();
    let mut start = end;
    while start > 0 && (bytes[start - 1].is_ascii_alphanumeric() || bytes[start - 1] == b'_') {
        start -= 1;
    }
    if start == end {
        return None;
    }
    Some(&code[start..end])
}

// ------------------------------------------------------------------ S004

fn check_s004(file: &SourceFile, out: &mut Vec<Finding>) {
    for (idx, line) in file.lines.iter().enumerate() {
        let lineno = idx + 1;
        if line.in_test || file.allowed(lineno, "S004") {
            continue;
        }
        let code = &line.code;
        let raw_cast = code.contains(".as_nanos() as f64") || code.contains(".as_nanos() as f32");
        let round_trip = code.contains("from_micros_f64(")
            && [
                ".as_micros_f64()",
                ".as_secs_f64()",
                ".as_nanos_f64()",
                ".as_millis_f64()",
            ]
            .iter()
            .any(|a| code.contains(a));
        if raw_cast {
            out.push(Finding::new(
                "S004",
                &file.path,
                lineno,
                &line.raw,
                "raw float cast of sim time (`as_nanos() as f64`); use the as_*_f64() \
                 reporting accessors or SimDuration::ratio()"
                    .to_string(),
            ));
        } else if round_trip {
            out.push(Finding::new(
                "S004",
                &file.path,
                lineno,
                &line.raw,
                "sim time round-trips through f64 (accessor feeding from_micros_f64); \
                 keep the arithmetic in integer nanoseconds (mul_f64, Mul/Div) instead"
                    .to_string(),
            ));
        }
    }
}

// ------------------------------------------------------------------ S007

const S007_MSG: &str = "accumulates a float across iterations; the result depends on summation \
                        order — accumulate in integer units or justify the fixed order with \
                        `// simlint: allow(S007): <why>`";

fn check_s007(file: &SourceFile, out: &mut Vec<Finding>) {
    let float_names = collect_float_bindings(file);
    if float_names.is_empty() {
        return;
    }
    for (idx, line) in file.lines.iter().enumerate() {
        let lineno = idx + 1;
        if line.in_test || file.allowed(lineno, "S007") {
            continue;
        }
        let code = &line.code;
        for op in ["+=", "-=", "*="] {
            let Some(pos) = code.find(op) else { continue };
            // The assignment target: `self.total_nj`, `bins_nj[idx]`, `acc`.
            let mut lhs = code[..pos].trim_end();
            if lhs.ends_with(']') {
                // Strip one trailing index: `bins_nj[idx]` -> `bins_nj`.
                if let Some(open) = lhs.rfind('[') {
                    lhs = lhs[..open].trim_end();
                }
            }
            if let Some(name) = trailing_ident(lhs) {
                if float_names.contains(name) {
                    out.push(Finding::new(
                        "S007",
                        &file.path,
                        lineno,
                        &line.raw,
                        format!("`{name} {op}`: {S007_MSG}"),
                    ));
                    break;
                }
            }
        }
    }
}

/// Collects identifiers bound to an f32/f64 anywhere in the file:
/// `name: f64` (fields, params, typed lets, including `Vec<f64>` /
/// `[f64; N]` element bindings) and `let [mut] name = <float literal>`.
fn collect_float_bindings(file: &SourceFile) -> std::collections::BTreeSet<String> {
    let mut names = std::collections::BTreeSet::new();
    for line in &file.lines {
        let code = &line.code;
        // `name: f64` and friends.
        for pos in find_all(code, ":") {
            let after = code[pos + 1..].trim_start();
            let floaty = ["f64", "f32", "Vec<f64>", "Vec<f32>", "[f64", "[f32"]
                .iter()
                .any(|ty| after.starts_with(ty));
            if !floaty {
                continue;
            }
            let head = code[..pos].trim_end();
            if head.ends_with(':') {
                continue; // `path::f64` is not a binding
            }
            if let Some(name) = trailing_ident(head) {
                names.insert(name.to_string());
            }
        }
        // `let [mut] name = 0.0` / `= 0.0f64` / `= 0f32`.
        if let Some(rest) = code.trim_start().strip_prefix("let ") {
            let rest = rest.trim_start();
            let rest = rest.strip_prefix("mut ").unwrap_or(rest).trim_start();
            if let Some(eq) = rest.find('=') {
                let name = rest[..eq].trim();
                let is_ident = !name.is_empty()
                    && name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
                    && !name.starts_with(|c: char| c.is_ascii_digit());
                if is_ident && is_float_literal(rest[eq + 1..].trim_start()) {
                    names.insert(name.to_string());
                }
            }
        }
    }
    names
}

/// Whether `s` starts with a float literal (`0.0`, `1.5f64`, `-2f32`)
/// followed by nothing but an optional `;`.
fn is_float_literal(s: &str) -> bool {
    let s = s.strip_prefix('-').unwrap_or(s).trim_start();
    if !s.starts_with(|c: char| c.is_ascii_digit()) {
        return false;
    }
    let end = s
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '_'))
        .unwrap_or(s.len());
    let (num, rest) = s.split_at(end);
    let suffixed = rest.starts_with("f64") || rest.starts_with("f32");
    let tail = if suffixed { &rest[3..] } else { rest }.trim();
    (num.contains('.') || suffixed) && (tail.is_empty() || tail == ";")
}

// ------------------------------------------------------------------ S006

const PANIC_METHODS: [&str; 2] = [".unwrap()", ".expect("];
const PANIC_MACROS: [&str; 4] = ["panic!", "unreachable!", "todo!", "unimplemented!"];

fn check_s006(file: &SourceFile, out: &mut Vec<Finding>) {
    for (idx, line) in file.lines.iter().enumerate() {
        let lineno = idx + 1;
        if line.in_test || file.allowed(lineno, "S006") {
            continue;
        }
        let code = &line.code;
        let mut what: Option<&str> = None;
        for m in PANIC_METHODS {
            if code.contains(m) {
                what = Some(m);
                break;
            }
        }
        if what.is_none() {
            for m in PANIC_MACROS {
                if token_positions(code, m.trim_end_matches('!'))
                    .iter()
                    .any(|&p| code[p..].starts_with(m))
                {
                    what = Some(m);
                    break;
                }
            }
        }
        if let Some(w) = what {
            out.push(Finding::new(
                "S006",
                &file.path,
                lineno,
                &line.raw,
                format!(
                    "`{w}` in library code; return a Result/Option, restructure, or justify the \
                     invariant with `// simlint: allow(S006): <why>`"
                ),
            ));
        }
    }
}

// ------------------------------------------------------------------ S011

// NB: `Cell` is matched only in its generic (`Cell<`), path (`cell::Cell`)
// and constructor (`Cell::new`) spellings — the bare name collides with the
// sweep framework's `type Cell` associated type (a plain data row, nothing
// interior-mutable about it).
const S011_TOKENS: [&str; 25] = [
    "static mut",
    "thread_local",
    "Cell<",
    "cell::Cell",
    "Cell::new",
    "RefCell",
    "UnsafeCell",
    "OnceCell",
    "OnceLock",
    "LazyCell",
    "LazyLock",
    "Mutex",
    "RwLock",
    "AtomicBool",
    "AtomicUsize",
    "AtomicIsize",
    "AtomicU8",
    "AtomicU16",
    "AtomicU32",
    "AtomicU64",
    "AtomicI8",
    "AtomicI16",
    "AtomicI32",
    "AtomicI64",
    "AtomicPtr",
];
const S011_MSG: &str = "shared mutable state in simulation code; shards must own their state or \
                        receive it explicitly — interior mutability lets two shards observe \
                        each other and breaks replay";

/// The resolution half of S011: declarations whose *alias-laundered* type
/// is interior-mutable. The token pass above already reports lines where a
/// base name (`RefCell`, `Mutex`, ...) appears literally — including the
/// alias definition itself — so this pass only fires when the head is an
/// alias, keeping one finding per offending line.
fn check_s011_resolved(
    file: &SourceFile,
    sym: &FileSymbols,
    ctx: &CrateContext,
    out: &mut Vec<Finding>,
) {
    let mut flag = |name: &str, line: usize| {
        if line_in_test(file, line) || file.allowed(line, "S011") {
            return;
        }
        let raw = file
            .lines
            .get(line.wrapping_sub(1))
            .map(|l| l.raw.as_str())
            .unwrap_or("");
        out.push(Finding::new(
            "S011",
            &file.path,
            line,
            raw,
            format!("`{name}` resolves to an interior-mutable type through an alias; {S011_MSG}"),
        ));
    };
    for st in &sym.statics {
        if !ctx.is_direct_interior(&st.ty) && ctx.is_interior(sym, &st.ty) {
            flag(&st.name, st.line);
        }
    }
    for s in &sym.structs {
        for f in &s.fields {
            if !ctx.is_direct_interior(&f.ty) && ctx.is_interior(sym, &f.ty) {
                flag(&f.name, f.line);
            }
        }
    }
    for l in &sym.lets {
        if !l.ty.is_empty() && !ctx.is_direct_interior(&l.ty) && ctx.is_interior(sym, &l.ty) {
            flag(&l.name, l.line);
        }
    }
}

fn line_in_test(file: &SourceFile, line: usize) -> bool {
    file.lines
        .get(line.wrapping_sub(1))
        .is_some_and(|l| l.in_test)
}

// ------------------------------------------------------------------ S012

const S012_MSG: &str = "allocation addresses differ across runs and shards, so any order or \
                        hash derived from them is nondeterministic; compare and hash by value \
                        or by an explicit id field";

fn check_s012(file: &SourceFile, out: &mut Vec<Finding>) {
    for (idx, line) in file.lines.iter().enumerate() {
        let lineno = idx + 1;
        if line.in_test || file.allowed(lineno, "S012") {
            continue;
        }
        let code = &line.code;
        let what = if crate::source::contains_token(code, "ptr::eq") {
            Some("`ptr::eq` identity comparison")
        } else if crate::source::contains_token(code, "ptr::hash") {
            Some("`ptr::hash` address hashing")
        } else if code.contains(".as_ptr() as usize") {
            Some("`.as_ptr() as usize` address cast")
        } else if let Some(p) = code.find("as *const").or_else(|| code.find("as *mut")) {
            code[p..]
                .contains("as usize")
                .then_some("reference cast to a raw address")
        } else {
            None
        };
        if let Some(w) = what {
            out.push(Finding::new(
                "S012",
                &file.path,
                lineno,
                &line.raw,
                format!("{w}: {S012_MSG}"),
            ));
        }
    }
}

// ------------------------------------------------------------------ S013

const S013_MSG: &str = "`unsafe` in simulation code without a justification; state the invariant \
                        with `// simlint: justify(<why it holds>)` on or above the line (the \
                        workspace otherwise denies unsafe_code outright)";

fn check_s013(file: &SourceFile, out: &mut Vec<Finding>) {
    for (idx, line) in file.lines.iter().enumerate() {
        let lineno = idx + 1;
        if line.in_test || file.allowed(lineno, "S013") || file.justified(lineno) {
            continue;
        }
        if crate::source::contains_token(&line.code, "unsafe") {
            out.push(Finding::new(
                "S013",
                &file.path,
                lineno,
                &line.raw,
                S013_MSG.to_string(),
            ));
        }
    }
}

// ------------------------------------------------------------------ S014

fn check_s014(file: &SourceFile, sym: &FileSymbols, ctx: &CrateContext, out: &mut Vec<Finding>) {
    for s in &sym.structs {
        if s.in_test
            || !s.is_pub
            || s.kind == AdtKind::Enum
            || !s.name.ends_with("Event")
            || file.allowed(s.line, "S014")
        {
            continue;
        }
        let timestamped = s.fields.iter().any(|f| ctx.is_timestamp(sym, &f.ty));
        if !timestamped {
            continue;
        }
        let has_order = s.derives.iter().any(|d| d == "Ord")
            || ctx.has_ord_impl(&s.name)
            || s.fields
                .iter()
                .any(|f| f.name == "seq" || f.name == "sequence");
        if !has_order {
            let raw = file
                .lines
                .get(s.line.wrapping_sub(1))
                .map(|l| l.raw.as_str())
                .unwrap_or("");
            out.push(Finding::new(
                "S014",
                &file.path,
                s.line,
                raw,
                format!(
                    "`{}` carries a SimTime but defines no total order; shard-merge ties would \
                     break nondeterministically — derive(Ord)/impl Ord or add an explicit `seq` \
                     sequence key next to the timestamp",
                    s.name
                ),
            ));
        }
    }
}
