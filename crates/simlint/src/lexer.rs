//! Token-stream lexer over the stripped lexical model.
//!
//! [`SourceFile`] strips comments and blanks literal *contents* line by
//! line; this module turns those stripped lines into a flat token stream —
//! identifiers, lifetimes, literals and punctuation, each tagged with its
//! 1-based source line. The symbol parser ([`crate::symbols`]) consumes
//! this stream to recover item signatures without a full AST (and without
//! `syn`: the analyzer must build dependency-free on an offline builder).
//!
//! Two properties matter for the rules built on top:
//!
//! * **Lifetimes are single tokens.** `'a` never splits into `'` + `a`, so
//!   type parsers can skip them wholesale, and a lifetime is never confused
//!   with a (blanked) char literal.
//! * **`::`, `->` and `=>` are single tokens.** Generic-depth tracking can
//!   then count `<`/`>` puncts naively: the `>` inside a lexed `->` can
//!   never be mistaken for a closing angle bracket.

use crate::source::SourceFile;

/// Classification of one token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`fn`, `HashMap`, `x1`).
    Ident,
    /// Lifetime or loop label (`'a`, `'static`, `'outer`).
    Lifetime,
    /// Literal: numbers, and the blanked remains of strings/chars.
    Literal,
    /// Punctuation; multi-char for `::`, `->` and `=>`.
    Punct,
}

/// One lexed token with its source position.
#[derive(Debug, Clone)]
pub struct Token {
    /// What kind of token this is.
    pub kind: TokenKind,
    /// The token text as written (literals carry their blanked form).
    pub text: String,
    /// 1-based source line.
    pub line: usize,
}

impl Token {
    /// Whether this token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == s
    }

    /// Whether this token is the punctuation `s`.
    pub fn is_punct(&self, s: &str) -> bool {
        self.kind == TokenKind::Punct && self.text == s
    }
}

/// Lexes every stripped line of `file` into one flat token stream.
pub fn lex(file: &SourceFile) -> Vec<Token> {
    let mut out = Vec::new();
    for (idx, line) in file.lines.iter().enumerate() {
        lex_line(&line.code, idx + 1, &mut out);
    }
    out
}

fn lex_line(code: &str, lineno: usize, out: &mut Vec<Token>) {
    let b: Vec<char> = code.chars().collect();
    let mut i = 0usize;
    while i < b.len() {
        let c = b[i];
        if c.is_whitespace() {
            i += 1;
        } else if c.is_alphabetic() || c == '_' {
            let start = i;
            while i < b.len() && (b[i].is_alphanumeric() || b[i] == '_') {
                i += 1;
            }
            // The stripped remains of a raw string look like `r"   "`; glue
            // the `r` onto the following blanked literal instead of
            // emitting a stray ident.
            if i == start + 1 && (b[start] == 'r' || b[start] == 'b') && b.get(i) == Some(&'"') {
                let lit_start = start;
                i += 1;
                while i < b.len() && b[i] != '"' {
                    i += 1;
                }
                if i < b.len() {
                    i += 1;
                }
                push(out, TokenKind::Literal, &b[lit_start..i], lineno);
                continue;
            }
            push(out, TokenKind::Ident, &b[start..i], lineno);
        } else if c.is_ascii_digit() {
            let start = i;
            i += 1;
            while i < b.len()
                && (b[i].is_ascii_alphanumeric()
                    || b[i] == '_'
                    || (b[i] == '.' && b.get(i + 1).is_some_and(|d| d.is_ascii_digit())))
            {
                i += 1;
            }
            push(out, TokenKind::Literal, &b[start..i], lineno);
        } else if c == '\'' {
            // Blanked char literal (`' '` or `''`) vs lifetime/label.
            if b.get(i + 1) == Some(&'\'') {
                push(out, TokenKind::Literal, &b[i..i + 2], lineno);
                i += 2;
            } else if b.get(i + 1) == Some(&' ') && b.get(i + 2) == Some(&'\'') {
                push(out, TokenKind::Literal, &b[i..i + 3], lineno);
                i += 3;
            } else {
                let start = i;
                i += 1;
                while i < b.len() && (b[i].is_alphanumeric() || b[i] == '_') {
                    i += 1;
                }
                push(out, TokenKind::Lifetime, &b[start..i], lineno);
            }
        } else if c == '"' {
            // Blanked string literal: runs to the closing quote, or to the
            // end of the line for a multi-line (raw) literal segment.
            let start = i;
            i += 1;
            while i < b.len() && b[i] != '"' {
                i += 1;
            }
            if i < b.len() {
                i += 1;
            }
            push(out, TokenKind::Literal, &b[start..i], lineno);
        } else {
            let two: Option<&str> = match (c, b.get(i + 1)) {
                (':', Some(':')) => Some("::"),
                ('-', Some('>')) => Some("->"),
                ('=', Some('>')) => Some("=>"),
                _ => None,
            };
            if let Some(t) = two {
                out.push(Token {
                    kind: TokenKind::Punct,
                    text: t.to_string(),
                    line: lineno,
                });
                i += 2;
            } else {
                push(out, TokenKind::Punct, &b[i..i + 1], lineno);
                i += 1;
            }
        }
    }
}

fn push(out: &mut Vec<Token>, kind: TokenKind, chars: &[char], line: usize) {
    out.push(Token {
        kind,
        text: chars.iter().collect(),
        line,
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        let f = SourceFile::parse("t.rs", src);
        lex(&f).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn idents_lifetimes_and_puncts_are_distinguished() {
        let toks = kinds("fn f<'a>(x: &'a str) -> &'a str { x }\n");
        let lifetimes: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Lifetime)
            .collect();
        assert_eq!(lifetimes.len(), 3);
        assert!(lifetimes.iter().all(|(_, t)| t == "'a"));
        assert!(toks.contains(&(TokenKind::Punct, "->".to_string())));
        assert!(toks.contains(&(TokenKind::Ident, "str".to_string())));
    }

    #[test]
    fn path_separators_are_single_tokens() {
        let toks = kinds("std::collections::HashMap::new()\n");
        let seps = toks.iter().filter(|(_, t)| t == "::").count();
        assert_eq!(seps, 3);
        assert!(toks.contains(&(TokenKind::Ident, "HashMap".to_string())));
    }

    #[test]
    fn arrow_gt_cannot_unbalance_generics() {
        // `Fn() -> u64` inside generics: the `>` of `->` is part of one
        // Punct token, so counting bare `<`/`>` puncts stays balanced.
        let toks = kinds("fn apply<F: Fn() -> u64>(f: F) -> u64 { f() }\n");
        let lt = toks.iter().filter(|(_, t)| t == "<").count();
        let gt = toks.iter().filter(|(_, t)| t == ">").count();
        assert_eq!(lt, gt);
        assert_eq!(lt, 1);
    }

    #[test]
    fn literals_carry_blanked_text_with_lines() {
        let f = SourceFile::parse("t.rs", "let a = 1;\nlet s = \"xy\"; let c = 'q';\n");
        let toks = lex(&f);
        let lit_lines: Vec<usize> = toks
            .iter()
            .filter(|t| t.kind == TokenKind::Literal)
            .map(|t| t.line)
            .collect();
        assert_eq!(lit_lines, [1, 2, 2]);
        assert!(toks
            .iter()
            .filter(|t| t.kind == TokenKind::Literal)
            .all(|t| !t.text.contains("xy") && !t.text.contains('q')));
    }
}
