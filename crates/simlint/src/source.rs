//! Lexical source model: comment/string stripping, `#[cfg(test)]` region
//! tracking and `// simlint: allow(...)` escape-hatch directives.
//!
//! simlint deliberately works on a *lexical* model rather than a full AST:
//! the rules it enforces (wall-clock access, ambient RNG, unordered map
//! iteration, float time arithmetic, threading, panics) are all visible at
//! the token level, and a lexical pass keeps the analyzer dependency-free
//! so it can run inside `cargo test` on an offline builder. The trade-off —
//! identifier-level rather than type-level resolution for S003 — is
//! documented in docs/DETERMINISM.md together with the escape hatch.

use std::collections::BTreeMap;
use std::collections::BTreeSet;

/// One physical line of a parsed source file.
#[derive(Debug, Clone)]
pub struct Line {
    /// Source text with comments removed and string/char literal *contents*
    /// blanked (delimiters kept), so rules never match inside literals.
    pub code: String,
    /// The raw line as written.
    pub raw: String,
    /// Comment text found on this line (line + block comments), used only
    /// for `simlint:` directives.
    pub comment: String,
    /// Whether the line sits inside a `#[cfg(test)] mod { ... }` region.
    pub in_test: bool,
}

/// A parsed source file ready for rule checks.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative path, used in findings.
    pub path: String,
    /// Parsed lines, in order.
    pub lines: Vec<Line>,
    /// Rule codes allowed per 1-based line number.
    line_allows: BTreeMap<usize, BTreeSet<String>>,
    /// Rule codes allowed for the whole file.
    file_allows: BTreeSet<String>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LexState {
    Code,
    LineComment,
    BlockComment(u32),
    Str,
    RawStr(u32),
    Char,
}

impl SourceFile {
    /// Parses `text` into the lexical model.
    pub fn parse(path: impl Into<String>, text: &str) -> Self {
        let mut lines = Vec::new();
        let mut state = LexState::Code;
        for raw in text.lines() {
            let (code, comment, next) = strip_line(raw, state);
            state = next;
            lines.push(Line {
                code,
                comment,
                raw: raw.to_string(),
                in_test: false,
            });
        }
        mark_test_regions(&mut lines);
        let (line_allows, file_allows) = collect_directives(&lines);
        SourceFile {
            path: path.into(),
            lines,
            line_allows,
            file_allows,
        }
    }

    /// Whether `rule` (e.g. `"S003"`) is allowed on 1-based line `lineno`
    /// via an escape-hatch directive.
    pub fn allowed(&self, lineno: usize, rule: &str) -> bool {
        if self.file_allows.contains(rule) {
            return true;
        }
        self.line_allows
            .get(&lineno)
            .is_some_and(|s| s.contains(rule))
    }
}

/// Strips one line given the lexer state carried over from the previous
/// line; returns (code text, comment text, state after the line).
fn strip_line(raw: &str, mut state: LexState) -> (String, String, LexState) {
    let b: Vec<char> = raw.chars().collect();
    let mut code = String::with_capacity(raw.len());
    let mut comment = String::new();
    let mut i = 0usize;
    while i < b.len() {
        let c = b[i];
        let next = b.get(i + 1).copied();
        match state {
            LexState::Code => {
                if c == '/' && next == Some('/') {
                    state = LexState::LineComment;
                    comment.extend(&b[i..]);
                    break;
                } else if c == '/' && next == Some('*') {
                    state = LexState::BlockComment(1);
                    i += 2;
                } else if c == '"' {
                    code.push('"');
                    state = LexState::Str;
                    i += 1;
                } else if c == 'r' && matches!(next, Some('"') | Some('#')) && raw_string_at(&b, i)
                {
                    let hashes = count_hashes(&b, i + 1);
                    code.push('r');
                    code.push('"');
                    state = LexState::RawStr(hashes);
                    i += 2 + hashes as usize;
                } else if c == '\'' {
                    // Char literal vs lifetime: a literal is 'x' or '\x...'.
                    if next == Some('\\') {
                        code.push('\'');
                        state = LexState::Char;
                        i += 3; // skip the backslash and the escaped char
                    } else if b.get(i + 2) == Some(&'\'') {
                        code.push_str("' '");
                        i += 3;
                    } else {
                        code.push(c); // lifetime marker
                        i += 1;
                    }
                } else {
                    code.push(c);
                    i += 1;
                }
            }
            LexState::LineComment => unreachable!("line comments consume the rest of the line"),
            LexState::BlockComment(depth) => {
                if c == '*' && next == Some('/') {
                    state = if depth == 1 {
                        LexState::Code
                    } else {
                        LexState::BlockComment(depth - 1)
                    };
                    i += 2;
                } else if c == '/' && next == Some('*') {
                    state = LexState::BlockComment(depth + 1);
                    i += 2;
                } else {
                    comment.push(c);
                    i += 1;
                }
            }
            LexState::Str => {
                if c == '\\' {
                    i += 2; // skip escaped char (blanked)
                } else if c == '"' {
                    code.push('"');
                    state = LexState::Code;
                    i += 1;
                } else {
                    code.push(' '); // blank literal contents
                    i += 1;
                }
            }
            LexState::RawStr(hashes) => {
                if c == '"' && hashes_follow(&b, i + 1, hashes) {
                    code.push('"');
                    state = LexState::Code;
                    i += 1 + hashes as usize;
                } else {
                    code.push(' ');
                    i += 1;
                }
            }
            LexState::Char => {
                if c == '\'' {
                    code.push('\'');
                    state = LexState::Code;
                } else {
                    code.push(' ');
                }
                i += 1;
            }
        }
    }
    // Line comments end at the newline; unterminated "..." strings cannot
    // span lines in Rust (only raw strings and block comments carry over).
    match state {
        LexState::LineComment => state = LexState::Code,
        LexState::Str | LexState::Char => state = LexState::Code,
        _ => {}
    }
    (code, comment, state)
}

/// Is the `r` at `i` genuinely a raw-string opener (`r"`, `r#...#"`) and
/// not the tail of an identifier like `var"`?
fn raw_string_at(b: &[char], i: usize) -> bool {
    if i > 0 && (b[i - 1].is_alphanumeric() || b[i - 1] == '_') {
        return false;
    }
    let hashes = count_hashes(b, i + 1);
    b.get(i + 1 + hashes as usize) == Some(&'"')
}

fn count_hashes(b: &[char], mut i: usize) -> u32 {
    let mut n = 0;
    while b.get(i) == Some(&'#') {
        n += 1;
        i += 1;
    }
    n
}

fn hashes_follow(b: &[char], mut i: usize, hashes: u32) -> bool {
    for _ in 0..hashes {
        if b.get(i) != Some(&'#') {
            return false;
        }
        i += 1;
    }
    true
}

/// Marks lines inside `#[cfg(test)] mod ... { ... }` regions by tracking
/// brace depth over the stripped code.
fn mark_test_regions(lines: &mut [Line]) {
    let mut depth: i64 = 0;
    let mut armed = false; // saw #[cfg(test)], waiting for the mod brace
    let mut regions: Vec<i64> = Vec::new(); // depths at which test mods opened
    for line in lines.iter_mut() {
        if line.code.contains("#[cfg(test)]") {
            armed = true;
        }
        let opens_mod = armed && contains_token(&line.code, "mod");
        let mut line_in_test = !regions.is_empty();
        for c in line.code.chars() {
            match c {
                '{' => {
                    depth += 1;
                    if opens_mod && armed {
                        regions.push(depth);
                        armed = false;
                        line_in_test = true;
                    }
                }
                '}' => {
                    if regions.last().is_some_and(|&d| d == depth) {
                        regions.pop();
                    }
                    depth -= 1;
                }
                _ => {}
            }
        }
        line.in_test = line_in_test || !regions.is_empty();
    }
}

/// Word-boundary token search.
pub fn contains_token(code: &str, token: &str) -> bool {
    !token_positions(code, token).is_empty()
}

/// All word-boundary occurrences of `token` in `code`.
pub fn token_positions(code: &str, token: &str) -> Vec<usize> {
    let mut out = Vec::new();
    let bytes = code.as_bytes();
    let mut from = 0;
    while let Some(pos) = code[from..].find(token) {
        let at = from + pos;
        let before_ok = at == 0 || !is_ident_byte(bytes[at - 1]);
        let end = at + token.len();
        let token_ends_ident = token.as_bytes().last().is_some_and(|&b| is_ident_byte(b));
        let after_ok = !token_ends_ident || end >= bytes.len() || !is_ident_byte(bytes[end]);
        if before_ok && after_ok {
            out.push(at);
        }
        from = at + token.len().max(1);
    }
    out
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Collects `simlint: allow(...)` and `simlint: allow-file(...)` directives
/// from comment text. A line-level directive covers its own line and the
/// following line, so both trailing and preceding-line comments work.
fn collect_directives(lines: &[Line]) -> (BTreeMap<usize, BTreeSet<String>>, BTreeSet<String>) {
    let mut per_line: BTreeMap<usize, BTreeSet<String>> = BTreeMap::new();
    let mut file: BTreeSet<String> = BTreeSet::new();
    for (idx, line) in lines.iter().enumerate() {
        let lineno = idx + 1;
        for (needle, is_file) in [("simlint: allow-file(", true), ("simlint: allow(", false)] {
            let Some(at) = line.comment.find(needle) else {
                continue;
            };
            let rest = &line.comment[at + needle.len()..];
            let Some(close) = rest.find(')') else {
                continue;
            };
            for code in rest[..close].split(',') {
                let code = code.trim().to_string();
                if code.is_empty() {
                    continue;
                }
                if is_file {
                    file.insert(code);
                } else {
                    per_line.entry(lineno).or_default().insert(code.clone());
                    per_line.entry(lineno + 1).or_default().insert(code);
                }
            }
        }
    }
    (per_line, file)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_and_strings_are_stripped() {
        let f = SourceFile::parse(
            "t.rs",
            "let x = \"thread_rng\"; // thread_rng here\nlet y = 1; /* SystemTime */ let z = 2;\n",
        );
        assert!(!f.lines[0].code.contains("thread_rng"));
        assert!(f.lines[0].comment.contains("thread_rng"));
        assert!(!f.lines[1].code.contains("SystemTime"));
        assert!(f.lines[1].code.contains("let z"));
    }

    #[test]
    fn raw_strings_and_chars_are_blanked() {
        let f = SourceFile::parse(
            "t.rs",
            "let s = r#\"panic!(\"x\")\"#;\nlet c = '\\n'; let l: &'static str = \"\";\n",
        );
        assert!(!f.lines[0].code.contains("panic!"));
        assert!(f.lines[1].code.contains("'static"));
    }

    #[test]
    fn block_comments_span_lines() {
        let f = SourceFile::parse("t.rs", "/* a\nthread_rng()\n*/ let x = 1;\n");
        assert!(!f.lines[1].code.contains("thread_rng"));
        assert!(f.lines[2].code.contains("let x"));
    }

    #[test]
    fn cfg_test_regions_are_marked() {
        let src =
            "fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\nfn lib2() {}\n";
        let f = SourceFile::parse("t.rs", src);
        assert!(!f.lines[0].in_test);
        assert!(f.lines[3].in_test);
        assert!(!f.lines[5].in_test);
    }

    #[test]
    fn allow_directives_cover_their_line_and_the_next() {
        let src =
            "a(); // simlint: allow(S001)\nb();\n// simlint: allow(S002): reason\nc();\nd();\n";
        let f = SourceFile::parse("t.rs", src);
        assert!(f.allowed(1, "S001"));
        assert!(f.allowed(2, "S001")); // next line too
        assert!(!f.allowed(2, "S002"));
        assert!(f.allowed(4, "S002"));
        assert!(!f.allowed(5, "S002"));
    }

    #[test]
    fn allow_file_covers_everything() {
        let f = SourceFile::parse("t.rs", "// simlint: allow-file(S006): harness\nx();\n");
        assert!(f.allowed(100, "S006"));
        assert!(!f.allowed(100, "S001"));
    }

    #[test]
    fn token_positions_respect_boundaries() {
        assert!(contains_token("use std::sync::Mutex;", "Mutex"));
        assert!(!contains_token("struct MutexLike;", "Mutex"));
        assert!(!contains_token("let premutex = 1;", "mutex"));
    }
}
