//! Lexical source model: comment/string stripping, `#[cfg(test)]` region
//! tracking and `// simlint: allow(...)` escape-hatch directives.
//!
//! simlint deliberately works on a *lexical* model rather than a full AST:
//! the rules it enforces (wall-clock access, ambient RNG, unordered map
//! iteration, float time arithmetic, threading, panics) are all visible at
//! the token level, and a lexical pass keeps the analyzer dependency-free
//! so it can run inside `cargo test` on an offline builder. The trade-off —
//! identifier-level rather than type-level resolution for S003 — is
//! documented in docs/DETERMINISM.md together with the escape hatch.

use std::collections::BTreeMap;
use std::collections::BTreeSet;

/// One physical line of a parsed source file.
#[derive(Debug, Clone)]
pub struct Line {
    /// Source text with comments removed and string/char literal *contents*
    /// blanked (delimiters kept), so rules never match inside literals.
    pub code: String,
    /// The raw line as written.
    pub raw: String,
    /// Comment text found on this line (line + block comments), used only
    /// for `simlint:` directives.
    pub comment: String,
    /// Whether the line sits inside a `#[cfg(test)] mod { ... }` region.
    pub in_test: bool,
}

/// Kind of a `// simlint: ...` directive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DirectiveKind {
    /// `allow(SNNN, ...)` — suppress listed rules on this line and the next.
    Allow,
    /// `allow-file(SNNN, ...)` — suppress listed rules for the whole file.
    AllowFile,
    /// `justify(<why>)` — justification for an `unsafe` block (S013) on
    /// this line and the next.
    Justify,
    /// `justify-file(<why>)` — justification covering the whole file.
    JustifyFile,
}

/// One parsed `// simlint: ...` directive, kept for hygiene checks (S000).
#[derive(Debug, Clone)]
pub struct Directive {
    /// 1-based line the directive sits on.
    pub line: usize,
    /// Which directive form was written.
    pub kind: DirectiveKind,
    /// Rule codes listed (allow forms only; empty for justify forms).
    pub codes: Vec<String>,
    /// Free justification text (justify forms only).
    pub text: String,
}

/// A parsed source file ready for rule checks.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative path, used in findings.
    pub path: String,
    /// Parsed lines, in order.
    pub lines: Vec<Line>,
    /// Rule codes allowed per 1-based line number.
    line_allows: BTreeMap<usize, BTreeSet<String>>,
    /// Rule codes allowed for the whole file.
    file_allows: BTreeSet<String>,
    /// Lines covered by a `justify(...)` directive (the line and the next).
    justify_lines: BTreeSet<usize>,
    /// Whether a `justify-file(...)` directive covers the whole file.
    justify_file: bool,
    /// Every directive as written, for hygiene checks.
    directives: Vec<Directive>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LexState {
    Code,
    LineComment,
    BlockComment(u32),
    Str,
    RawStr(u32),
    Char,
}

impl SourceFile {
    /// Parses `text` into the lexical model.
    pub fn parse(path: impl Into<String>, text: &str) -> Self {
        let mut lines = Vec::new();
        let mut state = LexState::Code;
        for raw in text.lines() {
            let (code, comment, next) = strip_line(raw, state);
            state = next;
            lines.push(Line {
                code,
                comment,
                raw: raw.to_string(),
                in_test: false,
            });
        }
        mark_test_regions(&mut lines);
        let parsed = collect_directives(&lines);
        SourceFile {
            path: path.into(),
            lines,
            line_allows: parsed.line_allows,
            file_allows: parsed.file_allows,
            justify_lines: parsed.justify_lines,
            justify_file: parsed.justify_file,
            directives: parsed.directives,
        }
    }

    /// Whether `rule` (e.g. `"S003"`) is allowed on 1-based line `lineno`
    /// via an escape-hatch directive.
    pub fn allowed(&self, lineno: usize, rule: &str) -> bool {
        if self.file_allows.contains(rule) {
            return true;
        }
        self.line_allows
            .get(&lineno)
            .is_some_and(|s| s.contains(rule))
    }

    /// Whether 1-based line `lineno` is covered by a `justify(...)` (or a
    /// file-scope `justify-file(...)`) directive — the S013 escape hatch.
    pub fn justified(&self, lineno: usize) -> bool {
        self.justify_file || self.justify_lines.contains(&lineno)
    }

    /// Every `// simlint: ...` directive as written, for hygiene checks.
    pub fn directives(&self) -> &[Directive] {
        &self.directives
    }
}

/// Strips one line given the lexer state carried over from the previous
/// line; returns (code text, comment text, state after the line).
fn strip_line(raw: &str, mut state: LexState) -> (String, String, LexState) {
    let b: Vec<char> = raw.chars().collect();
    let mut code = String::with_capacity(raw.len());
    let mut comment = String::new();
    let mut str_continues = false; // `"...\` at end of line: string spans lines
    let mut i = 0usize;
    while i < b.len() {
        let c = b[i];
        let next = b.get(i + 1).copied();
        match state {
            LexState::Code => {
                if c == '/' && next == Some('/') {
                    state = LexState::LineComment;
                    comment.extend(&b[i..]);
                    break;
                } else if c == '/' && next == Some('*') {
                    state = LexState::BlockComment(1);
                    i += 2;
                } else if c == '"' {
                    code.push('"');
                    state = LexState::Str;
                    i += 1;
                } else if c == 'b' && next == Some('"') && !ident_char_before(&b, i) {
                    // Byte string `b"..."`: same escape rules as a plain
                    // string, contents blanked the same way.
                    code.push('b');
                    code.push('"');
                    state = LexState::Str;
                    i += 2;
                } else if c == 'b'
                    && next == Some('r')
                    && !ident_char_before(&b, i)
                    && byte_raw_string_at(&b, i)
                {
                    // Byte raw string `br"..."` / `br##"..."##`: raw-string
                    // rules (no escapes), any `#` depth.
                    let hashes = count_hashes(&b, i + 2);
                    code.push('b');
                    code.push('r');
                    code.push('"');
                    state = LexState::RawStr(hashes);
                    i += 3 + hashes as usize;
                } else if c == 'r' && matches!(next, Some('"') | Some('#')) && raw_string_at(&b, i)
                {
                    let hashes = count_hashes(&b, i + 1);
                    code.push('r');
                    code.push('"');
                    state = LexState::RawStr(hashes);
                    i += 2 + hashes as usize;
                } else if c == '\'' {
                    // Char literal vs lifetime: a literal is 'x' or '\x...'.
                    if next == Some('\\') {
                        code.push('\'');
                        state = LexState::Char;
                        i += 3; // skip the backslash and the escaped char
                    } else if b.get(i + 2) == Some(&'\'') {
                        code.push_str("' '");
                        i += 3;
                    } else {
                        code.push(c); // lifetime marker
                        i += 1;
                    }
                } else {
                    code.push(c);
                    i += 1;
                }
            }
            LexState::LineComment => unreachable!("line comments consume the rest of the line"),
            LexState::BlockComment(depth) => {
                if c == '*' && next == Some('/') {
                    state = if depth == 1 {
                        LexState::Code
                    } else {
                        LexState::BlockComment(depth - 1)
                    };
                    i += 2;
                } else if c == '/' && next == Some('*') {
                    state = LexState::BlockComment(depth + 1);
                    i += 2;
                } else {
                    comment.push(c);
                    i += 1;
                }
            }
            LexState::Str => {
                if c == '\\' {
                    if i + 1 == b.len() {
                        // `\` directly before the newline: Rust's string
                        // line-continuation — the literal (and the blanking)
                        // must carry over to the next line.
                        str_continues = true;
                    }
                    i += 2; // skip escaped char (blanked)
                } else if c == '"' {
                    code.push('"');
                    state = LexState::Code;
                    i += 1;
                } else {
                    code.push(' '); // blank literal contents
                    i += 1;
                }
            }
            LexState::RawStr(hashes) => {
                if c == '"' && hashes_follow(&b, i + 1, hashes) {
                    code.push('"');
                    state = LexState::Code;
                    i += 1 + hashes as usize;
                } else {
                    code.push(' ');
                    i += 1;
                }
            }
            LexState::Char => {
                if c == '\'' {
                    code.push('\'');
                    state = LexState::Code;
                } else {
                    code.push(' ');
                }
                i += 1;
            }
        }
    }
    // Line comments end at the newline. An unterminated "..." string resets
    // unless its last character was a `\` line-continuation — that is the
    // one way a plain string legally spans lines in Rust. (Raw strings and
    // block comments always carry over via their own states.)
    match state {
        LexState::LineComment => state = LexState::Code,
        LexState::Str if !str_continues => state = LexState::Code,
        LexState::Char => state = LexState::Code,
        _ => {}
    }
    (code, comment, state)
}

/// Is the character before index `i` part of an identifier (so a leading
/// `b`/`r` here is the tail of a name like `rgb`, not a literal prefix)?
fn ident_char_before(b: &[char], i: usize) -> bool {
    i > 0 && (b[i - 1].is_alphanumeric() || b[i - 1] == '_')
}

/// Is the `b` at `i` the start of a byte raw string (`br"`, `br##"`)?
fn byte_raw_string_at(b: &[char], i: usize) -> bool {
    let hashes = count_hashes(b, i + 2);
    b.get(i + 2 + hashes as usize) == Some(&'"')
}

/// Is the `r` at `i` genuinely a raw-string opener (`r"`, `r#...#"`) and
/// not the tail of an identifier like `var"`?
fn raw_string_at(b: &[char], i: usize) -> bool {
    if i > 0 && (b[i - 1].is_alphanumeric() || b[i - 1] == '_') {
        return false;
    }
    let hashes = count_hashes(b, i + 1);
    b.get(i + 1 + hashes as usize) == Some(&'"')
}

fn count_hashes(b: &[char], mut i: usize) -> u32 {
    let mut n = 0;
    while b.get(i) == Some(&'#') {
        n += 1;
        i += 1;
    }
    n
}

fn hashes_follow(b: &[char], mut i: usize, hashes: u32) -> bool {
    for _ in 0..hashes {
        if b.get(i) != Some(&'#') {
            return false;
        }
        i += 1;
    }
    true
}

/// Marks lines inside `#[cfg(test)] mod ... { ... }` regions by tracking
/// brace depth over the stripped code.
fn mark_test_regions(lines: &mut [Line]) {
    let mut depth: i64 = 0;
    let mut armed = false; // saw #[cfg(test)], waiting for the mod brace
    let mut regions: Vec<i64> = Vec::new(); // depths at which test mods opened
    for line in lines.iter_mut() {
        if line.code.contains("#[cfg(test)]") {
            armed = true;
        }
        let opens_mod = armed && contains_token(&line.code, "mod");
        let mut line_in_test = !regions.is_empty();
        for c in line.code.chars() {
            match c {
                '{' => {
                    depth += 1;
                    if opens_mod && armed {
                        regions.push(depth);
                        armed = false;
                        line_in_test = true;
                    }
                }
                '}' => {
                    if regions.last().is_some_and(|&d| d == depth) {
                        regions.pop();
                    }
                    depth -= 1;
                }
                _ => {}
            }
        }
        line.in_test = line_in_test || !regions.is_empty();
    }
}

/// Word-boundary token search.
pub fn contains_token(code: &str, token: &str) -> bool {
    !token_positions(code, token).is_empty()
}

/// All word-boundary occurrences of `token` in `code`.
pub fn token_positions(code: &str, token: &str) -> Vec<usize> {
    let mut out = Vec::new();
    let bytes = code.as_bytes();
    let mut from = 0;
    while let Some(pos) = code[from..].find(token) {
        let at = from + pos;
        let before_ok = at == 0 || !is_ident_byte(bytes[at - 1]);
        let end = at + token.len();
        let token_ends_ident = token.as_bytes().last().is_some_and(|&b| is_ident_byte(b));
        let after_ok = !token_ends_ident || end >= bytes.len() || !is_ident_byte(bytes[end]);
        if before_ok && after_ok {
            out.push(at);
        }
        from = at + token.len().max(1);
    }
    out
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Everything `collect_directives` extracts from a file's comments.
struct ParsedDirectives {
    line_allows: BTreeMap<usize, BTreeSet<String>>,
    file_allows: BTreeSet<String>,
    justify_lines: BTreeSet<usize>,
    justify_file: bool,
    directives: Vec<Directive>,
}

/// Collects `simlint: allow(...)`, `allow-file(...)`, `justify(...)` and
/// `justify-file(...)` directives from comment text. A line-level directive
/// covers its own line and the following line, so both trailing and
/// preceding-line comments work. Every directive is also recorded verbatim
/// so the hygiene rule (S000) can reject unknown rule codes and empty
/// justifications.
fn collect_directives(lines: &[Line]) -> ParsedDirectives {
    let mut out = ParsedDirectives {
        line_allows: BTreeMap::new(),
        file_allows: BTreeSet::new(),
        justify_lines: BTreeSet::new(),
        justify_file: false,
        directives: Vec::new(),
    };
    use DirectiveKind::*;
    for (idx, line) in lines.iter().enumerate() {
        let lineno = idx + 1;
        for (needle, kind) in [
            ("simlint: allow-file(", AllowFile),
            ("simlint: allow(", Allow),
            ("simlint: justify-file(", JustifyFile),
            ("simlint: justify(", Justify),
        ] {
            let Some(at) = line.comment.find(needle) else {
                continue;
            };
            // Documentation *about* directives quotes them in backticks
            // (`// simlint: allow(SNNN): <why>`); an odd number of
            // backticks before the match means we are inside such an
            // inline-code span, not a real directive.
            if line.comment[..at].matches('`').count() % 2 == 1 {
                continue;
            }
            let rest = &line.comment[at + needle.len()..];
            match kind {
                Allow | AllowFile => {
                    let Some(close) = rest.find(')') else {
                        continue;
                    };
                    let codes: Vec<String> = rest[..close]
                        .split(',')
                        .map(|c| c.trim().to_string())
                        .filter(|c| !c.is_empty())
                        .collect();
                    for code in &codes {
                        if kind == AllowFile {
                            out.file_allows.insert(code.clone());
                        } else {
                            out.line_allows
                                .entry(lineno)
                                .or_default()
                                .insert(code.clone());
                            out.line_allows
                                .entry(lineno + 1)
                                .or_default()
                                .insert(code.clone());
                        }
                    }
                    out.directives.push(Directive {
                        line: lineno,
                        kind,
                        codes,
                        text: String::new(),
                    });
                }
                Justify | JustifyFile => {
                    // Justification text may itself contain parentheses, so
                    // take everything up to the *last* closing paren.
                    let Some(close) = rest.rfind(')') else {
                        continue;
                    };
                    let text = rest[..close].trim().to_string();
                    if !text.is_empty() {
                        if kind == JustifyFile {
                            out.justify_file = true;
                        } else {
                            out.justify_lines.insert(lineno);
                            out.justify_lines.insert(lineno + 1);
                        }
                    }
                    out.directives.push(Directive {
                        line: lineno,
                        kind,
                        codes: Vec::new(),
                        text,
                    });
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_and_strings_are_stripped() {
        let f = SourceFile::parse(
            "t.rs",
            "let x = \"thread_rng\"; // thread_rng here\nlet y = 1; /* SystemTime */ let z = 2;\n",
        );
        assert!(!f.lines[0].code.contains("thread_rng"));
        assert!(f.lines[0].comment.contains("thread_rng"));
        assert!(!f.lines[1].code.contains("SystemTime"));
        assert!(f.lines[1].code.contains("let z"));
    }

    #[test]
    fn raw_strings_and_chars_are_blanked() {
        let f = SourceFile::parse(
            "t.rs",
            "let s = r#\"panic!(\"x\")\"#;\nlet c = '\\n'; let l: &'static str = \"\";\n",
        );
        assert!(!f.lines[0].code.contains("panic!"));
        assert!(f.lines[1].code.contains("'static"));
    }

    #[test]
    fn block_comments_span_lines() {
        let f = SourceFile::parse("t.rs", "/* a\nthread_rng()\n*/ let x = 1;\n");
        assert!(!f.lines[1].code.contains("thread_rng"));
        assert!(f.lines[2].code.contains("let x"));
    }

    #[test]
    fn cfg_test_regions_are_marked() {
        let src =
            "fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\nfn lib2() {}\n";
        let f = SourceFile::parse("t.rs", src);
        assert!(!f.lines[0].in_test);
        assert!(f.lines[3].in_test);
        assert!(!f.lines[5].in_test);
    }

    #[test]
    fn allow_directives_cover_their_line_and_the_next() {
        let src =
            "a(); // simlint: allow(S001)\nb();\n// simlint: allow(S002): reason\nc();\nd();\n";
        let f = SourceFile::parse("t.rs", src);
        assert!(f.allowed(1, "S001"));
        assert!(f.allowed(2, "S001")); // next line too
        assert!(!f.allowed(2, "S002"));
        assert!(f.allowed(4, "S002"));
        assert!(!f.allowed(5, "S002"));
    }

    #[test]
    fn allow_file_covers_everything() {
        let f = SourceFile::parse("t.rs", "// simlint: allow-file(S006): harness\nx();\n");
        assert!(f.allowed(100, "S006"));
        assert!(!f.allowed(100, "S001"));
    }

    #[test]
    fn token_positions_respect_boundaries() {
        assert!(contains_token("use std::sync::Mutex;", "Mutex"));
        assert!(!contains_token("struct MutexLike;", "Mutex"));
        assert!(!contains_token("let premutex = 1;", "mutex"));
    }

    // ----------------------------------------------- lexer edge regressions

    #[test]
    fn lifetime_ticks_are_not_char_literals() {
        // Every lifetime position Rust allows: generics, references, bounds
        // (including the space-free `'a+'b` form), labels, `'_`, `'static`.
        // A misread as a char literal would blank the following code.
        let src = "fn f<'a: 'b+'c, 'b, 'c>(x: &'a str) -> &'a str { x }\n\
                   struct S<'a,'b>(&'a u8, &'b u8);\n\
                   'outer: loop { break 'outer; }\n\
                   let w: &'_ str = x; let d: &'static str = y;\n\
                   let t = std::time::Instant::now();\n";
        let f = SourceFile::parse("t.rs", src);
        assert!(f.lines[0].code.contains("&'a str"));
        assert!(f.lines[1].code.contains("<'a,'b>"));
        assert!(f.lines[2].code.contains("break 'outer"));
        assert!(f.lines[3].code.contains("'static"));
        // Nothing after the lifetimes was swallowed: the wall-clock call on
        // the last line is still visible to the rules.
        assert!(f.lines[4].code.contains("Instant::now"));
        // ...while genuine char literals (even as const-generic args) and
        // escaped quotes are still blanked.
        let chars = SourceFile::parse(
            "t.rs",
            "type X = Foo<'b'>;\nlet q = ('a', '\\'', '\\n');\nlet z = 1;\n",
        );
        assert!(!chars.lines[0].code.contains("'b'"));
        assert!(!chars.lines[1].code.contains('a'));
        assert!(chars.lines[2].code.contains("let z"));
    }

    #[test]
    fn nested_block_comments_track_depth_across_lines() {
        let src = "/* depth1 /* depth2 /* SystemTime */ thread_rng() */ still */ let a = 1;\n\
                   /* open /* nested\n\
                   Instant::now()\n\
                   */ still a comment */ let b = 2;\n";
        let f = SourceFile::parse("t.rs", src);
        assert!(!f.lines[0].code.contains("SystemTime"));
        assert!(!f.lines[0].code.contains("thread_rng"));
        assert!(f.lines[0].code.contains("let a"));
        assert!(!f.lines[2].code.contains("Instant"));
        assert!(f.lines[3].code.contains("let b"));
    }

    #[test]
    fn raw_strings_with_deep_hash_guards_are_blanked() {
        // `r##"..."##` may contain `"#` without terminating; only the full
        // `"##` guard closes it. Same for depth 3 spanning lines, and for
        // byte raw strings `br#"..."#`.
        let f = SourceFile::parse(
            "t.rs",
            "let s = r##\"SystemTime \"# inner\"##; let y = 1;\n\
             let t = r###\"a\nInstant::now() \"## x\n\"###; let z = 2;\n\
             let u = br#\"thread_rng()\"#; let w = 3;\n",
        );
        assert!(!f.lines[0].code.contains("SystemTime"));
        assert!(f.lines[0].code.contains("let y"));
        assert!(!f.lines[2].code.contains("Instant"));
        assert!(f.lines[3].code.contains("let z"));
        assert!(!f.lines[4].code.contains("thread_rng"));
        assert!(f.lines[4].code.contains("let w"));
    }

    #[test]
    fn string_line_continuation_carries_the_literal_over() {
        // A `\` before the newline continues the string literal — the next
        // line's contents are still *inside* it and must stay blanked.
        let src =
            "let s = \"abc\\\nthread_rng() def\\\nstill in string\";\nlet x = SystemTime::now();\n";
        let f = SourceFile::parse("t.rs", src);
        assert!(!f.lines[1].code.contains("thread_rng"));
        assert!(!f.lines[2].code.contains("still"));
        // ...and the lexer re-synchronizes: real code after the literal is
        // visible again.
        assert!(f.lines[3].code.contains("SystemTime"));
        // An escaped backslash before the quote is NOT a continuation.
        let esc = SourceFile::parse("t.rs", "let s = \"tail\\\\\";\nlet y = 1;\n");
        assert!(esc.lines[1].code.contains("let y"));
    }

    #[test]
    fn justify_directives_cover_line_file_and_record_text() {
        let src = "// simlint: justify(slab indices are bounds-checked at insert (see new()))\n\
                   unsafe { x() }\n\
                   unsafe { y() }\n";
        let f = SourceFile::parse("t.rs", src);
        assert!(f.justified(1) && f.justified(2));
        assert!(!f.justified(3));
        assert_eq!(f.directives().len(), 1);
        assert_eq!(f.directives()[0].kind, DirectiveKind::Justify);
        assert!(f.directives()[0].text.contains("bounds-checked"));
        // Empty justification text gives no coverage (and is recorded for
        // the S000 hygiene rule to report).
        let empty = SourceFile::parse("t.rs", "// simlint: justify()\nunsafe { x() }\n");
        assert!(!empty.justified(2));
        assert_eq!(empty.directives()[0].text, "");
        let file = SourceFile::parse(
            "t.rs",
            "// simlint: justify-file(FFI shim, invariants in mod docs)\nunsafe { a() }\nunsafe { b() }\n",
        );
        assert!(file.justified(2) && file.justified(3) && file.justified(99));
    }
}
