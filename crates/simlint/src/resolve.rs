//! Phase 2: taint resolution over the per-crate symbol table.
//!
//! Takes every file's [`FileSymbols`] and computes, crate-wide, which
//! *local names* denote unordered maps (`HashMap`/`HashSet`), which denote
//! interior-mutable cells (`Cell`, `RefCell`, `Mutex`, atomics, ...), and
//! which denote simulation timestamps (`SimTime`) — propagating those
//! taints through `use` renames and `type` aliases to a fixpoint, then
//! through struct fields, statics and `fn` return types. This is what
//! makes S003 type-level: a `HashMap` laundered through
//! `type Frontier = HashMap<..>` and returned across a function boundary
//! is still recognized at the iteration site.
//!
//! Resolution is name-based, not path-based: the analyzer has no trait
//! solver, so two crates' `Frontier` types are not distinguished. Within
//! one crate (the unit [`CrateContext`] is built for) this is accurate
//! enough, and the rules keep `let`/param taints file-local to bound the
//! blast radius of cross-file name collisions.

use std::collections::{BTreeMap, BTreeSet};

use crate::symbols::{FileSymbols, Ty};

/// Base types whose iteration order is the hasher's bucket order.
const UNORDERED_BASE: [&str; 2] = ["HashMap", "HashSet"];

/// Base types providing shared or interior mutability.
fn is_interior_base(head: &str) -> bool {
    matches!(
        head,
        "Cell"
            | "RefCell"
            | "UnsafeCell"
            | "OnceCell"
            | "OnceLock"
            | "LazyCell"
            | "LazyLock"
            | "Mutex"
            | "RwLock"
    ) || (head.starts_with("Atomic") && head.len() > "Atomic".len())
}

/// Base type representing a simulation timestamp (S014).
const TIMESTAMP_BASE: [&str; 1] = ["SimTime"];

/// Smart-pointer wrappers that forward iteration/mutability to their
/// pointee: `Box<Frontier>` is as unordered as `Frontier`.
const WRAPPERS: [&str; 3] = ["Box", "Rc", "Arc"];

/// Crate-wide resolution context shared by all rule passes.
#[derive(Debug, Default)]
pub struct CrateContext {
    /// Alias name → fully resolved head name (base or foreign), computed
    /// to a fixpoint through renames and other aliases.
    alias_heads: BTreeMap<String, String>,
    /// Names of struct fields and statics whose type resolves unordered —
    /// crate-wide, since fields cross file boundaries with their struct.
    pub unordered_bindings: BTreeSet<String>,
    /// Names of `fn`s whose return type resolves unordered.
    pub unordered_fns: BTreeSet<String>,
    /// Type names with an explicit `impl Ord for ...` somewhere in the crate.
    ord_impls: BTreeSet<String>,
}

impl CrateContext {
    /// Builds the context from every file's symbols.
    pub fn build<'a>(files: impl IntoIterator<Item = &'a FileSymbols> + Clone) -> Self {
        let mut ctx = CrateContext::default();
        // Pass 1: resolve each alias's target head inside its own file's
        // rename scope. The result may still name another alias.
        for f in files.clone() {
            for a in &f.aliases {
                let head = resolve_in_file(f, wrapped_head(&a.target));
                ctx.alias_heads.insert(a.name.clone(), head);
            }
            for (tr, ty) in &f.trait_impls {
                if tr == "Ord" {
                    ctx.ord_impls.insert(ty.clone());
                }
            }
        }
        // Pass 2: collapse alias→alias chains to a fixpoint (bounded by
        // the alias count; cycles settle on whatever name they loop at).
        for _ in 0..ctx.alias_heads.len() {
            let mut changed = false;
            let snapshot = ctx.alias_heads.clone();
            for head in ctx.alias_heads.values_mut() {
                if let Some(next) = snapshot.get(head) {
                    if next != head {
                        *head = next.clone();
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }
        // Pass 3: crate-wide tainted bindings — struct fields and statics.
        // (Params and lets stay file-local; the rules resolve those at
        // check time via `is_unordered` to avoid cross-file collisions.)
        for f in files {
            for s in &f.structs {
                for field in &s.fields {
                    if !field.in_test && ctx.is_unordered(f, &field.ty) {
                        ctx.unordered_bindings.insert(field.name.clone());
                    }
                }
            }
            for st in &f.statics {
                if !st.in_test && ctx.is_unordered(f, &st.ty) {
                    ctx.unordered_bindings.insert(st.name.clone());
                }
            }
            for func in &f.fns {
                if !func.in_test && ctx.is_unordered(f, &func.ret) {
                    ctx.unordered_fns.insert(func.name.clone());
                }
            }
        }
        ctx
    }

    /// Resolves a type's head name through wrappers, the file's `use`
    /// renames, and the crate's alias table.
    pub fn resolve_head(&self, file: &FileSymbols, ty: &Ty) -> String {
        self.resolve_name(file, wrapped_head(ty))
    }

    /// Resolves a bare name the same way [`Self::resolve_head`] does.
    pub fn resolve_name(&self, file: &FileSymbols, name: &str) -> String {
        let mut head = resolve_in_file(file, name);
        for _ in 0..8 {
            match self.alias_heads.get(&head) {
                Some(next) if *next != head => head = next.clone(),
                _ => break,
            }
        }
        head
    }

    /// Whether `ty` resolves to an unordered map/set.
    pub fn is_unordered(&self, file: &FileSymbols, ty: &Ty) -> bool {
        !ty.is_empty() && UNORDERED_BASE.contains(&self.resolve_head(file, ty).as_str())
    }

    /// Whether a bare name resolves to an unordered map/set type
    /// (`let m = Frontier::new()` — is `Frontier` a HashMap?).
    pub fn is_unordered_name(&self, file: &FileSymbols, name: &str) -> bool {
        UNORDERED_BASE.contains(&self.resolve_name(file, name).as_str())
    }

    /// Whether `ty` resolves to an interior-mutability cell.
    pub fn is_interior(&self, file: &FileSymbols, ty: &Ty) -> bool {
        !ty.is_empty() && is_interior_base(&self.resolve_head(file, ty))
    }

    /// Whether `ty` resolves to a simulation timestamp.
    pub fn is_timestamp(&self, file: &FileSymbols, ty: &Ty) -> bool {
        !ty.is_empty() && TIMESTAMP_BASE.contains(&self.resolve_head(file, ty).as_str())
    }

    /// Whether `ty`'s head is *directly* an interior-mutability base name
    /// (so the token pass already reports its declaration line).
    pub fn is_direct_interior(&self, ty: &Ty) -> bool {
        is_interior_base(wrapped_head(ty))
    }

    /// Whether `name` has an explicit `impl Ord` in the crate.
    pub fn has_ord_impl(&self, name: &str) -> bool {
        self.ord_impls.contains(name)
    }
}

/// The head name of `ty` after looking through smart-pointer wrappers.
fn wrapped_head(ty: &Ty) -> &str {
    let mut t = ty;
    for _ in 0..8 {
        if WRAPPERS.contains(&t.head()) && !t.args.is_empty() {
            t = &t.args[0];
        } else {
            break;
        }
    }
    t.head()
}

/// One step of resolution inside a file: a `use` rename maps a local name
/// to the real (last-segment) name of the imported item.
fn resolve_in_file(file: &FileSymbols, name: &str) -> String {
    match file.renames.get(name).and_then(|p| p.last()) {
        Some(real) if real != name => resolve_in_file(file, real),
        _ => name.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceFile;
    use crate::symbols;

    fn syms(path: &str, src: &str) -> FileSymbols {
        symbols::parse(&SourceFile::parse(path, src))
    }

    #[test]
    fn alias_chains_resolve_through_renames_to_a_fixpoint() {
        let a = syms(
            "a.rs",
            "use std::collections::HashMap as FastMap;\n\
             pub type Frontier = FastMap<u64, u64>;\n\
             pub type Work = Frontier;\n",
        );
        let b = syms("b.rs", "use crate::a::Work as Queue;\n");
        let ctx = CrateContext::build([&a, &b]);
        let q = crate::symbols::Ty {
            path: vec!["Queue".into()],
            args: vec![],
        };
        assert_eq!(ctx.resolve_head(&b, &q), "HashMap");
        assert!(ctx.is_unordered(&b, &q));
    }

    #[test]
    fn fields_statics_and_fn_returns_taint_crate_wide() {
        let a = syms(
            "a.rs",
            "pub type Frontier = std::collections::HashMap<u64, u64>;\n\
             pub struct State { pending: Box<Frontier>, done: Vec<u64> }\n\
             pub fn build() -> Frontier { Frontier::new() }\n\
             pub fn count() -> u64 { 0 }\n",
        );
        let ctx = CrateContext::build([&a]);
        assert!(ctx.unordered_bindings.contains("pending"));
        assert!(!ctx.unordered_bindings.contains("done"));
        assert!(ctx.unordered_fns.contains("build"));
        assert!(!ctx.unordered_fns.contains("count"));
    }

    #[test]
    fn interior_and_timestamp_taints_follow_aliases() {
        let a = syms(
            "a.rs",
            "use std::cell::RefCell as Slot;\n\
             pub type Shared = Slot<u64>;\n\
             pub type Stamp = SimTime;\n",
        );
        let ctx = CrateContext::build([&a]);
        let shared = crate::symbols::Ty {
            path: vec!["Shared".into()],
            args: vec![],
        };
        let stamp = crate::symbols::Ty {
            path: vec!["Stamp".into()],
            args: vec![],
        };
        assert!(ctx.is_interior(&a, &shared));
        assert!(!ctx.is_direct_interior(&shared));
        assert!(ctx.is_timestamp(&a, &stamp));
        let atomic = crate::symbols::Ty {
            path: vec!["AtomicU64".into()],
            args: vec![],
        };
        assert!(ctx.is_interior(&a, &atomic));
        assert!(ctx.is_direct_interior(&atomic));
    }

    #[test]
    fn ord_impls_are_collected() {
        let a = syms(
            "a.rs",
            "impl Ord for FlushEvent { }\nimpl PartialEq for X { }\n",
        );
        let ctx = CrateContext::build([&a]);
        assert!(ctx.has_ord_impl("FlushEvent"));
        assert!(!ctx.has_ord_impl("X"));
    }

    #[test]
    fn test_only_symbols_do_not_taint() {
        let a = syms(
            "a.rs",
            "#[cfg(test)]\nmod tests {\n    struct T { cache: std::collections::HashMap<u64, u64> }\n\
             \n    fn mk() -> std::collections::HashMap<u64, u64> { Default::default() }\n}\n",
        );
        let ctx = CrateContext::build([&a]);
        assert!(ctx.unordered_bindings.is_empty());
        assert!(ctx.unordered_fns.is_empty());
    }
}
