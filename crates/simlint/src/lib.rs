//! `ull-simlint` — workspace-wide determinism & sim-purity static analysis.
//!
//! The scientific claim of this repository is that the paper's ULL curves
//! *emerge deterministically* from calibrated mechanisms: identical configs
//! must reproduce identical reports bit-for-bit, or no two benchmark
//! trajectories are comparable across PRs. Hidden nondeterminism — HashMap
//! iteration order, ambient RNG, wall-clock leakage, float time
//! accumulation — silently invalidates every figure. simlint makes those
//! hazards machine-checkable:
//!
//! The analyzer runs in two phases. Phase 1 is lexical and per-file:
//! [`source`] strips comments/literals, [`lexer`] tokenizes, and
//! [`symbols`] parses item signatures (type aliases, struct fields, fn
//! signatures, `use` renames) — all dependency-free, no `syn`. Phase 2
//! ([`resolve`]) joins every file's symbols into a per-crate
//! [`resolve::CrateContext`] that propagates "unordered-map", "interior-
//! mutable" and "timestamp" taints through aliases, fields and function
//! boundaries, which is what makes S003 type-level and powers the
//! shard-safety family S011-S014. docs/STATIC_ANALYSIS.md walks the
//! architecture.
//!
//! | rule | forbids |
//! |------|---------|
//! | S000 | malformed `simlint:` directives (unknown rule codes, empty justifications) |
//! | S001 | wall-clock access (`std::time::Instant`, `SystemTime`) in sim crates |
//! | S002 | ambient/unseeded RNG (`thread_rng`, `rand::random`, `OsRng`, ...) |
//! | S003 | order-dependent iteration over `HashMap`/`HashSet`, even through type aliases, struct fields and fn boundaries |
//! | S004 | `f64` round-trips in simulation-time arithmetic |
//! | S005 | threading/blocking primitives inside the event-loop crates (`ull-exec`, the sanctioned sweep driver, excepted) |
//! | S006 | `unwrap()`/`expect()`/`panic!` in library code of the core layers |
//! | S007 | floating-point accumulation across iterations (`x += ...` on an f32/f64 binding) |
//! | S008 | ambient entropy or wall-clock seeding inside fault-injection paths (fork the lottery from `FaultPlan::stream(salt)` instead) |
//! | S009 | wall clocks and unordered maps — even without iteration — in observability paths (the `ull-probe` crate and trace/probe modules) |
//! | S010 | per-I/O `String` allocation (`format!`, `.to_string()`, `String::from`) in the request hot path (flash/ssd/nvme/stack and the `ull-workload` engine loops) |
//! | S011 | shared mutable statics / interior mutability (`static mut`, `Cell`, `RefCell`, `Mutex`, atomics, ...) outside the sanctioned `ull-exec` driver |
//! | S012 | address/identity-based ordering or hashing (`ptr::eq`, references cast to `usize`) |
//! | S013 | `unsafe` without a `// simlint: justify(...)` directive |
//! | S014 | `pub` `*Event` structs carrying a `SimTime` without a total order (`derive(Ord)`/`impl Ord` or an explicit `seq` key) |
//!
//! Escape hatch: `// simlint: allow(SNNN): <justification>` on (or directly
//! above) the offending line; `// simlint: allow-file(SNNN): <why>` for a
//! whole file; `// simlint: justify(<why>)` / `justify-file(<why>)` for
//! S013's unsafe-block contract. Every allow must carry a justification —
//! reviewers treat an unjustified allow as a finding, and S000 rejects
//! directives whose rule codes or justification text are missing.
//!
//! The analyzer ships three ways: this library API, the `ull-simlint`
//! binary (human + `--json` output), and the tier-1 integration test
//! `tests/simlint_gate.rs` which fails `cargo test` on any finding.
//!
//! # Examples
//!
//! ```
//! use ull_simlint::{check_source, Finding};
//!
//! let findings = check_source("ssd", "crates/ssd/src/x.rs",
//!     "fn f(t: u64) { let _ = std::time::Instant::now(); }");
//! assert_eq!(findings.len(), 1);
//! assert_eq!(findings[0].rule, "S001");
//! ```

#![warn(missing_docs)]

pub mod lexer;
mod report;
pub mod resolve;
mod rules;
mod source;
pub mod symbols;

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

pub use report::{
    diff_against_baseline, parse_baseline_counts, render_human, render_json, rule_counts,
    BaselineDiff, Finding,
};
pub use rules::{RuleInfo, PANIC_FREE_CRATES, RULES, SIM_CRATES};
pub use source::SourceFile;

/// Result of analyzing a workspace: the findings plus scan statistics.
#[derive(Debug)]
pub struct Analysis {
    /// All findings, sorted by (path, line, rule).
    pub findings: Vec<Finding>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
}

/// Analyzes one source string as if it were `path` inside `crate_name`
/// (the directory under `crates/`, or `"root"` for the workspace package).
/// The resolution context is built from this file alone; use
/// [`check_crate`] to resolve aliases and signatures across files.
pub fn check_source(crate_name: &str, path: &str, text: &str) -> Vec<Finding> {
    check_crate(crate_name, &[(path.to_string(), text.to_string())])
}

/// Analyzes all of one crate's files together: phase 1 parses each file's
/// symbols, phase 2 resolves them into a shared [`resolve::CrateContext`],
/// and the rules then see type information that crosses file boundaries
/// (an alias defined in `types.rs`, a tainted fn return used in
/// `engine.rs`). Findings come back sorted by (path, line, rule).
pub fn check_crate(crate_name: &str, files: &[(String, String)]) -> Vec<Finding> {
    let parsed: Vec<(SourceFile, symbols::FileSymbols)> = files
        .iter()
        .map(|(path, text)| {
            let sf = SourceFile::parse(path.clone(), text);
            let sym = symbols::parse(&sf);
            (sf, sym)
        })
        .collect();
    let ctx = resolve::CrateContext::build(parsed.iter().map(|(_, s)| s));
    let mut findings = Vec::new();
    for (sf, sym) in &parsed {
        findings.extend(rules::check_file(crate_name, sf, sym, &ctx));
    }
    findings.sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    findings
}

/// Walks a workspace rooted at `root` (the directory holding the top-level
/// `Cargo.toml`) and analyzes `src/` of the root package and of every crate
/// under `crates/`. Test (`tests/`), bench (`benches/`) and example trees
/// are outside the purity scope by design — they drive or measure the
/// simulator rather than define it.
pub fn analyze_workspace(root: &Path) -> io::Result<Analysis> {
    let mut targets: Vec<(String, PathBuf)> = vec![("root".into(), root.join("src"))];
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let mut names: Vec<String> = fs::read_dir(&crates_dir)?
            .filter_map(|e| e.ok())
            .filter(|e| e.path().is_dir())
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .collect();
        names.sort(); // deterministic walk order, naturally
        for name in names {
            targets.push((name.clone(), crates_dir.join(&name).join("src")));
        }
    }

    let mut findings = Vec::new();
    let mut files_scanned = 0usize;
    for (crate_name, src) in targets {
        if !src.is_dir() {
            continue;
        }
        let mut files = Vec::new();
        collect_rs_files(&src, &mut files)?;
        files.sort();
        // All of a crate's files are analyzed together so the resolution
        // pass sees aliases and signatures across module boundaries.
        let mut crate_files = Vec::with_capacity(files.len());
        for f in &files {
            let text = fs::read_to_string(f)?;
            let rel = f
                .strip_prefix(root)
                .unwrap_or(f)
                .to_string_lossy()
                .replace('\\', "/");
            crate_files.push((rel, text));
            files_scanned += 1;
        }
        findings.extend(check_crate(&crate_name, &crate_files));
    }
    findings.sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    Ok(Analysis {
        findings,
        files_scanned,
    })
}

/// Finds the workspace root by walking up from `start` until a directory
/// whose `Cargo.toml` declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(text) = fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return Some(dir);
                }
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        if path.is_dir() {
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_source_has_no_findings() {
        let src = "use std::collections::BTreeMap;\n\
                   pub fn f(m: &BTreeMap<u64, u64>) -> u64 { m.values().sum() }\n";
        assert!(check_source("ssd", "crates/ssd/src/x.rs", src).is_empty());
    }

    #[test]
    fn scope_gates_rules_by_crate() {
        let wall = "pub fn t() -> std::time::Instant { std::time::Instant::now() }\n";
        // bench is the measurement harness: wall-clock allowed there.
        assert!(check_source("bench", "crates/bench/src/lib.rs", wall).is_empty());
        assert_eq!(
            check_source("stack", "crates/stack/src/x.rs", wall).len(),
            1
        );
        // unwrap is a finding only in the panic-free crates.
        let uw = "pub fn f(x: Option<u8>) -> u8 { x.unwrap() }\n";
        assert!(check_source("workload", "crates/workload/src/x.rs", uw).is_empty());
        assert_eq!(
            check_source("nvme", "crates/nvme/src/x.rs", uw)[0].rule,
            "S006"
        );
    }

    #[test]
    fn workspace_root_detection_walks_up() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .and_then(Path::parent);
        let found = find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")));
        assert_eq!(found.as_deref(), root);
    }
}
