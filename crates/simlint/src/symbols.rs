//! Lightweight item/signature parser: phase 1 of the two-phase analyzer.
//!
//! Walks the token stream from [`crate::lexer`] and recovers the symbol
//! surface the resolution pass ([`crate::resolve`]) needs: `use` renames,
//! type aliases, struct/enum definitions with field types and derives,
//! `fn` signatures, `static` items, `let` bindings, and `impl Ord for ...`
//! blocks. This is deliberately *not* a Rust parser — it is a flat,
//! keyword-keyed scan that never needs to understand expression grammar,
//! which keeps it dependency-free (no `syn`) and robust to code it does
//! not model: anything unrecognized is skipped token by token.

use std::collections::BTreeMap;

use crate::lexer::{lex, Token, TokenKind};
use crate::source::SourceFile;

/// A parsed type: head path plus generic arguments.
///
/// `std::collections::HashMap<u64, Vec<u8>>` parses to
/// `path = ["std","collections","HashMap"]`, `args = [u64, Vec<u8>]`.
/// Tuples and arrays use the synthetic heads `"(tuple)"` / `"(array)"`.
#[derive(Debug, Clone, Default)]
pub struct Ty {
    /// Path segments of the head type.
    pub path: Vec<String>,
    /// Generic arguments, recursively parsed.
    pub args: Vec<Ty>,
}

impl Ty {
    /// Last path segment (`HashMap` for `std::collections::HashMap`).
    pub fn head(&self) -> &str {
        self.path.last().map(String::as_str).unwrap_or("")
    }

    /// Whether nothing was parsed (no head).
    pub fn is_empty(&self) -> bool {
        self.path.is_empty()
    }
}

/// A named, typed slot: struct field, fn parameter or static item.
#[derive(Debug, Clone)]
pub struct Field {
    /// Field/param name (tuple-struct fields use their index, `"0"`).
    pub name: String,
    /// Declared type.
    pub ty: Ty,
    /// 1-based line of the declaration.
    pub line: usize,
    /// Whether the declaration sits inside a `#[cfg(test)]` region.
    pub in_test: bool,
}

/// What kind of type definition a [`StructDef`] records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdtKind {
    /// `struct S { ... }`
    Struct,
    /// `struct S(...)`
    Tuple,
    /// `struct S;`
    Unit,
    /// `enum E { ... }` (variants are not modeled)
    Enum,
}

/// One `struct`/`enum` definition.
#[derive(Debug, Clone)]
pub struct StructDef {
    /// Type name.
    pub name: String,
    /// 1-based line of the `struct`/`enum` keyword's name.
    pub line: usize,
    /// Whether the item is `pub` (any visibility qualifier counts).
    pub is_pub: bool,
    /// Traits listed in `#[derive(...)]` attributes on the item.
    pub derives: Vec<String>,
    /// Named or positional fields (empty for enums and unit structs).
    pub fields: Vec<Field>,
    /// Struct vs tuple vs unit vs enum.
    pub kind: AdtKind,
    /// Whether the definition sits inside a `#[cfg(test)]` region.
    pub in_test: bool,
}

/// One `type Name = Target;` alias (including associated types).
#[derive(Debug, Clone)]
pub struct TypeAlias {
    /// Alias name.
    pub name: String,
    /// Aliased type.
    pub target: Ty,
    /// 1-based line of the alias.
    pub line: usize,
}

/// One `fn` signature (free function or method).
#[derive(Debug, Clone)]
pub struct FnSig {
    /// Function name.
    pub name: String,
    /// 1-based line of the name.
    pub line: usize,
    /// Typed parameters (`self` receivers and complex patterns skipped).
    pub params: Vec<Field>,
    /// Return type (empty for `()` / none).
    pub ret: Ty,
    /// Whether the signature sits inside a `#[cfg(test)]` region.
    pub in_test: bool,
}

/// One `static` item.
#[derive(Debug, Clone)]
pub struct StaticDef {
    /// Item name.
    pub name: String,
    /// Declared type.
    pub ty: Ty,
    /// Whether it is `static mut`.
    pub is_mut: bool,
    /// 1-based line.
    pub line: usize,
    /// Whether it sits inside a `#[cfg(test)]` region.
    pub in_test: bool,
}

/// One `let` binding with its optional type annotation and the leading
/// path of its initializer (`HashMap::new`, `build_frontier`, ...).
#[derive(Debug, Clone)]
pub struct LetBinding {
    /// Bound name (only simple-identifier patterns are recorded).
    pub name: String,
    /// Type annotation, if written.
    pub ty: Ty,
    /// Leading path segments of the initializer expression.
    pub init: Vec<String>,
    /// 1-based line.
    pub line: usize,
    /// Whether it sits inside a `#[cfg(test)]` region.
    pub in_test: bool,
}

/// Everything phase 1 extracts from one source file.
#[derive(Debug, Default)]
pub struct FileSymbols {
    /// Workspace-relative path (mirrors [`SourceFile::path`]).
    pub path: String,
    /// `use` imports: local name → full path (`Map` → `std::collections::HashMap`).
    pub renames: BTreeMap<String, Vec<String>>,
    /// Type aliases in declaration order.
    pub aliases: Vec<TypeAlias>,
    /// Struct/enum definitions.
    pub structs: Vec<StructDef>,
    /// Function signatures.
    pub fns: Vec<FnSig>,
    /// Static items.
    pub statics: Vec<StaticDef>,
    /// Let bindings (flat across all bodies in the file).
    pub lets: Vec<LetBinding>,
    /// `impl Trait for Type` heads, as (trait, type) name pairs —
    /// only Ord/PartialOrd/Hash are interesting downstream.
    pub trait_impls: Vec<(String, String)>,
}

/// Parses `file` into its symbol surface.
pub fn parse(file: &SourceFile) -> FileSymbols {
    let toks = lex(file);
    let mut c = Cursor { toks: &toks, i: 0 };
    let mut out = FileSymbols {
        path: file.path.clone(),
        ..FileSymbols::default()
    };
    let mut derives: Vec<String> = Vec::new();
    let mut is_pub = false;
    while let Some(t) = c.peek() {
        if t.is_punct("#") {
            derives.extend(parse_attr(&mut c));
            continue;
        }
        if t.kind != TokenKind::Ident {
            c.bump();
            derives.clear();
            is_pub = false;
            continue;
        }
        match t.text.as_str() {
            "pub" => {
                c.bump();
                if c.at_punct("(") {
                    c.skip_balanced("(", ")");
                }
                is_pub = true;
                continue; // keep pending derives
            }
            "use" => {
                c.bump();
                parse_use_tree(&mut c, &[], &mut out.renames);
            }
            "type" => {
                c.bump();
                parse_alias(&mut c, &mut out);
            }
            "struct" => {
                c.bump();
                parse_struct(&mut c, file, &mut out, &derives, is_pub, AdtKind::Struct);
            }
            "enum" => {
                c.bump();
                parse_struct(&mut c, file, &mut out, &derives, is_pub, AdtKind::Enum);
            }
            "fn" => {
                c.bump();
                parse_fn(&mut c, file, &mut out);
            }
            "static" => {
                c.bump();
                parse_static(&mut c, file, &mut out);
            }
            "let" => {
                c.bump();
                parse_let(&mut c, file, &mut out);
            }
            "impl" => {
                c.bump();
                parse_impl(&mut c, &mut out);
            }
            _ => {
                c.bump();
            }
        }
        derives.clear();
        is_pub = false;
    }
    out
}

fn line_in_test(file: &SourceFile, line: usize) -> bool {
    file.lines
        .get(line.wrapping_sub(1))
        .is_some_and(|l| l.in_test)
}

// --------------------------------------------------------------- cursor

struct Cursor<'a> {
    toks: &'a [Token],
    i: usize,
}

impl<'a> Cursor<'a> {
    fn peek(&self) -> Option<&'a Token> {
        self.toks.get(self.i)
    }

    fn bump(&mut self) {
        self.i += 1;
    }

    fn at_ident(&self, s: &str) -> bool {
        self.peek().is_some_and(|t| t.is_ident(s))
    }

    fn at_punct(&self, s: &str) -> bool {
        self.peek().is_some_and(|t| t.is_punct(s))
    }

    fn eat_punct(&mut self, s: &str) -> bool {
        if self.at_punct(s) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn eat_ident(&mut self, s: &str) -> bool {
        if self.at_ident(s) {
            self.bump();
            true
        } else {
            false
        }
    }

    /// Consumes and returns the next token if it is any identifier.
    fn eat_any_ident(&mut self) -> Option<(String, usize)> {
        match self.peek() {
            Some(t) if t.kind == TokenKind::Ident => {
                let r = (t.text.clone(), t.line);
                self.bump();
                Some(r)
            }
            _ => None,
        }
    }

    /// Skips a balanced `<...>` group; cursor must sit on the `<`.
    fn skip_angles(&mut self) {
        let mut depth = 0i32;
        while let Some(t) = self.peek() {
            if t.is_punct("<") {
                depth += 1;
            } else if t.is_punct(">") {
                depth -= 1;
                if depth == 0 {
                    self.bump();
                    return;
                }
            }
            self.bump();
        }
    }

    /// Skips a balanced `open...close` group; cursor must sit on `open`.
    fn skip_balanced(&mut self, open: &str, close: &str) {
        let mut depth = 0i32;
        while let Some(t) = self.peek() {
            if t.is_punct(open) {
                depth += 1;
            } else if t.is_punct(close) {
                depth -= 1;
                if depth == 0 {
                    self.bump();
                    return;
                }
            }
            self.bump();
        }
    }
}

// ---------------------------------------------------------------- items

/// Parses one attribute (`#[...]`), returning any `derive(...)` idents.
fn parse_attr(c: &mut Cursor) -> Vec<String> {
    c.bump(); // '#'
    c.eat_punct("!");
    if !c.at_punct("[") {
        return Vec::new();
    }
    let mut derives = Vec::new();
    let mut depth = 0i32;
    let mut in_derive = false;
    while let Some(t) = c.peek() {
        if t.is_punct("[") {
            depth += 1;
        } else if t.is_punct("]") {
            depth -= 1;
            if depth == 0 {
                c.bump();
                break;
            }
        } else if t.is_ident("derive") {
            in_derive = true;
        } else if in_derive && t.kind == TokenKind::Ident {
            derives.push(t.text.clone());
        }
        c.bump();
    }
    derives
}

/// Parses a `use` tree (after the `use` keyword), recording local name →
/// full path for plain leaves, `as` renames, `{...}` groups and
/// `{self, ...}`. Globs record nothing.
fn parse_use_tree(c: &mut Cursor, prefix: &[String], renames: &mut BTreeMap<String, Vec<String>>) {
    let mut path = prefix.to_vec();
    loop {
        match c.peek() {
            Some(t) if t.kind == TokenKind::Ident => {
                path.push(t.text.clone());
                c.bump();
                if c.eat_punct("::") {
                    if c.at_punct("{") {
                        c.bump();
                        loop {
                            parse_use_tree(c, &path, renames);
                            if !c.eat_punct(",") {
                                break;
                            }
                        }
                        c.eat_punct("}");
                        return;
                    }
                    if c.at_punct("*") {
                        c.bump();
                        return;
                    }
                    continue;
                }
                // End of this path: a leaf, optionally renamed with `as`.
                if c.eat_ident("as") {
                    if let Some((alias, _)) = c.eat_any_ident() {
                        if alias != "_" {
                            renames.insert(alias, path);
                        }
                    }
                    return;
                }
                let leaf = path.last().cloned().unwrap_or_default();
                if leaf == "self" {
                    path.pop();
                    if let Some(last) = path.last().cloned() {
                        renames.insert(last, path);
                    }
                } else if leaf != "crate" && leaf != "super" {
                    renames.insert(leaf, path);
                }
                return;
            }
            _ => return,
        }
    }
}

fn parse_alias(c: &mut Cursor, out: &mut FileSymbols) {
    let Some((name, line)) = c.eat_any_ident() else {
        return;
    };
    if c.at_punct("<") {
        c.skip_angles();
    }
    if !c.eat_punct("=") {
        return; // `type Item;` declaration in a trait — no target
    }
    let target = parse_ty(c);
    if !target.is_empty() {
        out.aliases.push(TypeAlias { name, target, line });
    }
}

fn parse_struct(
    c: &mut Cursor,
    file: &SourceFile,
    out: &mut FileSymbols,
    derives: &[String],
    is_pub: bool,
    kind: AdtKind,
) {
    let Some((name, line)) = c.eat_any_ident() else {
        return;
    };
    if c.at_punct("<") {
        c.skip_angles();
    }
    if c.at_ident("where") {
        while let Some(t) = c.peek() {
            if t.is_punct("{") || t.is_punct(";") {
                break;
            }
            c.bump();
        }
    }
    let mut fields = Vec::new();
    let mut kind = kind;
    if kind == AdtKind::Enum {
        // Variants are not modeled; skip the body, keep name + derives.
        if c.at_punct("{") {
            c.skip_balanced("{", "}");
        }
    } else if c.at_punct("{") {
        c.bump();
        while let Some(t) = c.peek() {
            if t.is_punct("}") {
                c.bump();
                break;
            }
            if t.is_punct("#") {
                parse_attr(c);
                continue;
            }
            if t.is_ident("pub") {
                c.bump();
                if c.at_punct("(") {
                    c.skip_balanced("(", ")");
                }
                continue;
            }
            let Some((fname, fline)) = c.eat_any_ident() else {
                c.bump();
                continue;
            };
            if !c.eat_punct(":") {
                continue;
            }
            let ty = parse_ty(c);
            fields.push(Field {
                name: fname,
                ty,
                line: fline,
                in_test: line_in_test(file, fline),
            });
            c.eat_punct(",");
        }
    } else if c.at_punct("(") {
        kind = AdtKind::Tuple;
        c.bump();
        let mut idx = 0usize;
        while let Some(t) = c.peek() {
            if t.is_punct(")") {
                c.bump();
                break;
            }
            if t.is_punct("#") {
                parse_attr(c);
                continue;
            }
            if t.is_ident("pub") {
                c.bump();
                if c.at_punct("(") {
                    c.skip_balanced("(", ")");
                }
                continue;
            }
            let before = c.i;
            let ty = parse_ty(c);
            if !ty.is_empty() {
                fields.push(Field {
                    name: idx.to_string(),
                    ty,
                    line,
                    in_test: line_in_test(file, line),
                });
                idx += 1;
            }
            if c.i == before {
                c.bump();
            }
            c.eat_punct(",");
        }
    } else {
        kind = AdtKind::Unit;
    }
    out.structs.push(StructDef {
        name,
        line,
        is_pub,
        derives: derives.to_vec(),
        fields,
        kind,
        in_test: line_in_test(file, line),
    });
}

fn parse_fn(c: &mut Cursor, file: &SourceFile, out: &mut FileSymbols) {
    // `fn` in a fn-pointer type (`fn(u64) -> u64`) has no name; skip it.
    let Some((name, line)) = c.eat_any_ident() else {
        return;
    };
    if c.at_punct("<") {
        c.skip_angles();
    }
    if !c.eat_punct("(") {
        return;
    }
    let params = parse_params(c, file);
    let ret = if c.eat_punct("->") {
        parse_ty(c)
    } else {
        Ty::default()
    };
    out.fns.push(FnSig {
        name,
        line,
        params,
        ret,
        in_test: line_in_test(file, line),
    });
}

fn parse_params(c: &mut Cursor, file: &SourceFile) -> Vec<Field> {
    let mut params = Vec::new();
    while let Some(t) = c.peek() {
        if t.is_punct(")") {
            c.bump();
            break;
        }
        if t.is_punct("#") {
            parse_attr(c);
            continue;
        }
        // Receiver decorations: `&`, `&'a`, `mut`, then maybe `self`.
        if t.is_punct("&") || t.kind == TokenKind::Lifetime || t.is_ident("mut") {
            c.bump();
            continue;
        }
        if t.is_ident("self") {
            c.bump();
            c.eat_punct(",");
            continue;
        }
        if let Some((name, line)) = c.eat_any_ident() {
            if c.eat_punct(":") {
                let ty = parse_ty(c);
                if !ty.is_empty() {
                    params.push(Field {
                        name,
                        ty,
                        line,
                        in_test: line_in_test(file, line),
                    });
                }
            }
        }
        // Whatever remains of the param — a complex pattern like
        // `(a, b): (T, U)`, trait bounds, defaults — is skipped whole,
        // with bracket depths tracked so the list stays in sync.
        skip_to_param_end(c);
        c.eat_punct(",");
    }
    params
}

/// Skips to the next top-level `,` or the closing `)` of the param list,
/// consuming neither.
fn skip_to_param_end(c: &mut Cursor) {
    let (mut paren, mut bracket, mut angle) = (0i32, 0i32, 0i32);
    while let Some(t) = c.peek() {
        if t.is_punct("(") {
            paren += 1;
        } else if t.is_punct(")") {
            if paren == 0 {
                return;
            }
            paren -= 1;
        } else if t.is_punct("[") {
            bracket += 1;
        } else if t.is_punct("]") {
            bracket -= 1;
        } else if t.is_punct("<") {
            angle += 1;
        } else if t.is_punct(">") {
            angle -= 1;
        } else if t.is_punct(",") && paren == 0 && bracket == 0 && angle <= 0 {
            return;
        }
        c.bump();
    }
}

fn parse_static(c: &mut Cursor, file: &SourceFile, out: &mut FileSymbols) {
    let is_mut = c.eat_ident("mut");
    let Some((name, line)) = c.eat_any_ident() else {
        return;
    };
    if !c.eat_punct(":") {
        return;
    }
    let ty = parse_ty(c);
    out.statics.push(StaticDef {
        name,
        ty,
        is_mut,
        line,
        in_test: line_in_test(file, line),
    });
}

fn parse_let(c: &mut Cursor, file: &SourceFile, out: &mut FileSymbols) {
    let _ = c.eat_ident("mut");
    let Some(t) = c.peek() else { return };
    if t.kind != TokenKind::Ident {
        return; // tuple/struct patterns are not recorded
    }
    let (name, line) = (t.text.clone(), t.line);
    c.bump();
    let mut ty = Ty::default();
    if c.eat_punct(":") {
        ty = parse_ty(c);
    }
    let mut init = Vec::new();
    if c.eat_punct("=") {
        while c.at_punct("&") || c.at_ident("mut") {
            c.bump();
        }
        while let Some(t) = c.peek() {
            if t.kind != TokenKind::Ident {
                break;
            }
            init.push(t.text.clone());
            c.bump();
            if !c.eat_punct("::") {
                break;
            }
        }
    }
    out.lets.push(LetBinding {
        name,
        ty,
        init,
        line,
        in_test: line_in_test(file, line),
    });
}

fn parse_impl(c: &mut Cursor, out: &mut FileSymbols) {
    if c.at_punct("<") {
        c.skip_angles();
    }
    // First path: either the self type (inherent impl) or the trait.
    let first = parse_ty(c);
    if first.is_empty() {
        return;
    }
    if c.eat_ident("for") {
        let target = parse_ty(c);
        if !target.is_empty() {
            out.trait_impls
                .push((first.head().to_string(), target.head().to_string()));
        }
    }
}

// ---------------------------------------------------------------- types

/// Parses one type, leaving the cursor on the first token that cannot be
/// part of it (`,`, `;`, `)`, `{`, `>`, `=`, ...). Returns an empty [`Ty`]
/// (consuming nothing beyond modifiers) when no type starts here.
fn parse_ty(c: &mut Cursor) -> Ty {
    // Leading modifiers: references, raw-pointer sigils, lifetimes,
    // `mut`/`const`/`dyn`/`impl`.
    loop {
        match c.peek() {
            Some(t) if t.is_punct("&") || t.is_punct("*") => c.bump(),
            Some(t) if t.kind == TokenKind::Lifetime => c.bump(),
            Some(t)
                if t.is_ident("mut")
                    || t.is_ident("const")
                    || t.is_ident("dyn")
                    || t.is_ident("impl") =>
            {
                c.bump()
            }
            _ => break,
        }
    }
    match c.peek() {
        Some(t) if t.is_punct("(") => {
            c.bump();
            let mut args = Vec::new();
            while let Some(t) = c.peek() {
                if t.is_punct(")") {
                    c.bump();
                    break;
                }
                let before = c.i;
                let a = parse_ty(c);
                if !a.is_empty() {
                    args.push(a);
                }
                if c.i == before {
                    c.bump();
                }
                c.eat_punct(",");
            }
            return Ty {
                path: vec!["(tuple)".into()],
                args,
            };
        }
        Some(t) if t.is_punct("[") => {
            c.bump();
            let inner = parse_ty(c);
            let mut depth = 1i32;
            while let Some(t) = c.peek() {
                if t.is_punct("[") {
                    depth += 1;
                } else if t.is_punct("]") {
                    depth -= 1;
                    if depth == 0 {
                        c.bump();
                        break;
                    }
                }
                c.bump();
            }
            return Ty {
                path: vec!["(array)".into()],
                args: vec![inner],
            };
        }
        Some(t) if t.is_punct("<") => {
            // Qualified path `<T as Trait>::Out`: skip the qualifier and
            // fall through to the path parse below.
            c.skip_angles();
            c.eat_punct("::");
        }
        _ => {}
    }
    let mut ty = Ty::default();
    while let Some(seg) = c
        .peek()
        .filter(|t| t.kind == TokenKind::Ident)
        .map(|t| t.text.clone())
    {
        ty.path.push(seg);
        c.bump();
        if c.at_punct("<") {
            c.bump();
            while let Some(t) = c.peek() {
                if t.is_punct(">") {
                    c.bump();
                    break;
                }
                if t.kind == TokenKind::Lifetime
                    || t.kind == TokenKind::Literal
                    || t.is_punct(",")
                    || t.is_punct("=")
                    || t.is_ident("const")
                {
                    c.bump();
                    continue;
                }
                let before = c.i;
                let a = parse_ty(c);
                if !a.is_empty() {
                    ty.args.push(a);
                }
                if c.i == before {
                    c.bump();
                }
            }
        }
        if c.at_punct("(") {
            // `Fn(...)` / fn-pointer sugar: skip the args, keep the head.
            c.skip_balanced("(", ")");
            if c.eat_punct("->") {
                let _ = parse_ty(c);
            }
            break;
        }
        if !c.eat_punct("::") {
            break;
        }
    }
    ty
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sym(src: &str) -> FileSymbols {
        parse(&SourceFile::parse("t.rs", src))
    }

    #[test]
    fn use_trees_record_leaves_groups_and_renames() {
        let s = sym("use std::collections::HashMap;\n\
                     use std::collections::{BTreeMap, HashSet as Unordered};\n\
                     use crate::sim::{self, event::Ev};\n\
                     use foo::bar::*;\n");
        assert_eq!(s.renames["HashMap"], ["std", "collections", "HashMap"]);
        assert_eq!(s.renames["BTreeMap"], ["std", "collections", "BTreeMap"]);
        assert_eq!(s.renames["Unordered"], ["std", "collections", "HashSet"]);
        assert_eq!(s.renames["sim"], ["crate", "sim"]);
        assert_eq!(s.renames["Ev"], ["crate", "sim", "event", "Ev"]);
        assert!(!s.renames.contains_key("HashSet"));
    }

    #[test]
    fn aliases_capture_generic_targets() {
        let s = sym(
            "pub type Frontier = std::collections::HashMap<u64, Vec<u8>>;\n\
                     type Pair<T> = (T, u64);\n",
        );
        assert_eq!(s.aliases.len(), 2);
        assert_eq!(s.aliases[0].name, "Frontier");
        assert_eq!(s.aliases[0].target.head(), "HashMap");
        assert_eq!(s.aliases[0].target.args.len(), 2);
        assert_eq!(s.aliases[1].target.head(), "(tuple)");
    }

    #[test]
    fn structs_capture_fields_derives_and_visibility() {
        let s = sym("#[derive(Debug, Clone, Ord, PartialOrd, Eq, PartialEq)]\n\
                     pub struct FlushEvent {\n    pub at: SimTime,\n    pub(crate) seq: u64,\n}\n\
                     struct Pair(u32, Vec<f64>);\n\
                     struct Marker;\n\
                     pub enum Kind { A, B(u64) }\n");
        assert_eq!(s.structs.len(), 4);
        let ev = &s.structs[0];
        assert!(ev.is_pub);
        assert!(ev.derives.iter().any(|d| d == "Ord"));
        assert_eq!(ev.fields.len(), 2);
        assert_eq!(ev.fields[0].name, "at");
        assert_eq!(ev.fields[0].ty.head(), "SimTime");
        assert_eq!(ev.fields[1].name, "seq");
        let pair = &s.structs[1];
        assert_eq!(pair.kind, AdtKind::Tuple);
        assert_eq!(pair.fields[1].ty.head(), "Vec");
        assert_eq!(s.structs[2].kind, AdtKind::Unit);
        assert_eq!(s.structs[3].kind, AdtKind::Enum);
        assert!(s.structs[3].is_pub);
    }

    #[test]
    fn fn_signatures_capture_params_and_return() {
        let s = sym("impl S {\n    pub fn take(&mut self, m: Frontier, n: u64) -> Frontier { m }\n}\n\
                     fn apply<F: Fn(u64) -> u64>(f: F, (a, b): (u64, u64)) -> impl Iterator<Item = u64> { x }\n");
        let take = &s.fns[0];
        assert_eq!(take.name, "take");
        assert_eq!(take.params.len(), 2);
        assert_eq!(take.params[0].name, "m");
        assert_eq!(take.params[0].ty.head(), "Frontier");
        assert_eq!(take.ret.head(), "Frontier");
        let apply = &s.fns[1];
        assert_eq!(apply.name, "apply");
        // Complex patterns are skipped, the Fn-typed param is captured.
        assert_eq!(apply.params.len(), 1);
        assert_eq!(apply.ret.head(), "Iterator");
    }

    #[test]
    fn statics_lets_and_impls_are_recorded() {
        let s = sym("static mut COUNTER: u64 = 0;\n\
                     static TABLE: OnceLock<Vec<u8>> = OnceLock::new();\n\
                     fn f() {\n    let mut m = Frontier::new();\n    let t: Slot = make();\n}\n\
                     impl Ord for Ev { }\n\
                     impl Ev { }\n");
        assert_eq!(s.statics.len(), 2);
        assert!(s.statics[0].is_mut);
        assert_eq!(s.statics[1].ty.head(), "OnceLock");
        assert_eq!(s.lets[0].name, "m");
        assert_eq!(s.lets[0].init, ["Frontier", "new"]);
        assert_eq!(s.lets[1].ty.head(), "Slot");
        assert_eq!(s.lets[1].init, ["make"]);
        assert_eq!(s.trait_impls, [("Ord".to_string(), "Ev".to_string())]);
    }

    #[test]
    fn test_region_items_are_marked() {
        let s = sym("struct Lib { m: HashMap<u64, u64> }\n\
                     #[cfg(test)]\nmod tests {\n    struct T { m: HashMap<u64, u64> }\n}\n");
        assert!(!s.structs[0].fields[0].in_test);
        assert!(s.structs[1].fields[0].in_test);
    }
}
