//! The `ull-simlint` binary: run the determinism & sim-purity analyzer
//! over the workspace.
//!
//! ```text
//! cargo run -p ull-simlint            # human output, exit 1 on findings
//! cargo run -p ull-simlint -- --json  # machine-readable report
//! cargo run -p ull-simlint -- --list-rules
//! cargo run -p ull-simlint -- --root /path/to/workspace
//! cargo run -p ull-simlint -- --baseline simlint_baseline.json
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut json = false;
    let mut list_rules = false;
    let mut root: Option<PathBuf> = None;
    let mut baseline: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--json" => json = true,
            "--list-rules" => list_rules = true,
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => {
                    eprintln!("simlint: --root needs a path");
                    return ExitCode::from(2);
                }
            },
            "--baseline" => match args.next() {
                Some(p) => baseline = Some(PathBuf::from(p)),
                None => {
                    eprintln!("simlint: --baseline needs a path to a committed --json report");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!(
                    "usage: simlint [--json] [--list-rules] [--root <workspace-dir>] \
                     [--baseline <report.json>]\n\
                     Statically enforces determinism rules S000-S014 over the workspace.\n\
                     --baseline diffs per-rule finding counts against a committed --json\n\
                     report: count regressions fail, improvements warn so the baseline\n\
                     gets ratcheted down.\n\
                     Exit codes: 0 clean, 1 findings/regressions, 2 usage/io error."
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("simlint: unknown argument `{other}` (try --help)");
                return ExitCode::from(2);
            }
        }
    }

    if list_rules {
        for r in ull_simlint::RULES {
            println!(
                "{}  {}\n      {}\n      scope: {}",
                r.code, r.brief, r.summary, r.scope
            );
        }
        return ExitCode::SUCCESS;
    }

    let cwd = match std::env::current_dir() {
        Ok(d) => d,
        Err(e) => {
            eprintln!("simlint: cannot determine current directory: {e}");
            return ExitCode::from(2);
        }
    };
    let Some(root) = root.or_else(|| ull_simlint::find_workspace_root(&cwd)) else {
        eprintln!("simlint: no workspace root found above {}", cwd.display());
        return ExitCode::from(2);
    };

    match ull_simlint::analyze_workspace(&root) {
        Ok(analysis) => {
            if json {
                println!(
                    "{}",
                    ull_simlint::render_json(&analysis.findings, analysis.files_scanned)
                );
            } else {
                print!(
                    "{}",
                    ull_simlint::render_human(&analysis.findings, analysis.files_scanned)
                );
            }
            if let Some(path) = baseline {
                return ratchet(&analysis.findings, &path);
            }
            if analysis.findings.is_empty() {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(1)
            }
        }
        Err(e) => {
            eprintln!("simlint: io error while scanning {}: {e}", root.display());
            ExitCode::from(2)
        }
    }
}

/// Baseline mode: the verdict is the per-rule count diff, not the raw
/// finding list — a committed baseline sanctions its counts until fixed.
fn ratchet(findings: &[ull_simlint::Finding], path: &PathBuf) -> ExitCode {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("simlint: cannot read baseline {}: {e}", path.display());
            return ExitCode::from(2);
        }
    };
    let Some(base) = ull_simlint::parse_baseline_counts(&text) else {
        eprintln!(
            "simlint: baseline {} has no parseable rule_counts object",
            path.display()
        );
        return ExitCode::from(2);
    };
    let diff = ull_simlint::diff_against_baseline(findings, &base);
    for (code, b, n) in &diff.improvements {
        println!(
            "simlint: baseline improvement — {code}: {b} -> {n}; ratchet {} down",
            path.display()
        );
    }
    for (code, b, n) in &diff.regressions {
        println!("simlint: baseline REGRESSION — {code}: {b} -> {n}");
    }
    if diff.regressions.is_empty() {
        println!("simlint: baseline OK ({})", path.display());
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
