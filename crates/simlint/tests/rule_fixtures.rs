//! Per-rule fixture tests: for every rule S000-S014 one fixture that
//! triggers it and one that passes, plus escape-hatch and scoping checks.
//!
//! These are the analyzer's regression suite: each fixture encodes the
//! hazard the rule exists to catch (wall-clock leakage, ambient RNG,
//! bucket-order iteration, float time drift, host threading, panicking
//! library paths, per-I/O allocation churn) in its smallest reproducible
//! form.

use ull_simlint::{check_crate, check_source};

/// Convenience: analyze `src` as a file of the `ssd` sim crate.
fn sim(src: &str) -> Vec<String> {
    check_source("ssd", "crates/ssd/src/fixture.rs", src)
        .into_iter()
        .map(|f| format!("{}:{}", f.rule, f.line))
        .collect()
}

// ------------------------------------------------------------------ S001

#[test]
fn s001_flags_wall_clock_access() {
    let bad = "pub fn now() -> std::time::Instant {\n    std::time::Instant::now()\n}\n";
    let rules = sim(bad);
    assert_eq!(
        rules,
        ["S001:1", "S001:2"],
        "every wall-clock line is a finding"
    );
}

#[test]
fn s001_passes_sim_time() {
    let good = "use ull_simkit::SimTime;\npub fn now(t: SimTime) -> u64 { t.as_nanos() }\n";
    assert!(sim(good).is_empty());
}

#[test]
fn s001_ignores_strings_and_comments() {
    let ok = "// std::time::Instant is banned here\npub const DOC: &str = \"SystemTime\";\n";
    assert!(sim(ok).is_empty());
}

// ------------------------------------------------------------------ S002

#[test]
fn s002_flags_ambient_rng() {
    let bad = "pub fn roll() -> u64 {\n    let mut r = thread_rng();\n    r.gen()\n}\n";
    assert_eq!(sim(bad), ["S002:2"]);
    assert_eq!(
        sim("pub fn seed() -> u64 { OsRng.next_u64() }\n"),
        ["S002:1"]
    );
}

#[test]
fn s002_passes_seeded_splitmix() {
    let good = "use ull_simkit::SplitMix64;\n\
                pub fn roll(seed: u64) -> u64 { SplitMix64::new(seed).next_u64() }\n";
    assert!(sim(good).is_empty());
}

// ------------------------------------------------------------------ S003

#[test]
fn s003_flags_hashmap_iteration() {
    let bad = "use std::collections::HashMap;\n\
               pub fn sum(m: HashMap<u64, u64>) -> u64 {\n\
                   let mut s = 0;\n\
                   for v in m.values() { s += v; }\n\
                   s\n\
               }\n";
    assert_eq!(sim(bad), ["S003:4"]);
}

#[test]
fn s003_flags_retain_and_for_loops() {
    let retain = "use std::collections::HashMap;\n\
                  pub struct S { live: HashMap<u64, u64> }\n\
                  impl S { pub fn gc(&mut self) { self.live.retain(|_, v| *v > 0); } }\n";
    assert_eq!(sim(retain), ["S003:3"]);
    let for_loop = "use std::collections::HashSet;\n\
                    pub fn f(seen: HashSet<u32>) -> u32 {\n\
                        let mut n = 0;\n\
                        for _ in &seen { n += 1; }\n\
                        n\n\
                    }\n";
    assert_eq!(sim(for_loop), ["S003:4"]);
}

#[test]
fn s003_passes_btreemap_and_non_iterating_hashmap() {
    let btree = "use std::collections::BTreeMap;\n\
                 pub fn sum(m: &BTreeMap<u64, u64>) -> u64 { m.values().sum() }\n";
    assert!(sim(btree).is_empty());
    // Point lookups / inserts on a HashMap are order-independent and fine.
    let point = "use std::collections::HashMap;\n\
                 pub fn touch(m: &mut HashMap<u64, u64>, k: u64) {\n\
                     m.insert(k, m.get(&k).copied().unwrap_or(0) + 1);\n\
                 }\n";
    assert_eq!(
        check_source("workload", "crates/workload/src/f.rs", point).len(),
        0
    );
}

// ------------------------------------------------------------------ S004

#[test]
fn s004_flags_raw_time_casts_and_round_trips() {
    let cast = "use ull_simkit::SimDuration;\n\
                pub fn us(d: SimDuration) -> f64 { d.as_nanos() as f64 / 1e3 }\n";
    assert_eq!(sim(cast), ["S004:2"]);
    let round_trip = "use ull_simkit::SimDuration;\n\
                      pub fn double(d: SimDuration) -> SimDuration {\n\
                          SimDuration::from_micros_f64(d.as_micros_f64() * 2.0)\n\
                      }\n";
    assert_eq!(sim(round_trip), ["S004:3"]);
}

#[test]
fn s004_passes_integer_arithmetic_and_reporting_accessors() {
    let good = "use ull_simkit::SimDuration;\n\
                pub fn double(d: SimDuration) -> SimDuration { d * 2 }\n\
                pub fn report(d: SimDuration) -> f64 { d.as_micros_f64() }\n";
    assert!(sim(good).is_empty());
}

#[test]
fn s004_exempts_the_accessor_definitions_in_time_rs() {
    // simkit/src/time.rs *defines* the reporting accessors; the raw cast
    // there is the sanctioned implementation, not a violation.
    let defs = "impl SimDuration {\n\
                    pub fn as_micros_f64(self) -> f64 { self.as_nanos() as f64 / 1e3 }\n\
                }\n";
    assert!(check_source("simkit", "crates/simkit/src/time.rs", defs).is_empty());
    // The same source anywhere else in simkit is a finding.
    let elsewhere = check_source("simkit", "crates/simkit/src/hist.rs", defs);
    assert_eq!(elsewhere.len(), 1);
    assert_eq!(elsewhere[0].rule, "S004");
}

// ------------------------------------------------------------------ S005

#[test]
fn s005_flags_threading_primitives() {
    let bad = "use std::sync::Mutex;\n\
               pub fn run() {\n\
                   std::thread::spawn(|| {});\n\
               }\n";
    let rules = sim(bad);
    assert!(
        rules.contains(&"S005:1".to_string()),
        "Mutex import flagged: {rules:?}"
    );
    assert!(
        rules.contains(&"S005:3".to_string()),
        "thread::spawn flagged: {rules:?}"
    );
}

#[test]
fn s005_passes_single_threaded_event_loop() {
    let good = "use ull_simkit::EventQueue;\n\
                pub fn drain(q: &mut EventQueue<u64>) { while q.pop().is_some() {} }\n";
    assert!(sim(good).is_empty());
}

#[test]
fn s005_does_not_apply_to_the_bench_harness() {
    // bench is the wall-clock measurement harness: threads and Instant are
    // its job, so neither S001 nor S005 applies there.
    let harness = "use std::sync::Mutex;\n\
                   pub fn t0() -> std::time::Instant { std::time::Instant::now() }\n";
    assert!(check_source("bench", "crates/bench/src/lib.rs", harness).is_empty());
}

// ------------------------------------------------------------------ S006

#[test]
fn s006_flags_panicking_library_code() {
    let bad = "pub fn get(v: &[u8]) -> u8 {\n\
                   let x = v.first().unwrap();\n\
                   if *x == 0 { panic!(\"zero\") }\n\
                   *x\n\
               }\n";
    assert_eq!(sim(bad), ["S006:2", "S006:3"]);
}

#[test]
fn s006_passes_result_based_code_and_test_modules() {
    let good = "pub fn get(v: &[u8]) -> Option<u8> { v.first().copied() }\n\
                #[cfg(test)]\n\
                mod tests {\n\
                    #[test]\n\
                    fn t() { assert_eq!(super::get(&[7]).unwrap(), 7); }\n\
                }\n";
    assert!(
        sim(good).is_empty(),
        "unwrap inside #[cfg(test)] mod is exempt"
    );
}

#[test]
fn s006_only_applies_to_panic_free_crates() {
    let uw = "pub fn f(x: Option<u8>) -> u8 { x.unwrap() }\n";
    assert_eq!(check_source("nvme", "crates/nvme/src/f.rs", uw).len(), 1);
    // workload/core drive experiments; panics there abort a run, not the sim.
    assert!(check_source("workload", "crates/workload/src/f.rs", uw).is_empty());
    assert!(check_source("core", "crates/core/src/f.rs", uw).is_empty());
}

// ------------------------------------------------------------------ S007

#[test]
fn s007_flags_float_accumulation_across_iterations() {
    let local = "pub fn mean(xs: &[f64]) -> f64 {\n\
                     let mut sum = 0.0;\n\
                     for x in xs { sum += x; }\n\
                     sum / xs.len() as f64\n\
                 }\n";
    assert_eq!(sim(local), ["S007:3"]);
    let field = "pub struct Acc { total: f64 }\n\
                 impl Acc {\n\
                     pub fn add(&mut self, x: f64) { self.total += x; }\n\
                 }\n";
    assert_eq!(sim(field), ["S007:3"]);
    let indexed = "pub struct Bins { bins: Vec<f64> }\n\
                   impl Bins {\n\
                       pub fn charge(&mut self, i: usize, x: f64) { self.bins[i] += x; }\n\
                   }\n";
    assert_eq!(sim(indexed), ["S007:3"]);
}

#[test]
fn s007_passes_integer_accumulators_and_one_shot_float_math() {
    // Integer accumulation (u64/u128 counters, SimDuration sums) is exact.
    let ints = "pub fn total(xs: &[u64]) -> u128 {\n\
                    let mut sum: u128 = 0;\n\
                    for x in xs { sum += *x as u128; }\n\
                    sum\n\
                }\n";
    assert!(sim(ints).is_empty());
    // One-shot float arithmetic (no compound assignment) is reporting, not
    // accumulation.
    let oneshot = "pub fn pct(a: f64, b: f64) -> f64 { (a - b) / a * 100.0 }\n";
    assert!(sim(oneshot).is_empty());
    // Float accumulation inside #[cfg(test)] is exempt like every rule.
    let test_only = "#[cfg(test)]\n\
                     mod tests {\n\
                         #[test]\n\
                         fn t() {\n\
                             let mut s = 0.0;\n\
                             for i in 0..4 { s += i as f64; }\n\
                             assert!(s > 0.0);\n\
                         }\n\
                     }\n";
    assert!(sim(test_only).is_empty());
}

#[test]
fn s007_exempts_time_rs_and_honours_allows() {
    // time.rs defines the integer time arithmetic; its impl lines are the
    // sanctioned base case.
    let defs = "pub struct W { w: f64 }\n\
                impl W { pub fn add(&mut self, x: f64) { self.w += x; } }\n";
    assert!(check_source("simkit", "crates/simkit/src/time.rs", defs).is_empty());
    assert_eq!(
        check_source("simkit", "crates/simkit/src/w.rs", defs).len(),
        1
    );
    let allowed = "pub struct W { w: f64 }\n\
                   impl W {\n\
                       // simlint: allow(S007): charged in fixed event order\n\
                       pub fn add(&mut self, x: f64) { self.w += x; }\n\
                   }\n";
    assert!(check_source("simkit", "crates/simkit/src/w.rs", allowed).is_empty());
}

// ------------------------------------------------------------------ S008

/// Convenience: analyze `src` as a file of the `ull-faults` crate.
fn fault_crate(src: &str) -> Vec<String> {
    check_source("faults", "crates/faults/src/plan.rs", src)
        .into_iter()
        .map(|f| format!("{}:{}", f.rule, f.line))
        .collect()
}

#[test]
fn s008_flags_ambient_seeds_in_fault_paths() {
    // DefaultHasher-derived seeds vary per process: the classic
    // "convenient entropy" that silently breaks fault replay. No other
    // rule catches it.
    let hasher = "pub fn seed() -> u64 {\n\
                      let h = std::collections::hash_map::DefaultHasher::new();\n\
                      0\n\
                  }\n";
    assert_eq!(fault_crate(hasher), ["S008:2"]);
    // Environment-dependent seeding is just as ambient.
    let env = "pub fn seed() -> u64 {\n\
                   std::env::var(\"SEED\").map(|s| s.len() as u64).unwrap_or(0)\n\
               }\n";
    assert_eq!(fault_crate(env), ["S008:2"]);
}

#[test]
fn s008_stacks_on_the_generic_purity_rules() {
    // A wall-clock seed in a fault path violates both the generic S001
    // and the fault-specific S008: the finding names both contracts.
    let wall = "pub fn seed() -> u64 { SystemTime::now().elapsed().unwrap().as_nanos() as u64 }\n";
    let rules = fault_crate(wall);
    assert!(rules.contains(&"S001:1".to_string()), "{rules:?}");
    assert!(rules.contains(&"S008:1".to_string()), "{rules:?}");
}

#[test]
fn s008_passes_plan_forked_streams() {
    let good = "use ull_simkit::SplitMix64;\n\
                pub fn stream(seed: u64, salt: u64) -> SplitMix64 {\n\
                    SplitMix64::new(seed).fork(salt)\n\
                }\n";
    assert!(fault_crate(good).is_empty());
}

#[test]
fn s008_scope_is_fault_paths_only() {
    // env::var is fine (for S008) outside fault paths...
    let env = "pub fn home() -> Option<String> { std::env::var(\"HOME\").ok() }\n";
    assert!(check_source("ssd", "crates/ssd/src/device.rs", env).is_empty());
    // ...but a fault_*.rs module inside another layer is in scope,
    assert_eq!(
        check_source("ssd", "crates/ssd/src/fault_hooks.rs", env)
            .iter()
            .map(|f| f.rule)
            .collect::<Vec<_>>(),
        ["S008"]
    );
    // ...as is any file of the ull-faults crate.
    assert_eq!(
        check_source("faults", "crates/faults/src/report.rs", env)
            .iter()
            .map(|f| f.rule)
            .collect::<Vec<_>>(),
        ["S008"]
    );
}

#[test]
fn s008_honours_allow_directives() {
    let allowed = "// simlint: allow(S008): doc example showing what NOT to do\n\
                   pub fn seed() -> u64 { std::env::var(\"SEED\").map(|s| s.len() as u64).unwrap_or(0) }\n";
    assert!(fault_crate(allowed).is_empty());
}

// ------------------------------------------------------------------ S009

/// Convenience: analyze `src` as a file of the `ull-probe` crate.
fn probe_crate(src: &str) -> Vec<String> {
    check_source("probe", "crates/probe/src/metrics.rs", src)
        .into_iter()
        .map(|f| format!("{}:{}", f.rule, f.line))
        .collect()
}

#[test]
fn s009_flags_unordered_maps_even_without_iteration() {
    // S003 only fires on *iteration*; in an observability structure the
    // map's mere presence is the hazard — someone will serialize it.
    let decl = "use std::collections::HashMap;\n\
                pub struct Metrics { per_stage: HashMap<u8, u64> }\n";
    assert_eq!(probe_crate(decl), ["S009:1", "S009:2"]);
    let point = "pub fn touch(m: &mut std::collections::HashSet<u64>, k: u64) {\n\
                     m.insert(k);\n\
                 }\n";
    assert_eq!(probe_crate(point), ["S009:1"]);
}

#[test]
fn s009_flags_wall_clocks_in_observability_paths() {
    let wall = "pub fn stamp() -> u128 {\n\
                    std::time::SystemTime::now().elapsed().map(|d| d.as_nanos()).unwrap_or(0)\n\
                }\n";
    let rules = probe_crate(wall);
    // probe is a sim crate, so the generic S001 stacks with S009 — the
    // finding names both contracts, like S008 does for fault paths.
    assert!(rules.contains(&"S001:2".to_string()), "{rules:?}");
    assert!(rules.contains(&"S009:2".to_string()), "{rules:?}");
}

#[test]
fn s009_passes_ordered_state_on_sim_time() {
    let good = "use std::collections::BTreeMap;\n\
                use ull_simkit::SimTime;\n\
                pub struct Spans { open: BTreeMap<u64, SimTime> }\n";
    assert!(probe_crate(good).is_empty());
}

#[test]
fn s009_scope_is_probe_and_trace_paths_only() {
    // A HashMap with point lookups is fine (for S009) outside
    // observability paths...
    let point = "use std::collections::HashMap;\n\
                 pub fn touch(m: &mut HashMap<u64, u64>, k: u64) { m.insert(k, 1); }\n";
    assert!(check_source("workload", "crates/workload/src/lib.rs", point).is_empty());
    // ...but trace/probe-named modules in other crates are in scope,
    assert_eq!(
        check_source("workload", "crates/workload/src/trace.rs", point)
            .iter()
            .map(|f| f.rule)
            .collect::<Vec<_>>(),
        ["S009", "S009"]
    );
    assert_eq!(
        check_source("stack", "crates/stack/src/host_probe.rs", point)
            .iter()
            .map(|f| f.rule)
            .collect::<Vec<_>>(),
        ["S009", "S009"]
    );
    // ...as is every file of the ull-probe crate.
    assert_eq!(
        check_source("probe", "crates/probe/src/capture.rs", point)
            .iter()
            .map(|f| f.rule)
            .collect::<Vec<_>>(),
        ["S009", "S009"]
    );
}

#[test]
fn s009_probe_crate_is_panic_free_and_honours_allows() {
    // Adding probe to the panic-free set means S006 applies to its
    // library code...
    let uw = "pub fn f(x: Option<u8>) -> u8 { x.unwrap() }\n";
    assert_eq!(probe_crate(uw), ["S006:1"]);
    // ...and S009 yields to a justified allow like every rule.
    let allowed = "// simlint: allow(S009): doc example showing what NOT to do\n\
                   pub type Bad = std::collections::HashMap<u64, u64>;\n";
    assert!(probe_crate(allowed).is_empty());
}

// ------------------------------------------------------------------ S010

#[test]
fn s010_flags_string_allocation_on_the_hot_path() {
    // `format!` / `.to_string()` in per-I/O code malloc on every request —
    // exactly the software overhead the paper says dominates ULL latency.
    let bad = "pub fn tag(op: u8, lba: u64) -> String {\n\
                   format!(\"{op}@{lba}\")\n\
               }\n";
    assert_eq!(sim(bad), ["S010:2"]);
    let owned = "pub fn name(kind: &str) -> String {\n\
                     kind.to_string()\n\
                 }\n";
    assert_eq!(sim(owned), ["S010:2"]);
    let from = "pub fn label() -> String { String::from(\"read\") }\n";
    assert_eq!(sim(from), ["S010:1"]);
}

#[test]
fn s010_passes_static_strs_and_labels() {
    let good = "use ull_simkit::Label;\n\
                pub fn kind(write: bool) -> &'static str {\n\
                    if write { \"write\" } else { \"read\" }\n\
                }\n\
                pub fn label() -> Label { Label::from(\"read\") }\n";
    assert!(sim(good).is_empty());
}

#[test]
fn s010_scope_is_the_per_io_crates_and_engine_loops() {
    let alloc = "pub fn tag(x: u64) -> String { format!(\"{x}\") }\n";
    // In scope: flash, ssd, nvme I/O paths, stack, and the workload
    // engine loops...
    for (krate, path) in [
        ("flash", "crates/flash/src/chip.rs"),
        ("stack", "crates/stack/src/host.rs"),
        ("nvme", "crates/nvme/src/queue.rs"),
        ("workload", "crates/workload/src/runner.rs"),
    ] {
        assert_eq!(
            check_source(krate, path, alloc)
                .iter()
                .map(|f| f.rule)
                .collect::<Vec<_>>(),
            ["S010"],
            "{krate}/{path} must be in S010 scope"
        );
    }
    // ...but not admin commands (issued once per run, not per I/O), the
    // workload spec builders, or the reporting/driver crates.
    assert!(check_source("nvme", "crates/nvme/src/admin.rs", alloc).is_empty());
    assert!(check_source("workload", "crates/workload/src/spec.rs", alloc).is_empty());
    assert!(check_source("core", "crates/core/src/engine.rs", alloc).is_empty());
}

#[test]
fn s010_exempts_tests_and_honours_allows() {
    let test_only = "#[cfg(test)]\n\
                     mod tests {\n\
                         #[test]\n\
                         fn t() { let s = format!(\"{}\", 1); assert_eq!(s, \"1\"); }\n\
                     }\n";
    assert!(sim(test_only).is_empty());
    let allowed = "pub fn explain(code: u8) -> String {\n\
                       // simlint: allow(S010): error path — runs once per failed run, never per I/O\n\
                       format!(\"status {code}\")\n\
                   }\n";
    assert!(sim(allowed).is_empty());
}

// --------------------------------------------------- exec S005 carve-out

#[test]
fn s005_is_carved_out_for_the_exec_worker_pool() {
    // ull-exec is the sanctioned host-parallel sweep driver: Mutex and
    // scoped threads are its implementation, so S005 does not apply...
    let pool = "use std::sync::Mutex;\n\
                pub fn run(tasks: Vec<Mutex<u64>>) {}\n";
    assert!(check_source("exec", "crates/exec/src/lib.rs", pool).is_empty());
    // ...but the purity rules still do: exec must not read wall clocks,
    // roll ambient RNG, or accumulate floats.
    let wall = "pub fn t0() -> std::time::Instant { std::time::Instant::now() }\n";
    assert_eq!(
        check_source("exec", "crates/exec/src/lib.rs", wall)[0].rule,
        "S001"
    );
    let acc = "pub fn sum(xs: &[f64]) -> f64 {\n\
                   let mut s = 0.0;\n\
                   for x in xs { s += x; }\n\
                   s\n\
               }\n";
    assert_eq!(
        check_source("exec", "crates/exec/src/lib.rs", acc)[0].rule,
        "S007"
    );
}

// ------------------------------------------------------- escape hatches

#[test]
fn allow_directive_suppresses_on_same_and_next_line() {
    let trailing = "pub fn f(x: Option<u8>) -> u8 {\n\
                        x.unwrap() // simlint: allow(S006): checked by caller\n\
                    }\n";
    assert!(sim(trailing).is_empty());
    let preceding = "pub fn f(x: Option<u8>) -> u8 {\n\
                         // simlint: allow(S006): checked by caller\n\
                         x.unwrap()\n\
                     }\n";
    assert!(sim(preceding).is_empty());
}

#[test]
fn allow_directive_is_rule_specific_and_line_local() {
    // An S006 allow does not silence an S002 finding on the same line...
    let wrong_rule = "pub fn f() -> u64 { thread_rng().gen() } // simlint: allow(S006): nope\n";
    assert_eq!(sim(wrong_rule), ["S002:1"]);
    // ...and does not leak past the following line.
    let far = "// simlint: allow(S006): only lines 1-2\n\
               pub fn a(x: Option<u8>) -> u8 { x.unwrap() }\n\
               pub fn b(x: Option<u8>) -> u8 { x.unwrap() }\n";
    assert_eq!(sim(far), ["S006:3"]);
}

#[test]
fn allow_file_directive_suppresses_the_whole_file() {
    let src = "// simlint: allow-file(S006): FFI shim, panics convert to aborts deliberately\n\
               pub fn a(x: Option<u8>) -> u8 { x.unwrap() }\n\
               pub fn b(x: Option<u8>) -> u8 { x.expect(\"b\") }\n";
    assert!(sim(src).is_empty());
}

// ------------------------------------------------ S003 (type resolution)

#[test]
fn s003_follows_type_aliases_and_fn_boundaries() {
    // The exact ROADMAP false-negative: a HashMap that travels through a
    // type alias and a function boundary before being iterated. The old
    // lexical matcher saw `f.iter()` with no HashMap anywhere near it.
    let bad = "use std::collections::HashMap;\n\
               pub type Frontier = HashMap<u64, u64>;\n\
               fn build() -> Frontier { Frontier::new() }\n\
               pub fn drain() -> u64 {\n\
                   let f = build();\n\
                   let mut s = 0;\n\
                   for (_, v) in f.iter() { s += v; }\n\
                   s\n\
               }\n";
    assert_eq!(sim(bad), ["S003:7"]);
}

#[test]
fn s003_flags_tainted_params_and_direct_call_results() {
    // A parameter whose type resolves to HashSet through an alias...
    let param = "use std::collections::HashSet;\n\
                 pub type Seen = HashSet<u64>;\n\
                 pub fn count(seen: &Seen) -> usize {\n\
                     seen.iter().count()\n\
                 }\n";
    assert_eq!(sim(param), ["S003:4"]);
    // ...and iterating a tainted call result without ever binding it.
    let direct = "use std::collections::HashMap;\n\
                  pub type Frontier = HashMap<u64, u64>;\n\
                  fn build() -> Frontier { Frontier::new() }\n\
                  pub fn sum() -> u64 { build().values().sum() }\n";
    assert_eq!(sim(direct), ["S003:4"]);
}

#[test]
fn s003_resolution_crosses_file_boundaries() {
    // The alias (and its rename) live in types.rs; the iteration lives in
    // engine.rs. Only the crate-level pass can connect them.
    let types = "use std::collections::HashMap as FastMap;\n\
                 pub type Frontier = FastMap<u64, u64>;\n";
    let engine = "use crate::types::Frontier;\n\
                  pub fn hottest(open: &Frontier) -> u64 {\n\
                      open.keys().copied().max().unwrap_or(0)\n\
                  }\n";
    let findings = check_crate(
        "ssd",
        &[
            ("crates/ssd/src/types.rs".to_string(), types.to_string()),
            ("crates/ssd/src/engine.rs".to_string(), engine.to_string()),
        ],
    );
    let rules: Vec<String> = findings
        .iter()
        .map(|f| format!("{}:{}:{}", f.path, f.rule, f.line))
        .collect();
    assert_eq!(rules, ["crates/ssd/src/engine.rs:S003:3"]);
}

#[test]
fn s003_passes_aliases_of_ordered_maps() {
    // The same shape over a BTreeMap must stay silent: the taint comes
    // from the resolved base type, not from the alias indirection.
    let good = "use std::collections::BTreeMap;\n\
                pub type Frontier = BTreeMap<u64, u64>;\n\
                fn build() -> Frontier { Frontier::new() }\n\
                pub fn drain() -> u64 {\n\
                    let f = build();\n\
                    f.values().sum()\n\
                }\n";
    assert!(sim(good).is_empty());
}

// ------------------------------------------------------------------ S000

#[test]
fn s000_rejects_unknown_rule_codes() {
    let typo = "// simlint: allow(S099): suppressing a rule that does not exist\n\
                pub fn f() {}\n";
    let f = check_source("ssd", "crates/ssd/src/fixture.rs", typo);
    assert_eq!(f.len(), 1);
    assert_eq!((f[0].rule, f[0].line), ("S000", 1));
    assert!(f[0].message.contains("S099"), "{}", f[0].message);
    // A known code on the same directive does not excuse the unknown one.
    let mixed = "pub fn f(x: Option<u8>) -> u8 {\n\
                     // simlint: allow(S006, S099): first code is real\n\
                     x.unwrap()\n\
                 }\n";
    assert_eq!(sim(mixed), ["S000:2"]);
}

#[test]
fn s000_rejects_empty_justifications() {
    let empty = "pub fn read(p: *const u64) -> u64 {\n\
                     // simlint: justify()\n\
                     unsafe { *p }\n\
                 }\n";
    let rules = sim(empty);
    assert!(rules.contains(&"S000:2".to_string()), "{rules:?}");
}

#[test]
fn s000_accepts_well_formed_directives_and_prose_mentions() {
    let good = "pub fn f(x: Option<u8>) -> u8 {\n\
                    // simlint: allow(S006): checked by caller\n\
                    x.unwrap()\n\
                }\n";
    assert!(sim(good).is_empty());
    // Documentation *about* directives (backtick-quoted) is prose, not a
    // directive: the analyzer's own docs say `// simlint: allow(SNNN)`.
    let prose = "//! Escape hatch: `// simlint: allow(SNNN): <why>` on the line.\n\
                 pub fn f() {}\n";
    assert!(sim(prose).is_empty());
}

// ------------------------------------------------------------------ S011

#[test]
fn s011_flags_interior_mutability_in_sim_crates() {
    let cell = "use std::cell::RefCell;\n\
                pub struct Chip { credit: RefCell<u64> }\n";
    assert_eq!(sim(cell), ["S011:1", "S011:2"]);
    assert_eq!(sim("static mut LAST: u64 = 0;\n"), ["S011:1"]);
    let tls = "thread_local! {\n\
                   static SCRATCH: Vec<u8> = Vec::new();\n\
               }\n";
    assert_eq!(sim(tls), ["S011:1"]);
}

#[test]
fn s011_sees_through_type_aliases() {
    // Line 1 names RefCell literally (token pass); line 2 only mentions
    // the alias — the resolution pass has to connect it.
    let bad = "pub type Shared = std::cell::RefCell<u64>;\n\
               pub struct Chip { credit: Shared }\n";
    let rules = sim(bad);
    assert!(rules.contains(&"S011:1".to_string()), "{rules:?}");
    assert!(rules.contains(&"S011:2".to_string()), "{rules:?}");
}

#[test]
fn s011_passes_owned_state_and_the_exec_driver() {
    let good = "use std::collections::BTreeMap;\n\
                pub struct Chip { credit: u64, zones: BTreeMap<u64, u64> }\n";
    assert!(sim(good).is_empty());
    // ull-exec is the sanctioned host-parallel sweep driver: its atomics
    // and locks are the one allowed home for shared mutable state.
    let pool = "use std::sync::atomic::AtomicUsize;\n\
                static NEXT: AtomicUsize = AtomicUsize::new(0);\n";
    assert!(check_source("exec", "crates/exec/src/lib.rs", pool).is_empty());
}

#[test]
fn s011_flags_shared_shard_channels_outside_exec() {
    // A cross-shard outbox guarded by a lock looks harmless — until two
    // shards drain it in wall-clock order. Channel state in sim crates
    // must be owned per shard and exchanged at the window barrier
    // (docs/SHARDING.md); only the exec driver may hold shared state.
    // (a lock is both a blocking primitive — S005 — and shared
    // mutability — S011; both fire on both lines)
    let bad = "use std::sync::Mutex;\n\
               pub struct ShardOutbox { pending: Mutex<Vec<u64>> }\n";
    assert_eq!(sim(bad), ["S005:1", "S011:1", "S005:2", "S011:2"]);
    // The same channel laundered through an alias is still caught.
    let aliased = "pub type Channel = std::sync::Mutex<Vec<u64>>;\n\
                   pub struct ShardOutbox { pending: Channel }\n";
    let rules = sim(aliased);
    assert!(rules.contains(&"S011:2".to_string()), "{rules:?}");
    // An owned outbox drained at the barrier is the sanctioned shape.
    let good = "pub struct ShardOutbox { pending: Vec<u64> }\n";
    assert!(sim(good).is_empty());
}

// ------------------------------------------------------------------ S012

#[test]
fn s012_flags_address_identity_ordering_and_hashing() {
    let eq = "pub fn same(a: &u64, b: &u64) -> bool {\n\
                  std::ptr::eq(a, b)\n\
              }\n";
    assert_eq!(sim(eq), ["S012:2"]);
    let cast = "pub fn key(x: &u64) -> usize { x as *const u64 as usize }\n";
    assert_eq!(sim(cast), ["S012:1"]);
}

#[test]
fn s012_passes_value_semantics_and_still_applies_to_exec() {
    let good = "pub fn same(a: &u64, b: &u64) -> bool { a == b }\n";
    assert!(sim(good).is_empty());
    // exec is carved out of S005/S011, but NOT of the identity rule:
    // shard-merge order keyed on addresses differs run to run.
    let bad = "pub fn key(x: &u64) -> usize { x as *const u64 as usize }\n";
    let f = check_source("exec", "crates/exec/src/lib.rs", bad);
    assert_eq!(f.len(), 1);
    assert_eq!(f[0].rule, "S012");
}

// ------------------------------------------------------------------ S013

#[test]
fn s013_flags_unjustified_unsafe() {
    let bad = "pub fn read(p: *const u64) -> u64 {\n\
                   unsafe { *p }\n\
               }\n";
    assert_eq!(sim(bad), ["S013:2"]);
}

#[test]
fn s013_honours_justify_at_line_and_file_scope() {
    let line = "pub fn read(p: *const u64) -> u64 {\n\
                    // simlint: justify(caller guarantees p outlives the shard)\n\
                    unsafe { *p }\n\
                }\n";
    assert!(sim(line).is_empty());
    let file = "// simlint: justify-file(FFI shim; every pointer comes from Box::into_raw)\n\
                pub fn read(p: *const u64) -> u64 { unsafe { *p } }\n\
                pub fn write(p: *mut u64, v: u64) { unsafe { *p = v } }\n";
    assert!(sim(file).is_empty());
}

#[test]
fn s013_justify_is_line_local_and_does_not_bleed_into_allow() {
    // A justify covers its own line and the next — not the whole fn.
    let far = "// simlint: justify(only covers lines 1-2)\n\
               pub fn a(p: *const u64) -> u64 { unsafe { *p } }\n\
               pub fn b(p: *const u64) -> u64 { unsafe { *p } }\n";
    assert_eq!(sim(far), ["S013:3"]);
    // justify is the *unsafe* contract: it does not silence other rules.
    let wrong = "// simlint: justify(not an allow)\n\
                 pub fn f(x: Option<u8>) -> u8 { x.unwrap() }\n";
    assert_eq!(sim(wrong), ["S006:2"]);
}

// ------------------------------------------------------------------ S014

#[test]
fn s014_flags_timestamped_events_without_total_order() {
    let bad = "use ull_simkit::SimTime;\n\
               #[derive(Debug, Clone, PartialEq, Eq)]\n\
               pub struct CompletionEvent {\n\
                   pub at: SimTime,\n\
                   pub lba: u64,\n\
               }\n";
    assert_eq!(sim(bad), ["S014:3"]);
}

#[test]
fn s014_resolves_sim_time_through_renames_and_aliases() {
    let bad = "use ull_simkit::SimTime as Stamp;\n\
               pub type When = Stamp;\n\
               pub struct ArrivalEvent { pub at: When }\n";
    assert_eq!(sim(bad), ["S014:3"]);
}

#[test]
fn s014_passes_ordered_or_sequenced_events() {
    let derived = "use ull_simkit::SimTime;\n\
                   #[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]\n\
                   pub struct CompletionEvent { pub at: SimTime, pub lba: u64 }\n";
    assert!(sim(derived).is_empty());
    let seq = "use ull_simkit::SimTime;\n\
               pub struct SubmitEvent { pub at: SimTime, pub seq: u64 }\n";
    assert!(sim(seq).is_empty());
    let manual = "use ull_simkit::SimTime;\n\
                  pub struct DoneEvent { pub at: SimTime }\n\
                  impl Ord for DoneEvent {}\n";
    assert!(sim(manual).is_empty());
}

#[test]
fn s014_scope_is_pub_event_structs_with_timestamps() {
    // Private events are an implementation detail of one module...
    let private = "use ull_simkit::SimTime;\n\
                   struct TickEvent { at: SimTime }\n";
    assert!(sim(private).is_empty());
    // ...events without a SimTime have no tie to break...
    let no_time = "pub struct ResetEvent { pub lba: u64 }\n";
    assert!(sim(no_time).is_empty());
    // ...and non-Event types are out of the naming contract.
    let not_event = "use ull_simkit::SimTime;\n\
                     pub struct Deadline { pub at: SimTime }\n";
    assert!(sim(not_event).is_empty());
}

#[test]
fn s014_polices_cross_shard_wire_events() {
    // The inter-shard wire format: two same-instant events from
    // different shards merge in whatever order the barrier drained them
    // unless the struct itself carries a total order. This is the exact
    // hazard the `(time, shard, seq)` merge key exists for
    // (docs/SHARDING.md).
    let bad = "use ull_simkit::SimTime;\n\
               pub struct ShardHopEvent {\n\
                   pub at: SimTime,\n\
                   pub src: u32,\n\
                   pub payload: u64,\n\
               }\n";
    assert_eq!(sim(bad), ["S014:2"]);
    // The shipped shape: a per-source emission counter next to the
    // timestamp (`ShardEvent` in ull-simkit carries exactly this).
    let good = "use ull_simkit::SimTime;\n\
                pub struct ShardHopEvent {\n\
                    pub at: SimTime,\n\
                    pub src: u32,\n\
                    pub seq: u64,\n\
                    pub payload: u64,\n\
                }\n";
    assert!(sim(good).is_empty());
}

// ------------------------------------------------------------- reporting

#[test]
fn findings_carry_location_and_ordering() {
    let src = "pub fn f(x: Option<u8>) -> u8 {\n\
                   let t = std::time::Instant::now();\n\
                   x.unwrap()\n\
               }\n";
    let f = check_source("stack", "crates/stack/src/fixture.rs", src);
    assert_eq!(f.len(), 2);
    assert_eq!((f[0].rule, f[0].line), ("S001", 2));
    assert_eq!((f[1].rule, f[1].line), ("S006", 3));
    assert_eq!(f[0].path, "crates/stack/src/fixture.rs");
    assert!(f[0].snippet.contains("Instant::now"));
}

// ----------------------------------------------------------- ull-nexus

/// Convenience: analyze `src` as a file of the `nexus` sim crate.
fn nexus(src: &str) -> Vec<String> {
    check_source("nexus", "crates/nexus/src/fixture.rs", src)
        .into_iter()
        .map(|f| format!("{}:{}", f.rule, f.line))
        .collect()
}

#[test]
fn nexus_wire_events_must_carry_a_sequence() {
    // A child completion keyed on time alone would merge in shard order,
    // not send order — exactly the hazard S014 exists for. The nexus's
    // real `ChildDoneEvent` carries `seq`, and the frontend's replica
    // convergence depends on it (arrival order == send order).
    let bad = "use ull_simkit::SimTime;\n\
               #[derive(Debug, Clone, PartialEq, Eq)]\n\
               pub struct ChildAckEvent {\n\
                   pub done_at: SimTime,\n\
                   pub digest: u64,\n\
               }\n";
    assert_eq!(nexus(bad), ["S014:3"]);
    let good = "use ull_simkit::SimTime;\n\
                #[derive(Debug, Clone, PartialEq, Eq)]\n\
                pub struct ChildAckEvent {\n\
                    pub done_at: SimTime,\n\
                    pub seq: u64,\n\
                    pub digest: u64,\n\
                }\n";
    assert!(nexus(good).is_empty());
}

#[test]
fn nexus_dirty_log_must_be_owned_state() {
    // A RefCell dirty log shared between the scan and the write path
    // would make range state depend on borrow timing; the shipped
    // `RangeLog` is a plain owned field of the frontend actor.
    let bad = "use std::cell::RefCell;\n\
               pub struct DirtyLog { ranges: RefCell<Vec<bool>> }\n";
    assert_eq!(nexus(bad), ["S011:1", "S011:2"]);
    let good = "pub struct DirtyLog { ranges: Vec<bool>, clean: u32 }\n";
    assert!(nexus(good).is_empty());
}

#[test]
fn real_nexus_sources_are_clean() {
    // The two files that define the wire protocol and the dirty log —
    // the shapes the fixtures above guard in miniature.
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .unwrap()
        .parent()
        .unwrap();
    for file in ["event.rs", "rebuild.rs"] {
        let path = format!("crates/nexus/src/{file}");
        let src = std::fs::read_to_string(root.join(&path)).expect("nexus source exists");
        let findings = check_source("nexus", &path, &src);
        assert!(findings.is_empty(), "{path}: {findings:?}");
    }
}
