//! blk-mq structures: driver tag sets and request splitting.
//!
//! The multi-queue block layer (§II-B1) bounds the number of in-flight
//! requests with a per-hardware-queue *tag set* and splits bios larger than
//! the device's `max_hw_sectors` into multiple requests. Both behaviours
//! matter here: tags bound queue depth exactly the way `blk-mq` does, and
//! splitting is why a 1 MB request becomes eight 128 KB NVMe commands whose
//! transfers pipeline through the device.

/// A driver tag, identifying one in-flight request on a hardware queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Tag(pub u16);

/// A bounded allocator of driver tags.
///
/// # Examples
///
/// ```
/// use ull_stack::TagSet;
///
/// let mut tags = TagSet::new(2);
/// let a = tags.acquire().unwrap();
/// let _b = tags.acquire().unwrap();
/// assert!(tags.acquire().is_none()); // queue full: submitter must wait
/// tags.release(a);
/// assert!(tags.acquire().is_some());
/// ```
#[derive(Debug, Clone)]
pub struct TagSet {
    free: Vec<u16>,
    total: u16,
}

impl TagSet {
    /// Creates a set of `n` tags.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn new(n: u16) -> Self {
        assert!(n > 0, "a tag set needs at least one tag");
        TagSet {
            free: (0..n).rev().collect(),
            total: n,
        }
    }

    /// Acquires a tag, or `None` when all are in flight.
    pub fn acquire(&mut self) -> Option<Tag> {
        self.free.pop().map(Tag)
    }

    /// Releases a previously acquired tag.
    ///
    /// # Panics
    ///
    /// Panics in debug builds on double release.
    pub fn release(&mut self, tag: Tag) {
        debug_assert!(!self.free.contains(&tag.0), "double tag release");
        debug_assert!(tag.0 < self.total, "foreign tag");
        self.free.push(tag.0);
    }

    /// Tags currently in flight.
    pub fn in_flight(&self) -> u16 {
        self.total - self.free.len() as u16
    }

    /// Total tags.
    pub fn total(&self) -> u16 {
        self.total
    }
}

/// Splits `(offset, len)` at `max_bytes` boundaries, as the block layer
/// does for requests beyond `max_hw_sectors`.
///
/// # Examples
///
/// ```
/// use ull_stack::split_request;
///
/// let parts = split_request(0, 1 << 20, 128 << 10);
/// assert_eq!(parts.len(), 8);
/// assert!(parts.iter().all(|&(_, l)| l == 128 << 10));
/// ```
///
/// # Panics
///
/// Panics if `len` or `max_bytes` is zero.
pub fn split_request(offset: u64, len: u32, max_bytes: u32) -> Vec<(u64, u32)> {
    let mut parts = Vec::with_capacity(len.div_ceil(max_bytes.max(1)) as usize);
    split_request_into(offset, len, max_bytes, &mut parts);
    parts
}

/// Allocation-free variant of [`split_request`]: appends the parts to
/// `parts`, which the hot path reuses across requests (cleared by the
/// caller).
///
/// # Panics
///
/// Panics if `len` or `max_bytes` is zero.
pub fn split_request_into(offset: u64, len: u32, max_bytes: u32, parts: &mut Vec<(u64, u32)>) {
    assert!(len > 0 && max_bytes > 0, "degenerate request split");
    let mut off = offset;
    let mut remaining = len;
    while remaining > 0 {
        let chunk = remaining.min(max_bytes);
        parts.push((off, chunk));
        off += chunk as u64;
        remaining -= chunk;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tags_are_exhaustible_and_recyclable() {
        let mut t = TagSet::new(3);
        let tags: Vec<Tag> = (0..3).map(|_| t.acquire().unwrap()).collect();
        assert_eq!(t.in_flight(), 3);
        assert!(t.acquire().is_none());
        for tag in tags {
            t.release(tag);
        }
        assert_eq!(t.in_flight(), 0);
        assert_eq!(t.total(), 3);
    }

    #[test]
    fn tags_are_unique_while_held() {
        let mut t = TagSet::new(16);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..16 {
            assert!(seen.insert(t.acquire().unwrap()));
        }
    }

    #[test]
    fn small_requests_do_not_split() {
        assert_eq!(split_request(4096, 4096, 128 << 10), vec![(4096, 4096)]);
    }

    #[test]
    fn splits_cover_range_exactly() {
        let parts = split_request(1 << 20, 300 << 10, 128 << 10);
        assert_eq!(parts.len(), 3);
        let total: u32 = parts.iter().map(|&(_, l)| l).sum();
        assert_eq!(total, 300 << 10);
        assert_eq!(parts[0], (1 << 20, 128 << 10));
        assert_eq!(parts[2].1, 44 << 10);
        // Contiguous.
        for w in parts.windows(2) {
            assert_eq!(w[0].0 + w[0].1 as u64, w[1].0);
        }
    }

    #[test]
    #[should_panic(expected = "degenerate")]
    fn zero_len_split_panics() {
        split_request(0, 0, 4096);
    }
}
