//! The host system: one CPU core driving one NVMe device through a chosen
//! software path.
//!
//! [`Host`] composes the submission path (kernel stack or SPDK), the
//! completion method (interrupt / polled / hybrid-polled / SPDK's reactor
//! polling) and the accounting ledger. Synchronous I/O ([`Host::io_sync`])
//! models fio's `pvsync2` engine; the async pair
//! [`Host::submit_async`]/[`Host::finish_async`] models `libaio` and the
//! SPDK fio plugin, driven by the closed-loop engine in `ull-workload`.

use ull_nvme::{NvmeCommand, NvmeController};
use ull_simkit::{SimDuration, SimTime, SplitMix64};
use ull_ssd::DeviceCompletion;

use crate::blkmq::{split_request, Tag, TagSet};
use crate::costs::{Segment, SoftwareCosts};
use crate::cpu::{CpuAccounting, Mode, StackFn};

/// Which software path I/O takes to the device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IoPath {
    /// Kernel stack, MSI interrupt completion (the conventional path).
    KernelInterrupt,
    /// Kernel stack, polled-mode completion (Linux 4.4's
    /// `queue_io_poll`, fio `--hipri`).
    KernelPolled,
    /// Kernel stack, hybrid polling (Linux 4.10+: sleep half the tracked
    /// mean, then poll).
    KernelHybrid,
    /// SPDK: userspace driver, reactor polling, no kernel involvement.
    Spdk,
}

impl IoPath {
    /// Short label used in reports.
    pub fn label(&self) -> &'static str {
        match self {
            IoPath::KernelInterrupt => "interrupt",
            IoPath::KernelPolled => "poll",
            IoPath::KernelHybrid => "hybrid",
            IoPath::Spdk => "spdk",
        }
    }
}

/// Direction of an I/O.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IoOp {
    /// Read from the device.
    Read,
    /// Write to the device.
    Write,
}

/// Outcome of one I/O as the application observes it.
#[derive(Debug, Clone, Copy)]
pub struct IoResult {
    /// When the application issued the I/O.
    pub submitted: SimTime,
    /// When control returned to the application.
    pub user_visible: SimTime,
    /// `user_visible - submitted`.
    pub latency: SimDuration,
    /// Device-side detail.
    pub device: DeviceCompletion,
}

#[derive(Debug, Clone)]
struct Outstanding {
    submitted: SimTime,
    nparts: usize,
    tags: Vec<Tag>,
}

/// One host core + software stack + NVMe device.
///
/// # Examples
///
/// ```
/// use ull_nvme::NvmeController;
/// use ull_simkit::SimTime;
/// use ull_ssd::{presets, Ssd};
/// use ull_stack::{Host, IoOp, IoPath, SoftwareCosts};
///
/// let ctrl = NvmeController::new(Ssd::new(presets::ull_800g())?, 1, 1024);
/// let mut host = Host::new(ctrl, SoftwareCosts::linux_4_14(), IoPath::KernelPolled);
/// let r = host.io_sync(IoOp::Read, 0, 4096, SimTime::ZERO);
/// assert!(r.latency.as_micros_f64() < 25.0);
/// # Ok::<(), ull_ssd::ConfigError>(())
/// ```
#[derive(Debug)]
pub struct Host {
    ctrl: NvmeController,
    cpu: CpuAccounting,
    costs: SoftwareCosts,
    path: IoPath,
    rng: SplitMix64,
    /// EWMA of recent completion latencies, integer nanoseconds (hybrid
    /// polling's sleep source). Kept in integer arithmetic so the control
    /// loop cannot accumulate float drift across runs.
    hybrid_mean_ns: u64,
    next_cid: u16,
    outstanding: std::collections::BTreeMap<u16, Outstanding>,
    /// Driver tag set bounding in-flight NVMe commands (blk-mq semantics).
    tags: TagSet,
    /// Requests beyond this split into multiple commands
    /// (`max_hw_sectors` / controller MDTS).
    max_transfer: u32,
    /// Wall-clock high-water mark of activity on this host.
    horizon: SimTime,
}

impl Host {
    /// Frequency of the testbed CPU (4.6 GHz i7-8700, `performance`
    /// governor).
    pub const CPU_GHZ: f64 = 4.6;

    /// Driver tags per hardware queue (mirrors the NVMe queue size used
    /// throughout the study).
    pub const TAGS: u16 = 1024;

    /// Maximum bytes per NVMe command before the block layer (or SPDK's
    /// MDTS handling) splits a request.
    pub const MAX_TRANSFER: u32 = 128 << 10;

    /// Creates a host over `ctrl` using `costs` and `path`.
    pub fn new(ctrl: NvmeController, costs: SoftwareCosts, path: IoPath) -> Self {
        Host {
            ctrl,
            cpu: CpuAccounting::new(Self::CPU_GHZ),
            costs,
            path,
            rng: SplitMix64::new(0x57AC_u64),
            hybrid_mean_ns: 10_000,
            next_cid: 0,
            outstanding: std::collections::BTreeMap::new(),
            tags: TagSet::new(Self::TAGS),
            max_transfer: Self::MAX_TRANSFER,
            horizon: SimTime::ZERO,
        }
    }

    /// The configured I/O path.
    pub fn path(&self) -> IoPath {
        self.path
    }

    /// Switches the I/O path (between experiment phases).
    pub fn set_path(&mut self, path: IoPath) {
        self.path = path;
    }

    /// The CPU accounting ledger.
    pub fn cpu(&self) -> &CpuAccounting {
        &self.cpu
    }

    /// The controller (device metrics, power).
    pub fn controller(&self) -> &NvmeController {
        &self.ctrl
    }

    /// Mutable controller access (preconditioning).
    pub fn controller_mut(&mut self) -> &mut NvmeController {
        &mut self.ctrl
    }

    /// The cost table in use.
    pub fn costs(&self) -> &SoftwareCosts {
        &self.costs
    }

    /// Latest instant any activity on this host has reached.
    pub fn horizon(&self) -> SimTime {
        self.horizon
    }

    fn charge(&mut self, mode: Mode, f: StackFn, seg: Segment) {
        self.cpu.charge(mode, f, seg.busy);
        self.cpu.mem(f, seg.loads, seg.stores);
    }

    /// Charges the submission path, splits at `max_hw_sectors`, allocates
    /// driver tags and rings the doorbell. Returns the doorbell instant,
    /// the per-part cids and the tags held until completion.
    ///
    /// # Panics
    ///
    /// Panics if the driver tag set is exhausted (the engine exceeded the
    /// queue-depth bound).
    fn submit_path(
        &mut self,
        op: IoOp,
        offset: u64,
        len: u32,
        at: SimTime,
    ) -> (SimTime, Vec<u16>, Vec<Tag>) {
        self.charge(Mode::User, StackFn::FioEngine, self.costs.user_per_io);
        let parts = split_request(offset, len, self.max_transfer);
        let mut t = at;
        match self.path {
            IoPath::Spdk => {
                // The SPDK submit call runs per command (the driver splits
                // at the controller's MDTS itself).
                for _ in &parts {
                    self.charge(Mode::User, StackFn::SpdkSubmit, self.costs.spdk_submit);
                    t += self.costs.spdk_submit.latency;
                }
            }
            _ => {
                // One syscall + VFS traversal; blk-mq request setup and
                // driver SQE build run once per split part.
                self.charge(Mode::Kernel, StackFn::Syscall, self.costs.syscall);
                self.charge(Mode::Kernel, StackFn::Vfs, self.costs.vfs);
                t += self.costs.syscall.latency + self.costs.vfs.latency;
                for _ in &parts {
                    self.charge(Mode::Kernel, StackFn::BlockLayer, self.costs.block_layer);
                    self.charge(
                        Mode::Kernel,
                        StackFn::NvmeDriverSubmit,
                        self.costs.driver_submit,
                    );
                    t += self.costs.block_layer.latency + self.costs.driver_submit.latency;
                }
            }
        }
        let mut cids = Vec::with_capacity(parts.len());
        let mut tags = Vec::with_capacity(parts.len());
        for (part_off, part_len) in parts {
            let tag = self
                .tags
                .acquire()
                // simlint: allow(S006): TAGS (1024) equals the NVMe queue size; every submit holds at most iodepth <= 1024 tags, and release_tags runs on every completion path
                .expect("driver tag set exhausted: engine exceeded queue-depth bound");
            tags.push(tag);
            let cid = self.next_cid;
            self.next_cid = self.next_cid.wrapping_add(1);
            let cmd = match op {
                IoOp::Read => NvmeCommand::read(cid, part_off, part_len),
                IoOp::Write => NvmeCommand::write(cid, part_off, part_len),
            };
            self.ctrl
                .submit(0, cmd)
                // simlint: allow(S006): ring size >= TAGS and a tag was acquired above, so the SQ cannot be full here
                .expect("engine keeps queue depth below ring size");
            cids.push(cid);
        }
        self.ctrl.ring_sq_doorbell(0, t);
        (t, cids, tags)
    }

    /// Collects and merges the per-part device completions.
    fn collect_parts(&mut self, cids: &[u16]) -> DeviceCompletion {
        let mut agg: Option<DeviceCompletion> = None;
        for &cid in cids {
            // simlint: allow(S006): every cid in `cids` was submitted by submit_path immediately before this call and details are taken exactly once
            let d = self.ctrl.take_detail(0, cid).expect("command was started");
            agg = Some(match agg {
                None => d,
                Some(a) => DeviceCompletion {
                    done: a.done.max(d.done),
                    dram_hit: a.dram_hit && d.dram_hit,
                    suspended: a.suspended || d.suspended,
                    gc_stalled: a.gc_stalled || d.gc_stalled,
                },
            });
        }
        // simlint: allow(S006): split_request returns at least one part, so the loop above always runs
        agg.expect("at least one part")
    }

    fn release_tags(&mut self, tags: &[Tag]) {
        for &t in tags {
            self.tags.release(t);
        }
    }

    /// Spins the kernel poll loop from `from` until `done`, charging
    /// cycles and memory instructions; returns the detection instant.
    fn spin_kernel(&mut self, from: SimTime, done: SimTime) -> SimTime {
        let iter = self.costs.poll_iter_duration();
        let wait = done.saturating_since(from);
        let iters = (wait.as_nanos().div_ceil(iter.as_nanos())).max(1);
        let b = self.costs.poll_iter_blkmq;
        let n = self.costs.poll_iter_nvme;
        self.cpu
            .charge(Mode::Kernel, StackFn::BlkMqPoll, b.duration * iters);
        self.cpu
            .charge(Mode::Kernel, StackFn::NvmePoll, n.duration * iters);
        self.cpu
            .mem(StackFn::BlkMqPoll, b.loads * iters, b.stores * iters);
        self.cpu
            .mem(StackFn::NvmePoll, n.loads * iters, n.stores * iters);
        from + iter * iters
    }

    /// Spins the SPDK reactor from `from` until `done`; returns the
    /// detection instant.
    fn spin_spdk(&mut self, from: SimTime, done: SimTime) -> SimTime {
        let iter = self.costs.spdk_iter_duration();
        let wait = done.saturating_since(from);
        let iters = (wait.as_nanos().div_ceil(iter.as_nanos())).max(1);
        for (f, p) in [
            (StackFn::SpdkQpairProcess, self.costs.spdk_iter_qpair),
            (StackFn::SpdkPcieProcess, self.costs.spdk_iter_pcie),
            (StackFn::SpdkCheckEnabled, self.costs.spdk_iter_check),
        ] {
            self.cpu.charge(Mode::User, f, p.duration * iters);
            self.cpu.mem(f, p.loads * iters, p.stores * iters);
        }
        from + iter * iters
    }

    /// One synchronous I/O (fio `pvsync2`): submit, wait per the configured
    /// completion method, return to userland.
    ///
    /// # Panics
    ///
    /// Panics if the request exceeds the device capacity.
    pub fn io_sync(&mut self, op: IoOp, offset: u64, len: u32, at: SimTime) -> IoResult {
        let (t, cids, tags) = self.submit_path(op, offset, len, at);
        let nparts = cids.len();
        let device = self.collect_parts(&cids);
        let done = device.done;

        let user_visible = match self.path {
            IoPath::KernelInterrupt => {
                let irq = done + NvmeController::DEFAULT_MSI_LATENCY;
                self.charge(Mode::Kernel, StackFn::Isr, self.costs.isr);
                self.charge(Mode::Kernel, StackFn::Softirq, self.costs.softirq);
                self.charge(Mode::Kernel, StackFn::ContextSwitch, self.costs.wakeup);
                let visible = irq + self.costs.interrupt_completion_latency();
                self.consume_cqes(irq, nparts);
                visible
            }
            IoPath::KernelPolled => {
                let mut detect = self.spin_kernel(t, done);
                if self.rng.chance(self.costs.resched_prob) {
                    // Preempted while polling: the request sits completed in
                    // the CQ until the thread is rescheduled.
                    let stall = self.costs.resched_delay;
                    self.cpu.charge(
                        Mode::Kernel,
                        StackFn::ContextSwitch,
                        SimDuration::from_nanos(500),
                    );
                    detect += stall;
                }
                self.charge(Mode::Kernel, StackFn::BlkMqPoll, self.costs.poll_complete);
                self.consume_cqes(detect, nparts);
                detect + self.costs.poll_complete.latency
            }
            IoPath::KernelHybrid => {
                self.charge(Mode::Kernel, StackFn::HybridSleep, self.costs.hybrid_setup);
                let sleep = SimDuration::from_nanos(self.hybrid_mean_ns)
                    .mul_f64(self.costs.hybrid_sleep_fraction);
                let wake =
                    t + self.costs.hybrid_setup.latency + sleep + self.costs.hybrid_wake.latency;
                self.charge(Mode::Kernel, StackFn::HybridSleep, self.costs.hybrid_wake);
                // Poll resumes at wake-up; an overslept completion is
                // detected on the first iteration.
                let detect = self.spin_kernel(wake, done);
                self.charge(Mode::Kernel, StackFn::BlkMqPoll, self.costs.poll_complete);
                self.consume_cqes(detect, nparts);
                detect + self.costs.poll_complete.latency
            }
            IoPath::Spdk => {
                let detect = self.spin_spdk(t, done);
                self.charge(Mode::User, StackFn::SpdkSubmit, self.costs.spdk_complete);
                self.consume_cqes(detect, nparts);
                detect + self.costs.spdk_complete.latency
            }
        };
        self.release_tags(&tags);

        if self.path == IoPath::KernelHybrid {
            // EWMA with alpha = 0.3, in integer nanoseconds: exact and
            // reproducible (0.7*m + 0.3*s rendered as (7m + 3s) / 10).
            let sample = done.saturating_since(t).as_nanos();
            self.hybrid_mean_ns = (7 * self.hybrid_mean_ns + 3 * sample) / 10;
        }
        self.horizon = self.horizon.max(user_visible);
        IoResult {
            submitted: at,
            user_visible,
            latency: user_visible - at,
            device,
        }
    }

    fn consume_cqes(&mut self, at: SimTime, n: usize) {
        for _ in 0..n {
            let consumed = self.ctrl.poll(0, at);
            debug_assert!(
                consumed.is_some(),
                "completion must be visible at consume time"
            );
        }
    }

    /// Async submission (fio `libaio` / SPDK plugin): charges the submit
    /// path and returns `(token, merged device completion detail)`. The
    /// engine schedules [`Host::finish_async`] at the device completion
    /// instant. Requests beyond `max_hw_sectors` split into multiple NVMe
    /// commands internally; the token identifies the whole request.
    pub fn submit_async(
        &mut self,
        op: IoOp,
        offset: u64,
        len: u32,
        at: SimTime,
    ) -> (u16, DeviceCompletion) {
        let (_t, cids, tags) = self.submit_path(op, offset, len, at);
        let nparts = cids.len();
        let device = self.collect_parts(&cids);
        let token = cids[0];
        self.outstanding.insert(
            token,
            Outstanding {
                submitted: at,
                nparts,
                tags,
            },
        );
        (token, device)
    }

    /// Applies the completion path to an async I/O whose device completion
    /// is `device`, returning the application-visible result.
    ///
    /// For the kernel paths this models the libaio reap (IRQ, softirq,
    /// `io_getevents` return); for SPDK, the reactor's completion callback.
    ///
    /// # Panics
    ///
    /// Panics if `cid` was not submitted via [`Host::submit_async`].
    pub fn finish_async(&mut self, cid: u16, device: DeviceCompletion) -> IoResult {
        // simlint: allow(S006): documented contract — the fn's `# Panics` section requires cid from a prior submit_async
        let out = self.outstanding.remove(&cid).expect("cid is outstanding");
        let done = device.done;
        let nparts = out.nparts;
        let user_visible = match self.path {
            IoPath::Spdk => {
                // The reactor notices on its next iteration.
                let detect = done + self.costs.spdk_iter_duration();
                self.charge(Mode::User, StackFn::SpdkSubmit, self.costs.spdk_complete);
                detect + self.costs.spdk_complete.latency
            }
            _ => {
                let irq = done + NvmeController::DEFAULT_MSI_LATENCY;
                self.charge(Mode::Kernel, StackFn::Isr, self.costs.isr);
                self.charge(Mode::Kernel, StackFn::Softirq, self.costs.softirq);
                self.charge(Mode::Kernel, StackFn::ContextSwitch, self.costs.wakeup);
                irq + self.costs.interrupt_completion_latency()
            }
        };
        self.consume_cqes(
            user_visible.max(done + NvmeController::DEFAULT_MSI_LATENCY),
            nparts,
        );
        self.release_tags(&out.tags);
        self.horizon = self.horizon.max(user_visible);
        IoResult {
            submitted: out.submitted,
            user_visible,
            latency: user_visible - out.submitted,
            device,
        }
    }

    /// Number of async I/Os in flight.
    pub fn in_flight(&self) -> usize {
        self.outstanding.len()
    }

    /// Accounts for the SPDK reactor (or any poll loop) spinning over idle
    /// gaps: tops user-mode busy time up to `elapsed` at the reactor's
    /// iteration memory profile. Call once at the end of an SPDK run so
    /// CPU utilization reports 100% as the paper observes (fig. 20).
    pub fn account_idle_spin(&mut self, elapsed: SimDuration) {
        if self.path != IoPath::Spdk {
            return;
        }
        let busy = self.cpu.busy_total();
        if busy >= elapsed {
            return;
        }
        let gap = elapsed - busy;
        let iter = self.costs.spdk_iter_duration();
        let iters = gap.as_nanos() / iter.as_nanos().max(1);
        for (f, p) in [
            (StackFn::SpdkQpairProcess, self.costs.spdk_iter_qpair),
            (StackFn::SpdkPcieProcess, self.costs.spdk_iter_pcie),
            (StackFn::SpdkCheckEnabled, self.costs.spdk_iter_check),
        ] {
            self.cpu.charge(Mode::User, f, p.duration * iters);
            self.cpu.mem(f, p.loads * iters, p.stores * iters);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ull_ssd::{presets, Ssd};

    fn host(path: IoPath) -> Host {
        let ctrl = NvmeController::new(Ssd::new(presets::ull_800g()).unwrap(), 1, 1024);
        Host::new(ctrl, SoftwareCosts::linux_4_14(), path)
    }

    fn mean_sync_read(path: IoPath, n: u64) -> f64 {
        let mut h = host(path);
        let mut at = SimTime::ZERO;
        let mut sum = 0.0;
        for i in 0..n {
            let r = h.io_sync(IoOp::Read, (i % 1000) * 4096, 4096, at);
            sum += r.latency.as_micros_f64();
            at = r.user_visible + SimDuration::from_nanos(1_000);
        }
        sum / n as f64
    }

    #[test]
    fn polling_beats_interrupts_on_ull() {
        let int = mean_sync_read(IoPath::KernelInterrupt, 3000);
        let poll = mean_sync_read(IoPath::KernelPolled, 3000);
        // Paper fig. 10: ~16% faster reads under polling.
        let gain = (int - poll) / int;
        assert!(
            gain > 0.08 && gain < 0.35,
            "int={int:.1} poll={poll:.1} gain={gain:.2}"
        );
    }

    #[test]
    fn hybrid_sits_between_interrupt_and_poll() {
        let int = mean_sync_read(IoPath::KernelInterrupt, 3000);
        let poll = mean_sync_read(IoPath::KernelPolled, 3000);
        let hybrid = mean_sync_read(IoPath::KernelHybrid, 3000);
        assert!(hybrid < int, "hybrid={hybrid:.1} int={int:.1}");
        assert!(hybrid > poll, "hybrid={hybrid:.1} poll={poll:.1}");
    }

    #[test]
    fn spdk_is_fastest_on_ull() {
        let int = mean_sync_read(IoPath::KernelInterrupt, 3000);
        let spdk = mean_sync_read(IoPath::Spdk, 3000);
        let gain = (int - spdk) / int;
        // Paper fig. 18: ~25% on sequential reads.
        assert!(
            gain > 0.15 && gain < 0.40,
            "int={int:.1} spdk={spdk:.1} gain={gain:.2}"
        );
    }

    #[test]
    fn polled_mode_burns_the_core_in_kernel_mode() {
        let mut h = host(IoPath::KernelPolled);
        let mut at = SimTime::ZERO;
        for i in 0..2000u64 {
            let r = h.io_sync(IoOp::Read, (i % 512) * 4096, 4096, at);
            at = r.user_visible;
        }
        let elapsed = at - SimTime::ZERO;
        let kernel = h.cpu().utilization(Mode::Kernel, elapsed);
        assert!(kernel > 0.80, "kernel util {kernel:.2}");
    }

    #[test]
    fn interrupt_mode_leaves_the_core_mostly_idle() {
        let mut h = host(IoPath::KernelInterrupt);
        let mut at = SimTime::ZERO;
        for i in 0..2000u64 {
            let r = h.io_sync(IoOp::Read, (i % 512) * 4096, 4096, at);
            at = r.user_visible;
        }
        let elapsed = at - SimTime::ZERO;
        let total =
            h.cpu().utilization(Mode::Kernel, elapsed) + h.cpu().utilization(Mode::User, elapsed);
        assert!(total < 0.45, "total util {total:.2}");
    }

    #[test]
    fn polling_inflates_memory_instructions() {
        let mem = |path| {
            let mut h = host(path);
            let mut at = SimTime::ZERO;
            for i in 0..2000u64 {
                let r = h.io_sync(IoOp::Read, (i % 512) * 4096, 4096, at);
                at = r.user_visible;
            }
            h.cpu().mem_total()
        };
        let int = mem(IoPath::KernelInterrupt);
        let poll = mem(IoPath::KernelPolled);
        let spdk = mem(IoPath::Spdk);
        let load_ratio = poll.loads as f64 / int.loads as f64;
        assert!(load_ratio > 1.5, "poll/int loads {load_ratio:.2}");
        let spdk_ratio = spdk.loads as f64 / int.loads as f64;
        assert!(
            spdk_ratio > 2.0 * load_ratio,
            "spdk/int loads {spdk_ratio:.2}"
        );
    }

    #[test]
    fn async_round_trip_matches_sync_shape() {
        let mut h = host(IoPath::KernelInterrupt);
        let (cid, dev) = h.submit_async(IoOp::Read, 4096, 4096, SimTime::ZERO);
        assert_eq!(h.in_flight(), 1);
        let r = h.finish_async(cid, dev);
        assert_eq!(h.in_flight(), 0);
        assert!(r.latency.as_micros_f64() > 5.0 && r.latency.as_micros_f64() < 40.0);
    }

    #[test]
    fn large_requests_split_and_pipeline() {
        let mut h = host(IoPath::KernelInterrupt);
        let small = h.io_sync(IoOp::Read, 0, Host::MAX_TRANSFER, SimTime::ZERO);
        let at = small.user_visible + SimDuration::from_micros(100);
        let big = h.io_sync(IoOp::Read, 64 << 20, 8 * Host::MAX_TRANSFER, at);
        // Eight split commands must pipeline: well below 8x one part.
        let ratio = big.latency.as_micros_f64() / small.latency.as_micros_f64();
        assert!(
            ratio > 1.5 && ratio < 8.0,
            "split pipeline ratio {ratio:.1}"
        );
        assert_eq!(h.in_flight(), 0, "tags and outstanding drained");
    }

    #[test]
    fn async_splitting_round_trips() {
        let mut h = host(IoPath::KernelInterrupt);
        let (token, dev) = h.submit_async(IoOp::Write, 0, 1 << 20, SimTime::ZERO);
        assert_eq!(h.in_flight(), 1);
        let r = h.finish_async(token, dev);
        assert_eq!(h.in_flight(), 0);
        assert!(
            r.latency.as_micros_f64() > 100.0,
            "1MB write takes real time"
        );
    }

    #[test]
    fn spdk_idle_spin_tops_up_to_full_core() {
        let mut h = host(IoPath::Spdk);
        let r = h.io_sync(IoOp::Read, 0, 4096, SimTime::ZERO);
        let elapsed = (r.user_visible - SimTime::ZERO) * 10; // mostly idle run
        h.account_idle_spin(elapsed);
        let user = h.cpu().utilization(Mode::User, elapsed);
        assert!(user > 0.95, "user util {user:.2}");
    }
}
