//! The host system: one CPU core driving one NVMe device through a chosen
//! software path.
//!
//! [`Host`] composes the submission path (kernel stack or SPDK), the
//! completion method (interrupt / polled / hybrid-polled / SPDK's reactor
//! polling) and the accounting ledger. Synchronous I/O ([`Host::io_sync`])
//! models fio's `pvsync2` engine; the async pair
//! [`Host::submit_async`]/[`Host::finish_async`] models `libaio` and the
//! SPDK fio plugin, driven by the closed-loop engine in `ull-workload`.

use ull_faults::{FaultPlan, NvmeFaults};
use ull_nvme::{NvmeCommand, NvmeController};
use ull_probe::{DeviceSpan, OpKind, ProbeConfig, ProbeReport, SpanRecorder, Stage};
use ull_simkit::{SimDuration, SimTime, Slab, SlotId, SplitMix64};
use ull_ssd::DeviceCompletion;

use crate::blkmq::{split_request_into, Tag, TagSet};
use crate::costs::{Segment, SoftwareCosts};
use crate::cpu::{CpuAccounting, Mode, StackFn};

/// Which software path I/O takes to the device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IoPath {
    /// Kernel stack, MSI interrupt completion (the conventional path).
    KernelInterrupt,
    /// Kernel stack, polled-mode completion (Linux 4.4's
    /// `queue_io_poll`, fio `--hipri`).
    KernelPolled,
    /// Kernel stack, hybrid polling (Linux 4.10+: sleep half the tracked
    /// mean, then poll).
    KernelHybrid,
    /// SPDK: userspace driver, reactor polling, no kernel involvement.
    Spdk,
}

impl IoPath {
    /// Short label used in reports.
    pub fn label(&self) -> &'static str {
        match self {
            IoPath::KernelInterrupt => "interrupt",
            IoPath::KernelPolled => "poll",
            IoPath::KernelHybrid => "hybrid",
            IoPath::Spdk => "spdk",
        }
    }
}

/// Direction of an I/O.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IoOp {
    /// Read from the device.
    Read,
    /// Write to the device.
    Write,
}

/// Outcome of one I/O as the application observes it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IoResult {
    /// When the application issued the I/O.
    pub submitted: SimTime,
    /// When control returned to the application.
    pub user_visible: SimTime,
    /// `user_visible - submitted`.
    pub latency: SimDuration,
    /// Device-side detail.
    pub device: DeviceCompletion,
}

#[derive(Debug, Clone)]
struct Outstanding {
    submitted: SimTime,
    doorbell: SimTime,
    nparts: usize,
    tags: Vec<Tag>,
    op: IoOp,
    offset: u64,
    len: u32,
    /// Critical-part device span, captured at submit time iff probing.
    span: Option<DeviceSpan>,
}

/// Per-run observability state (absent ⇒ the zero-cost disabled path).
/// Recording is pure observation: it draws no randomness and charges no
/// sim time, so a probed run is bit-for-bit identical to an unprobed one.
#[derive(Debug)]
struct HostProbe {
    report: ProbeReport,
    next_req: u64,
}

/// Host-side recovery parameters and accounting for injected NVMe
/// completion losses (absent ⇒ the nominal, zero-cost path).
#[derive(Debug)]
struct HostFaultState {
    timeout: SimDuration,
    max_retries: u32,
    backoff_base: SimDuration,
    reset_latency: SimDuration,
    counters: NvmeFaults,
}

/// One host core + software stack + NVMe device.
///
/// # Examples
///
/// ```
/// use ull_nvme::NvmeController;
/// use ull_simkit::SimTime;
/// use ull_ssd::{presets, Ssd};
/// use ull_stack::{Host, IoOp, IoPath, SoftwareCosts};
///
/// let ctrl = NvmeController::new(Ssd::new(presets::ull_800g())?, 1, 1024);
/// let mut host = Host::new(ctrl, SoftwareCosts::linux_4_14(), IoPath::KernelPolled);
/// let r = host.io_sync(IoOp::Read, 0, 4096, SimTime::ZERO);
/// assert!(r.latency.as_micros_f64() < 25.0);
/// # Ok::<(), ull_ssd::ConfigError>(())
/// ```
#[derive(Debug)]
pub struct Host {
    ctrl: NvmeController,
    cpu: CpuAccounting,
    costs: SoftwareCosts,
    path: IoPath,
    rng: SplitMix64,
    /// EWMA of recent completion latencies, integer nanoseconds (hybrid
    /// polling's sleep source). Kept in integer arithmetic so the control
    /// loop cannot accumulate float drift across runs.
    hybrid_mean_ns: u64,
    next_cid: u16,
    /// In-flight async requests in reusable generational slots: the token
    /// handed to the engine is the slot id, so lookup and removal are O(1)
    /// and the steady-state request path performs no allocation.
    outstanding: Slab<Outstanding>,
    /// Driver tag set bounding in-flight NVMe commands (blk-mq semantics).
    tags: TagSet,
    /// Requests beyond this split into multiple commands
    /// (`max_hw_sectors` / controller MDTS).
    max_transfer: u32,
    /// Wall-clock high-water mark of activity on this host.
    horizon: SimTime,
    /// NVMe timeout/abort recovery state (None ⇒ nominal path).
    faults: Option<HostFaultState>,
    /// Latency-breakdown probe (None ⇒ observability fully disabled).
    probe: Option<Box<HostProbe>>,
    /// Submissions that hit a full SQ and were deterministically requeued
    /// after draining the ring (backpressure accounting; always active).
    sq_requeues: u64,
    /// Reusable split-request scratch (cleared per submit; never shrinks).
    parts_scratch: Vec<(u64, u32)>,
    /// Reusable `(cid, command)` scratch for the fault-recovery paths.
    /// Cids issued within one submit are unique and the set is tiny
    /// (nparts + retries), so a linear-probed `Vec` beats a fresh
    /// `BTreeMap` per I/O.
    issued_scratch: Vec<(u16, NvmeCommand)>,
    /// Pools of emptied per-request `Vec`s, recycled across I/Os.
    cid_pool: Vec<Vec<u16>>,
    tag_pool: Vec<Vec<Tag>>,
}

/// Linear lookup in the issued-command scratch (the per-request command
/// count is tiny, and the scratch is never iterated in map order — only
/// keyed gets — so replacing the historical `BTreeMap` cannot reorder
/// anything).
fn issued_get(issued: &[(u16, NvmeCommand)], cid: u16) -> Option<NvmeCommand> {
    issued.iter().find(|&&(c, _)| c == cid).map(|&(_, cmd)| cmd)
}

impl Host {
    /// Frequency of the testbed CPU (4.6 GHz i7-8700, `performance`
    /// governor).
    pub const CPU_GHZ: f64 = 4.6;

    /// Driver tags per hardware queue (mirrors the NVMe queue size used
    /// throughout the study).
    pub const TAGS: u16 = 1024;

    /// Maximum bytes per NVMe command before the block layer (or SPDK's
    /// MDTS handling) splits a request.
    pub const MAX_TRANSFER: u32 = 128 << 10;

    /// Creates a host over `ctrl` using `costs` and `path`.
    pub fn new(ctrl: NvmeController, costs: SoftwareCosts, path: IoPath) -> Self {
        Host {
            ctrl,
            cpu: CpuAccounting::new(Self::CPU_GHZ),
            costs,
            path,
            rng: SplitMix64::new(0x57AC_u64),
            hybrid_mean_ns: 10_000,
            next_cid: 0,
            outstanding: Slab::new(),
            tags: TagSet::new(Self::TAGS),
            max_transfer: Self::MAX_TRANSFER,
            horizon: SimTime::ZERO,
            faults: None,
            probe: None,
            sq_requeues: 0,
            parts_scratch: Vec::new(),
            issued_scratch: Vec::new(),
            cid_pool: Vec::new(),
            tag_pool: Vec::new(),
        }
    }

    /// Turns on per-request latency-breakdown recording with the given
    /// capture policy. Observation only: timings, RNG draws and reports
    /// of the run itself are unchanged (golden-tested workspace-wide).
    pub fn enable_probe(&mut self, cfg: ProbeConfig) {
        self.ctrl.set_probing(true);
        self.probe = Some(Box::new(HostProbe {
            report: ProbeReport::new(cfg),
            next_req: 0,
        }));
    }

    /// Takes the accumulated probe report, disabling recording. Returns
    /// `None` when the probe was never enabled.
    pub fn take_probe(&mut self) -> Option<ProbeReport> {
        self.ctrl.set_probing(false);
        self.probe.take().map(|p| p.report)
    }

    /// Whether latency-breakdown recording is enabled.
    pub fn probing(&self) -> bool {
        self.probe.is_some()
    }

    /// Installs a fault plan across the whole host stack: the controller
    /// (completion-loss lottery) and its SSD (flash fault lotteries) get
    /// the plan, and the host keeps the recovery parameters it needs for
    /// the timeout → abort → bounded-retry → controller-reset path.
    ///
    /// With `nvme_timeout_prob == 0` no host fault state is kept; with an
    /// all-zero plan the entire stack is bit-for-bit nominal.
    pub fn set_fault_plan(&mut self, plan: &FaultPlan) {
        self.ctrl.set_fault_plan(plan);
        if plan.nvme_timeout_prob > 0.0 {
            self.faults = Some(HostFaultState {
                timeout: plan.host_timeout,
                max_retries: plan.max_retries,
                backoff_base: plan.backoff_base,
                reset_latency: plan.reset_latency,
                counters: NvmeFaults::default(),
            });
        } else {
            self.faults = None;
        }
    }

    /// NVMe fault/recovery accounting: the host-side recovery counters
    /// plus the controller's injected-timeout count and the (always
    /// active) full-SQ requeue count.
    pub fn nvme_fault_counters(&self) -> NvmeFaults {
        let mut c = self
            .faults
            .as_ref()
            .map_or_else(NvmeFaults::default, |f| f.counters);
        c.injected_timeouts = self.ctrl.injected_timeouts();
        c.sq_requeues = self.sq_requeues;
        c
    }

    /// Submissions that hit a full SQ and were requeued (backpressure).
    pub fn sq_requeues(&self) -> u64 {
        self.sq_requeues
    }

    /// The configured I/O path.
    pub fn path(&self) -> IoPath {
        self.path
    }

    /// Switches the I/O path (between experiment phases).
    pub fn set_path(&mut self, path: IoPath) {
        self.path = path;
    }

    /// The CPU accounting ledger.
    pub fn cpu(&self) -> &CpuAccounting {
        &self.cpu
    }

    /// The controller (device metrics, power).
    pub fn controller(&self) -> &NvmeController {
        &self.ctrl
    }

    /// Mutable controller access (preconditioning).
    pub fn controller_mut(&mut self) -> &mut NvmeController {
        &mut self.ctrl
    }

    /// The cost table in use.
    pub fn costs(&self) -> &SoftwareCosts {
        &self.costs
    }

    /// Latest instant any activity on this host has reached.
    pub fn horizon(&self) -> SimTime {
        self.horizon
    }

    fn charge(&mut self, mode: Mode, f: StackFn, seg: Segment) {
        self.cpu.charge(mode, f, seg.busy);
        self.cpu.mem(f, seg.loads, seg.stores);
    }

    /// Charges the submission path, splits at `max_hw_sectors`, allocates
    /// driver tags and rings the doorbell. Returns the doorbell instant,
    /// the per-part cids and the tags held until completion.
    ///
    /// # Panics
    ///
    /// Panics if the driver tag set is exhausted (the engine exceeded the
    /// queue-depth bound).
    fn submit_path(
        &mut self,
        op: IoOp,
        offset: u64,
        len: u32,
        at: SimTime,
    ) -> (SimTime, Vec<u16>, Vec<Tag>) {
        self.charge(Mode::User, StackFn::FioEngine, self.costs.user_per_io);
        let mut parts = std::mem::take(&mut self.parts_scratch);
        parts.clear();
        split_request_into(offset, len, self.max_transfer, &mut parts);
        let mut t = at;
        match self.path {
            IoPath::Spdk => {
                // The SPDK submit call runs per command (the driver splits
                // at the controller's MDTS itself).
                for _ in &parts {
                    self.charge(Mode::User, StackFn::SpdkSubmit, self.costs.spdk_submit);
                    t += self.costs.spdk_submit.latency;
                }
            }
            _ => {
                // One syscall + VFS traversal; blk-mq request setup and
                // driver SQE build run once per split part.
                self.charge(Mode::Kernel, StackFn::Syscall, self.costs.syscall);
                self.charge(Mode::Kernel, StackFn::Vfs, self.costs.vfs);
                t += self.costs.syscall.latency + self.costs.vfs.latency;
                for _ in &parts {
                    self.charge(Mode::Kernel, StackFn::BlockLayer, self.costs.block_layer);
                    self.charge(
                        Mode::Kernel,
                        StackFn::NvmeDriverSubmit,
                        self.costs.driver_submit,
                    );
                    t += self.costs.block_layer.latency + self.costs.driver_submit.latency;
                }
            }
        }
        let mut cids = self.cid_pool.pop().unwrap_or_default();
        let mut tags = self.tag_pool.pop().unwrap_or_default();
        let mut issued = std::mem::take(&mut self.issued_scratch);
        issued.clear();
        for &(part_off, part_len) in &parts {
            let tag = self
                .tags
                .acquire()
                // simlint: allow(S006): TAGS (1024) equals the NVMe queue size; every submit holds at most iodepth <= 1024 tags, and release_tags runs on every completion path
                .expect("driver tag set exhausted: engine exceeded queue-depth bound");
            tags.push(tag);
            let cid = self.next_cid;
            self.next_cid = self.next_cid.wrapping_add(1);
            let cmd = match op {
                IoOp::Read => NvmeCommand::read(cid, part_off, part_len),
                IoOp::Write => NvmeCommand::write(cid, part_off, part_len),
            };
            t = self.submit_with_backpressure(cmd, t);
            issued.push((cid, cmd));
            cids.push(cid);
        }
        parts.clear();
        self.parts_scratch = parts;
        self.ctrl.ring_sq_doorbell(0, t);
        if self.faults.is_some() {
            let dropped = self.ctrl.take_dropped(0);
            if !dropped.is_empty() {
                self.recover_lost(t, &dropped, &mut issued, &mut cids);
            }
        }
        issued.clear();
        self.issued_scratch = issued;
        (t, cids, tags)
    }

    /// Returns the per-request scratch vectors to their pools (emptied),
    /// so the next submit allocates nothing.
    fn recycle(&mut self, mut cids: Vec<u16>, mut tags: Vec<Tag>) {
        cids.clear();
        tags.clear();
        self.cid_pool.push(cids);
        self.tag_pool.push(tags);
    }

    /// Pushes `cmd` to the SQ; a full ring backpressures deterministically:
    /// the doorbell drains the queued entries into the controller (charged
    /// as an extra driver pass), then the push retries — it cannot be
    /// silently dropped and never panics on a full ring.
    fn submit_with_backpressure(&mut self, cmd: NvmeCommand, at: SimTime) -> SimTime {
        if self.ctrl.submit(0, cmd).is_ok() {
            return at;
        }
        self.sq_requeues += 1;
        self.charge(
            Mode::Kernel,
            StackFn::NvmeDriverSubmit,
            self.costs.driver_submit,
        );
        let at = at + self.costs.driver_submit.latency;
        self.ctrl.ring_sq_doorbell(0, at);
        self.ctrl
            .submit(0, cmd)
            // simlint: allow(S006): the doorbell above drained every queued entry, and a drained submission ring accepts a push
            .expect("a drained submission ring accepts a push");
        at
    }

    /// Rebuilds a command under a fresh cid (timeout retry / reset replay).
    fn reissue(&mut self, cmd: NvmeCommand) -> NvmeCommand {
        let mut c = cmd;
        c.cid = self.next_cid;
        self.next_cid = self.next_cid.wrapping_add(1);
        c
    }

    /// The NVMe timeout state machine for every command whose completion
    /// the controller dropped at the `doorbell_t` doorbell:
    ///
    /// 1. the host timeout expires → abort (discard the stale detail);
    /// 2. bounded retries with exponential sim-time backoff
    ///    (`backoff_base << attempt`), each still subject to injection;
    /// 3. retry budget exhausted → controller reset, then an
    ///    injection-exempt requeue of the aborted command plus every
    ///    in-flight command of this request the reset destroyed.
    ///
    /// `cids` is rewritten so each lost part points at its surviving cid.
    fn recover_lost(
        &mut self,
        doorbell_t: SimTime,
        dropped: &[u16],
        issued: &mut Vec<(u16, NvmeCommand)>,
        cids: &mut [u16],
    ) {
        let Some(f) = &self.faults else { return };
        let (timeout, max_retries, backoff_base, reset_latency) =
            (f.timeout, f.max_retries, f.backoff_base, f.reset_latency);
        let mut d = NvmeFaults::default();
        for &lost_cid in dropped {
            // Dropped cids come from this call's doorbell, so the command
            // is in `issued`; skipping an unknown cid keeps this panic-free.
            let Some(cmd0) = issued_get(issued, lost_cid) else {
                continue;
            };
            let mut old_cid = lost_cid;
            let mut detect = doorbell_t + timeout;
            let mut attempt = 0u32;
            let final_cid = loop {
                // Timeout fires: the timeout handler runs and the command
                // is aborted. The backend did execute it — the completion
                // is what vanished — so its detail is discarded.
                d.aborts += 1;
                self.charge(Mode::Kernel, StackFn::Isr, self.costs.isr);
                let _ = self.ctrl.take_detail(0, old_cid);
                let _ = self.ctrl.take_span(0, old_cid);
                if attempt >= max_retries {
                    break self.reset_and_requeue(
                        detect + reset_latency,
                        cmd0,
                        issued,
                        cids,
                        &mut d,
                    );
                }
                // Bounded retry with exponential (integer) backoff.
                let backoff = backoff_base * (1u64 << attempt.min(16));
                d.retries += 1;
                d.backoff_ns_total += backoff.as_nanos();
                let retry = self.reissue(cmd0);
                self.charge(
                    Mode::Kernel,
                    StackFn::NvmeDriverSubmit,
                    self.costs.driver_submit,
                );
                let resubmit_at = self.submit_with_backpressure(retry, detect + backoff);
                issued.push((retry.cid, retry));
                self.ctrl.ring_sq_doorbell(0, resubmit_at);
                if self.ctrl.take_dropped(0).is_empty() {
                    break retry.cid; // the retry's completion survived
                }
                old_cid = retry.cid;
                detect = resubmit_at + timeout;
                attempt += 1;
            };
            if let Some(slot) = cids.iter_mut().find(|c| **c == lost_cid) {
                *slot = final_cid;
            }
        }
        if let Some(f) = &mut self.faults {
            let c = &mut f.counters;
            c.aborts += d.aborts;
            c.retries += d.retries;
            c.backoff_ns_total += d.backoff_ns_total;
            c.controller_resets += d.controller_resets;
            c.requeues += d.requeues;
        }
    }

    /// Controller reset + injection-exempt requeue. Returns the new cid
    /// of `aborted` (the command whose retries ran out). In-flight parts
    /// of the current request destroyed by the reset are requeued too;
    /// completions of *earlier* (async) requests lost with them are
    /// tolerated by [`Host::consume_cqes`].
    fn reset_and_requeue(
        &mut self,
        ready: SimTime,
        aborted: NvmeCommand,
        issued: &mut Vec<(u16, NvmeCommand)>,
        cids: &mut [u16],
        d: &mut NvmeFaults,
    ) -> u16 {
        d.controller_resets += 1;
        let destroyed = self.ctrl.reset_queue(0);
        let replay = self.reissue(aborted);
        self.charge(
            Mode::Kernel,
            StackFn::NvmeDriverSubmit,
            self.costs.driver_submit,
        );
        let mut at = self.submit_with_backpressure(replay, ready);
        issued.push((replay.cid, replay));
        d.requeues += 1;
        for old in destroyed {
            // Only this request's parts can be replayed (their commands
            // are known); older requests' completions are simply lost.
            let Some(cmd) = issued_get(issued, old) else {
                continue;
            };
            let re = self.reissue(cmd);
            self.charge(
                Mode::Kernel,
                StackFn::NvmeDriverSubmit,
                self.costs.driver_submit,
            );
            at = self.submit_with_backpressure(re, at);
            issued.push((re.cid, re));
            d.requeues += 1;
            if let Some(slot) = cids.iter_mut().find(|c| **c == old) {
                *slot = re.cid;
            }
        }
        self.ctrl.ring_sq_doorbell_requeue(0, at);
        replay.cid
    }

    /// Collects and merges the per-part device completions.
    fn collect_parts(&mut self, cids: &[u16]) -> DeviceCompletion {
        let mut agg: Option<DeviceCompletion> = None;
        for &cid in cids {
            // simlint: allow(S006): every cid in `cids` was submitted by submit_path immediately before this call and details are taken exactly once
            let d = self.ctrl.take_detail(0, cid).expect("command was started");
            agg = Some(match agg {
                None => d,
                Some(a) => DeviceCompletion {
                    done: a.done.max(d.done),
                    dram_hit: a.dram_hit && d.dram_hit,
                    suspended: a.suspended || d.suspended,
                    gc_stalled: a.gc_stalled || d.gc_stalled,
                },
            });
        }
        // simlint: allow(S006): split_request returns at least one part, so the loop above always runs
        agg.expect("at least one part")
    }

    /// Drains the per-part device spans and returns the critical one (the
    /// part that finished last — it bounds the merged completion). Every
    /// part's span is taken so the controller-side map never leaks. Falls
    /// back to an empty span at `done` if none were collected (probe
    /// enabled mid-flight); the whole interval then lands in `SqWait`.
    fn take_critical_span(&mut self, cids: &[u16], done: SimTime) -> DeviceSpan {
        let mut best: Option<DeviceSpan> = None;
        for &cid in cids {
            if let Some(s) = self.ctrl.take_span(0, cid) {
                if best.as_ref().is_none_or(|b| s.done > b.done) {
                    best = Some(s);
                }
            }
        }
        best.unwrap_or_else(|| DeviceSpan::empty(done))
    }

    /// Records one finished request into the probe report: software
    /// submit time up to the doorbell, the device-internal decomposition,
    /// the completion pickup (IRQ delivery or poll detection) and the
    /// remaining delivery cost up to the application-visible instant.
    /// The stamped stages tile `issue..visible` exactly by construction.
    #[allow(clippy::too_many_arguments)]
    fn record_probe(
        &mut self,
        op: IoOp,
        offset: u64,
        len: u32,
        issue: SimTime,
        doorbell: SimTime,
        span: DeviceSpan,
        pickup_stage: Stage,
        pickup: SimTime,
        visible: SimTime,
    ) {
        let Some(p) = &mut self.probe else { return };
        let req = p.next_req;
        p.next_req += 1;
        let kind = match op {
            IoOp::Read => OpKind::Read,
            IoOp::Write => OpKind::Write,
        };
        let mut rec = SpanRecorder::start(req, kind, offset, len, issue);
        // Backpressure can ring early doorbells before `doorbell`; fault
        // recovery can re-execute the command after it. Charging software
        // up to min(doorbell, arrive) keeps both cases monotone — any
        // recovery wait then lands in SqWait via absorb_device.
        rec.stamp(Stage::SubmitStack, doorbell.min(span.arrive));
        rec.absorb_device(&span);
        let pickup = pickup.max(rec.cursor());
        rec.stamp(pickup_stage, pickup);
        let bd = rec.finish(Stage::CompleteDeliver, visible.max(pickup));
        p.report.record(&bd);
    }

    fn release_tags(&mut self, tags: &[Tag]) {
        for &t in tags {
            self.tags.release(t);
        }
    }

    /// Spins the kernel poll loop from `from` until `done`, charging
    /// cycles and memory instructions; returns the detection instant.
    fn spin_kernel(&mut self, from: SimTime, done: SimTime) -> SimTime {
        let iter = self.costs.poll_iter_duration();
        let wait = done.saturating_since(from);
        let iters = (wait.as_nanos().div_ceil(iter.as_nanos())).max(1);
        let b = self.costs.poll_iter_blkmq;
        let n = self.costs.poll_iter_nvme;
        self.cpu
            .charge(Mode::Kernel, StackFn::BlkMqPoll, b.duration * iters);
        self.cpu
            .charge(Mode::Kernel, StackFn::NvmePoll, n.duration * iters);
        self.cpu
            .mem(StackFn::BlkMqPoll, b.loads * iters, b.stores * iters);
        self.cpu
            .mem(StackFn::NvmePoll, n.loads * iters, n.stores * iters);
        from + iter * iters
    }

    /// Spins the SPDK reactor from `from` until `done`; returns the
    /// detection instant.
    fn spin_spdk(&mut self, from: SimTime, done: SimTime) -> SimTime {
        let iter = self.costs.spdk_iter_duration();
        let wait = done.saturating_since(from);
        let iters = (wait.as_nanos().div_ceil(iter.as_nanos())).max(1);
        for (f, p) in [
            (StackFn::SpdkQpairProcess, self.costs.spdk_iter_qpair),
            (StackFn::SpdkPcieProcess, self.costs.spdk_iter_pcie),
            (StackFn::SpdkCheckEnabled, self.costs.spdk_iter_check),
        ] {
            self.cpu.charge(Mode::User, f, p.duration * iters);
            self.cpu.mem(f, p.loads * iters, p.stores * iters);
        }
        from + iter * iters
    }

    /// One synchronous I/O (fio `pvsync2`): submit, wait per the configured
    /// completion method, return to userland.
    ///
    /// # Panics
    ///
    /// Panics if the request exceeds the device capacity.
    pub fn io_sync(&mut self, op: IoOp, offset: u64, len: u32, at: SimTime) -> IoResult {
        let (t, cids, tags) = self.submit_path(op, offset, len, at);
        let nparts = cids.len();
        let device = self.collect_parts(&cids);
        let done = device.done;

        let (user_visible, pickup_stage, pickup) = match self.path {
            IoPath::KernelInterrupt => {
                let irq = done + NvmeController::DEFAULT_MSI_LATENCY;
                self.charge(Mode::Kernel, StackFn::Isr, self.costs.isr);
                self.charge(Mode::Kernel, StackFn::Softirq, self.costs.softirq);
                self.charge(Mode::Kernel, StackFn::ContextSwitch, self.costs.wakeup);
                let visible = irq + self.costs.interrupt_completion_latency();
                self.consume_cqes(irq, nparts);
                (visible, Stage::IrqDeliver, irq)
            }
            IoPath::KernelPolled => {
                let mut detect = self.spin_kernel(t, done);
                if self.rng.chance(self.costs.resched_prob) {
                    // Preempted while polling: the request sits completed in
                    // the CQ until the thread is rescheduled.
                    let stall = self.costs.resched_delay;
                    self.cpu.charge(
                        Mode::Kernel,
                        StackFn::ContextSwitch,
                        SimDuration::from_nanos(500),
                    );
                    detect += stall;
                }
                self.charge(Mode::Kernel, StackFn::BlkMqPoll, self.costs.poll_complete);
                self.consume_cqes(detect, nparts);
                (
                    detect + self.costs.poll_complete.latency,
                    Stage::PollPickup,
                    detect,
                )
            }
            IoPath::KernelHybrid => {
                self.charge(Mode::Kernel, StackFn::HybridSleep, self.costs.hybrid_setup);
                let sleep = SimDuration::from_nanos(self.hybrid_mean_ns)
                    .mul_f64(self.costs.hybrid_sleep_fraction);
                let wake =
                    t + self.costs.hybrid_setup.latency + sleep + self.costs.hybrid_wake.latency;
                self.charge(Mode::Kernel, StackFn::HybridSleep, self.costs.hybrid_wake);
                // Poll resumes at wake-up; an overslept completion is
                // detected on the first iteration.
                let detect = self.spin_kernel(wake, done);
                self.charge(Mode::Kernel, StackFn::BlkMqPoll, self.costs.poll_complete);
                self.consume_cqes(detect, nparts);
                (
                    detect + self.costs.poll_complete.latency,
                    Stage::PollPickup,
                    detect,
                )
            }
            IoPath::Spdk => {
                let detect = self.spin_spdk(t, done);
                self.charge(Mode::User, StackFn::SpdkSubmit, self.costs.spdk_complete);
                self.consume_cqes(detect, nparts);
                (
                    detect + self.costs.spdk_complete.latency,
                    Stage::PollPickup,
                    detect,
                )
            }
        };
        if self.probe.is_some() {
            let span = self.take_critical_span(&cids, done);
            self.record_probe(
                op,
                offset,
                len,
                at,
                t,
                span,
                pickup_stage,
                pickup,
                user_visible,
            );
        }
        self.release_tags(&tags);
        self.recycle(cids, tags);

        if self.path == IoPath::KernelHybrid {
            // EWMA with alpha = 0.3, in integer nanoseconds: exact and
            // reproducible (0.7*m + 0.3*s rendered as (7m + 3s) / 10).
            let sample = done.saturating_since(t).as_nanos();
            self.hybrid_mean_ns = (7 * self.hybrid_mean_ns + 3 * sample) / 10;
        }
        self.horizon = self.horizon.max(user_visible);
        IoResult {
            submitted: at,
            user_visible,
            latency: user_visible - at,
            device,
        }
    }

    fn consume_cqes(&mut self, at: SimTime, n: usize) {
        // A controller reset (fault recovery) zeroes the CQ, destroying
        // completions of commands posted before the reset — typically
        // earlier async requests. Their consumers find fewer visible
        // entries than expected; that is tolerated whenever a reset has
        // occurred. In nominal runs the invariant still holds exactly.
        let reset_happened = self
            .faults
            .as_ref()
            .is_some_and(|f| f.counters.controller_resets > 0);
        for _ in 0..n {
            let consumed = self.ctrl.poll(0, at);
            if consumed.is_none() {
                debug_assert!(reset_happened, "completion must be visible at consume time");
                break;
            }
        }
    }

    /// Async submission (fio `libaio` / SPDK plugin): charges the submit
    /// path and returns `(token, merged device completion detail)`. The
    /// engine schedules [`Host::finish_async`] at the device completion
    /// instant. Requests beyond `max_hw_sectors` split into multiple NVMe
    /// commands internally; the token identifies the whole request.
    pub fn submit_async(
        &mut self,
        op: IoOp,
        offset: u64,
        len: u32,
        at: SimTime,
    ) -> (SlotId, DeviceCompletion) {
        let (t, mut cids, tags) = self.submit_path(op, offset, len, at);
        let nparts = cids.len();
        let device = self.collect_parts(&cids);
        let span = if self.probe.is_some() {
            Some(self.take_critical_span(&cids, device.done))
        } else {
            None
        };
        cids.clear();
        self.cid_pool.push(cids);
        let token = self.outstanding.insert(Outstanding {
            submitted: at,
            doorbell: t,
            nparts,
            tags,
            op,
            offset,
            len,
            span,
        });
        (token, device)
    }

    /// Applies the completion path to an async I/O whose device completion
    /// is `device`, returning the application-visible result.
    ///
    /// For the kernel paths this models the libaio reap (IRQ, softirq,
    /// `io_getevents` return); for SPDK, the reactor's completion callback.
    ///
    /// # Panics
    ///
    /// Panics if `token` was not returned by [`Host::submit_async`] (or was
    /// already finished).
    pub fn finish_async(&mut self, token: SlotId, device: DeviceCompletion) -> IoResult {
        let out = self
            .outstanding
            .remove(token)
            // simlint: allow(S006): documented contract — the fn's `# Panics` section requires a token from a prior submit_async
            .expect("token is outstanding");
        let done = device.done;
        let nparts = out.nparts;
        let (user_visible, pickup_stage, pickup) = match self.path {
            IoPath::Spdk => {
                // The reactor notices on its next iteration.
                let detect = done + self.costs.spdk_iter_duration();
                self.charge(Mode::User, StackFn::SpdkSubmit, self.costs.spdk_complete);
                (
                    detect + self.costs.spdk_complete.latency,
                    Stage::PollPickup,
                    detect,
                )
            }
            _ => {
                let irq = done + NvmeController::DEFAULT_MSI_LATENCY;
                self.charge(Mode::Kernel, StackFn::Isr, self.costs.isr);
                self.charge(Mode::Kernel, StackFn::Softirq, self.costs.softirq);
                self.charge(Mode::Kernel, StackFn::ContextSwitch, self.costs.wakeup);
                (
                    irq + self.costs.interrupt_completion_latency(),
                    Stage::IrqDeliver,
                    irq,
                )
            }
        };
        self.consume_cqes(
            user_visible.max(done + NvmeController::DEFAULT_MSI_LATENCY),
            nparts,
        );
        if let Some(span) = out.span {
            self.record_probe(
                out.op,
                out.offset,
                out.len,
                out.submitted,
                out.doorbell,
                span,
                pickup_stage,
                pickup,
                user_visible,
            );
        }
        self.release_tags(&out.tags);
        let mut tags = out.tags;
        tags.clear();
        self.tag_pool.push(tags);
        self.horizon = self.horizon.max(user_visible);
        IoResult {
            submitted: out.submitted,
            user_visible,
            latency: user_visible - out.submitted,
            device,
        }
    }

    /// Number of async I/Os in flight.
    pub fn in_flight(&self) -> usize {
        self.outstanding.len()
    }

    /// Accounts for the SPDK reactor (or any poll loop) spinning over idle
    /// gaps: tops user-mode busy time up to `elapsed` at the reactor's
    /// iteration memory profile. Call once at the end of an SPDK run so
    /// CPU utilization reports 100% as the paper observes (fig. 20).
    pub fn account_idle_spin(&mut self, elapsed: SimDuration) {
        if self.path != IoPath::Spdk {
            return;
        }
        let busy = self.cpu.busy_total();
        if busy >= elapsed {
            return;
        }
        let gap = elapsed - busy;
        let iter = self.costs.spdk_iter_duration();
        let iters = gap.as_nanos() / iter.as_nanos().max(1);
        for (f, p) in [
            (StackFn::SpdkQpairProcess, self.costs.spdk_iter_qpair),
            (StackFn::SpdkPcieProcess, self.costs.spdk_iter_pcie),
            (StackFn::SpdkCheckEnabled, self.costs.spdk_iter_check),
        ] {
            self.cpu.charge(Mode::User, f, p.duration * iters);
            self.cpu.mem(f, p.loads * iters, p.stores * iters);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ull_ssd::{presets, Ssd};

    fn host(path: IoPath) -> Host {
        let ctrl = NvmeController::new(Ssd::new(presets::ull_800g()).unwrap(), 1, 1024);
        Host::new(ctrl, SoftwareCosts::linux_4_14(), path)
    }

    fn mean_sync_read(path: IoPath, n: u64) -> f64 {
        let mut h = host(path);
        let mut at = SimTime::ZERO;
        let mut sum = 0.0;
        for i in 0..n {
            let r = h.io_sync(IoOp::Read, (i % 1000) * 4096, 4096, at);
            sum += r.latency.as_micros_f64();
            at = r.user_visible + SimDuration::from_nanos(1_000);
        }
        sum / n as f64
    }

    #[test]
    fn polling_beats_interrupts_on_ull() {
        let int = mean_sync_read(IoPath::KernelInterrupt, 3000);
        let poll = mean_sync_read(IoPath::KernelPolled, 3000);
        // Paper fig. 10: ~16% faster reads under polling.
        let gain = (int - poll) / int;
        assert!(
            gain > 0.08 && gain < 0.35,
            "int={int:.1} poll={poll:.1} gain={gain:.2}"
        );
    }

    #[test]
    fn hybrid_sits_between_interrupt_and_poll() {
        let int = mean_sync_read(IoPath::KernelInterrupt, 3000);
        let poll = mean_sync_read(IoPath::KernelPolled, 3000);
        let hybrid = mean_sync_read(IoPath::KernelHybrid, 3000);
        assert!(hybrid < int, "hybrid={hybrid:.1} int={int:.1}");
        assert!(hybrid > poll, "hybrid={hybrid:.1} poll={poll:.1}");
    }

    #[test]
    fn spdk_is_fastest_on_ull() {
        let int = mean_sync_read(IoPath::KernelInterrupt, 3000);
        let spdk = mean_sync_read(IoPath::Spdk, 3000);
        let gain = (int - spdk) / int;
        // Paper fig. 18: ~25% on sequential reads.
        assert!(
            gain > 0.15 && gain < 0.40,
            "int={int:.1} spdk={spdk:.1} gain={gain:.2}"
        );
    }

    #[test]
    fn polled_mode_burns_the_core_in_kernel_mode() {
        let mut h = host(IoPath::KernelPolled);
        let mut at = SimTime::ZERO;
        for i in 0..2000u64 {
            let r = h.io_sync(IoOp::Read, (i % 512) * 4096, 4096, at);
            at = r.user_visible;
        }
        let elapsed = at - SimTime::ZERO;
        let kernel = h.cpu().utilization(Mode::Kernel, elapsed);
        assert!(kernel > 0.80, "kernel util {kernel:.2}");
    }

    #[test]
    fn interrupt_mode_leaves_the_core_mostly_idle() {
        let mut h = host(IoPath::KernelInterrupt);
        let mut at = SimTime::ZERO;
        for i in 0..2000u64 {
            let r = h.io_sync(IoOp::Read, (i % 512) * 4096, 4096, at);
            at = r.user_visible;
        }
        let elapsed = at - SimTime::ZERO;
        let total =
            h.cpu().utilization(Mode::Kernel, elapsed) + h.cpu().utilization(Mode::User, elapsed);
        assert!(total < 0.45, "total util {total:.2}");
    }

    #[test]
    fn polling_inflates_memory_instructions() {
        let mem = |path| {
            let mut h = host(path);
            let mut at = SimTime::ZERO;
            for i in 0..2000u64 {
                let r = h.io_sync(IoOp::Read, (i % 512) * 4096, 4096, at);
                at = r.user_visible;
            }
            h.cpu().mem_total()
        };
        let int = mem(IoPath::KernelInterrupt);
        let poll = mem(IoPath::KernelPolled);
        let spdk = mem(IoPath::Spdk);
        let load_ratio = poll.loads as f64 / int.loads as f64;
        assert!(load_ratio > 1.5, "poll/int loads {load_ratio:.2}");
        let spdk_ratio = spdk.loads as f64 / int.loads as f64;
        assert!(
            spdk_ratio > 2.0 * load_ratio,
            "spdk/int loads {spdk_ratio:.2}"
        );
    }

    #[test]
    fn async_round_trip_matches_sync_shape() {
        let mut h = host(IoPath::KernelInterrupt);
        let (cid, dev) = h.submit_async(IoOp::Read, 4096, 4096, SimTime::ZERO);
        assert_eq!(h.in_flight(), 1);
        let r = h.finish_async(cid, dev);
        assert_eq!(h.in_flight(), 0);
        assert!(r.latency.as_micros_f64() > 5.0 && r.latency.as_micros_f64() < 40.0);
    }

    #[test]
    fn large_requests_split_and_pipeline() {
        let mut h = host(IoPath::KernelInterrupt);
        let small = h.io_sync(IoOp::Read, 0, Host::MAX_TRANSFER, SimTime::ZERO);
        let at = small.user_visible + SimDuration::from_micros(100);
        let big = h.io_sync(IoOp::Read, 64 << 20, 8 * Host::MAX_TRANSFER, at);
        // Eight split commands must pipeline: well below 8x one part.
        let ratio = big.latency.as_micros_f64() / small.latency.as_micros_f64();
        assert!(
            ratio > 1.5 && ratio < 8.0,
            "split pipeline ratio {ratio:.1}"
        );
        assert_eq!(h.in_flight(), 0, "tags and outstanding drained");
    }

    #[test]
    fn async_splitting_round_trips() {
        let mut h = host(IoPath::KernelInterrupt);
        let (token, dev) = h.submit_async(IoOp::Write, 0, 1 << 20, SimTime::ZERO);
        assert_eq!(h.in_flight(), 1);
        let r = h.finish_async(token, dev);
        assert_eq!(h.in_flight(), 0);
        assert!(
            r.latency.as_micros_f64() > 100.0,
            "1MB write takes real time"
        );
    }

    #[test]
    fn spdk_idle_spin_tops_up_to_full_core() {
        let mut h = host(IoPath::Spdk);
        let r = h.io_sync(IoOp::Read, 0, 4096, SimTime::ZERO);
        let elapsed = (r.user_visible - SimTime::ZERO) * 10; // mostly idle run
        h.account_idle_spin(elapsed);
        let user = h.cpu().utilization(Mode::User, elapsed);
        assert!(user > 0.95, "user util {user:.2}");
    }

    #[test]
    fn full_sq_backpressure_requeues_and_completes() {
        // A 4-slot ring holds 3 entries; an 8-part split request must
        // backpressure deterministically instead of panicking.
        let ctrl = NvmeController::new(Ssd::new(presets::ull_800g()).unwrap(), 1, 4);
        let mut h = Host::new(ctrl, SoftwareCosts::linux_4_14(), IoPath::KernelInterrupt);
        let r = h.io_sync(IoOp::Read, 0, 8 * Host::MAX_TRANSFER, SimTime::ZERO);
        assert!(
            h.sq_requeues() > 0,
            "8 parts through a 4-slot ring must hit backpressure"
        );
        assert!(r.latency.as_nanos() > 0);
        assert_eq!(h.in_flight(), 0, "tags and outstanding drained");
    }

    #[test]
    fn timeout_recovery_retries_and_accounts() {
        let nominal = mean_sync_read(IoPath::KernelInterrupt, 400);

        let mut h = host(IoPath::KernelInterrupt);
        let plan = FaultPlan {
            seed: 11,
            nvme_timeout_prob: 0.05,
            ..FaultPlan::none()
        };
        h.set_fault_plan(&plan);
        let mut at = SimTime::ZERO;
        let mut sum = 0.0;
        for i in 0..400u64 {
            let r = h.io_sync(IoOp::Read, (i % 1000) * 4096, 4096, at);
            sum += r.latency.as_micros_f64();
            at = r.user_visible + SimDuration::from_nanos(1_000);
        }
        let faulty = sum / 400.0;

        let c = h.nvme_fault_counters();
        assert!(c.injected_timeouts > 0, "rate 0.05 over 400 IOs must fire");
        // Every injected drop — initial or on a retry — is detected by
        // exactly one timeout/abort; post-reset requeues are exempt.
        assert_eq!(c.aborts, c.injected_timeouts);
        assert!(c.retries > 0);
        assert!(c.backoff_ns_total > 0);
        assert!(
            faulty > nominal * 2.0,
            "500us timeouts must dominate: nominal={nominal:.1}us faulty={faulty:.1}us"
        );
    }

    #[test]
    fn retry_budget_exhaustion_resets_and_requeues() {
        let mut h = host(IoPath::KernelInterrupt);
        // Every completion is lost, so every command burns its whole
        // retry budget and escalates to a controller reset; only the
        // injection-exempt requeue terminates the I/O.
        let plan = FaultPlan {
            seed: 3,
            nvme_timeout_prob: 1.0,
            ..FaultPlan::none()
        };
        h.set_fault_plan(&plan);
        let r = h.io_sync(IoOp::Read, 0, 4096, SimTime::ZERO);
        let c = h.nvme_fault_counters();
        assert!(c.controller_resets >= 1, "budget exhaustion must reset");
        assert!(c.requeues >= 1);
        assert_eq!(c.retries, u64::from(plan.max_retries));
        assert!(
            r.latency >= plan.reset_latency,
            "a reset path cannot be faster than the reset itself"
        );
        assert_eq!(h.in_flight(), 0);
    }

    #[test]
    fn probe_breakdowns_tile_end_to_end_on_every_path() {
        for path in [
            IoPath::KernelInterrupt,
            IoPath::KernelPolled,
            IoPath::KernelHybrid,
            IoPath::Spdk,
        ] {
            let mut h = host(path);
            h.enable_probe(ProbeConfig::default());
            assert!(h.probing());
            let mut at = SimTime::ZERO;
            for i in 0..200u64 {
                let op = if i % 4 == 0 { IoOp::Write } else { IoOp::Read };
                let len = if i % 7 == 0 {
                    4 * Host::MAX_TRANSFER
                } else {
                    4096
                };
                let r = h.io_sync(op, (i % 512) * 4096, len, at);
                at = r.user_visible + SimDuration::from_nanos(500);
            }
            let report = h.take_probe().unwrap();
            assert!(!h.probing());
            assert_eq!(report.metrics.ios(), 200);
            assert!(
                report.metrics.accounting_exact(),
                "{path:?}: sum(stages) != e2e"
            );
            match path {
                IoPath::KernelInterrupt => {
                    assert!(report.metrics.stage_total_ns(Stage::IrqDeliver) > 0);
                    assert_eq!(report.metrics.stage_total_ns(Stage::PollPickup), 0);
                }
                _ => {
                    assert!(report.metrics.stage_total_ns(Stage::PollPickup) > 0);
                    assert_eq!(report.metrics.stage_total_ns(Stage::IrqDeliver), 0);
                }
            }
            // The device executed real flash work on reads.
            assert!(report.metrics.device_ns() > 0);
            assert!(report.metrics.software_ns() > 0);
        }
    }

    #[test]
    fn probe_is_invisible_to_the_simulation() {
        let run = |probe: bool| {
            let mut h = host(IoPath::KernelPolled);
            if probe {
                h.enable_probe(ProbeConfig::default());
            }
            let mut at = SimTime::ZERO;
            let mut lat = Vec::new();
            for i in 0..300u64 {
                let r = h.io_sync(IoOp::Read, (i % 128) * 4096, 4096, at);
                lat.push(r.latency.as_nanos());
                at = r.user_visible;
            }
            lat
        };
        assert_eq!(run(false), run(true), "probing must not perturb timing");
    }

    #[test]
    fn probe_tiles_exactly_under_fault_recovery() {
        let mut h = host(IoPath::KernelInterrupt);
        h.set_fault_plan(&FaultPlan {
            seed: 11,
            nvme_timeout_prob: 0.08,
            flash_read_marginal_prob: 0.05,
            program_fail_prob: 0.02,
            ..FaultPlan::none()
        });
        h.enable_probe(ProbeConfig::default());
        let mut at = SimTime::ZERO;
        for i in 0..400u64 {
            let op = if i % 3 == 0 { IoOp::Write } else { IoOp::Read };
            let r = h.io_sync(op, (i % 256) * 4096, 4096, at);
            at = r.user_visible + SimDuration::from_nanos(1_000);
        }
        let c = h.nvme_fault_counters();
        assert!(c.injected_timeouts > 0, "faults must actually fire");
        let report = h.take_probe().unwrap();
        assert_eq!(report.metrics.ios(), 400);
        assert!(
            report.metrics.accounting_exact(),
            "recovery paths must still tile exactly"
        );
        // Recovery waits are charged to the device-wait side (SqWait).
        assert!(report.metrics.stage_total_ns(Stage::SqWait) > 0);
    }

    #[test]
    fn async_probe_records_breakdowns_too() {
        let mut h = host(IoPath::KernelInterrupt);
        h.enable_probe(ProbeConfig::default());
        let (cid, dev) = h.submit_async(IoOp::Read, 4096, 4096, SimTime::ZERO);
        let r = h.finish_async(cid, dev);
        let report = h.take_probe().unwrap();
        assert_eq!(report.metrics.ios(), 1);
        assert!(report.metrics.accounting_exact());
        let bd = report.trace.events()[0].clone();
        assert_eq!(bd.issue, SimTime::ZERO);
        assert_eq!(bd.complete, r.user_visible);
    }

    #[test]
    fn zero_rate_fault_plan_is_bitwise_nominal() {
        let run = |plan: Option<FaultPlan>| {
            let mut h = host(IoPath::KernelPolled);
            if let Some(p) = plan {
                h.set_fault_plan(&p);
            }
            let mut at = SimTime::ZERO;
            let mut lat = Vec::new();
            for i in 0..300u64 {
                let r = h.io_sync(IoOp::Read, (i % 128) * 4096, 4096, at);
                lat.push(r.latency.as_nanos());
                at = r.user_visible;
            }
            (lat, h.nvme_fault_counters())
        };
        let (base, counters) = run(None);
        assert_eq!(counters, NvmeFaults::default());
        assert_eq!(base, run(Some(FaultPlan::none())).0);
        assert_eq!(base, run(Some(FaultPlan::uniform(9, 0.0))).0);
    }
}
