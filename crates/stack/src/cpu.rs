//! Host CPU model with per-function cycle and memory-instruction
//! accounting.
//!
//! This is the simulator's stand-in for Intel VTune: every software path
//! charges its busy time to a `(Mode, StackFn)` pair and its load/store
//! instructions to a [`StackFn`], so the paper's CPU-utilization figures
//! (13, 14, 20) and memory-instruction figures (15, 21, 22) are direct
//! queries over this ledger.
//!
//! The ledger is a pair of fixed arrays indexed by enum discriminant,
//! not a map: `charge`/`mem` run five to ten times per simulated I/O,
//! and the tree walk plus node allocation of the previous `BTreeMap`
//! showed up as several percent of end-to-end runtime. The arrays keep
//! the map's observable semantics — a `touched` bit distinguishes
//! "charged zero" from "never charged" so [`busy_breakdown`]
//! (CpuAccounting::busy_breakdown) lists exactly the pairs a map would
//! hold, in the same `(Mode, StackFn)` order for equal durations.

use ull_simkit::SimDuration;

/// Privilege mode a charge is attributed to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Mode {
    /// Userland (fio engine, SPDK reactor).
    User,
    /// Kernel (syscalls, blk-mq, driver, ISRs).
    Kernel,
}

/// The functions/modules the paper's profiles break cycles and memory
/// instructions down by.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum StackFn {
    /// Benchmark-side user work (fio option parsing, buffers, bookkeeping).
    FioEngine,
    /// System-call entry/exit.
    Syscall,
    /// VFS + block-device file layer.
    Vfs,
    /// blk-mq submission work (tag allocation, request setup, plugging).
    BlockLayer,
    /// NVMe driver submission (SQE build, SQ doorbell).
    NvmeDriverSubmit,
    /// `blk_mq_poll()` — the spinning poll loop in the block layer.
    BlkMqPoll,
    /// `nvme_poll()` — CQ scanning inside the NVMe driver.
    NvmePoll,
    /// Top-half interrupt service routine.
    Isr,
    /// Softirq completion half (`blk_mq_complete_request`).
    Softirq,
    /// Scheduler work: context switches, wakeups.
    ContextSwitch,
    /// Hybrid polling bookkeeping (mean tracking, timer programming).
    HybridSleep,
    /// SPDK submission path (`spdk_nvme_ns_cmd_read/write`).
    SpdkSubmit,
    /// `spdk_nvme_qpair_process_completions()`.
    SpdkQpairProcess,
    /// `nvme_pcie_qpair_process_completions()`.
    SpdkPcieProcess,
    /// `nvme_qpair_check_enabled()` — the inline enabled-check.
    SpdkCheckEnabled,
    /// Filesystem metadata work (inodes, bitmaps).
    FsMetadata,
    /// Filesystem journaling.
    Journal,
    /// Network block device client/server work.
    Nbd,
    /// Everything else.
    Other,
}

/// Number of [`Mode`] variants (array lane count).
const N_MODES: usize = 2;

/// Number of [`StackFn`] variants (array lane count).
const N_FNS: usize = 19;

/// Every [`StackFn`] in declaration order — the iteration order the
/// ledger's former `BTreeMap` exposed (declaration order is `Ord`
/// order for a fieldless enum's derived `Ord`).
const ALL_FNS: [StackFn; N_FNS] = [
    StackFn::FioEngine,
    StackFn::Syscall,
    StackFn::Vfs,
    StackFn::BlockLayer,
    StackFn::NvmeDriverSubmit,
    StackFn::BlkMqPoll,
    StackFn::NvmePoll,
    StackFn::Isr,
    StackFn::Softirq,
    StackFn::ContextSwitch,
    StackFn::HybridSleep,
    StackFn::SpdkSubmit,
    StackFn::SpdkQpairProcess,
    StackFn::SpdkPcieProcess,
    StackFn::SpdkCheckEnabled,
    StackFn::FsMetadata,
    StackFn::Journal,
    StackFn::Nbd,
    StackFn::Other,
];

const ALL_MODES: [Mode; N_MODES] = [Mode::User, Mode::Kernel];

/// Load/store counts attributed to one function.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemCounts {
    /// Load instructions.
    pub loads: u64,
    /// Store instructions.
    pub stores: u64,
}

impl MemCounts {
    /// Sum of loads and stores.
    pub fn total(&self) -> u64 {
        self.loads + self.stores
    }
}

impl core::ops::Add for MemCounts {
    type Output = MemCounts;
    fn add(self, rhs: MemCounts) -> MemCounts {
        MemCounts {
            loads: self.loads + rhs.loads,
            stores: self.stores + rhs.stores,
        }
    }
}

/// The accounting ledger for one host CPU core.
///
/// # Examples
///
/// ```
/// use ull_simkit::SimDuration;
/// use ull_stack::{CpuAccounting, Mode, StackFn};
///
/// let mut cpu = CpuAccounting::new(4.6);
/// cpu.charge(Mode::Kernel, StackFn::BlkMqPoll, SimDuration::from_micros(8));
/// cpu.mem(StackFn::BlkMqPoll, 500, 200);
/// let util = cpu.utilization(Mode::Kernel, SimDuration::from_micros(10));
/// assert!((util - 0.8).abs() < 1e-9);
/// ```
#[derive(Debug, Clone)]
pub struct CpuAccounting {
    freq_ghz: f64,
    /// Busy time per `[mode][func]`, dense.
    busy: [[SimDuration; N_FNS]; N_MODES],
    /// Whether `[mode][func]` was ever charged (including zero) — the
    /// map-entry-exists bit `busy_breakdown` keys off.
    busy_touched: [[bool; N_FNS]; N_MODES],
    /// Memory instruction counts per function, dense.
    mem: [MemCounts; N_FNS],
}

impl CpuAccounting {
    /// Creates a ledger for a core at `freq_ghz` GHz (the paper's testbed
    /// runs a 4.6 GHz i7-8700 pinned to its maximum frequency).
    pub fn new(freq_ghz: f64) -> Self {
        CpuAccounting {
            freq_ghz,
            busy: [[SimDuration::ZERO; N_FNS]; N_MODES],
            busy_touched: [[false; N_FNS]; N_MODES],
            mem: [MemCounts::default(); N_FNS],
        }
    }

    /// Core frequency in GHz.
    pub fn freq_ghz(&self) -> f64 {
        self.freq_ghz
    }

    /// Charges `dur` of busy time to `(mode, func)`.
    #[inline]
    pub fn charge(&mut self, mode: Mode, func: StackFn, dur: SimDuration) {
        self.busy[mode as usize][func as usize] += dur;
        self.busy_touched[mode as usize][func as usize] = true;
    }

    /// Attributes memory instructions to `func`.
    #[inline]
    pub fn mem(&mut self, func: StackFn, loads: u64, stores: u64) {
        let e = &mut self.mem[func as usize];
        e.loads += loads;
        e.stores += stores;
    }

    /// Total busy time in one mode.
    pub fn busy(&self, mode: Mode) -> SimDuration {
        self.busy[mode as usize].iter().copied().sum()
    }

    /// Total busy time across modes.
    pub fn busy_total(&self) -> SimDuration {
        self.busy(Mode::User) + self.busy(Mode::Kernel)
    }

    /// Busy time of one function (across modes).
    pub fn busy_of(&self, func: StackFn) -> SimDuration {
        ALL_MODES
            .iter()
            .map(|&m| self.busy[m as usize][func as usize])
            .sum()
    }

    /// Busy cycles of one function, at the configured frequency.
    pub fn cycles_of(&self, func: StackFn) -> f64 {
        self.busy_of(func).as_nanos_f64() * self.freq_ghz
    }

    /// Utilization of one mode over an `elapsed` wall-clock window,
    /// in `[0, 1]`.
    pub fn utilization(&self, mode: Mode, elapsed: SimDuration) -> f64 {
        if elapsed.is_zero() {
            return 0.0;
        }
        (self.busy(mode).ratio(elapsed)).min(1.0)
    }

    /// Memory instruction counts of one function.
    pub fn mem_of(&self, func: StackFn) -> MemCounts {
        self.mem[func as usize]
    }

    /// Total memory instruction counts.
    pub fn mem_total(&self) -> MemCounts {
        self.mem
            .iter()
            .copied()
            .fold(MemCounts::default(), |a, b| a + b)
    }

    /// Per-function busy-time breakdown, largest first. Only pairs that
    /// were ever charged appear; equal durations keep ascending
    /// `(Mode, StackFn)` order (the stable sort over declaration-order
    /// iteration, matching the former map's key order).
    pub fn busy_breakdown(&self) -> Vec<(StackFn, Mode, SimDuration)> {
        let mut v: Vec<_> = ALL_MODES
            .iter()
            .flat_map(|&m| {
                ALL_FNS
                    .iter()
                    .filter(move |&&f| self.busy_touched[m as usize][f as usize])
                    .map(move |&f| (f, m, self.busy[m as usize][f as usize]))
            })
            .collect();
        v.sort_by_key(|r| std::cmp::Reverse(r.2));
        v
    }

    /// Merges another ledger (e.g. from a second core) into this one.
    pub fn merge(&mut self, other: &CpuAccounting) {
        for m in 0..N_MODES {
            for f in 0..N_FNS {
                self.busy[m][f] += other.busy[m][f];
                self.busy_touched[m][f] |= other.busy_touched[m][f];
            }
        }
        for f in 0..N_FNS {
            self.mem[f].loads += other.mem[f].loads;
            self.mem[f].stores += other.mem[f].stores;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charges_accumulate_by_mode_and_function() {
        let mut cpu = CpuAccounting::new(4.6);
        cpu.charge(Mode::Kernel, StackFn::NvmePoll, SimDuration::from_micros(2));
        cpu.charge(Mode::Kernel, StackFn::NvmePoll, SimDuration::from_micros(3));
        cpu.charge(Mode::User, StackFn::FioEngine, SimDuration::from_micros(1));
        assert_eq!(cpu.busy(Mode::Kernel), SimDuration::from_micros(5));
        assert_eq!(cpu.busy(Mode::User), SimDuration::from_micros(1));
        assert_eq!(cpu.busy_of(StackFn::NvmePoll), SimDuration::from_micros(5));
        assert_eq!(cpu.busy_total(), SimDuration::from_micros(6));
    }

    #[test]
    fn cycles_follow_frequency() {
        let mut cpu = CpuAccounting::new(2.0);
        cpu.charge(Mode::Kernel, StackFn::Isr, SimDuration::from_micros(1));
        assert!((cpu.cycles_of(StackFn::Isr) - 2000.0).abs() < 1e-9);
    }

    #[test]
    // The clamp returns the literal 1.0 / 0.0; bit-equality is the point.
    #[allow(clippy::float_cmp)]
    fn utilization_clamps_to_one() {
        let mut cpu = CpuAccounting::new(4.6);
        cpu.charge(
            Mode::Kernel,
            StackFn::BlkMqPoll,
            SimDuration::from_micros(20),
        );
        assert_eq!(
            cpu.utilization(Mode::Kernel, SimDuration::from_micros(10)),
            1.0
        );
        assert_eq!(cpu.utilization(Mode::User, SimDuration::ZERO), 0.0);
    }

    #[test]
    fn mem_counters_and_totals() {
        let mut cpu = CpuAccounting::new(4.6);
        cpu.mem(StackFn::NvmePoll, 10, 4);
        cpu.mem(StackFn::BlkMqPoll, 20, 6);
        cpu.mem(StackFn::NvmePoll, 5, 1);
        assert_eq!(
            cpu.mem_of(StackFn::NvmePoll),
            MemCounts {
                loads: 15,
                stores: 5
            }
        );
        assert_eq!(cpu.mem_total().total(), 46);
    }

    #[test]
    fn breakdown_sorts_descending() {
        let mut cpu = CpuAccounting::new(4.6);
        cpu.charge(Mode::Kernel, StackFn::Isr, SimDuration::from_micros(1));
        cpu.charge(
            Mode::Kernel,
            StackFn::BlkMqPoll,
            SimDuration::from_micros(9),
        );
        let b = cpu.busy_breakdown();
        assert_eq!(b[0].0, StackFn::BlkMqPoll);
        assert_eq!(b[1].0, StackFn::Isr);
    }

    #[test]
    fn merge_adds_ledgers() {
        let mut a = CpuAccounting::new(4.6);
        let mut b = CpuAccounting::new(4.6);
        a.charge(Mode::User, StackFn::FioEngine, SimDuration::from_micros(1));
        b.charge(Mode::User, StackFn::FioEngine, SimDuration::from_micros(2));
        b.mem(StackFn::FioEngine, 7, 3);
        a.merge(&b);
        assert_eq!(a.busy(Mode::User), SimDuration::from_micros(3));
        assert_eq!(a.mem_of(StackFn::FioEngine).loads, 7);
    }
}
