//! The stack's async engine surface: in-flight request bookkeeping for
//! component-driven event loops.
//!
//! Before the shared component API, every async driver (the workload
//! runner, trace replay, and any future open-loop engine) open-coded
//! the same three steps around [`Host::submit_async`]: stash the
//! `(token, op, device-completion)` tuple in a slab, schedule the slab
//! slot on a private wheel at the device completion instant, and on pop
//! retrieve the tuple and call [`Host::finish_async`]. [`AsyncPort`]
//! owns that bookkeeping once, at the layer that defines the submit/
//! finish contract, leaving the engines themselves as pure
//! [`Component`](ull_simkit::Component)s: submit through the port,
//! schedule the returned slot via their `Scheduler`, finish on
//! dispatch.
//!
//! The slab is generational and reused, so the steady-state loop stays
//! allocation-free exactly as the open-coded versions were.

use ull_simkit::{Slab, SlotId};
use ull_ssd::DeviceCompletion;

use crate::host::{Host, IoOp, IoResult};

/// In-flight async request state for one engine loop over one [`Host`].
#[derive(Debug)]
pub struct AsyncPort {
    in_flight: Slab<(SlotId, IoOp, DeviceCompletion)>,
}

impl AsyncPort {
    /// An empty port sized for `depth` concurrent requests (the slab
    /// grows if an engine exceeds it).
    pub fn with_capacity(depth: usize) -> Self {
        AsyncPort {
            in_flight: Slab::with_capacity(depth),
        }
    }

    /// Submits one async I/O at `at` and parks it in the port.
    ///
    /// Returns `(slot, done)`: the engine schedules `slot` on its
    /// timeline at the device completion instant `done` (via
    /// `Scheduler::at` or `at_keyed`) and hands it back to
    /// [`finish`](Self::finish) when the event fires.
    pub fn submit(
        &mut self,
        host: &mut Host,
        op: IoOp,
        offset: u64,
        len: u32,
        at: ull_simkit::SimTime,
    ) -> (SlotId, ull_simkit::SimTime) {
        let (token, device) = host.submit_async(op, offset, len, at);
        let done = device.done;
        (self.in_flight.insert((token, op, device)), done)
    }

    /// Completes the request parked in `slot`: applies the host's
    /// completion path and returns the direction and result, or `None`
    /// if `slot` is not (or no longer) in flight.
    pub fn finish(&mut self, host: &mut Host, slot: SlotId) -> Option<(IoOp, IoResult)> {
        let (token, op, device) = self.in_flight.remove(slot)?;
        Some((op, host.finish_async(token, device)))
    }

    /// Warms the in-flight slab's cache lines for an upcoming burst of
    /// [`finish`](Self::finish) calls (see [`Slab::prefetch`]).
    /// Observation-free: no port or host state changes.
    pub fn prefetch(&self, slots: &[SlotId]) {
        self.in_flight.prefetch(slots);
    }

    /// Batch variant of [`finish`](Self::finish): warms the slab lines
    /// for the whole burst up front, then drains `slots` in order,
    /// calling `each(port, host, op, result)` per finished request.
    /// Slots not (or no longer) in flight are skipped.
    ///
    /// The callback receives the port and host back so it can submit
    /// replacement I/O *between* finishes — the closed loop's
    /// finish/submit interleaving is observable (driver-tag recycling,
    /// CQE consumption), so the batch path must preserve it exactly
    /// rather than finishing the burst wholesale.
    pub fn finish_batch(
        &mut self,
        host: &mut Host,
        slots: &mut Vec<SlotId>,
        mut each: impl FnMut(&mut Self, &mut Host, IoOp, IoResult),
    ) {
        self.in_flight.prefetch(slots);
        for slot in slots.drain(..) {
            if let Some((token, op, device)) = self.in_flight.remove(slot) {
                let r = host.finish_async(token, device);
                each(self, host, op, r);
            }
        }
    }

    /// Requests currently in flight through this port.
    pub fn len(&self) -> usize {
        self.in_flight.len()
    }

    /// True if nothing is in flight.
    pub fn is_empty(&self) -> bool {
        self.in_flight.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{IoPath, SoftwareCosts};
    use ull_nvme::NvmeController;
    use ull_simkit::SimTime;
    use ull_ssd::{presets, Ssd};

    fn host() -> Host {
        let ctrl = NvmeController::new(Ssd::new(presets::ull_800g()).unwrap(), 1, 1024);
        Host::new(ctrl, SoftwareCosts::linux_4_14(), IoPath::KernelInterrupt)
    }

    #[test]
    fn submit_then_finish_round_trips() {
        let mut h = host();
        let mut port = AsyncPort::with_capacity(4);
        assert!(port.is_empty());
        let (slot, done) = port.submit(&mut h, IoOp::Read, 0, 4096, SimTime::ZERO);
        assert!(done > SimTime::ZERO);
        assert_eq!(port.len(), 1);
        let (op, r) = port.finish(&mut h, slot).expect("slot in flight");
        assert_eq!(op, IoOp::Read);
        assert_eq!(r.submitted, SimTime::ZERO);
        assert!(r.user_visible >= done);
        assert!(port.is_empty());
        assert!(port.finish(&mut h, slot).is_none(), "slot finishes once");
    }

    #[test]
    fn finish_batch_matches_singleton_finishes_bitwise() {
        // The batch path (prefetch + in-order drain) must reproduce the
        // one-at-a-time finish sequence exactly, including an
        // interleaved resubmit issued from the callback.
        let run = |batched: bool| -> Vec<(IoOp, crate::IoResult)> {
            let mut h = host();
            let mut port = AsyncPort::with_capacity(8);
            let mut slots = Vec::new();
            for i in 0..6u64 {
                let (slot, _) = port.submit(&mut h, IoOp::Read, i * 4096, 4096, SimTime::ZERO);
                slots.push(slot);
            }
            let mut out = Vec::new();
            let resub = SimTime::from_micros(500);
            if batched {
                let mut burst = slots.clone();
                port.finish_batch(&mut h, &mut burst, |port, host, op, r| {
                    // One replacement per completion, like the closed loop.
                    port.submit(host, IoOp::Write, 0, 4096, resub);
                    out.push((op, r));
                });
                assert!(burst.is_empty(), "finish_batch drains the burst");
            } else {
                for &slot in &slots {
                    let (op, r) = port.finish(&mut h, slot).unwrap();
                    port.submit(&mut h, IoOp::Write, 0, 4096, resub);
                    out.push((op, r));
                }
            }
            out
        };
        assert_eq!(run(true), run(false));
    }

    #[test]
    fn port_matches_the_open_coded_bookkeeping() {
        // The port must be pure plumbing: submitting/finishing through
        // it yields the same IoResult as calling the host directly.
        let mut a = host();
        let mut b = host();
        let mut port = AsyncPort::with_capacity(2);
        let (slot, _) = port.submit(&mut a, IoOp::Write, 8192, 4096, SimTime::ZERO);
        let (_, via_port) = port.finish(&mut a, slot).unwrap();
        let (token, dev) = b.submit_async(IoOp::Write, 8192, 4096, SimTime::ZERO);
        let direct = b.finish_async(token, dev);
        assert_eq!(via_port, direct);
    }
}
