//! `ull-stack` — host storage stack models for the ull-ssd-study
//! workspace.
//!
//! Everything between the application and the NVMe rings, with per-function
//! CPU-cycle and memory-instruction accounting:
//!
//! * [`CpuAccounting`] — the simulator's VTune: cycles by `(mode, function)`,
//!   loads/stores by function.
//! * [`SoftwareCosts`] — the calibrated Linux 4.14 + SPDK 19.07 cost table.
//! * [`Host`] — one core driving one device over a chosen [`IoPath`]:
//!   kernel-interrupt, kernel-polled, kernel-hybrid, or SPDK.
//! * [`AsyncPort`] — in-flight bookkeeping for component-driven async
//!   engines built on [`Host::submit_async`] / [`Host::finish_async`].
//!
//! # Examples
//!
//! Compare interrupt and polled completion on the ULL device:
//!
//! ```
//! use ull_nvme::NvmeController;
//! use ull_simkit::SimTime;
//! use ull_ssd::{presets, Ssd};
//! use ull_stack::{Host, IoOp, IoPath, SoftwareCosts};
//!
//! let mut lat = |path| {
//!     let ctrl = NvmeController::new(Ssd::new(presets::ull_800g()).unwrap(), 1, 1024);
//!     let mut host = Host::new(ctrl, SoftwareCosts::linux_4_14(), path);
//!     host.io_sync(IoOp::Read, 0, 4096, SimTime::ZERO).latency
//! };
//! assert!(lat(IoPath::KernelPolled) < lat(IoPath::KernelInterrupt));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod blkmq;
mod costs;
mod cpu;
mod engine;
mod host;

pub use blkmq::{split_request, split_request_into, Tag, TagSet};
pub use costs::{IterProfile, Segment, SoftwareCosts};
pub use cpu::{CpuAccounting, MemCounts, Mode, StackFn};
pub use engine::AsyncPort;
pub use host::{Host, IoOp, IoPath, IoResult};
