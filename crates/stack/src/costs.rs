//! Calibrated software-path costs.
//!
//! Each segment of the I/O path carries a *latency* contribution (how much
//! it delays the request) and a *busy* contribution (how long it occupies
//! the CPU — for interrupt-side segments these differ, because scheduler
//! and IRQ delivery delays are waiting, not computing), plus the load/store
//! instruction counts VTune would attribute to it.
//!
//! The default table, [`SoftwareCosts::linux_4_14()`], is calibrated so the
//! full stack reproduces the paper's §V/§VI numbers on the `ull-ssd`
//! presets: interrupt-vs-poll gaps (~2.2 µs), poll CPU near 100% kernel,
//! memory-instruction inflation of polling and SPDK, and SPDK's ~25%
//! sequential-read win on the ULL device. EXPERIMENTS.md records the
//! resulting per-figure comparison.

use ull_simkit::SimDuration;

/// One fixed path segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Segment {
    /// Delay added to the request.
    pub latency: SimDuration,
    /// CPU-busy portion of that delay.
    pub busy: SimDuration,
    /// Load instructions executed.
    pub loads: u64,
    /// Store instructions executed.
    pub stores: u64,
}

impl Segment {
    /// A segment whose latency is fully CPU-busy.
    pub const fn busy_ns(ns: u64, loads: u64, stores: u64) -> Segment {
        Segment {
            latency: SimDuration::from_nanos(ns),
            busy: SimDuration::from_nanos(ns),
            loads,
            stores,
        }
    }

    /// A segment with separate latency and busy durations.
    pub const fn mixed_ns(latency_ns: u64, busy_ns: u64, loads: u64, stores: u64) -> Segment {
        Segment {
            latency: SimDuration::from_nanos(latency_ns),
            busy: SimDuration::from_nanos(busy_ns),
            loads,
            stores,
        }
    }
}

/// One iteration of a polling loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IterProfile {
    /// Wall time of one iteration of this function's share.
    pub duration: SimDuration,
    /// Load instructions per iteration.
    pub loads: u64,
    /// Store instructions per iteration.
    pub stores: u64,
}

/// The full host software cost table.
#[derive(Debug, Clone, PartialEq)]
pub struct SoftwareCosts {
    /// Userland benchmark work per I/O (buffer prep, bookkeeping); runs
    /// between I/Os, so it extends wall time but not request latency.
    pub user_per_io: Segment,
    /// System-call entry/exit.
    pub syscall: Segment,
    /// VFS and block-device file layer.
    pub vfs: Segment,
    /// blk-mq request construction, tagging and dispatch.
    pub block_layer: Segment,
    /// NVMe driver SQE build + SQ doorbell.
    pub driver_submit: Segment,
    /// Interrupt top half (runs after MSI delivery).
    pub isr: Segment,
    /// Softirq completion half.
    pub softirq: Segment,
    /// Scheduler wakeup + context switch back to the issuing thread.
    pub wakeup: Segment,
    /// `blk_mq_poll()` share of one poll-loop iteration.
    pub poll_iter_blkmq: IterProfile,
    /// `nvme_poll()` share of one poll-loop iteration.
    pub poll_iter_nvme: IterProfile,
    /// Post-detection completion processing in polled mode.
    pub poll_complete: Segment,
    /// Probability that a poll is preempted by the scheduler (need_resched
    /// while holding the CQ lock), adding `resched_delay` — the polled
    /// mode's five-nines penalty of fig. 11.
    pub resched_prob: f64,
    /// Delay when a poll preemption fires.
    pub resched_delay: SimDuration,
    /// Hybrid polling: mean tracking + hrtimer programming.
    pub hybrid_setup: Segment,
    /// Hybrid polling: timer expiry + wakeup before polling resumes.
    pub hybrid_wake: Segment,
    /// Fraction of the tracked mean latency slept (Linux 4.14 uses 1/2).
    pub hybrid_sleep_fraction: f64,
    /// SPDK submission (user-space SQE build + BAR doorbell).
    pub spdk_submit: Segment,
    /// `spdk_nvme_qpair_process_completions()` share of one reactor
    /// iteration.
    pub spdk_iter_qpair: IterProfile,
    /// `nvme_pcie_qpair_process_completions()` share of one iteration.
    pub spdk_iter_pcie: IterProfile,
    /// `nvme_qpair_check_enabled()` share of one iteration.
    pub spdk_iter_check: IterProfile,
    /// SPDK post-detection completion callback work.
    pub spdk_complete: Segment,
}

impl SoftwareCosts {
    /// The calibrated Linux 4.14 + SPDK 19.07 cost table (see module docs).
    pub fn linux_4_14() -> Self {
        SoftwareCosts {
            user_per_io: Segment::busy_ns(1_000, 600, 450),
            syscall: Segment::busy_ns(150, 80, 40),
            vfs: Segment::busy_ns(200, 250, 180),
            block_layer: Segment::busy_ns(350, 450, 330),
            driver_submit: Segment::busy_ns(280, 180, 120),
            // IRQ delivery and scheduling latencies exceed their CPU work.
            isr: Segment::mixed_ns(250, 250, 120, 60),
            softirq: Segment::mixed_ns(700, 350, 280, 200),
            wakeup: Segment::mixed_ns(1_200, 250, 150, 120),
            poll_iter_blkmq: IterProfile {
                duration: SimDuration::from_nanos(95),
                loads: 26,
                stores: 10,
            },
            poll_iter_nvme: IterProfile {
                duration: SimDuration::from_nanos(25),
                loads: 16,
                stores: 4,
            },
            poll_complete: Segment::busy_ns(300, 260, 190),
            resched_prob: 3e-5,
            resched_delay: SimDuration::from_micros(480),
            hybrid_setup: Segment::busy_ns(300, 120, 90),
            hybrid_wake: Segment::mixed_ns(900, 350, 150, 110),
            hybrid_sleep_fraction: 0.5,
            spdk_submit: Segment::busy_ns(350, 300, 220),
            spdk_iter_qpair: IterProfile {
                duration: SimDuration::from_nanos(55),
                loads: 260,
                stores: 160,
            },
            spdk_iter_pcie: IterProfile {
                duration: SimDuration::from_nanos(30),
                loads: 160,
                stores: 100,
            },
            spdk_iter_check: IterProfile {
                duration: SimDuration::from_nanos(15),
                loads: 145,
                stores: 20,
            },
            spdk_complete: Segment::busy_ns(150, 120, 80),
        }
    }

    /// Total kernel submission-path segment (syscall through doorbell).
    pub fn kernel_submit_latency(&self) -> SimDuration {
        self.syscall.latency
            + self.vfs.latency
            + self.block_layer.latency
            + self.driver_submit.latency
    }

    /// Total interrupt-side completion latency (after MSI delivery).
    pub fn interrupt_completion_latency(&self) -> SimDuration {
        self.isr.latency + self.softirq.latency + self.wakeup.latency
    }

    /// Wall time of one kernel poll-loop iteration.
    pub fn poll_iter_duration(&self) -> SimDuration {
        self.poll_iter_blkmq.duration + self.poll_iter_nvme.duration
    }

    /// Wall time of one SPDK reactor iteration.
    pub fn spdk_iter_duration(&self) -> SimDuration {
        self.spdk_iter_qpair.duration + self.spdk_iter_pcie.duration + self.spdk_iter_check.duration
    }
}

impl Default for SoftwareCosts {
    fn default() -> Self {
        SoftwareCosts::linux_4_14()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interrupt_path_is_slower_than_poll_detection() {
        let c = SoftwareCosts::linux_4_14();
        // The paper's ~2.2us interrupt-vs-poll gap comes from here (plus MSI).
        let int = c.interrupt_completion_latency();
        let poll = c.poll_iter_duration() + c.poll_complete.latency;
        assert!(int.as_micros_f64() - poll.as_micros_f64() > 1.5);
    }

    #[test]
    fn submit_path_is_about_a_microsecond() {
        let c = SoftwareCosts::linux_4_14();
        let s = c.kernel_submit_latency().as_micros_f64();
        assert!((0.7..1.5).contains(&s), "submit path {s}us");
    }

    #[test]
    fn spdk_iterations_are_memory_heavy() {
        let c = SoftwareCosts::linux_4_14();
        let spdk_loads = c.spdk_iter_qpair.loads + c.spdk_iter_pcie.loads + c.spdk_iter_check.loads;
        let kernel_loads = c.poll_iter_blkmq.loads + c.poll_iter_nvme.loads;
        // Fig. 21/22: SPDK's poll machinery touches far more memory per scan.
        assert!(spdk_loads > 8 * kernel_loads);
    }

    #[test]
    fn busy_never_exceeds_latency() {
        let c = SoftwareCosts::linux_4_14();
        for s in [
            c.user_per_io,
            c.syscall,
            c.vfs,
            c.block_layer,
            c.driver_submit,
            c.isr,
            c.softirq,
            c.wakeup,
            c.poll_complete,
            c.hybrid_setup,
            c.hybrid_wake,
            c.spdk_submit,
            c.spdk_complete,
        ] {
            assert!(s.busy <= s.latency, "{s:?}");
        }
    }

    #[test]
    fn segment_constructors() {
        let s = Segment::busy_ns(100, 5, 3);
        assert_eq!(s.latency, s.busy);
        let m = Segment::mixed_ns(200, 50, 1, 1);
        assert!(m.busy < m.latency);
    }
}
