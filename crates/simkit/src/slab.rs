//! A generational slab of reusable slots.
//!
//! The request hot path used to key in-flight I/O state by command id
//! in a `BTreeMap`, paying an allocation plus a tree walk per I/O.
//! [`Slab`] replaces that with an O(1) vector slot reused across
//! requests: [`insert`](Slab::insert) hands back a [`SlotId`] that
//! encodes both the slot index and a generation counter, so a stale id
//! (kept across a remove/reuse) can never alias a newer occupant.
//!
//! Determinism note: slot indices are allocated from a LIFO free list,
//! which makes ids a pure function of the insert/remove sequence —
//! the same schedule always yields the same ids. Nothing in the slab
//! depends on addresses, hashing or wall time.

/// Handle to an occupied [`Slab`] slot: slot index in the low 32 bits,
/// generation in the high 32 bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SlotId(u64);

impl SlotId {
    #[inline]
    fn new(index: u32, generation: u32) -> Self {
        SlotId(u64::from(generation) << 32 | u64::from(index))
    }

    /// The slot index this id refers to.
    #[inline]
    pub fn index(self) -> usize {
        (self.0 & 0xFFFF_FFFF) as usize
    }

    #[inline]
    fn generation(self) -> u32 {
        (self.0 >> 32) as u32
    }
}

struct Slot<T> {
    generation: u32,
    value: Option<T>,
}

/// A generational arena of reusable slots.
///
/// # Examples
///
/// ```
/// use ull_simkit::Slab;
///
/// let mut slab = Slab::new();
/// let a = slab.insert("alpha");
/// let b = slab.insert("beta");
/// assert_eq!(slab.get(a), Some(&"alpha"));
/// assert_eq!(slab.remove(a), Some("alpha"));
/// // The freed slot is reused, but under a new generation: the old id
/// // can no longer see the new occupant.
/// let c = slab.insert("gamma");
/// assert_eq!(c.index(), a.index());
/// assert_eq!(slab.get(a), None);
/// assert_eq!(slab.get(c), Some(&"gamma"));
/// assert_eq!(slab.get(b), Some(&"beta"));
/// ```
pub struct Slab<T> {
    slots: Vec<Slot<T>>,
    free: Vec<u32>,
    len: usize,
}

impl<T> Default for Slab<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Slab<T> {
    /// Creates an empty slab.
    pub fn new() -> Self {
        Slab {
            slots: Vec::new(),
            free: Vec::new(),
            len: 0,
        }
    }

    /// Creates an empty slab with room for `cap` values before any
    /// backing reallocation.
    pub fn with_capacity(cap: usize) -> Self {
        Slab {
            slots: Vec::with_capacity(cap),
            free: Vec::new(),
            len: 0,
        }
    }

    /// Stores `value`, reusing a freed slot when one is available, and
    /// returns its id.
    #[inline]
    pub fn insert(&mut self, value: T) -> SlotId {
        self.len += 1;
        if let Some(index) = self.free.pop() {
            let slot = &mut self.slots[index as usize];
            slot.value = Some(value);
            SlotId::new(index, slot.generation)
        } else {
            let index = self.slots.len() as u32;
            self.slots.push(Slot {
                generation: 0,
                value: Some(value),
            });
            SlotId::new(index, 0)
        }
    }

    /// Removes and returns the value at `id`, or `None` if the id is
    /// stale or the slot is vacant. The slot becomes reusable under the
    /// next generation.
    #[inline]
    pub fn remove(&mut self, id: SlotId) -> Option<T> {
        let slot = self.slots.get_mut(id.index())?;
        if slot.generation != id.generation() {
            return None;
        }
        let value = slot.value.take()?;
        slot.generation = slot.generation.wrapping_add(1);
        self.free.push(id.index() as u32);
        self.len -= 1;
        Some(value)
    }

    /// Borrows the value at `id`, or `None` if the id is stale or the
    /// slot is vacant.
    #[inline]
    pub fn get(&self, id: SlotId) -> Option<&T> {
        let slot = self.slots.get(id.index())?;
        if slot.generation != id.generation() {
            return None;
        }
        slot.value.as_ref()
    }

    /// Mutably borrows the value at `id`, or `None` if the id is stale
    /// or the slot is vacant.
    #[inline]
    pub fn get_mut(&mut self, id: SlotId) -> Option<&mut T> {
        let slot = self.slots.get_mut(id.index())?;
        if slot.generation != id.generation() {
            return None;
        }
        slot.value.as_mut()
    }

    /// Number of occupied slots.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no slots are occupied.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl<T> std::fmt::Debug for Slab<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Slab")
            .field("len", &self.len)
            .field("capacity", &self.slots.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut s = Slab::new();
        let ids: Vec<_> = (0..10).map(|i| s.insert(i * i)).collect();
        assert_eq!(s.len(), 10);
        for (i, &id) in ids.iter().enumerate() {
            assert_eq!(s.get(id), Some(&(i * i)));
        }
        for (i, &id) in ids.iter().enumerate() {
            assert_eq!(s.remove(id), Some(i * i));
            assert_eq!(s.remove(id), None, "double-remove must miss");
        }
        assert!(s.is_empty());
    }

    #[test]
    fn stale_ids_never_alias_new_occupants() {
        let mut s = Slab::new();
        let a = s.insert("old");
        s.remove(a);
        let b = s.insert("new");
        assert_eq!(b.index(), a.index(), "slot is reused");
        assert_ne!(a, b);
        assert_eq!(s.get(a), None);
        assert_eq!(s.get_mut(a), None);
        assert_eq!(s.remove(a), None);
        assert_eq!(s.get(b), Some(&"new"));
    }

    #[test]
    fn free_list_is_lifo_and_deterministic() {
        let mut s = Slab::with_capacity(4);
        let a = s.insert(1);
        let b = s.insert(2);
        s.remove(a);
        s.remove(b);
        // LIFO: b's slot comes back first, then a's.
        assert_eq!(s.insert(3).index(), b.index());
        assert_eq!(s.insert(4).index(), a.index());
    }

    #[test]
    fn get_mut_updates_in_place() {
        let mut s = Slab::new();
        let id = s.insert(41);
        if let Some(v) = s.get_mut(id) {
            *v += 1;
        }
        assert_eq!(s.remove(id), Some(42));
    }
}
