//! A generational slab of reusable slots, laid out struct-of-arrays.
//!
//! The request hot path used to key in-flight I/O state by command id
//! in a `BTreeMap`, paying an allocation plus a tree walk per I/O.
//! [`Slab`] replaces that with an O(1) vector slot reused across
//! requests: [`insert`](Slab::insert) hands back a [`SlotId`] that
//! encodes both the slot index and a generation counter, so a stale id
//! (kept across a remove/reuse) can never alias a newer occupant.
//!
//! # Layout: struct-of-arrays
//!
//! The slab stores its hot metadata — the per-slot generation counter
//! every liveness check reads — in a dense `Vec<u32>` lane separate
//! from the payload lane (`Vec<Option<T>>`). Sixteen generations share
//! a cache line, so validating a burst of completion ids touches a
//! handful of lines regardless of how large the payload type is; the
//! payload line is only pulled once the check passes. The previous
//! array-of-structs layout interleaved a 4-byte generation with each
//! payload, striding the checks across the whole arena.
//!
//! [`prefetch`](Slab::prefetch) warms both lanes for an upcoming burst
//! of ids. The crate forbids `unsafe`, so instead of `_mm_prefetch` it
//! issues ordinary loads pinned by [`core::hint::black_box`] — a
//! touch-ahead: the lines are resident by the time the drain loop
//! dereferences them, which is all a prefetch buys on this access
//! pattern.
//!
//! Determinism note: slot indices are allocated from a LIFO free list,
//! which makes ids a pure function of the insert/remove sequence —
//! the same schedule always yields the same ids. Nothing in the slab
//! depends on addresses, hashing or wall time.

/// Handle to an occupied [`Slab`] slot: slot index in the low 32 bits,
/// generation in the high 32 bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SlotId(u64);

impl SlotId {
    #[inline]
    fn new(index: u32, generation: u32) -> Self {
        SlotId(u64::from(generation) << 32 | u64::from(index))
    }

    /// The slot index this id refers to.
    #[inline]
    pub fn index(self) -> usize {
        (self.0 & 0xFFFF_FFFF) as usize
    }

    #[inline]
    fn generation(self) -> u32 {
        (self.0 >> 32) as u32
    }
}

/// A generational arena of reusable slots.
///
/// # Examples
///
/// ```
/// use ull_simkit::Slab;
///
/// let mut slab = Slab::new();
/// let a = slab.insert("alpha");
/// let b = slab.insert("beta");
/// assert_eq!(slab.get(a), Some(&"alpha"));
/// assert_eq!(slab.remove(a), Some("alpha"));
/// // The freed slot is reused, but under a new generation: the old id
/// // can no longer see the new occupant.
/// let c = slab.insert("gamma");
/// assert_eq!(c.index(), a.index());
/// assert_eq!(slab.get(a), None);
/// assert_eq!(slab.get(c), Some(&"gamma"));
/// assert_eq!(slab.get(b), Some(&"beta"));
/// ```
pub struct Slab<T> {
    /// Hot lane: per-slot generation counters, dense. Parallel to
    /// `values`; grown in lockstep.
    generations: Vec<u32>,
    /// Cold lane: the payloads. `Some` iff the slot is occupied.
    values: Vec<Option<T>>,
    free: Vec<u32>,
    len: usize,
}

impl<T> Default for Slab<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Slab<T> {
    /// Creates an empty slab.
    pub fn new() -> Self {
        Slab {
            generations: Vec::new(),
            values: Vec::new(),
            free: Vec::new(),
            len: 0,
        }
    }

    /// Creates an empty slab with room for `cap` values before any
    /// backing reallocation.
    pub fn with_capacity(cap: usize) -> Self {
        Slab {
            generations: Vec::with_capacity(cap),
            values: Vec::with_capacity(cap),
            free: Vec::new(),
            len: 0,
        }
    }

    /// Stores `value`, reusing a freed slot when one is available, and
    /// returns its id.
    #[inline]
    pub fn insert(&mut self, value: T) -> SlotId {
        self.len += 1;
        if let Some(index) = self.free.pop() {
            self.values[index as usize] = Some(value);
            SlotId::new(index, self.generations[index as usize])
        } else {
            let index = self.generations.len() as u32;
            self.generations.push(0);
            self.values.push(Some(value));
            SlotId::new(index, 0)
        }
    }

    /// Removes and returns the value at `id`, or `None` if the id is
    /// stale or the slot is vacant. The slot becomes reusable under the
    /// next generation.
    #[inline]
    pub fn remove(&mut self, id: SlotId) -> Option<T> {
        let generation = self.generations.get_mut(id.index())?;
        if *generation != id.generation() {
            return None;
        }
        let value = self.values[id.index()].take()?;
        *generation = generation.wrapping_add(1);
        self.free.push(id.index() as u32);
        self.len -= 1;
        Some(value)
    }

    /// Borrows the value at `id`, or `None` if the id is stale or the
    /// slot is vacant.
    #[inline]
    pub fn get(&self, id: SlotId) -> Option<&T> {
        if *self.generations.get(id.index())? != id.generation() {
            return None;
        }
        self.values[id.index()].as_ref()
    }

    /// Mutably borrows the value at `id`, or `None` if the id is stale
    /// or the slot is vacant.
    #[inline]
    pub fn get_mut(&mut self, id: SlotId) -> Option<&mut T> {
        if *self.generations.get(id.index())? != id.generation() {
            return None;
        }
        self.values[id.index()].as_mut()
    }

    /// Warms the cache for an upcoming burst of lookups.
    ///
    /// Issues pinned loads (see the module docs) of the generation and
    /// payload lanes for every id in `ids`, so a completion drain that
    /// is about to [`remove`](Self::remove) the whole burst finds the
    /// lines resident instead of missing once per slot. Stale or
    /// out-of-range ids are touched harmlessly; no observable slab
    /// state changes.
    #[inline]
    pub fn prefetch(&self, ids: &[SlotId]) {
        for id in ids {
            let i = id.index();
            core::hint::black_box(self.generations.get(i).copied());
            core::hint::black_box(self.values.get(i).map(Option::is_some));
        }
    }

    /// Number of occupied slots.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no slots are occupied.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl<T> std::fmt::Debug for Slab<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Slab")
            .field("len", &self.len)
            .field("capacity", &self.generations.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut s = Slab::new();
        let ids: Vec<_> = (0..10).map(|i| s.insert(i * i)).collect();
        assert_eq!(s.len(), 10);
        for (i, &id) in ids.iter().enumerate() {
            assert_eq!(s.get(id), Some(&(i * i)));
        }
        for (i, &id) in ids.iter().enumerate() {
            assert_eq!(s.remove(id), Some(i * i));
            assert_eq!(s.remove(id), None, "double-remove must miss");
        }
        assert!(s.is_empty());
    }

    #[test]
    fn stale_ids_never_alias_new_occupants() {
        let mut s = Slab::new();
        let a = s.insert("old");
        s.remove(a);
        let b = s.insert("new");
        assert_eq!(b.index(), a.index(), "slot is reused");
        assert_ne!(a, b);
        assert_eq!(s.get(a), None);
        assert_eq!(s.get_mut(a), None);
        assert_eq!(s.remove(a), None);
        assert_eq!(s.get(b), Some(&"new"));
    }

    #[test]
    fn free_list_is_lifo_and_deterministic() {
        let mut s = Slab::with_capacity(4);
        let a = s.insert(1);
        let b = s.insert(2);
        s.remove(a);
        s.remove(b);
        // LIFO: b's slot comes back first, then a's.
        assert_eq!(s.insert(3).index(), b.index());
        assert_eq!(s.insert(4).index(), a.index());
    }

    #[test]
    fn get_mut_updates_in_place() {
        let mut s = Slab::new();
        let id = s.insert(41);
        if let Some(v) = s.get_mut(id) {
            *v += 1;
        }
        assert_eq!(s.remove(id), Some(42));
    }

    #[test]
    fn prefetch_is_observably_inert() {
        let mut s = Slab::new();
        let a = s.insert(7u32);
        let stale = {
            let tmp = s.insert(8u32);
            s.remove(tmp);
            tmp
        };
        let out_of_range = SlotId::new(900, 3);
        s.prefetch(&[a, stale, out_of_range]);
        assert_eq!(s.len(), 1);
        assert_eq!(s.get(a), Some(&7));
        assert_eq!(s.get(stale), None);
    }
}
