//! Interned, cheaply-clonable string labels.
//!
//! Job and report names used to be `String`s cloned once per report
//! assembly — and, worse, formatted per run in sweep drivers. [`Label`]
//! makes the common case (a `&'static str` literal) completely
//! allocation-free and the dynamic case (a sweep-generated name) a
//! reference-count bump per clone instead of a fresh heap copy.

use std::borrow::Cow;
use std::fmt;
use std::sync::Arc;

/// A cheaply-clonable string label.
///
/// Static labels carry no allocation at all; dynamic ones share a
/// single `Arc<str>` across clones. Equality, ordering and hashing
/// follow the string contents, so a static and a dynamic label with
/// the same text compare equal.
///
/// # Examples
///
/// ```
/// use ull_simkit::Label;
///
/// let fixed: Label = "randread".into();
/// let swept: Label = format!("qd{}", 32).into();
/// assert_eq!(Label::from("qd32"), swept);
/// assert_eq!(fixed.as_str(), "randread");
/// let copy = swept.clone(); // rc bump, no new allocation
/// assert_eq!(copy.to_string(), "qd32");
/// ```
#[derive(Clone)]
pub struct Label(Repr);

#[derive(Clone)]
enum Repr {
    Static(&'static str),
    Shared(Arc<str>),
}

impl Label {
    /// The label's text.
    #[inline]
    pub fn as_str(&self) -> &str {
        match &self.0 {
            Repr::Static(s) => s,
            Repr::Shared(s) => s,
        }
    }
}

impl fmt::Display for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl fmt::Debug for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self.as_str(), f)
    }
}

impl From<&'static str> for Label {
    #[inline]
    fn from(s: &'static str) -> Self {
        Label(Repr::Static(s))
    }
}

impl From<String> for Label {
    fn from(s: String) -> Self {
        Label(Repr::Shared(s.into()))
    }
}

impl From<Cow<'static, str>> for Label {
    fn from(s: Cow<'static, str>) -> Self {
        match s {
            Cow::Borrowed(b) => Label(Repr::Static(b)),
            Cow::Owned(o) => o.into(),
        }
    }
}

impl std::ops::Deref for Label {
    type Target = str;
    #[inline]
    fn deref(&self) -> &str {
        self.as_str()
    }
}

impl AsRef<str> for Label {
    #[inline]
    fn as_ref(&self) -> &str {
        self.as_str()
    }
}

impl PartialEq for Label {
    fn eq(&self, other: &Self) -> bool {
        self.as_str() == other.as_str()
    }
}
impl Eq for Label {}

impl PartialEq<str> for Label {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == other
    }
}

impl PartialEq<&str> for Label {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == *other
    }
}

impl PartialOrd for Label {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Label {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_str().cmp(other.as_str())
    }
}

impl std::hash::Hash for Label {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_str().hash(state);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_and_shared_compare_by_contents() {
        let a = Label::from("zssd");
        let b = Label::from(String::from("zssd"));
        assert_eq!(a, b);
        assert_eq!(a, "zssd");
        let owned = Label::from(String::from("b"));
        assert_eq!(Label::from("a").cmp(&owned), std::cmp::Ordering::Less);
    }

    #[test]
    fn clone_shares_the_backing_arc() {
        let l = Label::from(String::from("qd32"));
        let c = l.clone();
        match (&l.0, &c.0) {
            (Repr::Shared(x), Repr::Shared(y)) => assert!(Arc::ptr_eq(x, y)),
            _ => panic!("dynamic labels must stay shared"),
        }
    }

    #[test]
    fn display_and_deref() {
        let l = Label::from("seqwrite");
        assert_eq!(format!("{l}"), "seqwrite");
        assert_eq!(l.len(), 8);
        assert_eq!(l.as_ref(), "seqwrite");
    }
}
