//! A log-bucketed latency histogram with high-percentile fidelity.
//!
//! The layout follows the HDR-histogram idea: values are grouped by
//! magnitude (power of two) and each magnitude is split into a fixed number
//! of linear sub-buckets, giving a bounded relative error everywhere. With
//! 128 sub-buckets per octave (64 effective, since the leading bit selects
//! the octave) the worst-case relative quantile error is under 1.6%, which
//! is ample for reproducing the paper's 99.999th ("five-nines") latency
//! plots from millions of samples.

use core::fmt;

use crate::time::SimDuration;

// 128 linear sub-buckets per power of two. Because the top bit of a value
// selects the octave, only the upper half of each octave's sub-buckets is
// populated, so the effective resolution is 1/64 — a worst-case relative
// quantile error under 1.6%.
const SUB_BITS: u32 = 7;
const SUB_COUNT: u64 = 1 << SUB_BITS;

/// Latency histogram over nanosecond durations.
///
/// # Examples
///
/// ```
/// use ull_simkit::{Histogram, SimDuration};
///
/// let mut h = Histogram::new();
/// for us in 1..=1000u64 {
///     h.record(SimDuration::from_micros(us));
/// }
/// let p50 = h.quantile(0.50).as_micros_f64();
/// assert!((p50 - 500.0).abs() / 500.0 < 0.02); // within bucket error
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct Histogram {
    counts: Vec<u64>,
    total: u64,
    min: u64,
    max: u64,
    sum: u128,
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        // 64 magnitudes x SUB_COUNT sub-buckets covers the whole u64 range.
        Histogram {
            counts: vec![0; 64 * SUB_COUNT as usize],
            total: 0,
            min: u64::MAX,
            max: 0,
            sum: 0,
        }
    }

    #[inline]
    fn index_of(value: u64) -> usize {
        if value < SUB_COUNT {
            return value as usize;
        }
        let mag = 63 - value.leading_zeros(); // >= SUB_BITS here
        let shift = mag - SUB_BITS + 1;
        let sub = (value >> shift) & (SUB_COUNT - 1);
        (((shift as u64) * SUB_COUNT) + SUB_COUNT + sub) as usize
    }

    fn value_of(index: usize) -> u64 {
        let idx = index as u64;
        if idx < SUB_COUNT {
            return idx;
        }
        let shift = (idx - SUB_COUNT) / SUB_COUNT;
        let sub = (idx - SUB_COUNT) % SUB_COUNT;
        // `sub` retains the leading bit of the value, so the bucket spans
        // [sub << shift, (sub + 1) << shift); report the upper edge, which is
        // conservative for quantiles.
        (sub << shift) + (1u64 << shift) - 1
    }

    /// Records one duration sample.
    #[inline]
    pub fn record(&mut self, d: SimDuration) {
        let v = d.as_nanos();
        let idx = Self::index_of(v);
        self.counts[idx] += 1;
        self.total += 1;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        self.sum += v as u128;
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Exact mean of the recorded samples.
    pub fn mean(&self) -> SimDuration {
        if self.total == 0 {
            return SimDuration::ZERO;
        }
        SimDuration::from_nanos((self.sum / self.total as u128) as u64)
    }

    /// Exact minimum recorded sample.
    pub fn min(&self) -> SimDuration {
        if self.total == 0 {
            SimDuration::ZERO
        } else {
            SimDuration::from_nanos(self.min)
        }
    }

    /// Exact maximum recorded sample.
    pub fn max(&self) -> SimDuration {
        SimDuration::from_nanos(self.max)
    }

    /// The `q`-quantile (e.g. `0.99999` for five-nines), as the upper edge of
    /// the containing bucket, clamped to the exact observed min/max.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> SimDuration {
        assert!(
            (0.0..=1.0).contains(&q),
            "quantile must be in [0,1], got {q}"
        );
        if self.total == 0 {
            return SimDuration::ZERO;
        }
        // "First value strictly above a q fraction of samples": floor+1,
        // capped at n. This makes p99.999 over 10^6 samples include the
        // ten slowest, matching the paper's five-nines reading.
        let rank = (((q * self.total as f64).floor() as u64) + 1).min(self.total);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                let v = Self::value_of(i).clamp(self.min, self.max);
                return SimDuration::from_nanos(v);
            }
        }
        SimDuration::from_nanos(self.max)
    }

    /// Convenience: the 99.999th percentile the paper calls "five nines".
    pub fn five_nines(&self) -> SimDuration {
        self.quantile(0.99999)
    }

    /// Exact sum of all recorded samples, in nanoseconds.
    ///
    /// `u128` so that even billions of near-`u64::MAX` samples cannot
    /// overflow; consumers needing exact stage-total accounting (the
    /// `ull-probe` breakdown invariant) rely on this never saturating.
    pub fn sum_nanos(&self) -> u128 {
        self.sum
    }

    /// Merges another histogram into this one.
    ///
    /// Merge is commutative and associative (bucket-wise addition plus
    /// min/max/sum folds), so shard aggregation order cannot change the
    /// result — property-tested below, and relied on by `ull-exec`'s
    /// declaration-order merge.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.sum += other.sum;
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl fmt::Debug for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.total)
            .field("mean", &self.mean())
            .field("p99.999", &self.five_nines())
            .field("max", &self.max())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn us(n: u64) -> SimDuration {
        SimDuration::from_micros(n)
    }

    #[test]
    fn small_values_are_exact() {
        let mut h = Histogram::new();
        for v in 0..SUB_COUNT {
            h.record(SimDuration::from_nanos(v));
        }
        assert_eq!(h.quantile(0.0).as_nanos(), 0);
        assert_eq!(h.quantile(1.0).as_nanos(), SUB_COUNT - 1);
    }

    #[test]
    fn quantiles_bounded_relative_error() {
        let mut h = Histogram::new();
        for v in 1..=100_000u64 {
            h.record(SimDuration::from_nanos(v * 17));
        }
        for &q in &[0.5, 0.9, 0.99, 0.999, 0.99999] {
            let est = h.quantile(q).as_nanos() as f64;
            let exact = (q * 100_000.0).ceil() * 17.0;
            assert!(
                (est - exact).abs() / exact < 0.02,
                "q={q} est={est} exact={exact}"
            );
        }
    }

    #[test]
    fn five_nines_catches_rare_outliers() {
        let mut h = Histogram::new();
        for _ in 0..999_990 {
            h.record(us(10));
        }
        for _ in 0..10 {
            h.record(us(5_000));
        }
        // Exactly at the 99.999th boundary the outliers must be visible.
        assert!(h.five_nines() >= us(4_900), "got {}", h.five_nines());
        assert!(h.quantile(0.999) <= us(11));
    }

    #[test]
    fn mean_min_max_exact() {
        let mut h = Histogram::new();
        h.record(us(10));
        h.record(us(30));
        assert_eq!(h.mean(), us(20));
        assert_eq!(h.min(), us(10));
        assert_eq!(h.max(), us(30));
        assert_eq!(h.count(), 2);
    }

    #[test]
    fn merge_equals_union() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut whole = Histogram::new();
        for i in 0..1000u64 {
            let v = SimDuration::from_nanos(i * i + 1);
            whole.record(v);
            if i % 2 == 0 {
                a.record(v)
            } else {
                b.record(v)
            }
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert_eq!(a.quantile(0.9), whole.quantile(0.9));
        assert_eq!(a.mean(), whole.mean());
    }

    #[test]
    #[should_panic(expected = "quantile must be in")]
    fn rejects_bad_quantile() {
        Histogram::new().quantile(1.5);
    }

    /// Property: merging shards in any order yields the same histogram.
    ///
    /// `ull-probe` aggregates per-worker `MetricSet` shards whose merge
    /// order is the declaration order of the sweep, but byte-identity of
    /// `--jobs N` output additionally requires that *any* order would have
    /// produced the same bytes. Exercised over seeded pseudo-random shard
    /// splits.
    #[test]
    fn merge_is_order_independent() {
        let mut rng = crate::SplitMix64::new(0x5eed_0001);
        for round in 0..8u64 {
            // Build 4 shards with different sizes and magnitudes.
            let mut shards = vec![Histogram::new(); 4];
            for i in 0..2_000u64 {
                let shard = (rng.next_u64() % 4) as usize;
                let v = (rng.next_u64() % (1 << (8 + (i % 40)))) + round;
                shards[shard].record(SimDuration::from_nanos(v));
            }
            // Fold left-to-right...
            let mut fwd = Histogram::new();
            for s in &shards {
                fwd.merge(s);
            }
            // ...and right-to-left, and pairwise-tree.
            let mut rev = Histogram::new();
            for s in shards.iter().rev() {
                rev.merge(s);
            }
            let mut left = shards[0].clone();
            left.merge(&shards[1]);
            let mut right = shards[2].clone();
            right.merge(&shards[3]);
            left.merge(&right);
            assert_eq!(fwd, rev, "round {round}: fold order changed result");
            assert_eq!(fwd, left, "round {round}: tree merge changed result");
            assert_eq!(fwd.sum_nanos(), rev.sum_nanos());
        }
    }

    /// Property: `quantile(q)` is monotone non-decreasing in `q`.
    #[test]
    fn quantile_is_monotone_in_q() {
        let mut rng = crate::SplitMix64::new(0x5eed_0002);
        let mut h = Histogram::new();
        for _ in 0..10_000 {
            h.record(SimDuration::from_nanos(rng.next_u64() % 50_000_000));
        }
        let mut prev = h.quantile(0.0);
        for i in 0..=1_000u32 {
            let q = f64::from(i) / 1_000.0;
            let cur = h.quantile(q);
            assert!(
                cur >= prev,
                "quantile not monotone: q={q} gives {cur} < {prev}"
            );
            prev = cur;
        }
        assert_eq!(h.quantile(1.0), h.max());
    }
}
