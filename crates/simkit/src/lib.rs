//! `ull-simkit` — discrete-event simulation foundation for the
//! ull-ssd-study workspace.
//!
//! This crate supplies the timing, queueing, randomness and statistics
//! primitives shared by every other crate in the reproduction of
//! *"Faster than Flash: An In-Depth Study of System Challenges for Emerging
//! Ultra-Low Latency SSDs"* (IISWC 2019):
//!
//! * [`SimTime`] / [`SimDuration`] — integer-nanosecond time.
//! * [`EventQueue`] — deterministic time-ordered events with FIFO ties
//!   (the `BinaryHeap` reference implementation).
//! * [`TimingWheel`] — the hot-path hierarchical timing wheel with the
//!   same ordering contract, plus caller-keyed tie-breaks.
//! * [`Component`] / [`Scheduler`] / [`Engine`] — the shared actor API
//!   every engine loop runs on: components own local state, receive
//!   timestamped events, and emit follow-ups through a handle instead of
//!   draining a wheel of their own.
//! * [`ShardedWorld`] / [`Lookahead`] — conservative parallel DES:
//!   actors partitioned across per-shard wheels, windows bounded by the
//!   cross-actor latency floor, byte-identical at any shard count
//!   (`docs/SHARDING.md`).
//! * [`Slab`] / [`Label`] — allocation-free per-request state: reusable
//!   generational slots and interned job labels.
//! * [`Timeline`] / [`ServerPool`] — resource busy-until timelines, the
//!   queueing model behind channels, dies and DMA engines, including
//!   suspend/resume-style priority preemption.
//! * [`Summary`], [`Histogram`], [`TimeSeries`] — streaming statistics with
//!   five-nines-capable quantiles.
//! * [`SplitMix64`] — seeded, forkable determinism.
//! * [`Json`] — a serde-free, insertion-ordered JSON writer whose bytes
//!   are a pure function of construction order.
//!
//! # Examples
//!
//! Model a shared bus with two competing transfers and measure the queueing
//! delay of the second:
//!
//! ```
//! use ull_simkit::{SimDuration, SimTime, Timeline};
//!
//! let mut bus = Timeline::new();
//! bus.reserve(SimTime::ZERO, SimDuration::from_micros(8));
//! let slot = bus.reserve(SimTime::from_micros(2), SimDuration::from_micros(8));
//! assert_eq!(slot.start - SimTime::from_micros(2), SimDuration::from_micros(6));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod component;
mod event;
mod hist;
mod json;
mod label;
mod lookahead;
mod resource;
mod rng;
mod series;
mod shard;
mod slab;
mod stats;
mod time;
mod wheel;

pub use component::{ActorId, Component, Engine, Scheduler, Unbatched};
pub use event::EventQueue;
pub use hist::Histogram;
pub use json::Json;
pub use label::Label;
pub use lookahead::Lookahead;
pub use resource::{ServerPool, Slot, Timeline};
pub use rng::SplitMix64;
pub use series::TimeSeries;
pub use shard::{Delivery, SerialRunner, ShardEvent, ShardedWorld, WindowRunner};
pub use slab::{Slab, SlotId};
pub use stats::Summary;
pub use time::{SimDuration, SimTime};
pub use wheel::TimingWheel;
