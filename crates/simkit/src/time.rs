//! Simulation time primitives.
//!
//! All simulation timing is expressed in integer nanoseconds through two
//! newtypes: [`SimTime`], an absolute instant since simulation start, and
//! [`SimDuration`], a span between instants. Integer nanoseconds keep the
//! simulator exactly deterministic (no floating-point drift) while offering
//! sub-cycle resolution for a 4.6 GHz CPU model (~0.22 ns per cycle rounds
//! to whole cycles at the accounting layer, not here).

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An absolute instant in simulated time, in nanoseconds since simulation
/// start.
///
/// # Examples
///
/// ```
/// use ull_simkit::{SimDuration, SimTime};
///
/// let t = SimTime::ZERO + SimDuration::from_micros(3);
/// assert_eq!(t.as_nanos(), 3_000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, in nanoseconds.
///
/// # Examples
///
/// ```
/// use ull_simkit::SimDuration;
///
/// let d = SimDuration::from_micros(12) + SimDuration::from_nanos(500);
/// assert_eq!(d.as_nanos(), 12_500);
/// assert!((d.as_micros_f64() - 12.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The start of simulated time.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; useful as an "infinitely far"
    /// sentinel for idle resources.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant `nanos` nanoseconds after simulation start.
    #[inline]
    pub const fn from_nanos(nanos: u64) -> Self {
        SimTime(nanos)
    }

    /// Creates an instant `micros` microseconds after simulation start.
    #[inline]
    pub const fn from_micros(micros: u64) -> Self {
        SimTime(micros * 1_000)
    }

    /// Nanoseconds since simulation start.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Nanoseconds since simulation start, as a float (for reporting).
    ///
    /// This is the *only* sanctioned route from integer sim time into
    /// floating point; simlint rule S004 flags raw `as_nanos() as f64`
    /// casts elsewhere.
    pub fn as_nanos_f64(self) -> f64 {
        self.0 as f64
    }

    /// Microseconds since simulation start, as a float (for reporting).
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Seconds since simulation start, as a float (for reporting).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The duration elapsed since `earlier`, saturating to zero if `earlier`
    /// is in the future.
    #[inline]
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// The later of two instants.
    #[inline]
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }

    /// The earlier of two instants.
    #[inline]
    pub fn min(self, other: SimTime) -> SimTime {
        SimTime(self.0.min(other.0))
    }
}

impl SimDuration {
    /// The empty duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration of `nanos` nanoseconds.
    #[inline]
    pub const fn from_nanos(nanos: u64) -> Self {
        SimDuration(nanos)
    }

    /// Creates a duration of `micros` microseconds.
    #[inline]
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros * 1_000)
    }

    /// Creates a duration of `millis` milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis * 1_000_000)
    }

    /// Creates a duration of `secs` seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * 1_000_000_000)
    }

    /// Creates a duration from fractional microseconds, rounding to the
    /// nearest nanosecond. Negative inputs clamp to zero.
    pub fn from_micros_f64(micros: f64) -> Self {
        SimDuration((micros * 1_000.0).round().max(0.0) as u64)
    }

    /// Length in nanoseconds.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Length in nanoseconds, as a float (for reporting).
    ///
    /// The sanctioned escape from integer sim time into floating point;
    /// simlint rule S004 flags raw `as_nanos() as f64` casts elsewhere.
    pub fn as_nanos_f64(self) -> f64 {
        self.0 as f64
    }

    /// Length in microseconds, as a float (for reporting).
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Length in seconds, as a float (for reporting).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// True if the duration is zero.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// The longer of two durations.
    #[inline]
    pub fn max(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.max(other.0))
    }

    /// The shorter of two durations.
    #[inline]
    pub fn min(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.min(other.0))
    }

    /// Subtraction that saturates at zero instead of underflowing.
    #[inline]
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Scales the duration by a non-negative float, rounding to the nearest
    /// nanosecond. Useful for derived cost models (e.g. "half the average").
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        debug_assert!(factor >= 0.0, "duration scale factor must be >= 0");
        SimDuration((self.0 as f64 * factor).round().max(0.0) as u64)
    }

    /// The ratio `self / other` as a float.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `other` is zero.
    pub fn ratio(self, other: SimDuration) -> f64 {
        debug_assert!(!other.is_zero(), "division by zero duration");
        self.0 as f64 / other.0 as f64
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    /// Elapsed time between two instants.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `rhs` is later than `self`.
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDuration {
        debug_assert!(self.0 >= rhs.0, "SimTime subtraction underflow");
        SimDuration(self.0 - rhs.0)
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    /// # Panics
    ///
    /// Panics in debug builds on underflow; use
    /// [`SimDuration::saturating_sub`] when the operands may be unordered.
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimDuration {
        debug_assert!(self.0 >= rhs.0, "SimDuration subtraction underflow");
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    #[inline]
    fn sub_assign(&mut self, rhs: SimDuration) {
        debug_assert!(self.0 >= rhs.0, "SimDuration subtraction underflow");
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        SimDuration(iter.map(|d| d.0).sum())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", SimDuration(self.0))
    }
}

impl fmt::Display for SimDuration {
    /// Human-oriented rendering with an auto-selected unit.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns >= 1_000_000_000 {
            write!(f, "{:.3}s", ns as f64 / 1e9)
        } else if ns >= 1_000_000 {
            write!(f, "{:.3}ms", ns as f64 / 1e6)
        } else if ns >= 1_000 {
            write!(f, "{:.3}us", ns as f64 / 1e3)
        } else {
            write!(f, "{ns}ns")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_round_trips() {
        let t0 = SimTime::from_micros(5);
        let t1 = t0 + SimDuration::from_nanos(250);
        assert_eq!(t1.as_nanos(), 5_250);
        assert_eq!(t1 - t0, SimDuration::from_nanos(250));
        assert_eq!(t1.saturating_since(t0), SimDuration::from_nanos(250));
        assert_eq!(t0.saturating_since(t1), SimDuration::ZERO);
    }

    #[test]
    fn duration_constructors_agree() {
        assert_eq!(SimDuration::from_secs(1), SimDuration::from_millis(1000));
        assert_eq!(SimDuration::from_millis(1), SimDuration::from_micros(1000));
        assert_eq!(SimDuration::from_micros(1), SimDuration::from_nanos(1000));
        assert_eq!(
            SimDuration::from_micros_f64(1.5),
            SimDuration::from_nanos(1500)
        );
    }

    #[test]
    fn duration_scaling() {
        let d = SimDuration::from_micros(10);
        assert_eq!(d.mul_f64(0.5), SimDuration::from_micros(5));
        assert_eq!(d * 3, SimDuration::from_micros(30));
        assert_eq!(d / 4, SimDuration::from_nanos(2_500));
        assert!((d.ratio(SimDuration::from_micros(4)) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn saturating_sub_never_underflows() {
        let a = SimDuration::from_nanos(3);
        let b = SimDuration::from_nanos(7);
        assert_eq!(a.saturating_sub(b), SimDuration::ZERO);
        assert_eq!(b.saturating_sub(a), SimDuration::from_nanos(4));
    }

    #[test]
    fn display_picks_units() {
        assert_eq!(SimDuration::from_nanos(12).to_string(), "12ns");
        assert_eq!(SimDuration::from_micros(12).to_string(), "12.000us");
        assert_eq!(SimDuration::from_millis(12).to_string(), "12.000ms");
        assert_eq!(SimDuration::from_secs(12).to_string(), "12.000s");
    }

    #[test]
    fn min_max_helpers() {
        let a = SimTime::from_nanos(10);
        let b = SimTime::from_nanos(20);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        let x = SimDuration::from_nanos(10);
        let y = SimDuration::from_nanos(20);
        assert_eq!(x.max(y), y);
        assert_eq!(x.min(y), x);
    }
}
