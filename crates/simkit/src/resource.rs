//! Resource timelines: the queueing primitive of the device simulator.
//!
//! A [`Timeline`] models one serially-shared resource (a flash die, a channel
//! bus, a DMA engine). Work is appended FIFO: a reservation arriving at time
//! `t` starts at `max(t, busy_until)` and pushes `busy_until` forward. This
//! computes exact FIFO queueing delay without simulating individual events,
//! which is what lets five-nines experiments run millions of I/Os quickly.
//!
//! [`Timeline::reserve_priority`] additionally models *suspend/resume*: a
//! high-priority reservation (a read on a Z-NAND die that is mid-program)
//! does not wait for the in-progress low-priority work; it pays a small
//! suspension overhead, executes, and pushes the remainder of the suspended
//! work (plus a resume penalty) later in time.

use crate::time::{SimDuration, SimTime};

/// A single FIFO-serial resource with optional priority preemption.
///
/// # Examples
///
/// ```
/// use ull_simkit::{SimDuration, SimTime, Timeline};
///
/// let mut ch = Timeline::new();
/// let a = ch.reserve(SimTime::ZERO, SimDuration::from_micros(10));
/// let b = ch.reserve(SimTime::ZERO, SimDuration::from_micros(10));
/// assert_eq!(a.start, SimTime::ZERO);
/// assert_eq!(b.start, SimTime::from_micros(10)); // queued behind `a`
/// ```
#[derive(Debug, Clone, Default)]
pub struct Timeline {
    busy_until: SimTime,
    prio_until: SimTime,
    busy_accum: SimDuration,
    reservations: u64,
}

/// The slot a [`Timeline`] granted to one reservation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Slot {
    /// When the resource starts serving this work.
    pub start: SimTime,
    /// When this work's service completes.
    pub end: SimTime,
    /// Whether the reservation had to suspend in-progress work to start.
    pub suspended_other: bool,
}

impl Timeline {
    /// Creates an idle timeline.
    pub fn new() -> Self {
        Timeline::default()
    }

    /// Appends `dur` of FIFO work that cannot start before `earliest`.
    pub fn reserve(&mut self, earliest: SimTime, dur: SimDuration) -> Slot {
        let start = earliest.max(self.busy_until);
        let end = start + dur;
        self.busy_until = end;
        self.busy_accum += dur;
        self.reservations += 1;
        Slot {
            start,
            end,
            suspended_other: false,
        }
    }

    /// Reserves `dur` with priority, suspending in-progress normal work.
    ///
    /// If the resource is busy with normal work at the requested start, the
    /// priority work begins after `suspend_cost` (the time to checkpoint the
    /// in-flight operation) and the suspended work is charged `resume_cost`
    /// and resumes afterwards — so normal `busy_until` moves back by
    /// `suspend_cost + dur + resume_cost`. Consecutive priority reservations
    /// still serialize FIFO among themselves.
    pub fn reserve_priority(
        &mut self,
        earliest: SimTime,
        dur: SimDuration,
        suspend_cost: SimDuration,
        resume_cost: SimDuration,
    ) -> Slot {
        let mut start = earliest.max(self.prio_until);
        let suspends = self.busy_until > start;
        if suspends {
            start += suspend_cost;
        }
        let end = start + dur;
        self.prio_until = end;
        if suspends {
            // Push the remainder of the suspended work (and everything queued
            // behind it) past the priority slot, plus the resume penalty.
            self.busy_until = self.busy_until.max(end) + resume_cost;
        } else {
            self.busy_until = self.busy_until.max(end);
        }
        self.busy_accum += dur;
        self.reservations += 1;
        Slot {
            start,
            end,
            suspended_other: suspends,
        }
    }

    /// The instant at which all currently reserved work finishes.
    pub fn busy_until(&self) -> SimTime {
        self.busy_until
    }

    /// Total service time reserved so far (for utilization accounting).
    pub fn busy_time(&self) -> SimDuration {
        self.busy_accum
    }

    /// Number of reservations granted so far.
    pub fn reservations(&self) -> u64 {
        self.reservations
    }

    /// Utilization over the window `[SimTime::ZERO, now]`, in `[0, 1]`.
    ///
    /// Work reserved beyond `now` is not discounted, so this is exact only
    /// once the timeline has drained past `now`.
    pub fn utilization(&self, now: SimTime) -> f64 {
        if now == SimTime::ZERO {
            return 0.0;
        }
        (self.busy_accum.as_nanos_f64() / now.as_nanos_f64()).min(1.0)
    }
}

/// A pool of identical FIFO resources where work goes to the earliest-free
/// server (ties broken by lowest index, deterministically).
///
/// # Examples
///
/// ```
/// use ull_simkit::{ServerPool, SimDuration, SimTime};
///
/// let mut pool = ServerPool::new(2);
/// let d = SimDuration::from_micros(5);
/// assert_eq!(pool.reserve(SimTime::ZERO, d).start, SimTime::ZERO);
/// assert_eq!(pool.reserve(SimTime::ZERO, d).start, SimTime::ZERO);
/// // Both servers busy: third item queues.
/// assert_eq!(pool.reserve(SimTime::ZERO, d).start, SimTime::from_micros(5));
/// ```
#[derive(Debug, Clone)]
pub struct ServerPool {
    servers: Vec<Timeline>,
}

impl ServerPool {
    /// Creates a pool of `n` idle servers.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "a server pool needs at least one server");
        ServerPool {
            servers: vec![Timeline::new(); n],
        }
    }

    /// Number of servers.
    pub fn len(&self) -> usize {
        self.servers.len()
    }

    /// Always false: pools have at least one server.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Reserves `dur` on the earliest-available server.
    pub fn reserve(&mut self, earliest: SimTime, dur: SimDuration) -> Slot {
        let idx = self.earliest_free();
        self.servers[idx].reserve(earliest, dur)
    }

    /// Reserves `dur` on a specific server (e.g. a hash-selected die).
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of bounds.
    pub fn reserve_on(&mut self, idx: usize, earliest: SimTime, dur: SimDuration) -> Slot {
        self.servers[idx].reserve(earliest, dur)
    }

    /// Direct access to one server's timeline.
    pub fn server(&self, idx: usize) -> &Timeline {
        &self.servers[idx]
    }

    /// Mutable access to one server's timeline.
    pub fn server_mut(&mut self, idx: usize) -> &mut Timeline {
        &mut self.servers[idx]
    }

    /// Aggregate busy time across servers.
    pub fn busy_time(&self) -> SimDuration {
        self.servers.iter().map(Timeline::busy_time).sum()
    }

    fn earliest_free(&self) -> usize {
        let mut best = 0;
        for (i, s) in self.servers.iter().enumerate().skip(1) {
            if s.busy_until() < self.servers[best].busy_until() {
                best = i;
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const US: fn(u64) -> SimDuration = SimDuration::from_micros;

    #[test]
    fn fifo_queueing_accumulates() {
        let mut t = Timeline::new();
        let s1 = t.reserve(SimTime::from_micros(1), US(10));
        assert_eq!(s1.start, SimTime::from_micros(1));
        assert_eq!(s1.end, SimTime::from_micros(11));
        let s2 = t.reserve(SimTime::from_micros(2), US(5));
        assert_eq!(s2.start, SimTime::from_micros(11));
        assert_eq!(s2.end, SimTime::from_micros(16));
        assert_eq!(t.busy_time(), US(15));
        assert_eq!(t.reservations(), 2);
    }

    #[test]
    fn idle_gap_is_not_counted_busy() {
        let mut t = Timeline::new();
        t.reserve(SimTime::from_micros(100), US(10));
        // 10us of work over a 110us window.
        let u = t.utilization(SimTime::from_micros(110));
        assert!((u - 10.0 / 110.0).abs() < 1e-9);
    }

    #[test]
    fn priority_reservation_preempts_busy_resource() {
        let mut t = Timeline::new();
        // A long program occupies [0, 100us).
        t.reserve(SimTime::ZERO, US(100));
        // A read arriving at 10us suspends it: starts at 10+2us, runs 5us.
        let slot = t.reserve_priority(SimTime::from_micros(10), US(5), US(2), US(3));
        assert!(slot.suspended_other);
        assert_eq!(slot.start, SimTime::from_micros(12));
        assert_eq!(slot.end, SimTime::from_micros(17));
        // The suspended program now finishes after its original end plus the
        // resume penalty.
        assert_eq!(t.busy_until(), SimTime::from_micros(103));
    }

    #[test]
    fn priority_reservation_on_idle_resource_pays_nothing() {
        let mut t = Timeline::new();
        let slot = t.reserve_priority(SimTime::from_micros(4), US(5), US(2), US(3));
        assert!(!slot.suspended_other);
        assert_eq!(slot.start, SimTime::from_micros(4));
        assert_eq!(t.busy_until(), SimTime::from_micros(9));
    }

    #[test]
    fn consecutive_priority_reads_serialize() {
        let mut t = Timeline::new();
        t.reserve(SimTime::ZERO, US(100));
        let a = t.reserve_priority(SimTime::ZERO, US(5), US(1), US(1));
        let b = t.reserve_priority(SimTime::ZERO, US(5), US(1), US(1));
        assert!(b.start >= a.end);
    }

    #[test]
    fn pool_balances_to_earliest_free() {
        let mut p = ServerPool::new(3);
        for _ in 0..3 {
            assert_eq!(p.reserve(SimTime::ZERO, US(7)).start, SimTime::ZERO);
        }
        let s = p.reserve(SimTime::ZERO, US(7));
        assert_eq!(s.start, SimTime::from_micros(7));
        assert_eq!(p.len(), 3);
        assert_eq!(p.busy_time(), US(28));
    }

    #[test]
    #[should_panic(expected = "at least one server")]
    fn empty_pool_rejected() {
        let _ = ServerPool::new(0);
    }
}
