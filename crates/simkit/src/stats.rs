//! Streaming summary statistics.
//!
//! simlint: allow-file(S007): Welford's online moments are floating-point
//! by definition; every caller feeds samples in simulation order (and
//! `merge` is only used for fixed-order reductions), so the summation
//! order is deterministic even though the representation is f64.

use core::fmt;

use crate::time::SimDuration;

/// Streaming mean/variance/min/max over `f64` samples (Welford's algorithm).
///
/// # Examples
///
/// ```
/// use ull_simkit::Summary;
///
/// let mut s = Summary::new();
/// for x in [1.0, 2.0, 3.0, 4.0] {
///     s.record(x);
/// }
/// assert_eq!(s.count(), 4);
/// assert!((s.mean() - 2.5).abs() < 1e-12);
/// assert_eq!(s.min(), 1.0);
/// assert_eq!(s.max(), 4.0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Summary {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
    sum: f64,
}

impl Summary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        Summary {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            sum: 0.0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, x: f64) {
        self.count += 1;
        self.sum += x;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Records a duration sample, in microseconds.
    pub fn record_duration(&mut self, d: SimDuration) {
        self.record(d.as_micros_f64());
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Arithmetic mean, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Mean interpreted as microseconds, returned as a duration.
    pub fn mean_duration(&self) -> SimDuration {
        SimDuration::from_micros_f64(self.mean())
    }

    /// Population variance, or 0.0 with fewer than two samples.
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest sample, or 0.0 when empty.
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest sample, or 0.0 when empty.
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Merges another summary into this one.
    pub fn merge(&mut self, other: &Summary) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.3} sd={:.3} min={:.3} max={:.3}",
            self.count,
            self.mean(),
            self.stddev(),
            self.min(),
            self.max()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[allow(clippy::float_cmp)] // exact constants by construction
    fn empty_summary_is_zeroed() {
        let s = Summary::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 0.0);
    }

    #[test]
    fn welford_matches_naive_variance() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut s = Summary::new();
        for &x in &xs {
            s.record(x);
        }
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 4.0).abs() < 1e-12);
        assert!((s.stddev() - 2.0).abs() < 1e-12);
    }

    #[test]
    // min/max flow through merge untouched; bit-equality is the point.
    #[allow(clippy::float_cmp)]
    fn merge_equals_concatenation() {
        let xs: Vec<f64> = (0..50).map(|i| (i * 7 % 13) as f64).collect();
        let mut whole = Summary::new();
        for &x in &xs {
            whole.record(x);
        }
        let mut a = Summary::new();
        let mut b = Summary::new();
        for (i, &x) in xs.iter().enumerate() {
            if i % 2 == 0 {
                a.record(x)
            } else {
                b.record(x)
            }
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.variance() - whole.variance()).abs() < 1e-9);
        assert_eq!(a.min(), whole.min());
        assert_eq!(a.max(), whole.max());
    }

    #[test]
    fn duration_recording_uses_micros() {
        let mut s = Summary::new();
        s.record_duration(SimDuration::from_micros(10));
        s.record_duration(SimDuration::from_micros(20));
        assert!((s.mean() - 15.0).abs() < 1e-12);
        assert_eq!(s.mean_duration(), SimDuration::from_micros(15));
    }
}
