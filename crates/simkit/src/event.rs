//! A deterministic time-ordered event queue.
//!
//! [`EventQueue`] is the scheduling heart used by closed-loop workload
//! engines: events fire in non-decreasing time order, and events scheduled
//! for the same instant fire in insertion order (FIFO), which keeps whole
//! simulations reproducible bit-for-bit.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

struct Entry<E> {
    at: SimTime,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    // Reverse ordering so that BinaryHeap (a max-heap) pops the earliest
    // event, breaking time ties by insertion sequence.
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A min-heap of `(time, payload)` pairs with FIFO tie-breaking.
///
/// # Examples
///
/// ```
/// use ull_simkit::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_nanos(20), "late");
/// q.schedule(SimTime::from_nanos(10), "early");
/// q.schedule(SimTime::from_nanos(10), "early-second");
///
/// assert_eq!(q.pop(), Some((SimTime::from_nanos(10), "early")));
/// assert_eq!(q.pop(), Some((SimTime::from_nanos(10), "early-second")));
/// assert_eq!(q.pop(), Some((SimTime::from_nanos(20), "late")));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Default)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedules `payload` to fire at instant `at`.
    pub fn schedule(&mut self, at: SimTime, payload: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { at, seq, payload });
    }

    /// Removes and returns the earliest event, or `None` if empty.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|e| (e.at, e.payload))
    }

    /// The firing time of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<E> std::fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("pending", &self.heap.len())
            .field("next_at", &self.peek_time())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        for &n in &[50u64, 10, 40, 20, 30] {
            q.schedule(SimTime::from_nanos(n), n);
        }
        let mut out = Vec::new();
        while let Some((t, v)) = q.pop() {
            assert_eq!(t.as_nanos(), v);
            out.push(v);
        }
        assert_eq!(out, vec![10, 20, 30, 40, 50]);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_nanos(7);
        for i in 0..100 {
            q.schedule(t, i);
        }
        let popped: Vec<_> = std::iter::from_fn(|| q.pop().map(|(_, v)| v)).collect();
        assert_eq!(popped, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn peek_matches_pop() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.schedule(SimTime::from_nanos(3), ());
        q.schedule(SimTime::from_nanos(1), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_nanos(1)));
        assert_eq!(q.len(), 2);
        assert!(!q.is_empty());
        q.pop();
        assert_eq!(q.peek_time(), Some(SimTime::from_nanos(3)));
    }
}
