//! A hierarchical timing wheel with the same ordering contract as
//! [`EventQueue`](crate::EventQueue).
//!
//! The wheel is the hot-path replacement for the `BinaryHeap`-backed
//! [`EventQueue`](crate::EventQueue): scheduling an event is an O(1)
//! bucket push instead of an O(log n) sift, and popping drains a small
//! per-slot FIFO instead of re-heapifying. The `BinaryHeap` queue is
//! retained as the *reference implementation* — `tests/properties.rs`
//! differentially tests the wheel against it under random schedules.
//!
//! # Ordering contract (why the wheel cannot reorder events)
//!
//! Events pop in ascending `(time, key, seq)` order, where `seq` is a
//! monotone insertion counter and `key` defaults to `seq` (so plain
//! [`schedule`](TimingWheel::schedule) gives exactly the FIFO tie-break
//! of `EventQueue`). The proof sketch is a three-region partition of
//! pending events by firing time relative to the wheel's `base`:
//!
//! * **past** (`at < base`) — a min-heap; only populated by schedules
//!   into times the cursor already passed.
//! * **near** (`base <= at < base + HORIZON`) — the wheel proper:
//!   `SLOTS` buckets of `GRANULARITY_NS` each. Every event in the slot
//!   at the cursor fires strictly before every event in any later slot,
//!   and within a slot entries drain in sorted `(time, key, seq)` order.
//! * **far** (`at >= base + HORIZON`) — a min-heap of not-yet-mapped
//!   events, promoted into the slots when the near region drains.
//!
//! The three time ranges are disjoint, so the global minimum is always
//! `past`'s minimum if `past` is non-empty, else the cursor slot's
//! minimum, else `far`'s minimum (after promotion). The cursor only
//! advances across *empty* slots, so no event is ever skipped, and
//! promotion rebases `base` onto `far`'s minimum so nothing promoted
//! lands behind the cursor. Hence pop order equals the reference
//! heap's order by construction.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// Width of one wheel slot in nanoseconds (1.024 µs). Completion
/// latencies in the simulated stack are tens of microseconds, so
/// consecutive completions land in distinct slots and per-slot sorts
/// stay tiny.
pub const GRANULARITY_NS: u64 = 1 << 10;

/// Number of slots in the near wheel.
pub const SLOTS: usize = 1 << 12;

/// The near region covers `[base, base + HORIZON_NS)` — about 4.2 ms,
/// comfortably past the worst simulated tail (fault-injected retries,
/// GC stalls) so far-heap traffic is rare.
pub const HORIZON_NS: u64 = GRANULARITY_NS * SLOTS as u64;

struct Entry<E> {
    at: u64,
    key: u64,
    seq: u64,
    payload: E,
}

impl<E> Entry<E> {
    #[inline]
    fn rank(&self) -> (u64, u64, u64) {
        (self.at, self.key, self.seq)
    }
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.rank() == other.rank()
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    // Reverse ordering so BinaryHeap (a max-heap) pops the smallest
    // (time, key, seq) triple first.
    fn cmp(&self, other: &Self) -> Ordering {
        other.rank().cmp(&self.rank())
    }
}

/// A deterministic hierarchical timing wheel.
///
/// Drop-in hot-path replacement for [`EventQueue`](crate::EventQueue):
/// [`schedule`](Self::schedule)/[`pop`](Self::pop) pop in ascending
/// time with FIFO ties. [`schedule_keyed`](Self::schedule_keyed)
/// additionally lets the caller supply the tie-break key (the NVMe
/// device scheduler breaks same-instant ties by command id, not by
/// insertion order).
///
/// # Examples
///
/// ```
/// use ull_simkit::{SimTime, TimingWheel};
///
/// let mut w = TimingWheel::new();
/// w.schedule(SimTime::from_nanos(20), "late");
/// w.schedule(SimTime::from_nanos(10), "early");
/// w.schedule(SimTime::from_nanos(10), "early-second");
///
/// assert_eq!(w.pop(), Some((SimTime::from_nanos(10), "early")));
/// assert_eq!(w.pop(), Some((SimTime::from_nanos(10), "early-second")));
/// assert_eq!(w.pop(), Some((SimTime::from_nanos(20), "late")));
/// assert_eq!(w.pop(), None);
/// ```
pub struct TimingWheel<E> {
    /// Near-region buckets; slot for `at` is `(at / G) % SLOTS`.
    slots: Vec<Vec<Entry<E>>>,
    /// Whether the matching slot is sorted descending by rank (so the
    /// minimum pops from the back).
    sorted: Vec<bool>,
    /// Entries currently resident in `slots`.
    near: usize,
    /// Absolute time (ns, multiple of `GRANULARITY_NS`) of the cursor
    /// slot's lower bound.
    base: u64,
    /// Events behind the cursor (`at < base`).
    past: BinaryHeap<Entry<E>>,
    /// Events beyond the horizon (`at >= base + HORIZON_NS`).
    far: BinaryHeap<Entry<E>>,
    next_seq: u64,
    len: usize,
}

impl<E> Default for TimingWheel<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> TimingWheel<E> {
    /// Creates an empty wheel based at time zero.
    pub fn new() -> Self {
        TimingWheel {
            slots: (0..SLOTS).map(|_| Vec::new()).collect(),
            sorted: vec![true; SLOTS],
            near: 0,
            base: 0,
            past: BinaryHeap::new(),
            far: BinaryHeap::new(),
            next_seq: 0,
            len: 0,
        }
    }

    /// Schedules `payload` to fire at instant `at`, breaking time ties
    /// by insertion order (FIFO) — identical semantics to
    /// [`EventQueue::schedule`](crate::EventQueue::schedule).
    #[inline]
    pub fn schedule(&mut self, at: SimTime, payload: E) {
        let seq = self.next_seq;
        self.insert(at.as_nanos(), seq, payload);
    }

    /// Schedules `payload` to fire at instant `at`, breaking time ties
    /// by the caller-supplied `key` (and by insertion order only among
    /// equal keys). Lets the wheel replace queues whose tie-break is a
    /// domain value such as an NVMe command id.
    #[inline]
    pub fn schedule_keyed(&mut self, at: SimTime, key: u64, payload: E) {
        self.insert(at.as_nanos(), key, payload);
    }

    #[inline]
    fn insert(&mut self, at: u64, key: u64, payload: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.len += 1;
        let e = Entry {
            at,
            key,
            seq,
            payload,
        };
        if at < self.base {
            self.past.push(e);
        } else if at < self.base + HORIZON_NS {
            self.push_slot(e);
        } else {
            self.far.push(e);
        }
    }

    #[inline]
    fn push_slot(&mut self, e: Entry<E>) {
        let idx = ((e.at / GRANULARITY_NS) as usize) & (SLOTS - 1);
        let slot = &mut self.slots[idx];
        // Slots are kept sorted *descending* by rank so the minimum pops
        // from the back; an append preserves that only if the new entry
        // ranks at or below the current back.
        self.sorted[idx] = match slot.last() {
            None => true,
            Some(back) => self.sorted[idx] && e.rank() < back.rank(),
        };
        slot.push(e);
        self.near += 1;
    }

    /// Moves the cursor to the first populated slot, promoting far
    /// events into the wheel as the window slides over them.
    ///
    /// Invariant on exit: every event left in `far` fires at or beyond
    /// `base + HORIZON_NS`. One settle advances the cursor by at most
    /// `SLOTS - 1` slots (strictly less than a horizon), so promoting
    /// at the end of every settle is enough to uphold the invariant —
    /// a far event can never become older than a near one unobserved.
    fn settle(&mut self) {
        if self.near == 0 && self.past.is_empty() && !self.far.is_empty() {
            // The wheel is empty: rebase onto the far heap's minimum
            // (aligned down, so the minimum lands exactly at the
            // cursor slot and nothing promotes behind it). The base
            // only ever grows: the far minimum is at least one horizon
            // ahead of the old base.
            if let Some(min) = self.far.peek().map(|e| e.at) {
                self.base = min - (min % GRANULARITY_NS);
            }
        }
        if self.near > 0 {
            // Advance over empty slots only — occupied slots are never
            // stepped past, so no event is skipped.
            while self.slots[((self.base / GRANULARITY_NS) as usize) & (SLOTS - 1)].is_empty() {
                self.base += GRANULARITY_NS;
            }
        }
        // Pull far events the window now covers into the slots; their
        // firing times are at least one (old) horizon past the previous
        // base, hence ahead of the cursor.
        let horizon = self.base + HORIZON_NS;
        while self.far.peek().is_some_and(|e| e.at < horizon) {
            if let Some(e) = self.far.pop() {
                self.push_slot(e);
            }
        }
    }

    /// Sorts the cursor slot (descending by rank) if needed and returns
    /// its index. Only meaningful after [`settle`](Self::settle) with
    /// `near > 0`.
    fn cursor_sorted(&mut self) -> usize {
        let idx = ((self.base / GRANULARITY_NS) as usize) & (SLOTS - 1);
        if !self.sorted[idx] {
            self.slots[idx].sort_by_key(|e| std::cmp::Reverse(e.rank()));
            self.sorted[idx] = true;
        }
        idx
    }

    /// Removes and returns the earliest event, or `None` if empty.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        if let Some(e) = self.past.pop() {
            self.len -= 1;
            return Some((SimTime::from_nanos(e.at), e.payload));
        }
        self.settle();
        if self.near == 0 {
            return None;
        }
        let idx = self.cursor_sorted();
        let e = self.slots[idx].pop()?;
        self.near -= 1;
        self.len -= 1;
        Some((SimTime::from_nanos(e.at), e.payload))
    }

    /// The firing time of the earliest pending event.
    ///
    /// Takes `&mut self` because peeking may advance the cursor or
    /// promote far events; neither changes the observable pop order.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        self.peek().map(|(t, _)| t)
    }

    /// The earliest pending event's time and a reference to its
    /// payload, without removing it.
    pub fn peek(&mut self) -> Option<(SimTime, &E)> {
        if !self.past.is_empty() {
            return self
                .past
                .peek()
                .map(|e| (SimTime::from_nanos(e.at), &e.payload));
        }
        self.settle();
        if self.near == 0 {
            return None;
        }
        let idx = self.cursor_sorted();
        self.slots[idx]
            .last()
            .map(|e| (SimTime::from_nanos(e.at), &e.payload))
    }

    /// Pops the earliest event only if it fires strictly before `t`.
    pub fn pop_if_before(&mut self, t: SimTime) -> Option<(SimTime, E)> {
        if self.peek_time()? < t {
            self.pop()
        } else {
            None
        }
    }

    /// Drains every event scheduled for the earliest pending instant
    /// into `out` (in tie-break order) and returns that instant —
    /// the batched same-instant drain used by engine loops to retire
    /// coalesced completions without re-peeking per event.
    ///
    /// All events of one instant live in exactly one region (the three
    /// regions partition time) and, within the near region, in exactly
    /// one slot (`(at / G) % SLOTS` is a function of `at`), so a single
    /// settle + slot sort suffices for the whole batch: the drain is
    /// one heap-pop or slot-pop per event instead of the full
    /// peek/settle/sort cycle the naive `pop` loop pays.
    pub fn pop_same_instant(&mut self, out: &mut Vec<E>) -> Option<SimTime> {
        self.drain_instant(u64::MAX, out)
    }

    /// Like [`pop_same_instant`](Self::pop_same_instant), but only
    /// drains if the earliest instant is at or before `bound`; events
    /// beyond it stay pending and `None` is returned. Saves the
    /// bounded engine drain (`run_until`) a separate `peek_time` —
    /// and therefore a second settle — per dispatched instant.
    pub fn pop_same_instant_until(&mut self, bound: SimTime, out: &mut Vec<E>) -> Option<SimTime> {
        self.drain_instant(bound.as_nanos(), out)
    }

    fn drain_instant(&mut self, bound: u64, out: &mut Vec<E>) -> Option<SimTime> {
        // Past region first: `at < base <= near/far`, so nothing in the
        // slots or the far heap can tie with a past event's instant.
        if let Some(first) = self.past.peek() {
            if first.at > bound {
                return None;
            }
            let t = first.at;
            while self.past.peek().is_some_and(|e| e.at == t) {
                if let Some(e) = self.past.pop() {
                    self.len -= 1;
                    out.push(e.payload);
                }
            }
            return Some(SimTime::from_nanos(t));
        }
        self.settle();
        if self.near == 0 {
            return None;
        }
        // Same-instant near events share one slot, and the slot is
        // sorted descending by rank, so the whole instant is a
        // contiguous run at the back.
        let idx = self.cursor_sorted();
        let slot = &mut self.slots[idx];
        let t = match slot.last() {
            Some(e) if e.at <= bound => e.at,
            _ => return None,
        };
        let mut popped = 0;
        while slot.last().is_some_and(|e| e.at == t) {
            if let Some(e) = slot.pop() {
                popped += 1;
                out.push(e.payload);
            }
        }
        self.near -= popped;
        self.len -= popped;
        Some(SimTime::from_nanos(t))
    }

    /// The earliest pending firing time without advancing the wheel.
    ///
    /// Cold-path companion to [`peek_time`](Self::peek_time) for
    /// callers holding only `&self`; scans the near slots (O(`SLOTS`))
    /// instead of moving the cursor.
    pub fn earliest(&self) -> Option<SimTime> {
        if let Some(e) = self.past.peek() {
            return Some(SimTime::from_nanos(e.at));
        }
        let near = self.slots.iter().flat_map(|s| s.iter().map(|e| e.at)).min();
        let far = self.far.peek().map(|e| e.at);
        match (near, far) {
            (Some(n), Some(f)) => Some(SimTime::from_nanos(n.min(f))),
            (Some(n), None) => Some(SimTime::from_nanos(n)),
            (None, f) => f.map(SimTime::from_nanos),
        }
    }

    /// Number of pending events.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no events are pending.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl<E> std::fmt::Debug for TimingWheel<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TimingWheel")
            .field("pending", &self.len)
            .field("near", &self.near)
            .field("base_ns", &self.base)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EventQueue;

    #[test]
    fn pops_in_time_order() {
        let mut w = TimingWheel::new();
        for &n in &[50u64, 10, 40, 20, 30] {
            w.schedule(SimTime::from_nanos(n), n);
        }
        let mut out = Vec::new();
        while let Some((t, v)) = w.pop() {
            assert_eq!(t.as_nanos(), v);
            out.push(v);
        }
        assert_eq!(out, vec![10, 20, 30, 40, 50]);
    }

    #[test]
    fn ties_break_fifo() {
        let mut w = TimingWheel::new();
        let t = SimTime::from_nanos(7);
        for i in 0..100 {
            w.schedule(t, i);
        }
        let popped: Vec<_> = std::iter::from_fn(|| w.pop().map(|(_, v)| v)).collect();
        assert_eq!(popped, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn keyed_ties_break_by_key_not_insertion() {
        let mut w = TimingWheel::new();
        let t = SimTime::from_nanos(9);
        for key in [5u64, 1, 3, 2, 4] {
            w.schedule_keyed(t, key, key);
        }
        let popped: Vec<_> = std::iter::from_fn(|| w.pop().map(|(_, v)| v)).collect();
        assert_eq!(popped, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn peek_matches_pop() {
        let mut w = TimingWheel::new();
        assert_eq!(w.peek_time(), None);
        w.schedule(SimTime::from_nanos(3), ());
        w.schedule(SimTime::from_nanos(1), ());
        assert_eq!(w.peek_time(), Some(SimTime::from_nanos(1)));
        assert_eq!(w.earliest(), Some(SimTime::from_nanos(1)));
        assert_eq!(w.len(), 2);
        assert!(!w.is_empty());
        w.pop();
        assert_eq!(w.peek_time(), Some(SimTime::from_nanos(3)));
        assert_eq!(w.earliest(), Some(SimTime::from_nanos(3)));
    }

    #[test]
    fn far_future_overflow_promotes_in_order() {
        let mut w = TimingWheel::new();
        // One near event, several beyond the horizon (including two in
        // the same far slot and a same-instant far tie).
        w.schedule(SimTime::from_nanos(100), 0u64);
        let far = HORIZON_NS + 5;
        for (i, &n) in [far + 9000, far, far + 9000, far + HORIZON_NS * 3]
            .iter()
            .enumerate()
        {
            w.schedule(SimTime::from_nanos(n), i as u64 + 1);
        }
        let popped: Vec<_> = std::iter::from_fn(|| w.pop()).collect();
        let times: Vec<u64> = popped.iter().map(|(t, _)| t.as_nanos()).collect();
        assert_eq!(
            times,
            vec![100, far, far + 9000, far + 9000, far + HORIZON_NS * 3]
        );
        // Same-instant far events keep FIFO order through promotion.
        let vals: Vec<u64> = popped.iter().map(|&(_, v)| v).collect();
        assert_eq!(vals, vec![0, 2, 1, 3, 4]);
    }

    #[test]
    fn schedules_behind_the_cursor_still_fire_first() {
        let mut w = TimingWheel::new();
        w.schedule(SimTime::from_nanos(5000), "ahead");
        assert_eq!(w.pop_if_before(SimTime::from_nanos(5000)), None);
        assert_eq!(w.peek_time(), Some(SimTime::from_nanos(5000)));
        // The cursor has advanced to 5000's slot; schedule behind it.
        w.schedule(SimTime::from_nanos(10), "past");
        assert_eq!(
            w.pop(),
            Some((SimTime::from_nanos(10), "past")),
            "past-region events must pop before near-region ones"
        );
        assert_eq!(w.pop(), Some((SimTime::from_nanos(5000), "ahead")));
    }

    #[test]
    fn pop_if_before_and_same_instant_drain() {
        let mut w = TimingWheel::new();
        w.schedule(SimTime::from_nanos(10), 'a');
        w.schedule(SimTime::from_nanos(10), 'b');
        w.schedule(SimTime::from_nanos(20), 'c');
        assert_eq!(w.pop_if_before(SimTime::from_nanos(10)), None);
        assert_eq!(
            w.pop_if_before(SimTime::from_nanos(11)),
            Some((SimTime::from_nanos(10), 'a'))
        );
        let mut batch = Vec::new();
        assert_eq!(
            w.pop_same_instant(&mut batch),
            Some(SimTime::from_nanos(10))
        );
        assert_eq!(batch, vec!['b']);
        batch.clear();
        assert_eq!(
            w.pop_same_instant(&mut batch),
            Some(SimTime::from_nanos(20))
        );
        assert_eq!(batch, vec!['c']);
        assert!(w.is_empty());
        assert_eq!(w.pop_same_instant(&mut batch), None);
    }

    #[test]
    fn bounded_same_instant_drain_respects_the_bound() {
        let mut w = TimingWheel::new();
        w.schedule(SimTime::from_nanos(10), 'a');
        w.schedule(SimTime::from_nanos(10), 'b');
        w.schedule(SimTime::from_nanos(20), 'c');
        let mut batch = Vec::new();
        assert_eq!(
            w.pop_same_instant_until(SimTime::from_nanos(9), &mut batch),
            None
        );
        assert!(batch.is_empty());
        assert_eq!(
            w.pop_same_instant_until(SimTime::from_nanos(10), &mut batch),
            Some(SimTime::from_nanos(10))
        );
        assert_eq!(batch, vec!['a', 'b']);
        batch.clear();
        assert_eq!(
            w.pop_same_instant_until(SimTime::from_nanos(19), &mut batch),
            None
        );
        assert_eq!(w.len(), 1);
        // Past-region events respect the bound too.
        w.schedule(SimTime::from_nanos(1), 'p');
        assert_eq!(w.pop_same_instant_until(SimTime::ZERO, &mut batch), None);
        assert_eq!(
            w.pop_same_instant_until(SimTime::from_nanos(30), &mut batch),
            Some(SimTime::from_nanos(1))
        );
        assert_eq!(batch, vec!['p']);
    }

    #[test]
    fn matches_reference_heap_on_a_mixed_schedule() {
        // A quick inline differential check; the seeded property tests
        // in tests/properties.rs cover random schedules at depth.
        let mut w = TimingWheel::new();
        let mut q = EventQueue::new();
        let times = [
            3u64,
            3,
            1,
            HORIZON_NS + 7,
            0,
            2_000_000,
            3,
            HORIZON_NS + 7,
            512,
            513,
        ];
        for (i, &t) in times.iter().enumerate() {
            w.schedule(SimTime::from_nanos(t), i);
            q.schedule(SimTime::from_nanos(t), i);
        }
        for _ in 0..3 {
            assert_eq!(w.pop(), q.pop());
        }
        // Interleave more schedules (some behind the cursor).
        for (i, &t) in [1u64, 4, HORIZON_NS * 2].iter().enumerate() {
            w.schedule(SimTime::from_nanos(t), 100 + i);
            q.schedule(SimTime::from_nanos(t), 100 + i);
        }
        loop {
            let (a, b) = (w.pop(), q.pop());
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }
}
