//! The shared component (actor) API every engine loop runs on.
//!
//! Before this module, four crates hand-rolled the same drain loop — pop
//! the earliest event off a private [`TimingWheel`], mutate local state,
//! push follow-up events — in the stack async engine, the NVMe device
//! scheduler, the NBD server and the workload runner/trace replay. The
//! [`Component`] trait names that shape once: a component owns local
//! state, receives timestamped events, and emits follow-ups through a
//! [`Scheduler`] handle instead of touching a wheel directly. The same
//! component then runs unchanged under the single-actor [`Engine`] here
//! or inside a multi-core [`ShardedWorld`](crate::ShardedWorld)
//! (see `docs/SHARDING.md`).
//!
//! # Examples
//!
//! A counter that re-arms itself until it has ticked five times:
//!
//! ```
//! use ull_simkit::{Component, Engine, Scheduler, SimDuration, SimTime};
//!
//! struct Ticker {
//!     ticks: u32,
//! }
//!
//! impl Component for Ticker {
//!     type Event = ();
//!     fn on_event(&mut self, now: SimTime, _ev: (), sched: &mut Scheduler<'_, ()>) {
//!         self.ticks += 1;
//!         if self.ticks < 5 {
//!             sched.at(now + SimDuration::from_micros(10), ());
//!         }
//!     }
//! }
//!
//! let mut engine = Engine::new();
//! engine.schedule(SimTime::ZERO, ());
//! let mut t = Ticker { ticks: 0 };
//! engine.run(&mut t);
//! assert_eq!(t.ticks, 5);
//! ```

use crate::time::{SimDuration, SimTime};
use crate::wheel::TimingWheel;

/// Identity of one logical actor in a simulated world.
///
/// The id is the *logical shard* of the `(time, shard, seq)` merge key:
/// it is assigned once when the world is built and never changes with
/// the physical shard count, which is what keeps cross-actor event
/// ordering — and therefore every report byte — identical at
/// `--shards 1/2/4/8` (see `docs/SHARDING.md`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ActorId(pub u32);

/// Where a [`Scheduler`] routes the events a component emits.
///
/// Dispatched dynamically so one `Scheduler` type serves both the
/// single-actor [`Engine`] (everything lands in its own wheel) and the
/// sharded world (cross-actor sends go to an outbox). The indirection
/// costs one virtual call per emitted event, well below the cost of the
/// wheel insert behind it.
pub(crate) trait EventSink<E> {
    /// Schedule onto the emitting actor's own timeline. `key` is the
    /// caller's tie-break (`None` = FIFO insertion order).
    fn local(&mut self, at: SimTime, key: Option<u64>, ev: E);
    /// Deliver to another actor's timeline (already lookahead-floored
    /// by the [`Scheduler`]).
    fn remote(&mut self, dst: ActorId, at: SimTime, ev: E);
}

impl<E> EventSink<E> for TimingWheel<E> {
    fn local(&mut self, at: SimTime, key: Option<u64>, ev: E) {
        match key {
            Some(k) => self.schedule_keyed(at, k, ev),
            None => self.schedule(at, ev),
        }
    }

    fn remote(&mut self, _dst: ActorId, at: SimTime, ev: E) {
        // Single-actor world: every destination is this wheel.
        self.schedule(at, ev);
    }
}

/// The handle a [`Component`] emits events through.
///
/// Borrowed for the duration of one dispatch; it knows the current
/// instant, the emitting actor, and the world's lookahead floor, and it
/// routes each emission either to the actor's own timeline
/// ([`at`](Self::at)/[`at_keyed`](Self::at_keyed)) or across actors
/// ([`send`](Self::send)).
pub struct Scheduler<'a, E> {
    pub(crate) now: SimTime,
    pub(crate) me: ActorId,
    pub(crate) floor: SimDuration,
    pub(crate) halted: &'a mut bool,
    pub(crate) sink: &'a mut dyn EventSink<E>,
}

impl<E> Scheduler<'_, E> {
    /// The instant of the event being dispatched.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The actor this dispatch belongs to.
    pub fn me(&self) -> ActorId {
        self.me
    }

    /// The world's cross-actor lookahead floor (zero under a
    /// single-actor [`Engine`]).
    pub fn lookahead(&self) -> SimDuration {
        self.floor
    }

    /// Schedules `ev` on this actor's own timeline at `at`, breaking
    /// same-instant ties by emission order (FIFO).
    pub fn at(&mut self, at: SimTime, ev: E) {
        self.sink.local(at, None, ev);
    }

    /// Schedules `ev` on this actor's own timeline at `at`, breaking
    /// same-instant ties by the caller-supplied `key` (the NVMe device
    /// scheduler keys by command id; trace replay keys submissions
    /// below completions).
    pub fn at_keyed(&mut self, at: SimTime, key: u64, ev: E) {
        self.sink.local(at, Some(key), ev);
    }

    /// Sends `ev` to actor `dst`.
    ///
    /// Cross-actor sends are floored to `now + lookahead` — the promise
    /// conservative synchronization rests on: no event can arrive
    /// inside the window currently being drained. A send to `self`
    /// is a local FIFO schedule and is not floored.
    pub fn send(&mut self, dst: ActorId, at: SimTime, ev: E) {
        if dst == self.me {
            self.sink.local(at, None, ev);
        } else {
            let eff = at.max(self.now + self.floor);
            self.sink.remote(dst, eff, ev);
        }
    }

    /// Stops the driving engine after the current dispatch returns.
    ///
    /// The device scheduler uses this for completion-queue
    /// backpressure: a full CQ must block *all* later completions
    /// (head-of-line), not just skip the one that failed to post.
    pub fn halt(&mut self) {
        *self.halted = true;
    }
}

impl<E> core::fmt::Debug for Scheduler<'_, E> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Scheduler")
            .field("now", &self.now)
            .field("me", &self.me)
            .field("floor", &self.floor)
            .finish()
    }
}

/// One actor: local state driven by timestamped events.
///
/// Implementations receive events through [`on_event`](Self::on_event)
/// (or same-instant batches through [`on_batch`](Self::on_batch)) and
/// emit follow-ups through the [`Scheduler`] — never by draining a
/// wheel of their own, which is what lets one implementation run under
/// either driver.
pub trait Component {
    /// The component's event payload.
    type Event;

    /// Handles one event at instant `now`.
    fn on_event(&mut self, now: SimTime, ev: Self::Event, sched: &mut Scheduler<'_, Self::Event>);

    /// Handles every event of one instant as a slice.
    ///
    /// The default forwards to [`on_event`](Self::on_event) in order;
    /// hot components (the ssd device scheduler) override it to
    /// amortize per-event dispatch across coalesced completions
    /// (ROADMAP item 5). Implementations must leave `batch` empty.
    fn on_batch(
        &mut self,
        now: SimTime,
        batch: &mut Vec<Self::Event>,
        sched: &mut Scheduler<'_, Self::Event>,
    ) {
        for ev in batch.drain(..) {
            self.on_event(now, ev, sched);
        }
    }
}

/// Wraps a component and suppresses its [`Component::on_batch`]
/// override, forcing every batch through the default one-event-at-a-
/// time loop.
///
/// This is the reference side of the batch==singleton differential
/// tests: running the same seeded scenario through `Unbatched<C>` and
/// through `C` must produce byte-identical reports, because a batch
/// override is only ever allowed to amortize dispatch — never to
/// change observable order or state.
pub struct Unbatched<C>(pub C);

impl<C: Component> Component for Unbatched<C> {
    type Event = C::Event;

    fn on_event(&mut self, now: SimTime, ev: Self::Event, sched: &mut Scheduler<'_, Self::Event>) {
        self.0.on_event(now, ev, sched);
    }
    // No `on_batch` override: the trait default drains the batch
    // through `on_event` in order, which lands on the inner
    // component's `on_event` — its batch fast path is never consulted.
}

/// The single-actor driver: one component, one timing wheel.
///
/// This is what the four hand-rolled engine loops were each an
/// open-coded copy of. [`run`](Self::run) drains same-instant batches
/// through [`Component::on_batch`]; [`run_stepped`](Self::run_stepped)
/// dispatches strictly one event at a time for components whose
/// emissions at the *current* instant must interleave, by key, with
/// events still pending at that instant (trace replay's
/// submit-before-completion tie).
pub struct Engine<E> {
    wheel: TimingWheel<E>,
    batch: Vec<E>,
    halted: bool,
}

impl<E> Default for Engine<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Engine<E> {
    /// Creates an empty engine based at time zero.
    pub fn new() -> Self {
        Engine {
            wheel: TimingWheel::new(),
            batch: Vec::new(),
            halted: false,
        }
    }

    /// Schedules an event from outside any dispatch (FIFO tie-break).
    pub fn schedule(&mut self, at: SimTime, ev: E) {
        self.wheel.schedule(at, ev);
    }

    /// Schedules an event from outside any dispatch with a caller
    /// tie-break key.
    pub fn schedule_keyed(&mut self, at: SimTime, key: u64, ev: E) {
        self.wheel.schedule_keyed(at, key, ev);
    }

    /// Runs `f` with a [`Scheduler`] pinned to instant `now` — the
    /// priming hook: closed-loop components issue their initial
    /// submissions through the same handle they use during dispatch.
    pub fn with_scheduler<R>(
        &mut self,
        now: SimTime,
        f: impl FnOnce(&mut Scheduler<'_, E>) -> R,
    ) -> R {
        let mut sched = Scheduler {
            now,
            me: ActorId(0),
            floor: SimDuration::ZERO,
            halted: &mut self.halted,
            sink: &mut self.wheel,
        };
        f(&mut sched)
    }

    /// Drains every pending event through `c`, batch per instant, until
    /// the wheel is empty or the component [`halt`](Scheduler::halt)s.
    pub fn run(&mut self, c: &mut impl Component<Event = E>) {
        self.halted = false;
        while !self.halted {
            let mut batch = core::mem::take(&mut self.batch);
            let Some(t) = self.wheel.pop_same_instant(&mut batch) else {
                self.batch = batch;
                return;
            };
            let mut sched = Scheduler {
                now: t,
                me: ActorId(0),
                floor: SimDuration::ZERO,
                halted: &mut self.halted,
                sink: &mut self.wheel,
            };
            c.on_batch(t, &mut batch, &mut sched);
            batch.clear();
            self.batch = batch;
        }
    }

    /// Like [`run`](Self::run), but only dispatches instants at or
    /// before `bound` — the device scheduler's "deliver everything due
    /// by now" drain. Events beyond `bound` stay pending.
    pub fn run_until(&mut self, bound: SimTime, c: &mut impl Component<Event = E>) {
        self.halted = false;
        while !self.halted {
            let mut batch = core::mem::take(&mut self.batch);
            let Some(t) = self.wheel.pop_same_instant_until(bound, &mut batch) else {
                self.batch = batch;
                return;
            };
            let mut sched = Scheduler {
                now: t,
                me: ActorId(0),
                floor: SimDuration::ZERO,
                halted: &mut self.halted,
                sink: &mut self.wheel,
            };
            c.on_batch(t, &mut batch, &mut sched);
            batch.clear();
            self.batch = batch;
        }
    }

    /// Drains events strictly one at a time through
    /// [`Component::on_event`] until the wheel is empty or the
    /// component halts. An event the component emits at the current
    /// instant with a lower key than a still-pending same-instant event
    /// is dispatched first — exactly the wheel semantics the open-coded
    /// trace-replay loop relied on.
    pub fn run_stepped(&mut self, c: &mut impl Component<Event = E>) {
        self.halted = false;
        while !self.halted {
            let Some((t, ev)) = self.wheel.pop() else {
                return;
            };
            let mut sched = Scheduler {
                now: t,
                me: ActorId(0),
                floor: SimDuration::ZERO,
                halted: &mut self.halted,
                sink: &mut self.wheel,
            };
            c.on_event(t, ev, &mut sched);
        }
    }

    /// Removes and returns the earliest pending event (reset paths).
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.wheel.pop()
    }

    /// The earliest pending firing time, without advancing the wheel
    /// (`&self`; O(slots) scan).
    pub fn earliest(&self) -> Option<SimTime> {
        self.wheel.earliest()
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.wheel.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.wheel.is_empty()
    }
}

impl<E> core::fmt::Debug for Engine<E> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Engine")
            .field("pending", &self.wheel.len())
            .field("halted", &self.halted)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Collector {
        seen: Vec<(u64, u32)>,
        emit_at_now: Option<(u64, u32)>,
    }

    impl Component for Collector {
        type Event = u32;
        fn on_event(&mut self, now: SimTime, ev: u32, sched: &mut Scheduler<'_, u32>) {
            self.seen.push((now.as_nanos(), ev));
            if let Some((key, v)) = self.emit_at_now.take() {
                sched.at_keyed(now, key, v);
            }
        }
    }

    #[test]
    fn run_drains_in_time_then_fifo_order() {
        let mut e = Engine::new();
        e.schedule(SimTime::from_nanos(20), 1);
        e.schedule(SimTime::from_nanos(10), 2);
        e.schedule(SimTime::from_nanos(10), 3);
        let mut c = Collector {
            seen: Vec::new(),
            emit_at_now: None,
        };
        e.run(&mut c);
        assert_eq!(c.seen, vec![(10, 2), (10, 3), (20, 1)]);
        assert!(e.is_empty());
    }

    #[test]
    fn run_until_leaves_later_events_pending() {
        let mut e = Engine::new();
        e.schedule(SimTime::from_nanos(5), 1);
        e.schedule(SimTime::from_nanos(50), 2);
        let mut c = Collector {
            seen: Vec::new(),
            emit_at_now: None,
        };
        e.run_until(SimTime::from_nanos(10), &mut c);
        assert_eq!(c.seen, vec![(5, 1)]);
        assert_eq!(e.len(), 1);
        assert_eq!(e.earliest(), Some(SimTime::from_nanos(50)));
    }

    #[test]
    fn stepped_mode_interleaves_current_instant_emissions_by_key() {
        // Pending at t=10: keys 1 and 3. The dispatch of key 1 emits a
        // key-2 event at t=10; stepped mode must pop it before key 3.
        let mut e = Engine::new();
        e.schedule_keyed(SimTime::from_nanos(10), 1, 100);
        e.schedule_keyed(SimTime::from_nanos(10), 3, 300);
        let mut c = Collector {
            seen: Vec::new(),
            emit_at_now: Some((2, 200)),
        };
        e.run_stepped(&mut c);
        assert_eq!(c.seen, vec![(10, 100), (10, 200), (10, 300)]);
    }

    struct HaltAfter(u32);

    impl Component for HaltAfter {
        type Event = u32;
        fn on_event(&mut self, _now: SimTime, _ev: u32, sched: &mut Scheduler<'_, u32>) {
            self.0 -= 1;
            if self.0 == 0 {
                sched.halt();
            }
        }
    }

    #[test]
    fn halt_stops_the_drain_and_run_resumes() {
        let mut e = Engine::new();
        for i in 0..4u64 {
            e.schedule(SimTime::from_nanos(10 * (i + 1)), i as u32);
        }
        let mut c = HaltAfter(2);
        e.run(&mut c);
        assert_eq!(e.len(), 2, "halt leaves the tail pending");
        let mut c2 = HaltAfter(u32::MAX);
        e.run(&mut c2);
        assert!(e.is_empty());
    }

    #[test]
    fn with_scheduler_primes_through_the_same_handle() {
        let mut e = Engine::new();
        e.with_scheduler(SimTime::ZERO, |sched| {
            assert_eq!(sched.now(), SimTime::ZERO);
            assert_eq!(sched.me(), ActorId(0));
            assert_eq!(sched.lookahead(), SimDuration::ZERO);
            sched.at(SimTime::from_nanos(7), 1u32);
            sched.send(ActorId(0), SimTime::from_nanos(3), 2u32);
        });
        let mut c = Collector {
            seen: Vec::new(),
            emit_at_now: None,
        };
        e.run(&mut c);
        assert_eq!(c.seen, vec![(3, 2), (7, 1)]);
    }
}
