//! Conservative parallel DES: one world, many wheels, byte-identical
//! at any shard count.
//!
//! A [`ShardedWorld`] partitions a set of [`Component`] actors across
//! `n` physical shards (actor `a` lives on shard `a % n`), each with
//! its own [`TimingWheel`]. Simulation proceeds in windows: with
//! `T` the earliest pending instant anywhere and `L` the world's
//! [`Lookahead`], every shard drains `[T, T + L)` concurrently, then a
//! barrier exchanges the cross-shard events emitted during the window.
//! The window is safe because the [`Scheduler`](crate::Scheduler)
//! floors every cross-actor send to `now + L >= T + L` — no event can
//! arrive inside the window being drained (the null-message argument
//! of conservative synchronization, with the null messages implicit in
//! the barrier).
//!
//! # Why the bytes cannot change with the shard count
//!
//! Every event in a shard's wheel carries a tie-break key that is a
//! pure function of *logical* identities, never of wheel insertion
//! order (which does vary with the shard count):
//!
//! * cross-actor events are keyed `(src actor, per-source send seq)` —
//!   delivery order at any destination is ascending
//!   `(time, src, seq)`, the `(time, shard, seq)` merge key with the
//!   logical shard = [`ActorId`];
//! * an actor's own events are keyed by a per-actor counter (or the
//!   caller's key), namespaced above every cross-actor key, so "my own
//!   follow-ups after my arrivals" holds at every shard count.
//!
//! Same-instant ties *between different actors* are the only place
//! physical placement can reorder dispatch, and those commute: actors
//! share no state, and anything they emit is either keyed as above or
//! floored beyond the window. Each actor therefore sees exactly the
//! same event sequence whatever the shard count, so the merged output
//! (actors read out in [`ActorId`] order) is byte-identical.
//! `docs/SHARDING.md` gives the full proof sketch.

use crate::component::{ActorId, Component, EventSink, Scheduler};
use crate::lookahead::Lookahead;
use crate::time::{SimDuration, SimTime};
use crate::wheel::TimingWheel;

/// Key namespace bit for an actor's own (local) events: every local
/// key sorts above every cross-actor key, so arrivals dispatch before
/// same-instant local follow-ups at any shard count.
const LOCAL_KEY_BIT: u64 = 1 << 63;

/// Packs the shard-count-invariant tie-break key of a cross-actor
/// event: ascending `(src, seq)` under a single `u64` compare.
fn remote_key(src: ActorId, seq: u64) -> u64 {
    (u64::from(src.0) << 32) | (seq & 0xFFFF_FFFF)
}

/// One timestamped event crossing (or queued within) a shard: the wire
/// format of the inter-shard channels.
///
/// `seq` is the per-source emission counter that, with `src`, forms
/// the shard-count-invariant tie-break — the reason this struct can
/// carry a [`SimTime`] and still satisfy simlint's S014 total-order
/// rule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardEvent<E> {
    /// Delivery instant (already lookahead-floored for cross-actor
    /// sends).
    pub at: SimTime,
    /// Emitting actor.
    pub src: ActorId,
    /// Receiving actor.
    pub dst: ActorId,
    /// Per-source emission sequence number (the `seq` of the
    /// `(time, shard, seq)` merge key).
    pub seq: u64,
    /// The component-level event.
    pub payload: E,
}

/// One cross-actor delivery, as observed by the receiving actor — the
/// record the `(time, shard, seq)` total-order property test audits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct Delivery {
    /// Delivery instant.
    pub at: SimTime,
    /// Emitting actor.
    pub src: ActorId,
    /// Per-source emission sequence number.
    pub seq: u64,
}

/// One actor resident on a shard, with the per-actor counters that
/// make its keys placement-invariant.
struct ActorSlot<C> {
    id: ActorId,
    component: C,
    /// FIFO counter for the actor's own (unkeyed) schedules.
    local_seq: u64,
    /// Emission counter for cross-actor sends.
    send_seq: u64,
    /// Cross-actor arrivals, in dispatch order.
    log: Vec<Delivery>,
}

/// One physical shard: a wheel, its resident actors, and the outbox
/// drained at every window barrier.
struct Shard<C: Component> {
    index: u32,
    actors: Vec<ActorSlot<C>>,
    wheel: TimingWheel<ShardEvent<C::Event>>,
    outbox: Vec<ShardEvent<C::Event>>,
    batch: Vec<ShardEvent<C::Event>>,
    /// Pooled payload vector handed to [`Component::on_batch`] for each
    /// same-destination run; reused across every window.
    payloads: Vec<C::Event>,
    halted: bool,
}

/// Routes a dispatching actor's emissions: own wheel for local (and
/// co-resident) events, the outbox for cross-shard ones.
struct ShardSink<'a, E> {
    wheel: &'a mut TimingWheel<ShardEvent<E>>,
    outbox: &'a mut Vec<ShardEvent<E>>,
    me: ActorId,
    shard_index: u32,
    n_shards: u32,
    local_seq: &'a mut u64,
    send_seq: &'a mut u64,
}

impl<E> EventSink<E> for ShardSink<'_, E> {
    fn local(&mut self, at: SimTime, key: Option<u64>, ev: E) {
        let k = match key {
            Some(k) => k,
            None => {
                let s = *self.local_seq;
                *self.local_seq += 1;
                s
            }
        };
        let e = ShardEvent {
            at,
            src: self.me,
            dst: self.me,
            seq: k,
            payload: ev,
        };
        self.wheel.schedule_keyed(at, LOCAL_KEY_BIT | k, e);
    }

    fn remote(&mut self, dst: ActorId, at: SimTime, ev: E) {
        let seq = *self.send_seq;
        *self.send_seq += 1;
        debug_assert!(seq < u64::from(u32::MAX), "per-source send seq overflow");
        let e = ShardEvent {
            at,
            src: self.me,
            dst,
            seq,
            payload: ev,
        };
        if dst.0 % self.n_shards == self.shard_index {
            // Co-resident destination: same key, same delivery order as
            // the cross-shard path, just without the barrier hop.
            self.wheel.schedule_keyed(at, remote_key(self.me, seq), e);
        } else {
            self.outbox.push(e);
        }
    }
}

impl<C: Component> Shard<C> {
    /// Drains every instant strictly before `bound`, dispatching each
    /// event to its resident actor. Emissions flow through a
    /// [`ShardSink`]; a component [`halt`](Scheduler::halt) stops this
    /// window early (the remaining events stay pending for the next).
    ///
    /// Same-instant events for the *same* destination form contiguous
    /// runs in the wheel's `(time, key, seq)` pop order only when their
    /// keys are adjacent, so runs are detected on the fly: each
    /// maximal consecutive same-`dst` run becomes one
    /// [`Component::on_batch`] call (one sink borrow, one dispatch),
    /// which preserves the exact per-event order because `on_batch` is
    /// contractually order-equivalent to the `on_event` loop. With
    /// `stepped` set, every event goes through `on_event` individually
    /// — the reference side of the batch==singleton differential tests.
    fn drain_window(&mut self, bound: SimTime, floor: SimDuration, n_shards: u32, stepped: bool) {
        self.halted = false;
        // `bound` is exclusive and lookahead is >= 1 ns, so the
        // inclusive drain limit is one nanosecond short of it.
        let limit = SimTime::from_nanos(bound.as_nanos().saturating_sub(1));
        while !self.halted {
            let mut batch = core::mem::take(&mut self.batch);
            let Some(t) = self.wheel.pop_same_instant_until(limit, &mut batch) else {
                self.batch = batch;
                return;
            };
            let mut payloads = core::mem::take(&mut self.payloads);
            let mut events = batch.drain(..).peekable();
            while let Some(first) = events.next() {
                let dst = first.dst;
                let local = (dst.0 / n_shards) as usize;
                let slot = &mut self.actors[local];
                debug_assert_eq!(slot.id, dst, "round-robin placement out of sync");
                if first.src != dst {
                    slot.log.push(Delivery {
                        at: t,
                        src: first.src,
                        seq: first.seq,
                    });
                }
                payloads.push(first.payload);
                if !stepped {
                    // Extend the run: arrivals are logged here in the
                    // same order per-event dispatch would log them.
                    while events.peek().is_some_and(|e| e.dst == dst) {
                        if let Some(ev) = events.next() {
                            if ev.src != dst {
                                slot.log.push(Delivery {
                                    at: t,
                                    src: ev.src,
                                    seq: ev.seq,
                                });
                            }
                            payloads.push(ev.payload);
                        }
                    }
                }
                let mut sink = ShardSink {
                    wheel: &mut self.wheel,
                    outbox: &mut self.outbox,
                    me: dst,
                    shard_index: self.index,
                    n_shards,
                    local_seq: &mut slot.local_seq,
                    send_seq: &mut slot.send_seq,
                };
                let mut sched = Scheduler {
                    now: t,
                    me: dst,
                    floor,
                    halted: &mut self.halted,
                    sink: &mut sink,
                };
                if stepped {
                    if let Some(ev) = payloads.pop() {
                        slot.component.on_event(t, ev, &mut sched);
                    }
                } else {
                    slot.component.on_batch(t, &mut payloads, &mut sched);
                }
                payloads.clear();
            }
            drop(events);
            self.payloads = payloads;
            self.batch = batch;
        }
    }
}

/// Runs one window's worth of per-shard work. Defined here (token-free)
/// so `ull-simkit` stays thread-free; the parallel implementation lives
/// in `ull-exec`, the one crate allowed to spawn.
pub trait WindowRunner {
    /// Applies `work` to every shard exactly once. Implementations may
    /// run shards in any order or concurrently — shard state is
    /// disjoint and the window protocol makes order immaterial.
    fn run<S: Send>(&mut self, shards: &mut [S], work: impl Fn(usize, &mut S) + Sync);
}

/// The reference [`WindowRunner`]: shards drain one after another on
/// the calling thread.
#[derive(Debug, Default, Clone, Copy)]
pub struct SerialRunner;

impl WindowRunner for SerialRunner {
    fn run<S: Send>(&mut self, shards: &mut [S], work: impl Fn(usize, &mut S) + Sync) {
        for (i, s) in shards.iter_mut().enumerate() {
            work(i, s);
        }
    }
}

/// A world of actors partitioned across shards, synchronized
/// conservatively — the parallel-DES layer of the crate.
///
/// # Examples
///
/// Two actors ping counts back and forth across (potentially) two
/// shards; the exchange is identical however many shards carry it:
///
/// ```
/// use ull_simkit::{
///     ActorId, Component, Lookahead, Scheduler, ShardedWorld, SimDuration, SimTime,
/// };
///
/// struct Pinger {
///     peer: ActorId,
///     got: Vec<u64>,
///     budget: u64,
/// }
///
/// impl Component for Pinger {
///     type Event = u64;
///     fn on_event(&mut self, now: SimTime, n: u64, sched: &mut Scheduler<'_, u64>) {
///         self.got.push(n);
///         if self.budget > 0 {
///             self.budget -= 1;
///             sched.send(self.peer, now, n + 1);
///         }
///     }
/// }
///
/// let run = |shards: usize| {
///     let mk = |peer: u32| Pinger { peer: ActorId(peer), got: Vec::new(), budget: 4 };
///     let mut world = ShardedWorld::new(
///         shards,
///         Lookahead::from_floor(SimDuration::from_micros(5)),
///         vec![mk(1), mk(0)],
///     );
///     world.seed(ActorId(0), |p, sched| sched.send(p.peer, SimTime::ZERO, 0));
///     world.run();
///     world.into_actors().into_iter().map(|p| p.got).collect::<Vec<_>>()
/// };
/// assert_eq!(run(1), run(2));
/// ```
pub struct ShardedWorld<C: Component> {
    shards: Vec<Shard<C>>,
    lookahead: Lookahead,
    n_actors: usize,
    /// Force one-event-at-a-time dispatch (differential-test hook).
    stepped: bool,
    /// Pooled scratch the window barrier rotates shard outboxes
    /// through, so steady-state exchanges allocate nothing.
    exchange_scratch: Vec<ShardEvent<C::Event>>,
}

impl<C: Component> ShardedWorld<C> {
    /// Builds a world of `actors` (actor `i` becomes [`ActorId`]`(i)`)
    /// spread round-robin over `shards` physical shards.
    ///
    /// `shards` is clamped to `[1, actors.len()]`; `lookahead` is the
    /// tightest cross-actor latency floor (see [`Lookahead`]).
    ///
    /// # Panics
    ///
    /// Panics if `actors` is empty or holds `2^31` or more actors (the
    /// key packing reserves the top bit of the 32-bit actor space).
    pub fn new(shards: usize, lookahead: Lookahead, actors: Vec<C>) -> Self {
        assert!(!actors.is_empty(), "a world needs at least one actor");
        assert!(
            actors.len() < (1 << 31),
            "actor ids must fit the 31-bit key space"
        );
        let n_actors = actors.len();
        let n_shards = shards.clamp(1, n_actors);
        let mut world = ShardedWorld {
            shards: (0..n_shards)
                .map(|i| Shard {
                    index: i as u32,
                    actors: Vec::new(),
                    wheel: TimingWheel::new(),
                    outbox: Vec::new(),
                    batch: Vec::new(),
                    payloads: Vec::new(),
                    halted: false,
                })
                .collect(),
            lookahead,
            n_actors,
            stepped: false,
            exchange_scratch: Vec::new(),
        };
        for (i, component) in actors.into_iter().enumerate() {
            world.shards[i % n_shards].actors.push(ActorSlot {
                id: ActorId(i as u32),
                component,
                local_seq: 0,
                send_seq: 0,
                log: Vec::new(),
            });
        }
        world
    }

    /// Number of physical shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Forces every dispatch through [`Component::on_event`] one event
    /// at a time, suppressing `on_batch` overrides.
    ///
    /// This is the reference side of the batch==singleton differential
    /// tests: a world run with stepped dispatch must produce
    /// byte-identical output to the default batched dispatch, because
    /// `on_batch` is only allowed to amortize — never to reorder.
    pub fn set_stepped_dispatch(&mut self, stepped: bool) {
        self.stepped = stepped;
    }

    /// Runs `f` over `actor`'s component with a [`Scheduler`] pinned to
    /// time zero — the priming hook for closed-loop actors.
    ///
    /// # Panics
    ///
    /// Panics if `actor` is not in the world.
    pub fn seed(&mut self, actor: ActorId, f: impl FnOnce(&mut C, &mut Scheduler<'_, C::Event>)) {
        let n_shards = self.shards.len() as u32;
        assert!((actor.0 as usize) < self.n_actors, "unknown actor");
        let shard = &mut self.shards[(actor.0 % n_shards) as usize];
        let slot = &mut shard.actors[(actor.0 / n_shards) as usize];
        let mut sink = ShardSink {
            wheel: &mut shard.wheel,
            outbox: &mut shard.outbox,
            me: actor,
            shard_index: shard.index,
            n_shards,
            local_seq: &mut slot.local_seq,
            send_seq: &mut slot.send_seq,
        };
        let mut halted = false;
        let mut sched = Scheduler {
            now: SimTime::ZERO,
            me: actor,
            floor: self.lookahead.duration(),
            halted: &mut halted,
            sink: &mut sink,
        };
        f(&mut slot.component, &mut sched);
        // Seeding happens before the first window; route any
        // cross-shard emissions immediately.
        self.exchange();
    }

    /// Runs the world to completion on the calling thread.
    pub fn run(&mut self)
    where
        C: Send,
        C::Event: Send,
    {
        self.run_with(&mut SerialRunner);
    }

    /// Runs the world to completion, draining each window's shards
    /// through `runner` (serial reference or `ull-exec`'s thread pool —
    /// the output is identical either way).
    pub fn run_with(&mut self, runner: &mut impl WindowRunner)
    where
        C: Send,
        C::Event: Send,
    {
        let floor = self.lookahead.duration();
        let n_shards = self.shards.len() as u32;
        let stepped = self.stepped;
        loop {
            let horizon = self.shards.iter().filter_map(|s| s.wheel.earliest()).min();
            let Some(t) = horizon else { break };
            let bound = t + floor;
            runner.run(&mut self.shards, |_, shard| {
                shard.drain_window(bound, floor, n_shards, stepped);
            });
            self.exchange();
        }
    }

    /// The window barrier: moves every outbox event into its
    /// destination shard's wheel. Keys are unique per event, so the
    /// insertion order here cannot influence delivery order.
    ///
    /// Each shard's outbox is swapped with a pooled scratch vector and
    /// drained in place, so the vectors rotate between barriers instead
    /// of being freed and regrown every window.
    fn exchange(&mut self) {
        let n_shards = self.shards.len() as u32;
        let mut scratch = core::mem::take(&mut self.exchange_scratch);
        for i in 0..self.shards.len() {
            core::mem::swap(&mut scratch, &mut self.shards[i].outbox);
            for e in scratch.drain(..) {
                let dst = (e.dst.0 % n_shards) as usize;
                let key = remote_key(e.src, e.seq);
                self.shards[dst].wheel.schedule_keyed(e.at, key, e);
            }
        }
        self.exchange_scratch = scratch;
    }

    /// Every actor's cross-actor arrival log, in [`ActorId`] order —
    /// each log ascends in `(time, src, seq)` whatever the shard count
    /// (audited by `tests/sharding.rs`).
    pub fn delivery_logs(&self) -> Vec<Vec<Delivery>> {
        let n_shards = self.shards.len();
        (0..self.n_actors)
            .map(|a| self.shards[a % n_shards].actors[a / n_shards].log.clone())
            .collect()
    }

    /// Consumes the world, returning the actors in [`ActorId`] order —
    /// the deterministic output merge.
    pub fn into_actors(self) -> Vec<C> {
        let mut slots: Vec<Option<C>> = (0..self.n_actors).map(|_| None).collect();
        for shard in self.shards {
            for actor in shard.actors {
                slots[actor.id.0 as usize] = Some(actor.component);
            }
        }
        slots.into_iter().flatten().collect()
    }
}

impl<C: Component> core::fmt::Debug for ShardedWorld<C> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("ShardedWorld")
            .field("shards", &self.shards.len())
            .field("actors", &self.n_actors)
            .field("lookahead", &self.lookahead)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Records every arrival and fans messages onward.
    struct Relay {
        peers: Vec<ActorId>,
        got: Vec<(u64, u32, u64)>,
        sends_left: u64,
    }

    impl Component for Relay {
        type Event = u64;
        fn on_event(&mut self, now: SimTime, v: u64, sched: &mut Scheduler<'_, u64>) {
            self.got.push((now.as_nanos(), sched.me().0, v));
            if self.sends_left > 0 {
                self.sends_left -= 1;
                for &p in &self.peers {
                    sched.send(p, now, v + 1);
                }
            }
        }
    }

    fn ring_world(n_actors: u32, shards: usize, sends: u64) -> ShardedWorld<Relay> {
        let actors = (0..n_actors)
            .map(|i| Relay {
                peers: vec![ActorId((i + 1) % n_actors)],
                got: Vec::new(),
                sends_left: sends,
            })
            .collect();
        ShardedWorld::new(
            shards,
            Lookahead::from_floor(SimDuration::from_micros(3)),
            actors,
        )
    }

    /// Per-actor received `(payload, src, seq)` triples.
    type RingHistory = Vec<Vec<(u64, u32, u64)>>;

    fn run_ring(n_actors: u32, shards: usize) -> (RingHistory, Vec<Vec<Delivery>>) {
        let mut w = ring_world(n_actors, shards, 5);
        w.seed(ActorId(0), |r, sched| {
            let p = r.peers[0];
            sched.send(p, SimTime::ZERO, 0);
        });
        w.run();
        let logs = w.delivery_logs();
        (w.into_actors().into_iter().map(|r| r.got).collect(), logs)
    }

    #[test]
    fn ring_is_identical_at_every_shard_count() {
        let reference = run_ring(5, 1);
        for shards in [2, 3, 5, 8] {
            assert_eq!(run_ring(5, shards), reference, "shards={shards}");
        }
    }

    #[test]
    fn stepped_dispatch_matches_batched_dispatch() {
        let reference = run_ring(5, 2);
        let mut w = ring_world(5, 2, 5);
        w.set_stepped_dispatch(true);
        w.seed(ActorId(0), |r, sched| {
            let p = r.peers[0];
            sched.send(p, SimTime::ZERO, 0);
        });
        w.run();
        let logs = w.delivery_logs();
        let got: RingHistory = w.into_actors().into_iter().map(|r| r.got).collect();
        assert_eq!((got, logs), reference);
    }

    #[test]
    fn shard_count_is_clamped_to_actor_count() {
        let w = ring_world(3, 64, 0);
        assert_eq!(w.shard_count(), 3);
        let w = ring_world(3, 0, 0);
        assert_eq!(w.shard_count(), 1);
    }

    #[test]
    fn sends_are_floored_by_lookahead() {
        let mut w = ring_world(2, 2, 1);
        w.seed(ActorId(0), |_, sched| {
            // Asked for t=0 delivery; the floor pushes it to L.
            sched.send(ActorId(1), SimTime::ZERO, 7);
        });
        w.run();
        let logs = w.delivery_logs();
        assert_eq!(logs[1].len(), 2, "seeded send plus one reply hop");
        assert_eq!(logs[1][0].at, SimTime::ZERO + SimDuration::from_micros(3));
    }

    #[test]
    fn arrivals_dispatch_before_same_instant_local_events() {
        // Actor 1 schedules a local event for instant L; actor 0's
        // seeded send also lands at L. The arrival must win at every
        // shard count (remote keys sort below the local namespace).
        let run = |shards: usize| {
            let mk = |peers: Vec<ActorId>| Relay {
                peers,
                got: Vec::new(),
                sends_left: 0,
            };
            let mut w = ShardedWorld::new(
                shards,
                Lookahead::from_floor(SimDuration::from_micros(3)),
                vec![mk(vec![ActorId(1)]), mk(Vec::new())],
            );
            let l = SimTime::ZERO + SimDuration::from_micros(3);
            w.seed(ActorId(1), move |_, sched| sched.at(l, 999));
            w.seed(ActorId(0), |_, sched| {
                sched.send(ActorId(1), SimTime::ZERO, 7)
            });
            w.run();
            w.into_actors().pop().map(|r| r.got)
        };
        let one = run(1);
        assert_eq!(one, run(2));
        let got = one.expect("actor 1 exists");
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].2, 7, "cross-actor arrival dispatches first");
        assert_eq!(got[1].2, 999);
    }
}
