//! A tiny in-tree JSON document model and writer.
//!
//! The workspace is offline — no serde — yet the experiment engine, the
//! `reproduce` CLI and `ull-bench` all need to emit machine-readable
//! reports whose bytes are *deterministic*: the CI perf-trajectory
//! baseline (`BENCH_quick.json`) and the `--jobs 1` vs `--jobs N`
//! golden test both diff raw output. This module provides exactly what
//! those consumers need and nothing more:
//!
//! - an explicit [`Json`] tree (objects keep insertion order — no
//!   hash-map key shuffling),
//! - compact rendering via [`core::fmt::Display`] and pretty rendering
//!   via [`Json::to_pretty_string`],
//! - deterministic number formatting: integers render exactly; floats
//!   render with Rust's shortest-round-trip `{}` formatting; NaN and
//!   infinities (which JSON cannot represent) render as `null`.
//!
//! Parsing is deliberately out of scope.

use core::fmt;

/// A JSON value.
///
/// Object members keep the order they were inserted in, so rendering is
/// a pure function of construction order — a requirement for the
/// byte-identity guarantees in `docs/DETERMINISM.md`.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer, rendered without a decimal point.
    Int(i64),
    /// A float, rendered with shortest-round-trip formatting; NaN and
    /// infinities render as `null`.
    Num(f64),
    /// A string, escaped per RFC 8259.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered members.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Creates an empty object.
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Appends a member to an object and returns `self` (builder style).
    ///
    /// # Panics
    ///
    /// Panics if `self` is not an object.
    pub fn field(mut self, key: &str, value: impl Into<Json>) -> Json {
        match &mut self {
            Json::Obj(members) => members.push((key.to_string(), value.into())),
            // simlint: allow(S006): documented builder contract — chains start from Json::obj(), so this arm is an API-misuse guard, not a runtime path
            _ => panic!("Json::field on a non-object"),
        }
        self
    }

    /// Renders with two-space indentation and a trailing newline,
    /// suitable for committing as a baseline file.
    pub fn to_pretty_string(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out.push('\n');
        out
    }

    fn write_pretty(&self, out: &mut String, depth: usize) {
        match self {
            Json::Arr(items) if !items.is_empty() => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    item.write_pretty(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push(']');
            }
            Json::Obj(members) if !members.is_empty() => {
                out.push('{');
                for (i, (key, value)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    write_escaped(out, key);
                    out.push_str(": ");
                    value.write_pretty(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push('}');
            }
            other => {
                use fmt::Write as _;
                // Compact form for scalars and empty containers; the
                // formatter writes into a String, which cannot fail.
                let _ = write!(out, "{other}");
            }
        }
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use fmt::Write as _;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl fmt::Display for Json {
    /// Compact rendering: no whitespace between tokens.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Int(i) => write!(f, "{i}"),
            Json::Num(x) => {
                if x.is_finite() {
                    // Shortest round-trip formatting; force a decimal
                    // point so the value stays a float on re-read.
                    if x.fract() == 0.0 && x.abs() < 1e15 {
                        write!(f, "{x:.1}")
                    } else {
                        write!(f, "{x}")
                    }
                } else {
                    f.write_str("null")
                }
            }
            Json::Str(s) => {
                let mut buf = String::new();
                write_escaped(&mut buf, s);
                f.write_str(&buf)
            }
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Json::Obj(members) => {
                f.write_str("{")?;
                for (i, (key, value)) in members.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    let mut buf = String::new();
                    write_escaped(&mut buf, key);
                    write!(f, "{buf}:{value}")?;
                }
                f.write_str("}")
            }
        }
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}
impl From<i64> for Json {
    fn from(i: i64) -> Json {
        Json::Int(i)
    }
}
impl From<u64> for Json {
    fn from(u: u64) -> Json {
        // Counters in this workspace stay far below 2^63; saturate
        // rather than wrap if one ever does not.
        Json::Int(i64::try_from(u).unwrap_or(i64::MAX))
    }
}
impl From<u32> for Json {
    fn from(u: u32) -> Json {
        Json::Int(i64::from(u))
    }
}
impl From<usize> for Json {
    fn from(u: usize) -> Json {
        Json::Int(i64::try_from(u).unwrap_or(i64::MAX))
    }
}
impl From<f64> for Json {
    fn from(x: f64) -> Json {
        Json::Num(x)
    }
}
impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}
impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}
impl<T: Into<Json>> From<Vec<T>> for Json {
    fn from(v: Vec<T>) -> Json {
        Json::Arr(v.into_iter().map(Into::into).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_rendering() {
        let doc = Json::obj()
            .field("name", "fig04")
            .field("ok", true)
            .field("n", 3u64)
            .field("mean_us", 7.5)
            .field("rows", vec![1i64, 2, 3]);
        assert_eq!(
            doc.to_string(),
            r#"{"name":"fig04","ok":true,"n":3,"mean_us":7.5,"rows":[1,2,3]}"#
        );
    }

    #[test]
    fn pretty_rendering() {
        let doc = Json::obj()
            .field("a", 1i64)
            .field("b", Json::Arr(vec![Json::Int(2)]));
        assert_eq!(
            doc.to_pretty_string(),
            "{\n  \"a\": 1,\n  \"b\": [\n    2\n  ]\n}\n"
        );
    }

    #[test]
    fn empty_containers_stay_compact_when_pretty() {
        let doc = Json::obj()
            .field("arr", Json::Arr(vec![]))
            .field("obj", Json::obj());
        assert_eq!(
            doc.to_pretty_string(),
            "{\n  \"arr\": [],\n  \"obj\": {}\n}\n"
        );
    }

    #[test]
    fn string_escaping() {
        let s = Json::Str("a\"b\\c\nd\te\u{1}".into());
        assert_eq!(s.to_string(), "\"a\\\"b\\\\c\\nd\\te\\u0001\"");
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(Json::Num(f64::NAN).to_string(), "null");
        assert_eq!(Json::Num(f64::INFINITY).to_string(), "null");
    }

    #[test]
    fn whole_floats_keep_a_decimal_point() {
        assert_eq!(Json::Num(3.0).to_string(), "3.0");
        assert_eq!(Json::Num(0.25).to_string(), "0.25");
        assert_eq!(Json::Int(3).to_string(), "3");
    }

    #[test]
    fn u64_saturates() {
        assert_eq!(Json::from(u64::MAX), Json::Int(i64::MAX));
    }
}
