//! Time-series recorders for the paper's time-domain plots (figs. 7b and 8).

use crate::stats::Summary;
use crate::time::{SimDuration, SimTime};

/// Aggregates `(time, value)` samples into fixed-width bins, keeping the
/// per-bin mean — exactly what the paper's latency/power-vs-time plots show.
///
/// # Examples
///
/// ```
/// use ull_simkit::{SimDuration, SimTime, TimeSeries};
///
/// let mut ts = TimeSeries::new(SimDuration::from_secs(1));
/// ts.record(SimTime::from_nanos(100), 10.0);
/// ts.record(SimTime::from_nanos(200), 20.0);
/// ts.record(SimTime::ZERO + SimDuration::from_secs(1), 99.0);
/// let bins = ts.bins();
/// assert_eq!(bins.len(), 2);
/// assert!((bins[0].1 - 15.0).abs() < 1e-12);
/// assert!((bins[1].1 - 99.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct TimeSeries {
    bin_width: SimDuration,
    bins: Vec<Summary>,
}

impl TimeSeries {
    /// Creates a series with the given bin width.
    ///
    /// # Panics
    ///
    /// Panics if `bin_width` is zero.
    pub fn new(bin_width: SimDuration) -> Self {
        assert!(
            !bin_width.is_zero(),
            "time-series bin width must be non-zero"
        );
        TimeSeries {
            bin_width,
            bins: Vec::new(),
        }
    }

    /// Records one sample at instant `at`.
    pub fn record(&mut self, at: SimTime, value: f64) {
        let idx = (at.as_nanos() / self.bin_width.as_nanos()) as usize;
        if idx >= self.bins.len() {
            self.bins.resize_with(idx + 1, Summary::new);
        }
        self.bins[idx].record(value);
    }

    /// The bin width this series was created with.
    pub fn bin_width(&self) -> SimDuration {
        self.bin_width
    }

    /// Per-bin `(bin start time, mean value)` pairs; empty bins yield a mean
    /// of 0.0 and a count of zero in [`TimeSeries::summaries`].
    pub fn bins(&self) -> Vec<(SimTime, f64)> {
        self.bins
            .iter()
            .enumerate()
            .map(|(i, s)| {
                (
                    SimTime::from_nanos(i as u64 * self.bin_width.as_nanos()),
                    s.mean(),
                )
            })
            .collect()
    }

    /// Per-bin full summaries (count, mean, min, max).
    pub fn summaries(&self) -> &[Summary] {
        &self.bins
    }

    /// Largest per-bin mean observed, or 0.0 if empty.
    pub fn peak_mean(&self) -> f64 {
        self.bins.iter().map(Summary::mean).fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bins_partition_time() {
        let mut ts = TimeSeries::new(SimDuration::from_micros(10));
        for i in 0..100u64 {
            ts.record(SimTime::from_micros(i), i as f64);
        }
        let bins = ts.bins();
        assert_eq!(bins.len(), 10);
        // Bin k holds samples k*10 .. k*10+9, mean = 10k + 4.5.
        for (k, (start, mean)) in bins.iter().enumerate() {
            assert_eq!(start.as_nanos(), k as u64 * 10_000);
            assert!((mean - (10.0 * k as f64 + 4.5)).abs() < 1e-9);
        }
    }

    #[test]
    fn gaps_produce_empty_bins() {
        let mut ts = TimeSeries::new(SimDuration::from_micros(1));
        ts.record(SimTime::from_micros(0), 5.0);
        ts.record(SimTime::from_micros(3), 7.0);
        assert_eq!(ts.summaries().len(), 4);
        assert_eq!(ts.summaries()[1].count(), 0);
        assert!((ts.peak_mean() - 7.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "bin width")]
    fn zero_width_rejected() {
        let _ = TimeSeries::new(SimDuration::ZERO);
    }
}
