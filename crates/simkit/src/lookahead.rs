//! Lookahead: the latency floor conservative parallel simulation
//! rests on.
//!
//! A sharded world may drain the window `[T, T + L)` on every shard
//! concurrently only if no shard can receive an event *inside* that
//! window from another shard. [`Lookahead`] is the `L` of that
//! argument: the minimum over every cross-actor path of the smallest
//! delay an emission can experience — a network link's one-way
//! latency, a queue's minimum service time. The [`Scheduler`]
//! (crate::Scheduler) floors every cross-actor send to `now + L`, so
//! the promise holds by construction rather than by protocol
//! (null-message-style conservative synchronization with the null
//! messages made implicit; see `docs/SHARDING.md` for the derivation).

use crate::time::SimDuration;

/// The cross-actor latency floor of a sharded world.
///
/// Combine per-path floors with [`min`](Self::min): the world's
/// lookahead is the tightest floor of any path between actors on
/// different shards.
///
/// # Examples
///
/// ```
/// use ull_simkit::{Lookahead, SimDuration};
///
/// let link = Lookahead::from_floor(SimDuration::from_micros(10));
/// let queue = Lookahead::from_floor(SimDuration::from_micros(25));
/// assert_eq!(link.min(queue), link);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct Lookahead(SimDuration);

impl Lookahead {
    /// One simulated nanosecond — the smallest usable lookahead. A
    /// window must have positive width to make progress, so
    /// [`duration`](Self::duration) never reports less than this.
    pub const MIN: Lookahead = Lookahead(SimDuration::from_nanos(1));

    /// A lookahead derived from one cross-actor path's latency floor
    /// (link one-way latency, minimum queue service time, ...).
    /// Floors below one nanosecond are clamped up to [`MIN`](Self::MIN).
    pub const fn from_floor(floor: SimDuration) -> Self {
        if floor.as_nanos() < 1 {
            Self::MIN
        } else {
            Lookahead(floor)
        }
    }

    /// The tighter of two floors: a world's lookahead is the minimum
    /// over every cross-shard path.
    pub fn min(self, other: Self) -> Self {
        if other.0 < self.0 {
            other
        } else {
            self
        }
    }

    /// The window width `L` as a duration (always at least 1 ns).
    pub fn duration(self) -> SimDuration {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_floors_clamp_to_one_nanosecond() {
        assert_eq!(
            Lookahead::from_floor(SimDuration::ZERO).duration(),
            SimDuration::from_nanos(1)
        );
        assert_eq!(Lookahead::MIN.duration(), SimDuration::from_nanos(1));
    }

    #[test]
    fn min_picks_the_tighter_floor() {
        let a = Lookahead::from_floor(SimDuration::from_micros(10));
        let b = Lookahead::from_floor(SimDuration::from_nanos(300));
        assert_eq!(a.min(b), b);
        assert_eq!(b.min(a), b);
        assert_eq!(a.min(a), a);
    }
}
