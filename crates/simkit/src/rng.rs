//! A small, fast, deterministic PRNG (SplitMix64).
//!
//! Every stochastic decision in the simulator (LBA choice, cache-hit draws,
//! tail-event injection) flows from seeded [`SplitMix64`] streams so that
//! identical configurations reproduce identical reports bit-for-bit — a
//! property the determinism integration test enforces.

/// SplitMix64 pseudo-random generator.
///
/// # Examples
///
/// ```
/// use ull_simkit::SplitMix64;
///
/// let mut a = SplitMix64::new(42);
/// let mut b = SplitMix64::new(42);
/// assert_eq!(a.next_u64(), b.next_u64()); // same seed, same stream
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Derives an independent child stream; used to give each subsystem its
    /// own generator so adding draws in one place never perturbs another.
    pub fn fork(&mut self, salt: u64) -> SplitMix64 {
        SplitMix64::new(self.next_u64() ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// The next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform integer in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0) is meaningless");
        // Multiply-shift bounded generation (Lemire); bias is negligible for
        // the bounds used here and determinism is what matters.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Exponentially distributed sample with the given mean.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        let u = 1.0 - self.next_f64(); // (0, 1]
        -mean * u.ln()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn below_stays_in_range() {
        let mut r = SplitMix64::new(1);
        for bound in [1u64, 2, 3, 10, 1_000_000] {
            for _ in 0..200 {
                assert!(r.below(bound) < bound);
            }
        }
    }

    #[test]
    fn f64_in_unit_interval_and_roughly_uniform() {
        let mut r = SplitMix64::new(9);
        let mut sum = 0.0;
        let n = 10_000;
        for _ in 0..n {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean={mean}");
    }

    #[test]
    fn chance_frequency_tracks_p() {
        let mut r = SplitMix64::new(3);
        let hits = (0..10_000).filter(|_| r.chance(0.25)).count();
        assert!((hits as f64 / 10_000.0 - 0.25).abs() < 0.03);
    }

    #[test]
    fn forked_streams_differ() {
        let mut root = SplitMix64::new(5);
        let mut a = root.fork(1);
        let mut b = root.fork(2);
        let same = (0..50).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn exponential_mean_converges() {
        let mut r = SplitMix64::new(11);
        let n = 20_000;
        let sum: f64 = (0..n).map(|_| r.exponential(10.0)).sum();
        assert!((sum / n as f64 - 10.0).abs() < 0.5);
    }

    #[test]
    #[should_panic(expected = "below(0)")]
    fn below_zero_panics() {
        SplitMix64::new(0).below(0);
    }
}
