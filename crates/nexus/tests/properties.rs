//! Property tests for the replicated-volume nexus: hand-rolled
//! multi-seed sweeps (no external property-test dependency, matching
//! the repo-wide idiom in `tests/properties.rs`).
//!
//! The properties:
//!
//! 1. Under fault injection, every retired child is rebuilt online and
//!    the re-admitted replica is byte-identical to the survivors, for
//!    every seed.
//! 2. A write racing the scan head lands in the copy and in the dirty
//!    log exactly once: at quiescence `range_recopies == dirty_marks`,
//!    and forwarded+awaiting writes tile the degraded write stream.
//! 3. The accounting equalities of `NexusReport::check` hold for every
//!    seed, shard count and throttle.
//! 4. Probing is free: recording latency spans changes no counter, no
//!    histogram and no checksum.

use ull_faults::FaultPlan;
use ull_nexus::{run_nexus, NexusConfig, NexusReport, Throttle};
use ull_simkit::SerialRunner;
use ull_ssd::presets;

const SEEDS: [u64; 8] = [
    0xA11CE,
    0x0B0B_5EED,
    0xC0FFEE,
    0xD15C0,
    0xE666,
    0xF00D,
    0x1CEBE46,
    0x2B00B5,
];

fn faulted_cfg(seed: u64) -> NexusConfig {
    let mut cfg = NexusConfig::new(presets::ull_800g());
    // Rate 2e-3 with a small budget: every seed must retire the faulty
    // child well inside the run.
    cfg.plan = FaultPlan::uniform(seed ^ 0xFA_17, 2e-3);
    cfg.budget = 1;
    cfg.ios = 2500;
    cfg.total_ranges = 12;
    cfg.range_len = 32 * 1024;
    cfg.seed = seed;
    // A stretched rebuild maximizes the window for writes to race the
    // scan head.
    cfg.throttle = Throttle::DutyPct(25);
    cfg
}

fn run(cfg: &NexusConfig) -> NexusReport {
    run_nexus(cfg, 1, &mut SerialRunner)
}

#[test]
fn rebuild_completes_and_readmitted_child_matches_survivors_for_every_seed() {
    for seed in SEEDS {
        let r = run(&faulted_cfg(seed));
        r.check().unwrap_or_else(|e| panic!("seed {seed:#x}: {e}"));
        let c = &r.counters;
        assert!(
            c.retired_children >= 1,
            "seed {seed:#x}: the faulty child was never retired \
             ({} fault events seen)",
            c.fault_events
        );
        assert_eq!(
            c.rebuilds_completed, c.retired_children,
            "seed {seed:#x}: every retirement must end in a completed rebuild"
        );
        assert_eq!(
            r.serving_children, 3,
            "seed {seed:#x}: the rebuilt child must be re-admitted"
        );
        assert_eq!(
            r.digest_mismatch_ranges, 0,
            "seed {seed:#x}: re-admitted replica diverges from survivors"
        );
        assert_eq!(
            r.retire_ns.len(),
            r.readmit_ns.len(),
            "seed {seed:#x}: retire/readmit timeline is unpaired"
        );
        for (retire, readmit) in r.retire_ns.iter().zip(&r.readmit_ns) {
            assert!(
                readmit > retire,
                "seed {seed:#x}: readmit at {readmit} precedes retirement at {retire}"
            );
        }
    }
}

#[test]
fn writes_racing_the_scan_head_are_marked_and_recopied_exactly_once() {
    let mut total_marks = 0;
    for seed in SEEDS {
        let r = run(&faulted_cfg(seed));
        let c = &r.counters;
        // The exactly-once identity: every copy pass dirtied by a
        // racing write (counted once per pass, however many writes
        // raced it) is re-copied exactly once.
        assert_eq!(
            c.range_recopies, c.dirty_marks,
            "seed {seed:#x}: recopies must equal dirty marks"
        );
        // Degraded-window writes either reached the target (forwarded)
        // or deliberately waited for the scan to carry them over.
        assert!(
            c.forwarded_writes + c.writes_awaiting_copy > 0 || c.retired_children == 0,
            "seed {seed:#x}: a rebuild under write traffic must route writes"
        );
        total_marks += c.dirty_marks;
    }
    // Across the seed set, at least one write must actually race the
    // scan head — otherwise the exactly-once path is untested.
    assert!(
        total_marks > 0,
        "no write ever raced the scan head across {} seeds — \
         widen the race window",
        SEEDS.len()
    );
}

#[test]
fn accounting_equalities_hold_for_every_seed_shard_count_and_throttle() {
    for seed in [SEEDS[0], SEEDS[3]] {
        for throttle in [
            Throttle::Unthrottled,
            Throttle::DutyPct(25),
            Throttle::DutyPct(5),
        ] {
            let mut cfg = faulted_cfg(seed);
            cfg.throttle = throttle;
            let serial = run(&cfg);
            serial
                .check()
                .unwrap_or_else(|e| panic!("seed {seed:#x} {}: {e}", throttle.label()));
            for shards in [2, 4] {
                let sharded = run_nexus(&cfg, shards, &mut SerialRunner);
                sharded.check().unwrap_or_else(|e| {
                    panic!("seed {seed:#x} {} shards={shards}: {e}", throttle.label())
                });
                assert_eq!(
                    sharded,
                    serial,
                    "seed {seed:#x} {} shards={shards}: report diverged",
                    throttle.label()
                );
            }
        }
    }
}

#[test]
fn probing_changes_no_outcome() {
    let mut cfg = faulted_cfg(SEEDS[1]);
    cfg.probe = false;
    let plain = run(&cfg);
    cfg.probe = true;
    let probed = run(&cfg);
    assert_eq!(probed.counters, plain.counters);
    assert_eq!(probed.checksum, plain.checksum);
    assert_eq!(probed.latency, plain.latency);
    assert_eq!(probed.degraded, plain.degraded);
    // And the spans themselves tile: per-stage totals over all probed
    // ops sum to the histogram's total end-to-end time.
    assert_eq!(probed.probed_ios, probed.counters.completed);
    let stage_total: u64 = probed.stage_ns.iter().sum();
    assert_eq!(u128::from(stage_total), probed.latency.sum_nanos());
}
