//! Wire events of the nexus world.
//!
//! The frontend and its children are distinct actors, usually on
//! different shards, so everything that crosses an actor boundary is a
//! `pub` event struct carrying the frontend-assigned command sequence
//! number `seq`. `seq` is a total order over every command the nexus
//! ever issues: together with the shard layer's `(time, src, seq)`
//! merge key it pins the delivery order — and hence every digest
//! application order — independent of the shard count (simlint S014
//! requires exactly this of wire events that carry simulated time).

use ull_simkit::{SimDuration, SimTime, SlotId};

/// What a child is being asked to do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmdKind {
    /// Serve a client read.
    Read,
    /// Apply a client (or forwarded) write carrying `val`.
    Write {
        /// Payload identity folded into the range digest chain.
        val: u64,
    },
    /// Rebuild scan: read one range back for copying (the child snapshots
    /// the range digest at command arrival — see `docs/NEXUS.md`).
    CopyRead {
        /// Range index being copied.
        range: u32,
    },
    /// Rebuild scan: install the copied range content on the target.
    CopyWrite {
        /// Range index being installed.
        range: u32,
        /// Source-snapshot digest to install.
        digest: u64,
    },
    /// Wipe the child before a rebuild: fresh replica content (all-zero
    /// digests) and a clean fault plan.
    Reformat,
}

/// Frontend → child command (crosses the actor boundary).
#[derive(Debug, Clone, Copy)]
pub struct ChildCmdEvent {
    /// Frontend-assigned sequence number; a total order over all
    /// commands, echoed back in [`ChildDoneEvent`].
    pub seq: u64,
    /// The target child's membership epoch at send time. A completion
    /// whose epoch no longer matches is stale and must be dropped.
    pub epoch: u32,
    /// Physical byte offset on the child device.
    pub offset: u64,
    /// Length in bytes.
    pub len: u32,
    /// What to do.
    pub kind: CmdKind,
}

/// Child → frontend completion report (crosses the actor boundary).
///
/// Carries both the completion instant and `seq`: the `(done_at, seq)`
/// pair is totally ordered even when two children complete at the same
/// instant, which is what keeps the frontend's bookkeeping (and its
/// event-history checksum) byte-identical at any shard count.
#[derive(Debug, Clone, Copy)]
pub struct ChildDoneEvent {
    /// Echo of the command's sequence number.
    pub seq: u64,
    /// Which child completed it.
    pub child: u32,
    /// The child's epoch as stamped on the command.
    pub epoch: u32,
    /// Device-side completion instant at the child.
    pub done_at: SimTime,
    /// Portion of the child-side service during which the child was
    /// concurrently servicing rebuild copy traffic (charged to the
    /// `rebuild_wait` probe stage on the critical path).
    pub rebuild_overlap: SimDuration,
    /// New fault events (timeouts, resets, media failures) the child's
    /// layers recorded while servicing this command.
    pub fault_delta: u64,
    /// For `CopyRead` completions: the snapshotted range digest.
    pub digest: u64,
}

/// Every event of the nexus world (one type, heterogeneous actors).
#[derive(Debug, Clone, Copy)]
pub enum NexusEvent {
    /// Frontend → child command.
    Cmd(ChildCmdEvent),
    /// Child-local: the child's own device finished the I/O parked in
    /// `slot` for command `seq`.
    DevDone {
        /// The child port slot.
        slot: SlotId,
        /// The command it belongs to.
        seq: u64,
    },
    /// Child → frontend completion report.
    Done(ChildDoneEvent),
    /// Frontend-local: replacement disk arrived, start the queued
    /// rebuild.
    RebuildStart,
    /// Frontend-local: issue the next range copy of the rebuild scan
    /// (delayed by the throttle gap).
    CopyNext,
}
