//! One nexus child: a distinct simulated SSD behind its own NVMe
//! controller and host stack, wrapped as a world actor.
//!
//! Content is modeled as one order-sensitive digest per range: client
//! writes extend a hash chain, a rebuild `CopyWrite` installs the
//! source snapshot wholesale. Digests are applied at **command
//! arrival**, not device completion — the frontend issues every command
//! from a single sequence, and per-destination delivery preserves
//! `(time, src, seq)` order, so arrival order *is* the frontend's send
//! order on every child. Device latency then only shapes *when* the
//! acknowledgment returns, never *what* the replica contains, which is
//! what makes the scan-head race rules in `docs/NEXUS.md` airtight.

use std::collections::BTreeMap;

use ull_faults::FaultPlan;
use ull_nvme::NvmeController;
use ull_simkit::{ActorId, Component, Scheduler, SimDuration, SimTime};
use ull_ssd::{Ssd, SsdConfig};
use ull_stack::{AsyncPort, Host, IoOp, IoPath, SoftwareCosts};

use crate::event::{ChildCmdEvent, ChildDoneEvent, CmdKind, NexusEvent};
use crate::CHILD_LINK;

/// Digest chain step for one applied write (order-sensitive: applying
/// the same writes in a different order disagrees).
pub fn chain(digest: u64, val: u64) -> u64 {
    digest
        .wrapping_mul(0x100_0000_01B3)
        .wrapping_add(val ^ 0x9E37)
}

/// Reformat service time (wipe + superblock rewrite on the replacement
/// replica) before the child acknowledges a [`CmdKind::Reformat`].
const FORMAT_DELAY: SimDuration = SimDuration::from_micros(20);

/// A command in flight on the child's own device.
#[derive(Debug, Clone, Copy)]
struct PendingCmd {
    epoch: u32,
    rebuild_overlap: SimDuration,
    digest: u64,
}

/// One child replica actor.
#[derive(Debug)]
pub struct NexusChild {
    index: u32,
    frontend: ActorId,
    host: Host,
    port: AsyncPort,
    digests: Vec<u64>,
    pending: BTreeMap<u64, PendingCmd>,
    /// Latest completion instant of any rebuild copy I/O on this child;
    /// client service overlapping it is charged to `rebuild_wait`.
    copy_busy_until: SimTime,
    last_fault_events: u64,
}

impl NexusChild {
    /// Builds child `index` over `device`, optionally installing a fault
    /// plan (`None` = pristine replica).
    ///
    /// # Panics
    ///
    /// Panics on an invalid device preset (construction-time
    /// configuration error, never mid-run).
    pub fn new(
        index: u32,
        frontend: ActorId,
        device: SsdConfig,
        path: IoPath,
        total_ranges: u32,
        plan: Option<&FaultPlan>,
    ) -> NexusChild {
        let ssd = Ssd::new(device).expect("preset config is valid");
        let ctrl = NvmeController::new(ssd, 1, 1024);
        let mut host = Host::new(ctrl, SoftwareCosts::linux_4_14(), path);
        if let Some(p) = plan {
            host.set_fault_plan(p);
        }
        NexusChild {
            index,
            frontend,
            host,
            port: AsyncPort::with_capacity(64),
            digests: vec![0; total_ranges as usize],
            pending: BTreeMap::new(),
            copy_busy_until: SimTime::ZERO,
            last_fault_events: 0,
        }
    }

    /// The child's per-range content digests (read back by `run_nexus`
    /// after the world drains, to audit replica equality).
    pub fn digests(&self) -> &[u64] {
        &self.digests
    }

    /// This child's index in the nexus.
    pub fn index(&self) -> u32 {
        self.index
    }

    /// Fault events (timeouts, resets, media failures) this child's
    /// layers have recorded so far.
    fn fault_events_total(&self) -> u64 {
        let nvme = self.host.nvme_fault_counters();
        let (flash, _ssd) = self.host.controller().ssd().fault_counters();
        nvme.aborts + nvme.controller_resets + flash.read_marginal_events + flash.program_failures
    }

    fn ack(&self, now: SimTime, done: ChildDoneEvent, sched: &mut Scheduler<'_, NexusEvent>) {
        sched.send(self.frontend, now + CHILD_LINK, NexusEvent::Done(done));
    }

    fn on_cmd(&mut self, now: SimTime, cmd: ChildCmdEvent, sched: &mut Scheduler<'_, NexusEvent>) {
        let (op, digest, is_copy) = match cmd.kind {
            CmdKind::Reformat => {
                // Fresh replacement replica: zero content, clean fault
                // plan, fault baseline reset.
                self.digests.fill(0);
                self.host.set_fault_plan(&FaultPlan::none());
                self.last_fault_events = self.fault_events_total();
                self.ack(
                    now + FORMAT_DELAY,
                    ChildDoneEvent {
                        seq: cmd.seq,
                        child: self.index,
                        epoch: cmd.epoch,
                        done_at: now + FORMAT_DELAY,
                        rebuild_overlap: SimDuration::ZERO,
                        fault_delta: 0,
                        digest: 0,
                    },
                    sched,
                );
                return;
            }
            CmdKind::Read => (IoOp::Read, 0, false),
            CmdKind::Write { val } => {
                let r = self.range_of(cmd.offset);
                self.digests[r] = chain(self.digests[r], val);
                (IoOp::Write, 0, false)
            }
            CmdKind::CopyRead { range } => {
                // Snapshot at arrival: includes exactly the writes the
                // frontend issued before this copy started.
                (IoOp::Read, self.digests[range as usize], true)
            }
            CmdKind::CopyWrite { range, digest } => {
                self.digests[range as usize] = digest;
                (IoOp::Write, 0, true)
            }
        };
        let (slot, done) = self
            .port
            .submit(&mut self.host, op, cmd.offset, cmd.len, now);
        let rebuild_overlap = if is_copy {
            self.copy_busy_until = self.copy_busy_until.max(done);
            SimDuration::ZERO
        } else {
            done.min(self.copy_busy_until).saturating_since(now)
        };
        self.pending.insert(
            cmd.seq,
            PendingCmd {
                epoch: cmd.epoch,
                rebuild_overlap,
                digest,
            },
        );
        sched.at(done, NexusEvent::DevDone { slot, seq: cmd.seq });
    }

    fn range_of(&self, offset: u64) -> usize {
        // Physical offsets stride the device; recover the range index
        // from the stride (set once by the frontend's address map).
        (offset / self.stride()) as usize
    }

    fn stride(&self) -> u64 {
        let ranges = self.digests.len().max(1) as u64;
        (self.host.controller().ssd().capacity_bytes() / ranges) & !4095
    }
}

impl Component for NexusChild {
    type Event = NexusEvent;

    fn on_event(&mut self, now: SimTime, ev: NexusEvent, sched: &mut Scheduler<'_, NexusEvent>) {
        match ev {
            NexusEvent::Cmd(cmd) => self.on_cmd(now, cmd, sched),
            NexusEvent::DevDone { slot, seq } => {
                let Some((_op, _r)) = self.port.finish(&mut self.host, slot) else {
                    return;
                };
                let Some(p) = self.pending.remove(&seq) else {
                    return;
                };
                let total = self.fault_events_total();
                let fault_delta = total.saturating_sub(self.last_fault_events);
                self.last_fault_events = total;
                self.ack(
                    now,
                    ChildDoneEvent {
                        seq,
                        child: self.index,
                        epoch: p.epoch,
                        done_at: now,
                        rebuild_overlap: p.rebuild_overlap,
                        fault_delta,
                        digest: p.digest,
                    },
                    sched,
                );
            }
            // Frontend-local events never arrive here.
            NexusEvent::Done(_) | NexusEvent::RebuildStart | NexusEvent::CopyNext => {}
        }
    }
}
