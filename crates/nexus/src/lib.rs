//! Replicated-volume nexus: one volume mirrored over N child replicas,
//! each child a distinct simulated SSD behind its own NVMe controller
//! and host stack, all sharding under `ull-simkit`'s `ShardedWorld`.
//!
//! The nexus reproduces the robustness story around the paper's
//! ultra-low-latency devices: when a device misbehaves (timeouts,
//! controller resets, media failures drawn from the `ull-faults`
//! lottery), the volume must **detect** the faulting child, **retire**
//! it and keep serving degraded without dropping or reordering
//! in-flight I/O, then **rebuild** a replacement online — a seeded,
//! rate-throttled copy scan racing foreground traffic through a
//! dirty-range log — and re-admit it only when caught up.
//!
//! Layout:
//!
//! - [`event`] — the wire events crossing actor boundaries.
//! - [`rebuild`] — the dirty-range log and scan-head race rules.
//! - [`NexusChild`] — one replica actor (SSD + NVMe + host stack).
//! - [`NexusFrontend`] — routing, fault scoring, retirement, rebuild.
//! - [`run_nexus`] — builds the world and runs it to quiescence; the
//!   [`NexusReport`] is byte-identical at any shard count.
//!
//! The design rules (content-at-arrival digests, the exactly-once
//! dirty-mark guarantee, throttle semantics, the accounting
//! equalities) are documented in `docs/NEXUS.md`.

mod child;
pub mod event;
mod frontend;
pub mod rebuild;
mod report;
mod world;

use ull_faults::FaultPlan;
use ull_simkit::{SimDuration, SplitMix64};
use ull_ssd::SsdConfig;
use ull_stack::IoPath;

pub use child::{chain, NexusChild};
pub use event::{ChildCmdEvent, ChildDoneEvent, CmdKind, NexusEvent};
pub use frontend::NexusFrontend;
pub use rebuild::{RangeLog, RangeState, WriteRouting};
pub use report::{NexusCounters, NexusReport};
pub use world::{run_nexus, run_nexus_stepped, NexusActor};

/// Latency floor of the frontend↔child link (an in-chassis hop). This
/// is the nexus world's lookahead: every cross-actor send departs at
/// least this far in the future, so the floor never distorts timing.
pub const CHILD_LINK: SimDuration = SimDuration::from_micros(2);

/// Rebuild copy-scan rate control.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throttle {
    /// Copy back-to-back (fastest rebuild, worst foreground tail).
    Unthrottled,
    /// The scan is active for roughly this percentage of wall time:
    /// after each range copy taking `t`, the scan sleeps
    /// `t * (100 - pct) / pct`, jittered ±12% from the fault-lottery
    /// stream so the gap never beats against the workload period.
    DutyPct(u32),
}

impl Throttle {
    /// The post-copy gap for a range copy that took `elapsed`.
    pub fn gap_after(self, elapsed: SimDuration, jitter: &mut SplitMix64) -> SimDuration {
        match self {
            Throttle::Unthrottled => SimDuration::ZERO,
            Throttle::DutyPct(pct) => {
                let pct = u64::from(pct.clamp(1, 100));
                let base = elapsed.as_nanos() * (100 - pct) / pct;
                SimDuration::from_nanos(base * (88 + jitter.below(25)) / 100)
            }
        }
    }

    /// Stable label for experiment cells and JSON.
    pub fn label(self) -> String {
        match self {
            Throttle::Unthrottled => "unthrottled".into(),
            Throttle::DutyPct(p) => format!("duty{p}"),
        }
    }
}

/// Full configuration of one nexus run.
#[derive(Debug, Clone)]
pub struct NexusConfig {
    /// Number of child replicas (≥ 2).
    pub children: u32,
    /// Device preset each child runs.
    pub device: SsdConfig,
    /// Host I/O path on every child (interrupt, poll, ...).
    pub path: IoPath,
    /// Fault plan template. Child `i` (for `i < faulty_children`) gets
    /// a copy with a decorrelated seed; the rest run pristine.
    pub plan: FaultPlan,
    /// How many children (from index 0) are fault-prone.
    pub faulty_children: u32,
    /// Per-child error budget: the child is retired when its fault
    /// score first exceeds this.
    pub budget: u64,
    /// Number of fixed-size ranges the volume is divided into (the
    /// rebuild copy granularity).
    pub total_ranges: u32,
    /// Bytes per range (the volume is `total_ranges * range_len`).
    pub range_len: u32,
    /// Client I/Os to issue before the closed loop winds down (traffic
    /// is sustained past this while a rebuild is live, so every rebuild
    /// runs under load).
    pub ios: u64,
    /// Client queue depth.
    pub iodepth: u32,
    /// Fraction of client I/Os that are reads.
    pub read_fraction: f64,
    /// Root seed for address, payload and op-mix streams.
    pub seed: u64,
    /// Rebuild copy-scan throttle.
    pub throttle: Throttle,
    /// Record per-op latency spans (stage totals in the report).
    pub probe: bool,
}

impl NexusConfig {
    /// A 3-way mirror over `device` with moderate quick-run defaults;
    /// fault-free until a plan is set.
    pub fn new(device: SsdConfig) -> NexusConfig {
        NexusConfig {
            children: 3,
            device,
            path: IoPath::KernelPolled,
            plan: FaultPlan::none(),
            faulty_children: 1,
            budget: 4,
            total_ranges: 24,
            range_len: 64 * 1024,
            ios: 4000,
            iodepth: 4,
            read_fraction: 0.7,
            seed: 0x4E_0005,
            throttle: Throttle::Unthrottled,
            probe: false,
        }
    }

    /// Addressable volume size in bytes.
    pub fn volume_bytes(&self) -> u64 {
        u64::from(self.total_ranges) * u64::from(self.range_len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unthrottled_gap_is_zero_and_draws_nothing() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        let gap = Throttle::Unthrottled.gap_after(SimDuration::from_micros(50), &mut a);
        assert_eq!(gap, SimDuration::ZERO);
        // The jitter stream was not consumed.
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn duty_gap_scales_inversely_with_the_duty_cycle() {
        let elapsed = SimDuration::from_micros(100);
        let mut rng = SplitMix64::new(3);
        let g25 = Throttle::DutyPct(25).gap_after(elapsed, &mut rng);
        let g5 = Throttle::DutyPct(5).gap_after(elapsed, &mut rng);
        // 25% duty: ~3x the copy time. 5% duty: ~19x. Jitter is ±12%.
        assert!(g25.as_nanos() >= 300_000 * 88 / 100 && g25.as_nanos() <= 300_000 * 112 / 100);
        assert!(g5.as_nanos() >= 1_900_000 * 88 / 100 && g5.as_nanos() <= 1_900_000 * 112 / 100);
        assert!(g5 > g25);
    }

    #[test]
    fn full_duty_gap_is_zero() {
        let mut rng = SplitMix64::new(3);
        assert_eq!(
            Throttle::DutyPct(100).gap_after(SimDuration::from_micros(10), &mut rng),
            SimDuration::ZERO
        );
    }
}
