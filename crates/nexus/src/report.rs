//! Counters, the end-of-run report, and the accounting equalities the
//! nexus must satisfy on every quiesced run.
//!
//! The equalities are not statistical summaries — they are exact
//! integer identities that hold (or the run is wrong):
//!
//! ```text
//! retired_children        == budget_exceeded_events
//! degraded_reads + normal_reads == total_reads
//! rebuilt + pending       == total_ranges      (at every event barrier)
//! submitted               == completed         (once quiesced)
//! rebuilds_completed      == retired_children  (once quiesced)
//! ```
//!
//! The barrier invariant is checked continuously by the frontend (any
//! violation increments `accounting_violations`); the rest are checked
//! by [`NexusReport::check`], which both the property tests and the
//! `rebuild` registry experiment call.

use ull_probe::Stage;
use ull_simkit::Histogram;

/// Exact event counters of one nexus run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NexusCounters {
    /// Client I/Os dispatched by the frontend.
    pub submitted: u64,
    /// Client I/Os completed back to the application.
    pub completed: u64,
    /// Completed client reads.
    pub total_reads: u64,
    /// Reads dispatched while every child was serving.
    pub normal_reads: u64,
    /// Reads dispatched while the mirror was degraded.
    pub degraded_reads: u64,
    /// Completed client writes.
    pub total_writes: u64,
    /// Writes dispatched while the mirror was degraded.
    pub degraded_writes: u64,
    /// Child fault events (timeouts, resets, media failures) observed
    /// via completion reports.
    pub fault_events: u64,
    /// Budget crossings the frontend acted on.
    pub budget_exceeded_events: u64,
    /// Children retired from the serving set — must equal
    /// `budget_exceeded_events` exactly.
    pub retired_children: u64,
    /// Budget crossings on the last survivor, where retirement is
    /// impossible (the budget resets instead).
    pub suppressed_retirements: u64,
    /// Reads orphaned by a retirement and re-dispatched to a survivor.
    pub failover_reads: u64,
    /// Writes whose last outstanding replica ack was the retired child;
    /// completed at retirement off the surviving acks.
    pub retire_completed_writes: u64,
    /// Completions that arrived for a seq/epoch no longer live (in
    /// flight across a retirement); dropped without effect.
    pub stale_acks: u64,
    /// Acks for writes forwarded to the rebuild target (background, not
    /// client-critical-path).
    pub forward_acks: u64,
    /// Rebuilds started (replacement arrived and was reformatted).
    pub rebuilds_started: u64,
    /// Rebuilds that caught up and re-admitted the child.
    pub rebuilds_completed: u64,
    /// Range copies that landed clean.
    pub ranges_copied: u64,
    /// Range copies re-done because a racing write dirtied them.
    pub range_recopies: u64,
    /// Racing writes that marked a range dirty (first write per copy
    /// pass only — the exactly-once guarantee).
    pub dirty_marks: u64,
    /// Client writes forwarded to the rebuild target (scan head at or
    /// past their range).
    pub forwarded_writes: u64,
    /// Client writes to ranges ahead of the scan head: not forwarded,
    /// the coming copy picks them up from a survivor.
    pub writes_awaiting_copy: u64,
    /// Rebuild copy reads whose source child was retired mid-copy and
    /// that were re-issued from another survivor.
    pub copy_source_failovers: u64,
    /// Barrier-invariant violations (`rebuilt + pending != total`)
    /// observed while a rebuild was live. Always zero on a correct run.
    pub accounting_violations: u64,
}

/// Deterministic outcome of one nexus run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NexusReport {
    /// Exact event counters.
    pub counters: NexusCounters,
    /// End-to-end latency of every client I/O.
    pub latency: Histogram,
    /// End-to-end latency of client I/Os dispatched while the mirror
    /// was degraded (the rebuild/degraded window).
    pub degraded: Histogram,
    /// Per-stage nanosecond totals over probed client I/Os, indexed by
    /// [`Stage::index`](ull_probe::Stage::index). All zero when probing
    /// is off.
    pub stage_ns: [u64; Stage::COUNT],
    /// Client I/Os with a recorded span.
    pub probed_ios: u64,
    /// Order-sensitive digest of the frontend's entire completion
    /// history — two runs that observe the same acks in a different
    /// order disagree here.
    pub checksum: u64,
    /// Children serving when the run drained.
    pub serving_children: u32,
    /// Range count of the volume (copy granularity of a full rebuild).
    pub total_ranges: u32,
    /// Ranges on which any two serving children's content digests
    /// disagree at drain. Always zero on a correct run.
    pub digest_mismatch_ranges: u32,
    /// Retirement instants (ns), in order.
    pub retire_ns: Vec<u64>,
    /// Re-admission instants (ns), in order.
    pub readmit_ns: Vec<u64>,
    /// Whether the run drained with no ops, no in-flight commands, no
    /// live rebuild and an empty rebuild queue.
    pub quiesced: bool,
}

impl NexusReport {
    /// Verifies every exact accounting identity of a quiesced run.
    ///
    /// # Errors
    ///
    /// Returns the first violated identity, named, with both sides.
    pub fn check(&self) -> Result<(), String> {
        let c = &self.counters;
        if !self.quiesced {
            return Err("run did not quiesce: ops or rebuild state left over".into());
        }
        if c.submitted != c.completed {
            return Err(format!(
                "continuity: submitted {} != completed {}",
                c.submitted, c.completed
            ));
        }
        if c.retired_children != c.budget_exceeded_events {
            return Err(format!(
                "retirement: retired_children {} != budget_exceeded_events {}",
                c.retired_children, c.budget_exceeded_events
            ));
        }
        if c.degraded_reads + c.normal_reads != c.total_reads {
            return Err(format!(
                "read split: degraded {} + normal {} != total {}",
                c.degraded_reads, c.normal_reads, c.total_reads
            ));
        }
        if c.total_reads + c.total_writes != c.completed {
            return Err(format!(
                "op split: reads {} + writes {} != completed {}",
                c.total_reads, c.total_writes, c.completed
            ));
        }
        if c.rebuilds_completed != c.retired_children {
            return Err(format!(
                "rebuild closure: rebuilds_completed {} != retired_children {}",
                c.rebuilds_completed, c.retired_children
            ));
        }
        if c.rebuilds_started != c.rebuilds_completed {
            return Err(format!(
                "rebuild closure: rebuilds_started {} != rebuilds_completed {}",
                c.rebuilds_started, c.rebuilds_completed
            ));
        }
        if c.range_recopies != c.dirty_marks {
            return Err(format!(
                "exactly-once: range_recopies {} != dirty_marks {} \
                 (every dirtied copy pass is re-copied exactly once)",
                c.range_recopies, c.dirty_marks
            ));
        }
        if c.ranges_copied != u64::from(self.total_ranges) * c.rebuilds_completed {
            return Err(format!(
                "coverage: ranges_copied {} != total_ranges {} * rebuilds_completed {}",
                c.ranges_copied, self.total_ranges, c.rebuilds_completed
            ));
        }
        if c.accounting_violations != 0 {
            return Err(format!(
                "dirty-log barrier: {} violations of rebuilt + pending == total",
                c.accounting_violations
            ));
        }
        if self.digest_mismatch_ranges != 0 {
            return Err(format!(
                "replica divergence: {} ranges disagree across serving children",
                self.digest_mismatch_ranges
            ));
        }
        if self.latency.count() != c.completed {
            return Err(format!(
                "histogram: {} samples != {} completions",
                self.latency.count(),
                c.completed
            ));
        }
        Ok(())
    }
}
