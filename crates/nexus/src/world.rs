//! Building and running the nexus world: one frontend actor plus N
//! child actors under `ShardedWorld`.

use ull_simkit::{ActorId, Component, Lookahead, Scheduler, ShardedWorld, SimTime, WindowRunner};

use crate::child::NexusChild;
use crate::event::NexusEvent;
use crate::frontend::NexusFrontend;
use crate::report::NexusReport;
use crate::{NexusConfig, CHILD_LINK};

/// One actor of the nexus world (heterogeneous: actor 0 is the
/// frontend, actors `1..=children` are the replicas).
#[derive(Debug)]
pub enum NexusActor {
    /// The volume frontend.
    Frontend(Box<NexusFrontend>),
    /// One child replica.
    Child(Box<NexusChild>),
}

impl Component for NexusActor {
    type Event = NexusEvent;

    fn on_event(&mut self, now: SimTime, ev: NexusEvent, sched: &mut Scheduler<'_, NexusEvent>) {
        match self {
            NexusActor::Frontend(f) => f.on_event(now, ev, sched),
            NexusActor::Child(c) => c.on_event(now, ev, sched),
        }
    }

    /// A shard batch is single-destination, so the enum dispatch is one
    /// match per slice instead of one per event; the inner component's
    /// `on_batch` (its trait default: an in-order drain) preserves
    /// per-event order exactly.
    fn on_batch(
        &mut self,
        now: SimTime,
        batch: &mut Vec<NexusEvent>,
        sched: &mut Scheduler<'_, NexusEvent>,
    ) {
        match self {
            NexusActor::Frontend(f) => f.on_batch(now, batch, sched),
            NexusActor::Child(c) => c.on_batch(now, batch, sched),
        }
    }
}

/// Builds the nexus world for `cfg`, runs it to quiescence on `shards`
/// shards with `runner` driving the windows, and returns the report.
///
/// Child `i < cfg.faulty_children` gets the config's fault plan with a
/// per-child decorrelated seed (distinct children draw independent
/// lotteries); the rest run pristine. The report is byte-identical at
/// any shard count.
pub fn run_nexus(cfg: &NexusConfig, shards: usize, runner: &mut impl WindowRunner) -> NexusReport {
    run_nexus_inner(cfg, shards, runner, false)
}

/// [`run_nexus`] with slice dispatch disabled: every event is delivered
/// through `on_event` one at a time. The batched path is contractually
/// order-equivalent, so the two must produce byte-identical reports —
/// this is the reference side of that differential test, not a public
/// API surface.
#[doc(hidden)]
pub fn run_nexus_stepped(
    cfg: &NexusConfig,
    shards: usize,
    runner: &mut impl WindowRunner,
) -> NexusReport {
    run_nexus_inner(cfg, shards, runner, true)
}

fn run_nexus_inner(
    cfg: &NexusConfig,
    shards: usize,
    runner: &mut impl WindowRunner,
    stepped: bool,
) -> NexusReport {
    let mut actors = Vec::with_capacity(cfg.children as usize + 1);
    actors.push(NexusActor::Frontend(Box::new(NexusFrontend::new(
        cfg.clone(),
    ))));
    for i in 0..cfg.children {
        let plan = (i < cfg.faulty_children && cfg.plan.enabled()).then(|| {
            let mut p = cfg.plan;
            p.seed ^= (0xC0 + u64::from(i)) << 4;
            p
        });
        actors.push(NexusActor::Child(Box::new(NexusChild::new(
            i,
            ActorId(0),
            cfg.device.clone(),
            cfg.path,
            cfg.total_ranges,
            plan.as_ref(),
        ))));
    }
    let mut world = ShardedWorld::new(shards, Lookahead::from_floor(CHILD_LINK), actors);
    world.set_stepped_dispatch(stepped);
    world.seed(ActorId(0), |a, sched| {
        if let NexusActor::Frontend(f) = a {
            f.prime(sched);
        }
    });
    world.run_with(runner);
    let mut frontend = None;
    let mut digests: Vec<Vec<u64>> = Vec::new();
    for a in world.into_actors() {
        match a {
            NexusActor::Frontend(f) => frontend = Some(f),
            NexusActor::Child(c) => digests.push(c.digests().to_vec()),
        }
    }
    let refs: Vec<&[u64]> = digests.iter().map(Vec::as_slice).collect();
    frontend
        .expect("the world contains the frontend")
        .into_report(&refs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ull_faults::FaultPlan;
    use ull_simkit::SerialRunner;
    use ull_ssd::presets;

    fn quick_cfg() -> NexusConfig {
        let mut cfg = NexusConfig::new(presets::ull_800g());
        cfg.ios = 600;
        cfg.total_ranges = 8;
        cfg.range_len = 32 * 1024;
        cfg
    }

    #[test]
    fn fault_free_mirror_serves_everything_and_never_degrades() {
        let cfg = quick_cfg();
        let r = run_nexus(&cfg, 1, &mut SerialRunner);
        r.check().expect("accounting identities hold");
        let c = &r.counters;
        assert_eq!(c.completed, 600);
        assert_eq!(c.retired_children, 0);
        assert_eq!(c.degraded_reads, 0);
        assert_eq!(c.degraded_writes, 0);
        assert_eq!(c.fault_events, 0);
        assert_eq!(r.serving_children, 3);
        assert_eq!(r.degraded.count(), 0);
        assert_eq!(r.digest_mismatch_ranges, 0);
    }

    #[test]
    fn faulty_child_is_retired_and_rebuilt_online() {
        let mut cfg = quick_cfg();
        cfg.plan = FaultPlan::uniform(0x4E05, 2e-2);
        cfg.budget = 3;
        let r = run_nexus(&cfg, 1, &mut SerialRunner);
        r.check().expect("accounting identities hold");
        let c = &r.counters;
        assert!(c.retired_children >= 1, "the faulty child must be retired");
        assert_eq!(c.rebuilds_completed, c.retired_children);
        assert!(c.degraded_reads > 0, "reads were served degraded");
        assert!(r.degraded.count() > 0);
        assert_eq!(r.serving_children, 3, "the child was re-admitted");
        assert_eq!(r.digest_mismatch_ranges, 0, "replicas converged");
    }

    #[test]
    fn batched_dispatch_matches_stepped_dispatch() {
        // The differential contract of the slice pipeline: forcing every
        // event through the one-at-a-time `on_event` path must reproduce
        // the batched report byte-for-byte, faults and probe included.
        let mut cfg = quick_cfg();
        cfg.plan = FaultPlan::uniform(0x4E05, 2e-2);
        cfg.budget = 3;
        cfg.probe = true;
        let batched = run_nexus(&cfg, 2, &mut SerialRunner);
        let stepped = run_nexus_stepped(&cfg, 2, &mut SerialRunner);
        assert!(batched.counters.fault_events > 0, "faults must fire");
        assert_eq!(batched, stepped);
    }

    #[test]
    fn nexus_report_is_byte_identical_at_any_shard_count() {
        let mut cfg = quick_cfg();
        cfg.plan = FaultPlan::uniform(0x4E05, 2e-2);
        cfg.budget = 3;
        cfg.probe = true;
        let serial = run_nexus(&cfg, 1, &mut SerialRunner);
        assert!(serial.counters.retired_children >= 1);
        for shards in [2, 4] {
            assert_eq!(
                run_nexus(&cfg, shards, &mut SerialRunner),
                serial,
                "shards={shards}"
            );
        }
    }
}
