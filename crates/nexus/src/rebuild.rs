//! The dirty-range log: per-range rebuild state plus the scan-head race
//! rules.
//!
//! The volume is divided into `total_ranges` fixed ranges. During a
//! rebuild every range is in exactly one of four states, and the two
//! derived counts tile the total at every event barrier:
//!
//! ```text
//! clean_count() + pending() == total()        (checked continuously)
//! ```
//!
//! The race rule that closes the lost-update window: a client write to
//! the range *currently under the scan head* (state `Copying`) is both
//! forwarded to the rebuild target and marked dirty **exactly once** —
//! the in-flight copy may or may not include it, so the range is
//! re-copied later either way. Writes behind the scan head (`Clean`)
//! are forwarded only; writes ahead of it (`NeedsCopy`/`Dirty`) are not
//! forwarded at all, because the coming copy reads them from a survivor
//! anyway. See `docs/NEXUS.md` for the full argument.
//!
//! The log is plain owned state inside the frontend actor — no interior
//! mutability, no sharing (simlint S011 applies to this crate).

/// Rebuild state of one range.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RangeState {
    /// Ahead of the scan head; the copy will bring it over.
    NeedsCopy,
    /// Under the scan head right now; `dirty` records a racing write.
    Copying {
        /// A client write raced the in-flight copy.
        dirty: bool,
    },
    /// Behind the scan head and in sync (forwarded writes keep it so).
    Clean,
    /// Was copied but re-dirtied by a racing write; awaits re-copy.
    Dirty,
}

/// What the frontend must do with a client write to a range.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteRouting {
    /// Range not yet copied (or already awaiting re-copy): do not
    /// forward, the copy scan will pick the write up from a survivor.
    AwaitsCopy,
    /// Range is under the scan head: forward *and* mark dirty (first
    /// racing write — counted once).
    ForwardAndMarkDirty,
    /// Range is under the scan head and already marked: forward only.
    ForwardAlreadyDirty,
    /// Range is behind the scan head and clean: forward only.
    Forward,
}

/// The per-rebuild dirty-range log.
#[derive(Debug, Clone)]
pub struct RangeLog {
    states: Vec<RangeState>,
    clean: u32,
}

impl RangeLog {
    /// A fresh log with every range ahead of the scan head.
    pub fn new(total_ranges: u32) -> RangeLog {
        RangeLog {
            states: vec![RangeState::NeedsCopy; total_ranges as usize],
            clean: 0,
        }
    }

    /// Number of ranges.
    pub fn total(&self) -> u32 {
        self.states.len() as u32
    }

    /// Ranges in sync with the survivors (rebuilt).
    pub fn clean_count(&self) -> u32 {
        self.clean
    }

    /// Ranges still awaiting (re-)copy, including the one under the
    /// scan head.
    pub fn pending(&self) -> u32 {
        self.total() - self.clean
    }

    /// The accounting barrier invariant `rebuilt + pending == total`.
    /// `clean` is maintained incrementally by the transitions below, so
    /// this genuinely cross-checks two bookkeeping paths.
    pub fn balanced(&self) -> bool {
        let counted = self
            .states
            .iter()
            .filter(|s| matches!(s, RangeState::Clean))
            .count() as u32;
        counted == self.clean && self.clean + self.pending() == self.total()
    }

    /// The lowest-index range the scan head should copy next, or `None`
    /// when every range is clean (`true` alongside = it was a re-copy).
    pub fn next_copy(&self) -> Option<(u32, bool)> {
        self.states.iter().enumerate().find_map(|(i, s)| match s {
            RangeState::NeedsCopy => Some((i as u32, false)),
            RangeState::Dirty => Some((i as u32, true)),
            _ => None,
        })
    }

    /// Moves the scan head onto `range`.
    pub fn begin_copy(&mut self, range: u32) {
        debug_assert!(matches!(
            self.states[range as usize],
            RangeState::NeedsCopy | RangeState::Dirty
        ));
        self.states[range as usize] = RangeState::Copying { dirty: false };
    }

    /// The copy of `range` finished installing on the target. Returns
    /// `true` if the range is now clean; `false` if a racing write
    /// dirtied it mid-copy and it goes back in the pending pool.
    pub fn finish_copy(&mut self, range: u32) -> bool {
        match self.states[range as usize] {
            RangeState::Copying { dirty: false } => {
                self.states[range as usize] = RangeState::Clean;
                self.clean += 1;
                true
            }
            _ => {
                self.states[range as usize] = RangeState::Dirty;
                false
            }
        }
    }

    /// Applies the scan-head race rules to a client write hitting
    /// `range` and returns the required routing.
    pub fn note_write(&mut self, range: u32) -> WriteRouting {
        match self.states[range as usize] {
            RangeState::NeedsCopy | RangeState::Dirty => WriteRouting::AwaitsCopy,
            RangeState::Copying { dirty: false } => {
                self.states[range as usize] = RangeState::Copying { dirty: true };
                WriteRouting::ForwardAndMarkDirty
            }
            RangeState::Copying { dirty: true } => WriteRouting::ForwardAlreadyDirty,
            RangeState::Clean => WriteRouting::Forward,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scan_walks_lowest_pending_first() {
        let mut log = RangeLog::new(3);
        assert_eq!(log.next_copy(), Some((0, false)));
        log.begin_copy(0);
        assert!(log.finish_copy(0));
        assert_eq!(log.next_copy(), Some((1, false)));
        assert!(log.balanced());
        assert_eq!(log.clean_count(), 1);
        assert_eq!(log.pending(), 2);
    }

    #[test]
    fn racing_write_marks_dirty_exactly_once_and_forces_recopy() {
        let mut log = RangeLog::new(2);
        log.begin_copy(0);
        // First racing write: forwarded AND marked.
        assert_eq!(log.note_write(0), WriteRouting::ForwardAndMarkDirty);
        // Second racing write: forwarded only — no double mark.
        assert_eq!(log.note_write(0), WriteRouting::ForwardAlreadyDirty);
        // The copy lands but the range stays pending.
        assert!(!log.finish_copy(0));
        assert!(log.balanced());
        assert_eq!(log.clean_count(), 0);
        // The re-copy is flagged as such and can then complete cleanly.
        assert_eq!(log.next_copy(), Some((0, true)));
        log.begin_copy(0);
        assert!(log.finish_copy(0));
        assert_eq!(log.clean_count(), 1);
    }

    #[test]
    fn writes_ahead_and_behind_the_scan_head_route_correctly() {
        let mut log = RangeLog::new(3);
        log.begin_copy(0);
        assert!(log.finish_copy(0));
        // Behind the head: forwarded only.
        assert_eq!(log.note_write(0), WriteRouting::Forward);
        // Ahead of the head: the copy will pick it up.
        assert_eq!(log.note_write(2), WriteRouting::AwaitsCopy);
        // A dirty range awaiting re-copy also just waits.
        log.begin_copy(1);
        assert_eq!(log.note_write(1), WriteRouting::ForwardAndMarkDirty);
        assert!(!log.finish_copy(1));
        assert_eq!(log.note_write(1), WriteRouting::AwaitsCopy);
    }

    #[test]
    fn empty_scan_completes_immediately() {
        let log = RangeLog::new(0);
        assert_eq!(log.next_copy(), None);
        assert!(log.balanced());
    }
}
