//! The nexus frontend: client I/O routing, per-child fault scoring and
//! retirement, and the online-rebuild state machine.
//!
//! One frontend actor owns all volume state — the serving set, the
//! in-flight op table, the dirty-range log of a live rebuild — as plain
//! fields (no interior mutability; simlint S011). Children are reached
//! only through timestamped [`NexusEvent`]s, so the whole volume shards
//! under `ShardedWorld` and every report is byte-identical at any shard
//! count.
//!
//! Fault handling is a three-step pipeline:
//!
//! 1. **Detect** — every child completion carries `fault_delta`, the
//!    number of fault-lottery events (timeouts, resets, media failures)
//!    the child's layers absorbed while servicing that command. The
//!    frontend accrues the delta against the child's error budget.
//! 2. **Retire** — a child whose score exceeds the budget is removed
//!    from the serving set *iff* a survivor remains: its epoch is
//!    bumped (in-flight acks become stale), orphaned reads fail over to
//!    a survivor, and writes whose last outstanding replica was the
//!    retiree complete off the surviving acks. Nothing is dropped,
//!    nothing is reordered.
//! 3. **Rebuild** — a replacement arrives after a fixed delay, is
//!    reformatted, and a rate-throttled copy scan walks the dirty-range
//!    log (see [`crate::rebuild`]) until the child is caught up, at
//!    which point it re-joins the serving set.

use std::collections::{BTreeMap, VecDeque};

use ull_faults::SALT_REBUILD;
use ull_probe::{OpKind, SpanRecorder, Stage};
use ull_simkit::{ActorId, Component, Histogram, Scheduler, SimDuration, SimTime, SplitMix64};

use crate::event::{ChildCmdEvent, ChildDoneEvent, CmdKind, NexusEvent};
use crate::rebuild::{RangeLog, WriteRouting};
use crate::report::{NexusCounters, NexusReport};
use crate::{NexusConfig, Throttle, CHILD_LINK};

/// Frontend routing cost per client op (replica choice, op table).
const FRONTEND_COST: SimDuration = SimDuration::from_nanos(400);
/// Extra routing cost while degraded (survivor scan, dirty-log lookup).
const DEGRADED_COST: SimDuration = SimDuration::from_nanos(150);
/// Completion delivery cost back to the application.
const COMPLETE_COST: SimDuration = SimDuration::from_nanos(250);
/// Cost of re-dispatching a read orphaned by a retirement.
const FAILOVER_COST: SimDuration = SimDuration::from_nanos(200);
/// Frontend turnaround between rebuild copy steps (also the minimum
/// inter-copy gap, so the scan never schedules a zero-delay loop).
const COPY_TURNAROUND: SimDuration = SimDuration::from_nanos(500);
/// Replacement-disk arrival delay after a retirement.
const REPLACE_DELAY: SimDuration = SimDuration::from_micros(50);
/// Departure latency of every rebuild-path command (reformat, copy read,
/// copy write). Exactly a degraded client write's routing cost, and that
/// equality is load-bearing: with one uniform frontend→child latency for
/// every command in flight during a rebuild, frontend state-machine
/// order equals arrival order at every child. A cheaper copy path would
/// let a CopyRead overtake a just-dispatched, not-yet-forwarded client
/// write on the wire and snapshot a survivor without it — silently
/// losing the write from the rebuilt replica.
const COPY_DISPATCH_COST: SimDuration =
    SimDuration::from_nanos(FRONTEND_COST.as_nanos() + DEGRADED_COST.as_nanos());
/// Copy-engine queue depth of an *unthrottled* rebuild. Any duty-cycle
/// throttle serializes the scan (depth 1) and inserts idle gaps; only
/// the unthrottled scan keeps its pipeline full. This is what makes the
/// throttle sweep's headline shape: with several copy reads in flight a
/// client read can queue behind a convoy of them, so the unthrottled
/// degraded-window tail blows past the no-rebuild baseline, while a
/// serialized scan bounds the collision penalty to a single copy read.
const COPY_DEPTH: u32 = 8;

/// Membership state of one child.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ChildState {
    /// In the serving set (reads route here, writes fan out here).
    Serving,
    /// Retired; waiting for a replacement.
    Faulted,
    /// Reformatted replacement receiving the copy scan and forwarded
    /// writes; not serving reads yet.
    Rebuilding,
}

#[derive(Debug)]
struct ChildSlot {
    actor: ActorId,
    state: ChildState,
    epoch: u32,
    score: u64,
}

/// What an in-flight command seq belongs to.
#[derive(Debug, Clone, Copy)]
enum SeqTarget {
    /// One replica leg of a client op.
    Client { op: u64, child: u32 },
    /// A client write forwarded to the rebuild target.
    Forward,
    /// Rebuild scan: snapshot read from `src`.
    CopyRead { range: u32, src: u32 },
    /// Rebuild scan: snapshot install on the target.
    CopyWrite { range: u32 },
    /// Reformat of the replacement child.
    Reformat,
}

/// One client op in flight.
#[derive(Debug)]
struct Op {
    read: bool,
    offset: u64,
    len: u32,
    remaining: u32,
    issue: SimTime,
    /// When routing finished (fixed at first dispatch).
    routed: SimTime,
    /// Latest dispatch instant (updated by a failover re-dispatch).
    dispatch: SimTime,
    degraded: bool,
    rec: Option<SpanRecorder>,
    last_done: SimTime,
    last_overlap: SimDuration,
}

#[derive(Debug)]
struct Rebuild {
    target: u32,
    log: RangeLog,
    copy_started: SimTime,
    /// Copy commands (read or install leg) currently in flight.
    in_flight: u32,
}

/// The frontend actor.
#[derive(Debug)]
pub struct NexusFrontend {
    cfg: NexusConfig,
    children: Vec<ChildSlot>,
    stride: u64,
    next_seq: u64,
    next_req: u64,
    ops: BTreeMap<u64, Op>,
    seq_map: BTreeMap<u64, SeqTarget>,
    rr_read: u32,
    rr_copy: u32,
    addr_rng: SplitMix64,
    payload_rng: SplitMix64,
    mix_rng: SplitMix64,
    jitter_rng: SplitMix64,
    rebuild: Option<Rebuild>,
    rebuild_queue: VecDeque<u32>,
    counters: NexusCounters,
    latency: Histogram,
    degraded: Histogram,
    checksum: u64,
    retire_ns: Vec<u64>,
    readmit_ns: Vec<u64>,
    stage_ns: [u64; Stage::COUNT],
    probed_ios: u64,
}

impl NexusFrontend {
    /// Builds the frontend for `cfg`; children live at actors
    /// `1..=cfg.children`.
    ///
    /// # Panics
    ///
    /// Panics if the config's range geometry does not fit the device
    /// (construction-time configuration error, never mid-run).
    pub fn new(cfg: NexusConfig) -> NexusFrontend {
        let stride = (cfg.device.capacity_bytes / u64::from(cfg.total_ranges.max(1))) & !4095;
        assert!(
            u64::from(cfg.range_len) <= stride && stride > 0,
            "range_len must fit the per-range device stride"
        );
        assert!(cfg.children >= 2, "a mirror needs at least two children");
        let mut root = SplitMix64::new(cfg.seed);
        let addr_rng = root.fork(1);
        let payload_rng = root.fork(2);
        let mix_rng = root.fork(3);
        let jitter_rng = cfg.plan.stream(SALT_REBUILD);
        let children = (0..cfg.children)
            .map(|i| ChildSlot {
                actor: ActorId(1 + i),
                state: ChildState::Serving,
                epoch: 0,
                score: 0,
            })
            .collect();
        NexusFrontend {
            cfg,
            children,
            stride,
            next_seq: 0,
            next_req: 0,
            ops: BTreeMap::new(),
            seq_map: BTreeMap::new(),
            rr_read: 0,
            rr_copy: 0,
            addr_rng,
            payload_rng,
            mix_rng,
            jitter_rng,
            rebuild: None,
            rebuild_queue: VecDeque::new(),
            counters: NexusCounters::default(),
            latency: Histogram::new(),
            degraded: Histogram::new(),
            checksum: 0,
            retire_ns: Vec::new(),
            readmit_ns: Vec::new(),
            stage_ns: [0; Stage::COUNT],
            probed_ios: 0,
        }
    }

    /// Issues the initial queue-depth worth of client I/O (call through
    /// `ShardedWorld::seed`).
    pub fn prime(&mut self, sched: &mut Scheduler<'_, NexusEvent>) {
        let prime = self.cfg.ios.min(u64::from(self.cfg.iodepth));
        for _ in 0..prime {
            self.submit_client(SimTime::ZERO, sched);
        }
    }

    /// Child indices currently in the serving set.
    pub fn serving(&self) -> Vec<u32> {
        self.children
            .iter()
            .enumerate()
            .filter(|(_, c)| c.state == ChildState::Serving)
            .map(|(i, _)| i as u32)
            .collect()
    }

    fn serving_count(&self) -> u32 {
        self.children
            .iter()
            .filter(|c| c.state == ChildState::Serving)
            .count() as u32
    }

    fn fold(&mut self, tag: u64, value: u64) {
        self.checksum = self
            .checksum
            .wrapping_mul(0x100_0000_01B3)
            .wrapping_add(tag ^ value);
    }

    fn alloc_seq(&mut self, target: SeqTarget) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.seq_map.insert(seq, target);
        seq
    }

    #[allow(clippy::too_many_arguments)]
    fn send_cmd(
        &mut self,
        child: u32,
        at: SimTime,
        offset: u64,
        len: u32,
        kind: CmdKind,
        target: SeqTarget,
        sched: &mut Scheduler<'_, NexusEvent>,
    ) -> u64 {
        let seq = self.alloc_seq(target);
        let slot = &self.children[child as usize];
        sched.send(
            slot.actor,
            at,
            NexusEvent::Cmd(ChildCmdEvent {
                seq,
                epoch: slot.epoch,
                offset,
                len,
                kind,
            }),
        );
        seq
    }

    /// Next serving child after the round-robin cursor.
    fn pick_serving(&self, cursor: u32) -> u32 {
        let n = self.children.len() as u32;
        (0..n)
            .map(|k| (cursor + k) % n)
            .find(|&i| self.children[i as usize].state == ChildState::Serving)
            .expect("the serving set is never empty")
    }

    fn pick_read_child(&mut self) -> u32 {
        let c = self.pick_serving(self.rr_read);
        self.rr_read = (c + 1) % self.children.len() as u32;
        c
    }

    fn pick_copy_source(&mut self) -> u32 {
        let c = self.pick_serving(self.rr_copy);
        self.rr_copy = (c + 1) % self.children.len() as u32;
        c
    }

    /// Volume offset → (range index, per-child physical offset).
    fn map(&self, offset: u64) -> (u32, u64) {
        let range = offset / u64::from(self.cfg.range_len);
        let phys = range * self.stride + offset % u64::from(self.cfg.range_len);
        (range as u32, phys)
    }

    fn client_active(&self) -> bool {
        self.counters.submitted < self.cfg.ios
            || self.rebuild.is_some()
            || !self.rebuild_queue.is_empty()
    }

    fn submit_client(&mut self, at: SimTime, sched: &mut Scheduler<'_, NexusEvent>) {
        let read = self.mix_rng.chance(self.cfg.read_fraction);
        let blocks = self.cfg.volume_bytes() / 4096;
        let offset = self.addr_rng.below(blocks) * 4096;
        let len = 4096;
        let degraded = self.serving_count() < self.cfg.children;
        let routed = at
            + FRONTEND_COST
            + if degraded {
                DEGRADED_COST
            } else {
                SimDuration::ZERO
            };
        let op_id = self.next_req;
        self.next_req += 1;
        let kind = if read { OpKind::Read } else { OpKind::Write };
        let rec = self
            .cfg
            .probe
            .then(|| SpanRecorder::start(op_id, kind, offset, len, at));
        let (range, phys) = self.map(offset);
        let val = if read { 0 } else { self.payload_rng.next_u64() };
        let mut remaining = 0;
        if read {
            let c = self.pick_read_child();
            self.send_cmd(
                c,
                routed + CHILD_LINK,
                phys,
                len,
                CmdKind::Read,
                SeqTarget::Client {
                    op: op_id,
                    child: c,
                },
                sched,
            );
            remaining = 1;
        } else {
            for c in self.serving() {
                self.send_cmd(
                    c,
                    routed + CHILD_LINK,
                    phys,
                    len,
                    CmdKind::Write { val },
                    SeqTarget::Client {
                        op: op_id,
                        child: c,
                    },
                    sched,
                );
                remaining += 1;
            }
            // Scan-head race rules: forward to the rebuild target only
            // when the scan has reached (or passed) this range.
            let route = self
                .rebuild
                .as_mut()
                .map(|rb| (rb.target, rb.log.note_write(range)));
            if let Some((target, routing)) = route {
                match routing {
                    WriteRouting::AwaitsCopy => self.counters.writes_awaiting_copy += 1,
                    _ => {
                        if routing == WriteRouting::ForwardAndMarkDirty {
                            self.counters.dirty_marks += 1;
                        }
                        self.counters.forwarded_writes += 1;
                        self.send_cmd(
                            target,
                            routed + CHILD_LINK,
                            phys,
                            len,
                            CmdKind::Write { val },
                            SeqTarget::Forward,
                            sched,
                        );
                    }
                }
            }
        }
        self.ops.insert(
            op_id,
            Op {
                read,
                offset,
                len,
                remaining,
                issue: at,
                routed,
                dispatch: routed,
                degraded,
                rec,
                last_done: SimTime::ZERO,
                last_overlap: SimDuration::ZERO,
            },
        );
        self.counters.submitted += 1;
    }

    fn complete_op(&mut self, op_id: u64, now: SimTime, sched: &mut Scheduler<'_, NexusEvent>) {
        let op = self.ops.remove(&op_id).expect("completing a live op");
        let visible = now + COMPLETE_COST;
        let lat = visible.saturating_since(op.issue);
        self.latency.record(lat);
        if op.degraded {
            self.degraded.record(lat);
        }
        self.counters.completed += 1;
        if op.read {
            self.counters.total_reads += 1;
            if op.degraded {
                self.counters.degraded_reads += 1;
            } else {
                self.counters.normal_reads += 1;
            }
        } else {
            self.counters.total_writes += 1;
            if op.degraded {
                self.counters.degraded_writes += 1;
            }
        }
        if let Some(mut rec) = op.rec {
            rec.stamp(Stage::SubmitStack, op.issue + FRONTEND_COST);
            if op.degraded {
                rec.stamp(Stage::DegradedRoute, op.routed);
            }
            let arrival = op.dispatch + CHILD_LINK;
            rec.stamp(Stage::SqWait, arrival);
            rec.stamp(Stage::RebuildWait, arrival + op.last_overlap);
            rec.stamp(Stage::MediaMisc, op.last_done);
            let bd = rec.finish(Stage::CompleteDeliver, visible);
            debug_assert_eq!(bd.total(), bd.end_to_end());
            for s in Stage::ALL {
                self.stage_ns[s.index()] += bd.stage(s).as_nanos();
            }
            self.probed_ios += 1;
        }
        if self.client_active() {
            self.submit_client(visible, sched);
        }
    }

    fn client_ack(
        &mut self,
        now: SimTime,
        op_id: u64,
        d: &ChildDoneEvent,
        sched: &mut Scheduler<'_, NexusEvent>,
    ) {
        let finished = {
            let op = self.ops.get_mut(&op_id).expect("ack for a live op");
            op.remaining -= 1;
            op.last_done = d.done_at;
            op.last_overlap = d.rebuild_overlap;
            op.remaining == 0
        };
        if finished {
            self.complete_op(op_id, now, sched);
        }
    }

    // ---- retirement -----------------------------------------------------

    fn accrue_and_maybe_retire(
        &mut self,
        now: SimTime,
        child: u32,
        delta: u64,
        sched: &mut Scheduler<'_, NexusEvent>,
    ) {
        if delta == 0 {
            return;
        }
        let slot = &mut self.children[child as usize];
        if slot.state != ChildState::Serving {
            return;
        }
        slot.score += delta;
        if slot.score <= self.cfg.budget {
            return;
        }
        if self.serving_count() <= 1 {
            // Last survivor: retirement would lose the volume. Keep it,
            // reset the budget, and record that detection fired.
            self.counters.suppressed_retirements += 1;
            self.children[child as usize].score = 0;
            return;
        }
        self.retire(now, child, sched);
    }

    fn retire(&mut self, now: SimTime, child: u32, sched: &mut Scheduler<'_, NexusEvent>) {
        // Exactly one retirement per acted budget crossing: these two
        // counters move only here, together.
        self.counters.budget_exceeded_events += 1;
        self.counters.retired_children += 1;
        self.retire_ns.push(now.as_nanos());
        let slot = &mut self.children[child as usize];
        slot.state = ChildState::Faulted;
        slot.epoch += 1;
        slot.score = 0;
        // Abandon in-flight legs on the retiree (their acks, if any
        // still arrive, are stale by seq removal and by epoch).
        let orphans: Vec<(u64, SeqTarget)> = self
            .seq_map
            .iter()
            .filter(|(_, t)| match t {
                SeqTarget::Client { child: c, .. } => *c == child,
                SeqTarget::CopyRead { src, .. } => *src == child,
                _ => false,
            })
            .map(|(s, t)| (*s, *t))
            .collect();
        for (seq, target) in orphans {
            self.seq_map.remove(&seq);
            match target {
                SeqTarget::Client { op, .. } => self.abandon_leg(now, op, sched),
                SeqTarget::CopyRead { range, .. } => self.reissue_copy_read(now, range, sched),
                _ => unreachable!("only client legs and copy reads touch the retiree"),
            }
        }
        self.rebuild_queue.push_back(child);
        if self.rebuild.is_none() && self.rebuild_queue.len() == 1 {
            sched.at(now + REPLACE_DELAY, NexusEvent::RebuildStart);
        }
    }

    fn abandon_leg(&mut self, now: SimTime, op_id: u64, sched: &mut Scheduler<'_, NexusEvent>) {
        let (read, finished) = {
            let op = self.ops.get_mut(&op_id).expect("abandoning a live leg");
            op.remaining -= 1;
            (op.read, op.remaining == 0)
        };
        if !finished {
            return;
        }
        if read {
            // Orphaned read: fail over to a survivor. The span's dead
            // time rides SqWait (the cursor is untouched). `degraded`
            // deliberately keeps its at-dispatch value: the degraded
            // histogram measures steady-state degraded service, not
            // fault-recovery victims (those are counted here).
            self.counters.failover_reads += 1;
            let c = self.pick_read_child();
            let (offset, len, dispatch) = {
                let op = self.ops.get_mut(&op_id).expect("failing over a live op");
                op.dispatch = now + FAILOVER_COST;
                op.remaining = 1;
                (op.offset, op.len, op.dispatch)
            };
            let (_range, phys) = self.map(offset);
            self.send_cmd(
                c,
                dispatch + CHILD_LINK,
                phys,
                len,
                CmdKind::Read,
                SeqTarget::Client {
                    op: op_id,
                    child: c,
                },
                sched,
            );
        } else {
            // Every surviving replica already acked this write; the
            // retiree's ack was the only one missing. Complete it now —
            // the data is durable on every survivor.
            self.counters.retire_completed_writes += 1;
            self.complete_op(op_id, now, sched);
        }
    }

    // ---- rebuild --------------------------------------------------------

    fn on_rebuild_start(&mut self, now: SimTime, sched: &mut Scheduler<'_, NexusEvent>) {
        let Some(target) = self.rebuild_queue.pop_front() else {
            return;
        };
        self.children[target as usize].state = ChildState::Rebuilding;
        self.counters.rebuilds_started += 1;
        self.rebuild = Some(Rebuild {
            target,
            log: RangeLog::new(self.cfg.total_ranges),
            copy_started: now,
            in_flight: 0,
        });
        self.send_cmd(
            target,
            now + COPY_DISPATCH_COST + CHILD_LINK,
            0,
            0,
            CmdKind::Reformat,
            SeqTarget::Reformat,
            sched,
        );
    }

    fn on_reformat_ack(&mut self, now: SimTime, sched: &mut Scheduler<'_, NexusEvent>) {
        sched.at(now + COPY_TURNAROUND, NexusEvent::CopyNext);
    }

    fn copy_depth(&self) -> u32 {
        match self.cfg.throttle {
            Throttle::Unthrottled => COPY_DEPTH,
            Throttle::DutyPct(_) => 1,
        }
    }

    fn on_copy_next(&mut self, now: SimTime, sched: &mut Scheduler<'_, NexusEvent>) {
        let depth = self.copy_depth();
        loop {
            let (next, in_flight, pending) = match &self.rebuild {
                Some(rb) => (rb.log.next_copy(), rb.in_flight, rb.log.pending()),
                None => return,
            };
            if in_flight >= depth {
                return;
            }
            let Some((range, recopy)) = next else {
                // No range is eligible. Either the scan is done (nothing
                // pending at all) or the remaining pending ranges are
                // the in-flight copies themselves — their acks re-arm
                // the scan.
                if pending == 0 && in_flight == 0 {
                    self.finish_rebuild(now, sched);
                }
                return;
            };
            if recopy {
                self.counters.range_recopies += 1;
            }
            let src = self.pick_copy_source();
            let rb = self.rebuild.as_mut().expect("rebuild is live");
            rb.log.begin_copy(range);
            rb.copy_started = now;
            rb.in_flight += 1;
            let len = self.cfg.range_len;
            let offset = u64::from(range) * self.stride;
            self.send_cmd(
                src,
                now + COPY_DISPATCH_COST + CHILD_LINK,
                offset,
                len,
                CmdKind::CopyRead { range },
                SeqTarget::CopyRead { range, src },
                sched,
            );
        }
    }

    fn reissue_copy_read(
        &mut self,
        now: SimTime,
        range: u32,
        sched: &mut Scheduler<'_, NexusEvent>,
    ) {
        self.counters.copy_source_failovers += 1;
        let src = self.pick_copy_source();
        let len = self.cfg.range_len;
        let offset = u64::from(range) * self.stride;
        self.send_cmd(
            src,
            now + COPY_DISPATCH_COST + CHILD_LINK,
            offset,
            len,
            CmdKind::CopyRead { range },
            SeqTarget::CopyRead { range, src },
            sched,
        );
    }

    fn on_copy_read_ack(
        &mut self,
        now: SimTime,
        range: u32,
        d: &ChildDoneEvent,
        sched: &mut Scheduler<'_, NexusEvent>,
    ) {
        let Some(target) = self.rebuild.as_ref().map(|rb| rb.target) else {
            return;
        };
        let len = self.cfg.range_len;
        let offset = u64::from(range) * self.stride;
        self.send_cmd(
            target,
            now + COPY_DISPATCH_COST + CHILD_LINK,
            offset,
            len,
            CmdKind::CopyWrite {
                range,
                digest: d.digest,
            },
            SeqTarget::CopyWrite { range },
            sched,
        );
    }

    fn on_copy_write_ack(
        &mut self,
        now: SimTime,
        range: u32,
        sched: &mut Scheduler<'_, NexusEvent>,
    ) {
        let (clean, elapsed) = match &mut self.rebuild {
            Some(rb) => {
                rb.in_flight -= 1;
                (
                    rb.log.finish_copy(range),
                    now.saturating_since(rb.copy_started),
                )
            }
            None => return,
        };
        if clean {
            self.counters.ranges_copied += 1;
        }
        let gap = self
            .cfg
            .throttle
            .gap_after(elapsed, &mut self.jitter_rng)
            .max(COPY_TURNAROUND);
        sched.at(now + gap, NexusEvent::CopyNext);
    }

    fn finish_rebuild(&mut self, now: SimTime, sched: &mut Scheduler<'_, NexusEvent>) {
        let rb = self.rebuild.take().expect("finishing a live rebuild");
        // Caught up: every range clean, and any still-in-flight forwards
        // land in seq order before any post-readmit command. Epoch is
        // deliberately NOT bumped — those forwards are valid.
        self.children[rb.target as usize].state = ChildState::Serving;
        self.counters.rebuilds_completed += 1;
        self.readmit_ns.push(now.as_nanos());
        if !self.rebuild_queue.is_empty() {
            sched.at(now + REPLACE_DELAY, NexusEvent::RebuildStart);
        }
    }

    // ---- completion dispatch -------------------------------------------

    fn on_done(&mut self, now: SimTime, d: ChildDoneEvent, sched: &mut Scheduler<'_, NexusEvent>) {
        self.fold(
            0x10 + u64::from(d.child),
            d.seq ^ d.done_at.as_nanos().rotate_left(17) ^ d.fault_delta,
        );
        let Some(target) = self.seq_map.remove(&d.seq) else {
            self.counters.stale_acks += 1;
            return;
        };
        if d.epoch != self.children[d.child as usize].epoch {
            self.counters.stale_acks += 1;
            return;
        }
        self.counters.fault_events += d.fault_delta;
        match target {
            SeqTarget::Client { op, .. } => self.client_ack(now, op, &d, sched),
            SeqTarget::Forward => self.counters.forward_acks += 1,
            SeqTarget::CopyRead { range, .. } => self.on_copy_read_ack(now, range, &d, sched),
            SeqTarget::CopyWrite { range } => self.on_copy_write_ack(now, range, sched),
            SeqTarget::Reformat => self.on_reformat_ack(now, sched),
        }
        self.accrue_and_maybe_retire(now, d.child, d.fault_delta, sched);
    }

    /// Builds the end-of-run report, auditing replica content equality
    /// across the serving children (`digests[i]` is child `i`'s
    /// per-range digest vector).
    pub fn into_report(self, digests: &[&[u64]]) -> NexusReport {
        let serving = self.serving();
        let mut mismatches = 0u32;
        if let Some((&first, rest)) = serving.split_first() {
            for (r, &reference) in digests[first as usize]
                .iter()
                .enumerate()
                .take(self.cfg.total_ranges as usize)
            {
                if rest.iter().any(|&c| digests[c as usize][r] != reference) {
                    mismatches += 1;
                }
            }
        }
        let quiesced = self.ops.is_empty()
            && self.seq_map.is_empty()
            && self.rebuild.is_none()
            && self.rebuild_queue.is_empty();
        NexusReport {
            counters: self.counters,
            latency: self.latency,
            degraded: self.degraded,
            stage_ns: self.stage_ns,
            probed_ios: self.probed_ios,
            checksum: self.checksum,
            serving_children: serving.len() as u32,
            total_ranges: self.cfg.total_ranges,
            digest_mismatch_ranges: mismatches,
            retire_ns: self.retire_ns,
            readmit_ns: self.readmit_ns,
            quiesced,
        }
    }
}

impl Component for NexusFrontend {
    type Event = NexusEvent;

    fn on_event(&mut self, now: SimTime, ev: NexusEvent, sched: &mut Scheduler<'_, NexusEvent>) {
        match ev {
            NexusEvent::Done(d) => self.on_done(now, d, sched),
            NexusEvent::RebuildStart => self.on_rebuild_start(now, sched),
            NexusEvent::CopyNext => self.on_copy_next(now, sched),
            // Child-bound events never arrive here.
            NexusEvent::Cmd(_) | NexusEvent::DevDone { .. } => {}
        }
        // The barrier invariant, enforced at literally every event while
        // a rebuild is live.
        if let Some(rb) = &self.rebuild {
            if !rb.log.balanced() {
                self.counters.accounting_violations += 1;
            }
        }
    }
}
