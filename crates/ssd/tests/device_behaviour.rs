//! Behavioural tests of the two device models: these check the *mechanisms*
//! (buffering, backpressure, GC, suspend/resume, tails) that the paper's
//! figures are built from, at the device level, before any host stack is
//! involved.

use ull_simkit::{Histogram, SimTime};
use ull_ssd::{presets, Ssd, SsdConfig};

const UNIT: u64 = 4096;
const SPACE_UNITS: u64 = 1 << 18; // 1 GiB of the 2 GiB device

fn device(cfg: SsdConfig) -> Ssd {
    Ssd::new(cfg).expect("preset is valid")
}

/// Issue `n` random reads spaced far apart (no queueing) and return the mean
/// latency in microseconds.
fn idle_random_read_mean(cfg: SsdConfig, n: u64) -> f64 {
    let mut ssd = device(cfg);
    let mut sum = 0.0;
    for i in 0..n {
        let at = SimTime::from_micros(i * 500);
        let off = ((i * 7919 + 13) % SPACE_UNITS) * UNIT;
        let c = ssd.read(at, off, UNIT as u32);
        sum += (c.done - at).as_micros_f64();
    }
    sum / n as f64
}

#[test]
fn ull_random_reads_are_several_times_faster_than_nvme() {
    let ull = idle_random_read_mean(presets::ull_800g(), 2000);
    let nvme = idle_random_read_mean(presets::nvme750(), 2000);
    // Paper §IV-A: 82.9us vs 15.9us, a 5.2x gap; require at least 4x.
    assert!(nvme / ull > 4.0, "nvme={nvme:.1}us ull={ull:.1}us");
}

#[test]
fn writes_are_acknowledged_from_dram_well_below_t_prog() {
    for cfg in [presets::ull_800g(), presets::nvme750()] {
        let t_prog = cfg.flash.t_prog.as_micros_f64();
        let mut ssd = device(cfg);
        let mut sum = 0.0;
        for i in 0..1000u64 {
            let at = SimTime::from_micros(i * 300);
            let c = ssd.write(at, (i % SPACE_UNITS) * UNIT, UNIT as u32);
            sum += (c.done - at).as_micros_f64();
        }
        let mean = sum / 1000.0;
        assert!(
            mean < t_prog / 3.0,
            "write ack {mean:.1}us vs tPROG {t_prog:.0}us"
        );
    }
}

#[test]
fn sustained_unthrottled_writes_hit_drain_backpressure() {
    // Slam writes in with zero inter-arrival: admission must eventually wait
    // for flash programs, so late-write latency far exceeds early-write
    // latency on the MLC device.
    let mut ssd = device(presets::nvme750());
    let mut first = 0.0;
    let mut last = 0.0;
    let n = 20_000u64;
    let mut clock = SimTime::ZERO;
    for i in 0..n {
        let c = ssd.write(clock, ((i * 17) % SPACE_UNITS) * UNIT, UNIT as u32);
        let lat = (c.done - clock).as_micros_f64();
        if i < 100 {
            first += lat / 100.0;
        }
        if i >= n - 100 {
            last += lat / 100.0;
        }
        // Closed loop with queue depth 16 approximated by pacing on done/16.
        clock = clock + (c.done - clock) / 16;
    }
    assert!(last > 3.0 * first, "early={first:.1}us late={last:.1}us");
}

#[test]
fn ull_reads_stay_fast_while_writes_are_in_flight() {
    // Mixed 50/50 workload: ULL reads suspend programs, NVMe reads queue.
    let run = |cfg: SsdConfig| {
        let mut ssd = device(cfg);
        let mut read_sum = 0.0;
        let mut reads = 0u64;
        for i in 0..4000u64 {
            let at = SimTime::from_micros(i * 12);
            let off = ((i * 7919 + 31) % SPACE_UNITS) * UNIT;
            if i % 2 == 0 {
                ssd.write(at, off, UNIT as u32);
            } else {
                let c = ssd.read(at, off, UNIT as u32);
                read_sum += (c.done - at).as_micros_f64();
                reads += 1;
            }
        }
        read_sum / reads as f64
    };
    let ull_mixed = run(presets::ull_800g());
    let ull_alone = idle_random_read_mean(presets::ull_800g(), 2000);
    let nvme_mixed = run(presets::nvme750());
    let nvme_alone = idle_random_read_mean(presets::nvme750(), 2000);
    // Paper fig. 6: NVMe reads degrade sharply when mixed; ULL barely moves.
    let ull_blowup = ull_mixed / ull_alone;
    let nvme_blowup = nvme_mixed / nvme_alone;
    assert!(ull_blowup < 2.0, "ULL mixed/alone = {ull_blowup:.2}");
    assert!(
        nvme_blowup > 1.5 * ull_blowup,
        "nvme={nvme_blowup:.2} ull={ull_blowup:.2}"
    );
}

#[test]
fn suspend_resume_fires_on_the_ull_device_only() {
    let run = |cfg: SsdConfig| {
        let mut ssd = device(cfg);
        for i in 0..2000u64 {
            let at = SimTime::from_micros(i * 10);
            let off = ((i * 13) % SPACE_UNITS) * UNIT;
            if i % 2 == 0 {
                ssd.write(at, off, UNIT as u32);
            } else {
                ssd.read(at, (off + 101 * UNIT) % (SPACE_UNITS * UNIT), UNIT as u32);
            }
        }
        ssd.metrics().program_suspensions
    };
    assert!(run(presets::ull_800g()) > 0);
    assert_eq!(run(presets::nvme750()), 0);
}

#[test]
fn preconditioned_overwrites_trigger_gc() {
    let cfg = presets::nvme750();
    let logical_units = cfg.logical_units();
    let mut ssd = device(cfg);
    ssd.precondition_full();
    let mut clock = SimTime::ZERO;
    let mut rng = 1234567u64;
    for _ in 0..(logical_units / 2) {
        rng = rng
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let lpn = (rng >> 33) % logical_units;
        let c = ssd.write(clock, lpn * UNIT, UNIT as u32);
        clock = clock + (c.done - clock) / 4;
    }
    let m = ssd.metrics();
    assert!(m.gc_migrated_units > 0, "GC never migrated: {m:?}");
    assert!(m.flash_erases > 0, "GC never erased: {m:?}");
    assert!(
        m.write_amplification() > 1.01,
        "WA = {}",
        m.write_amplification()
    );
}

#[test]
fn five_nines_tail_dwarfs_the_mean_on_nvme() {
    let mut ssd = device(presets::nvme750());
    let mut h = Histogram::new();
    for i in 0..300_000u64 {
        let at = SimTime::from_micros(i * 120);
        let off = ((i * 7919 + 7) % SPACE_UNITS) * UNIT;
        let c = ssd.read(at, off, UNIT as u32);
        h.record(c.done - at);
    }
    // Paper fig. 4b: reads' five-nines is >10x the average.
    let ratio = h.five_nines().as_micros_f64() / h.mean().as_micros_f64();
    assert!(ratio > 5.0, "five-nines ratio {ratio:.1}");
}

#[test]
fn larger_requests_cost_more_but_sublinearly() {
    for cfg in [presets::ull_800g(), presets::nvme750()] {
        let mut ssd = device(cfg);
        let lat = |ssd: &mut Ssd, i: u64, bytes: u32| {
            let at = SimTime::from_micros(500 + i * 1000);
            let off = ((i * 104729) % (SPACE_UNITS / 64)) * 64 * UNIT;
            (ssd.read(at, off, bytes).done - at).as_micros_f64()
        };
        let mut small = 0.0;
        let mut large = 0.0;
        for i in 0..200 {
            small += lat(&mut ssd, 2 * i, 4096) / 200.0;
            large += lat(&mut ssd, 2 * i + 1, 32 * 1024) / 200.0;
        }
        assert!(
            large > small,
            "32K ({large:.1}) should cost more than 4K ({small:.1})"
        );
        assert!(large < 8.0 * small, "32K should fan out, not serialize 8x");
    }
}

#[test]
fn identical_seeds_reproduce_identical_runs() {
    let run = || {
        let mut ssd = device(presets::ull_800g());
        let mut fingerprint = 0u64;
        for i in 0..5000u64 {
            let at = SimTime::from_micros(i * 9);
            let off = ((i * 31) % SPACE_UNITS) * UNIT;
            let c = if i % 3 == 0 {
                ssd.write(at, off, UNIT as u32)
            } else {
                ssd.read(at, off, UNIT as u32)
            };
            fingerprint = fingerprint.wrapping_mul(31).wrapping_add(c.done.as_nanos());
        }
        fingerprint
    };
    assert_eq!(run(), run());
}

#[test]
fn flush_drains_partial_rows() {
    let mut ssd = device(presets::nvme750());
    // One lone 4KB write leaves a partial 16KB row pending.
    ssd.write(SimTime::ZERO, 0, UNIT as u32);
    let before = ssd.metrics().flash_programs;
    let end = ssd.flush(SimTime::from_micros(50));
    assert!(ssd.metrics().flash_programs > before);
    assert!(end > SimTime::from_micros(50));
}

#[test]
fn power_reflects_activity() {
    let mut ssd = device(presets::nvme750());
    let idle = ssd.energy().average_power(SimTime::from_micros(1000));
    for i in 0..5000u64 {
        let at = SimTime::from_micros(i * 20);
        ssd.write(at, ((i * 3) % SPACE_UNITS) * UNIT, UNIT as u32);
    }
    let busy = ssd.energy().average_power(SimTime::from_micros(5000 * 20));
    assert!(busy > idle + 0.5, "busy={busy:.2}W idle={idle:.2}W");
}
