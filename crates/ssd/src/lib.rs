//! `ull-ssd` — the SSD device simulator of the ull-ssd-study workspace.
//!
//! Builds complete device models of the paper's two subjects — the 800 GB
//! Z-SSD prototype ("ULL SSD") and the Intel 750 ("NVMe SSD") — from the
//! flash media in `ull-flash`:
//!
//! * [`Topology`] — channel/way grid, super-channel pairing (§II-A2).
//! * [`RemapChecker`] — the split-DMA engine's bad-block remapping.
//! * [`WriteBuffer`] / [`ReadCache`] — the internal DRAM (write-back ack,
//!   readahead hits, backpressure).
//! * [`Ftl`] — page-mapped translation with greedy incremental GC.
//! * [`EnergyLedger`] — per-operation energy → power reporting.
//! * [`Ssd`] — the command-level device: `read`/`write`/`flush` with exact
//!   queueing via resource timelines.
//!
//! # Examples
//!
//! ```
//! use ull_simkit::SimTime;
//! use ull_ssd::{presets, Ssd};
//!
//! let mut ull = Ssd::new(presets::ull_800g())?;
//! let mut nvme = Ssd::new(presets::nvme750())?;
//!
//! // Random 4 KB reads: the ULL device is several times faster.
//! let u = ull.read(SimTime::ZERO, 123 * 4096, 4096);
//! let n = nvme.read(SimTime::ZERO, 123 * 4096, 4096);
//! assert!(n.done.as_nanos() > 3 * u.done.as_nanos());
//! # Ok::<(), ull_ssd::ConfigError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod config;
mod device;
mod ftl;
mod metrics;
mod power;
pub mod presets;
mod remap;
mod topology;

pub use cache::{ReadCache, ReadClass, WriteBuffer};
pub use config::{
    ConfigError, GcPolicy, PowerParams, ReadCachePolicy, SsdConfig, SsdConfigBuilder, TailEvent,
    MAP_UNIT_BYTES,
};
pub use device::{DeviceCompletion, Ssd, SsdCommand};
pub use ftl::{Ftl, GcWork, Placement, Ppa, ProgramFailRecovery, WearConfig};
pub use metrics::SsdMetrics;
pub use power::{nj_over, EnergyLedger};
pub use remap::{OutOfSpares, RemapChecker};
pub use topology::{DieId, LaneId, Topology};
