//! Channel/way geometry and super-channel pairing (§II-A2 of the paper).
//!
//! The device is a grid of `channels × ways` dies. Writes and mapped data
//! are managed per *lane* — the allocation unit the FTL appends into. For a
//! conventional device a lane is a single die; for a super-channel device a
//! lane is a *pair* of dies on adjacent channels at the same way, which the
//! split-DMA engine drives in lock-step (each 4 KB host unit becomes two
//! 2 KB flash pages, one per channel).

/// Identifies a die as `channel * ways + way`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DieId(pub u32);

/// Identifies an FTL allocation lane.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LaneId(pub u32);

/// Static geometry of one device.
///
/// # Examples
///
/// ```
/// use ull_ssd::{Topology};
///
/// let t = Topology::new(16, 8, true); // 16 channels, 8 ways, super-channels
/// assert_eq!(t.dies(), 128);
/// assert_eq!(t.lanes(), 64); // 8 channel pairs x 8 ways
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Topology {
    channels: u32,
    ways: u32,
    paired: bool,
}

impl Topology {
    /// Creates a topology.
    ///
    /// # Panics
    ///
    /// Panics if `channels` or `ways` is zero, or if `paired` is requested
    /// with an odd channel count.
    pub fn new(channels: u32, ways: u32, paired: bool) -> Self {
        assert!(channels > 0 && ways > 0, "topology must have dies");
        assert!(
            !paired || channels.is_multiple_of(2),
            "pairing needs an even channel count"
        );
        Topology {
            channels,
            ways,
            paired,
        }
    }

    /// Number of channels.
    pub fn channels(&self) -> u32 {
        self.channels
    }

    /// Dies per channel.
    pub fn ways(&self) -> u32 {
        self.ways
    }

    /// Whether channels are paired into super-channels.
    pub fn is_paired(&self) -> bool {
        self.paired
    }

    /// Total dies.
    pub fn dies(&self) -> u32 {
        self.channels * self.ways
    }

    /// Total allocation lanes.
    pub fn lanes(&self) -> u32 {
        if self.paired {
            self.dies() / 2
        } else {
            self.dies()
        }
    }

    /// The channel a die sits on.
    pub fn channel_of(&self, die: DieId) -> u32 {
        die.0 / self.ways
    }

    /// The dies belonging to a lane: one die, or the super-channel pair.
    pub fn lane_dies(&self, lane: LaneId) -> (DieId, Option<DieId>) {
        if self.paired {
            let pair = lane.0 / self.ways;
            let way = lane.0 % self.ways;
            let a = DieId((2 * pair) * self.ways + way);
            let b = DieId((2 * pair + 1) * self.ways + way);
            (a, Some(b))
        } else {
            (DieId(lane.0), None)
        }
    }

    /// Deterministic home lane for a logical unit that has never been
    /// written (reads of unmapped space still exercise a die).
    pub fn stripe_lane(&self, lpn: u64) -> LaneId {
        LaneId((lpn % self.lanes() as u64) as u32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unpaired_lane_is_die() {
        let t = Topology::new(8, 4, false);
        assert_eq!(t.lanes(), 32);
        for lane in 0..32 {
            let (a, b) = t.lane_dies(LaneId(lane));
            assert_eq!(a, DieId(lane));
            assert_eq!(b, None);
        }
    }

    #[test]
    fn paired_lanes_span_adjacent_channels() {
        let t = Topology::new(4, 2, true);
        assert_eq!(t.lanes(), 4);
        // Lane 0: pair 0, way 0 -> dies on channels 0 and 1.
        let (a, b) = t.lane_dies(LaneId(0));
        assert_eq!(t.channel_of(a), 0);
        assert_eq!(t.channel_of(b.unwrap()), 1);
        // Lane 2: pair 1, way 0 -> channels 2 and 3.
        let (a, b) = t.lane_dies(LaneId(2));
        assert_eq!(t.channel_of(a), 2);
        assert_eq!(t.channel_of(b.unwrap()), 3);
    }

    #[test]
    fn every_die_belongs_to_exactly_one_lane() {
        for paired in [false, true] {
            let t = Topology::new(6, 3, paired);
            let mut seen = std::collections::HashSet::new();
            for lane in 0..t.lanes() {
                let (a, b) = t.lane_dies(LaneId(lane));
                assert!(seen.insert(a), "die {a:?} in two lanes");
                if let Some(b) = b {
                    assert!(seen.insert(b), "die {b:?} in two lanes");
                }
            }
            assert_eq!(seen.len(), t.dies() as usize);
        }
    }

    #[test]
    fn stripe_covers_all_lanes() {
        let t = Topology::new(4, 2, true);
        let hit: std::collections::HashSet<u32> =
            (0..100u64).map(|lpn| t.stripe_lane(lpn).0).collect();
        assert_eq!(hit.len(), t.lanes() as usize);
    }

    #[test]
    #[should_panic(expected = "even channel count")]
    fn odd_pairing_panics() {
        Topology::new(3, 2, true);
    }
}
