//! Device-side observability counters.

/// Cumulative counters maintained by [`crate::Ssd`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SsdMetrics {
    /// Host read commands served.
    pub host_reads: u64,
    /// Host write commands served.
    pub host_writes: u64,
    /// 4 KB units read by the host.
    pub read_units: u64,
    /// 4 KB units written by the host.
    pub write_units: u64,
    /// Read units served from the DRAM write buffer.
    pub buffer_hits: u64,
    /// Read units served from the DRAM read cache / readahead.
    pub cache_hits: u64,
    /// Flash page reads issued (host + GC).
    pub flash_reads: u64,
    /// Flash programs issued (host + GC).
    pub flash_programs: u64,
    /// Block erases issued.
    pub flash_erases: u64,
    /// Units migrated by garbage collection.
    pub gc_migrated_units: u64,
    /// Appends that had to run foreground GC.
    pub forced_gc_events: u64,
    /// Reads that suspended an in-flight program (ULL only).
    pub program_suspensions: u64,
    /// Rare long-latency read events injected.
    pub read_tail_events: u64,
    /// Rare long-latency write events injected.
    pub write_tail_events: u64,
    /// Worn-out blocks transparently absorbed by the remap checker.
    pub remapped_blocks: u64,
    /// Physical blocks stranded by unremapped wear-out.
    pub physical_blocks_lost: u64,
}

impl SsdMetrics {
    /// Write amplification observed so far: `(host + migrated) / host`.
    /// Returns 1.0 before any write.
    pub fn write_amplification(&self) -> f64 {
        if self.write_units == 0 {
            return 1.0;
        }
        (self.write_units + self.gc_migrated_units) as f64 / self.write_units as f64
    }

    /// Fraction of read units served from DRAM (buffer or cache).
    pub fn dram_hit_rate(&self) -> f64 {
        if self.read_units == 0 {
            return 0.0;
        }
        (self.buffer_hits + self.cache_hits) as f64 / self.read_units as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[allow(clippy::float_cmp)] // exact constants by construction
    fn write_amplification_counts_migrations() {
        let m = SsdMetrics {
            write_units: 100,
            gc_migrated_units: 50,
            ..Default::default()
        };
        assert!((m.write_amplification() - 1.5).abs() < 1e-12);
        assert_eq!(SsdMetrics::default().write_amplification(), 1.0);
    }

    #[test]
    #[allow(clippy::float_cmp)] // exact constants by construction
    fn hit_rate_combines_buffer_and_cache() {
        let m = SsdMetrics {
            read_units: 10,
            buffer_hits: 2,
            cache_hits: 3,
            ..Default::default()
        };
        assert!((m.dram_hit_rate() - 0.5).abs() < 1e-12);
        assert_eq!(SsdMetrics::default().dram_hit_rate(), 0.0);
    }
}
